"""Figure 9: "Dynamic call graph from Strassen example.  Multiple arcs
show multiple function calls.  The number of calls per arc is
adjustable.  Each arc has an image in the execution trace.  The graph
was converted to VCG format displayed with the xvcg graph layout tool."

The benchmark builds the dynamic call graph of the instrumented Strassen
master from FUNC_ENTRY/EXIT records, exports it to VCG, and asserts the
figure's features: call multiplicities matching the algorithm's static
structure (seven products), the adjustable calls-per-arc rendering, and
the arc -> trace-record back-pointers.
"""

from __future__ import annotations

from repro.apps import strassen as st
from repro.graphs import ROOT_FUNCTION, build_call_graph, call_graph_to_vcg

from .conftest import traced_run, write_artifact


def test_fig9_callgraph(benchmark):
    cfg = st.StrassenConfig(n=16, nprocs=8)
    _, trace = traced_run(
        st.strassen_program(cfg),
        8,
        functions=[
            st.strassen_master,
            st.strassen_worker,
            st.matr_send,
            st.matr_combine,
            st.strassen_operands,
            st.combine_products,
            st.multiply_block,
            st.split_quadrants,
            st.make_inputs,
        ],
    )

    graph = benchmark(lambda: build_call_graph(trace, proc=0))

    vcg_single = call_graph_to_vcg(graph, calls_per_arc=0)
    vcg_multi = call_graph_to_vcg(graph, calls_per_arc=1)
    artifact = graph.as_text(calls_per_arc=1) + "\n\n" + vcg_single
    write_artifact("fig9_callgraph.txt", artifact)
    write_artifact("fig9_callgraph.vcg", vcg_multi)

    # --- multiplicities match the algorithm --------------------------------
    # The master: one strassen_master; strassen_operands called once and
    # performing the 7-product decomposition; matr_send/matr_combine once.
    assert graph.counts["strassen_master"] == 1
    assert graph.counts["matr_send"] == 1
    assert graph.counts["matr_combine"] == 1
    # split_quadrants: once for A and once for B inside strassen_operands.
    assert graph.edges[("strassen_operands", "split_quadrants")].calls == 2
    # combine_products is called by matr_combine exactly once.
    assert graph.edges[("matr_combine", "combine_products")].calls == 1
    assert (ROOT_FUNCTION, "strassen_master") in graph.edges

    # Worker side (merged over procs): 7 block multiplies in total.
    merged = build_call_graph(trace, proc=None)
    assert merged.counts["multiply_block"] == 7
    assert merged.counts["strassen_worker"] == 7  # one per worker

    # --- "the number of calls per arc is adjustable" -------------------------
    edge = graph.edges[("strassen_operands", "split_quadrants")]
    assert edge.arcs_displayed(1) == 2
    assert edge.arcs_displayed(2) == 1
    per_edge_arcs = vcg_multi.count(
        'sourcename: "strassen_operands" targetname: "split_quadrants"'
    )
    assert per_edge_arcs == 2  # multiple parallel arcs drawn

    # --- "each arc has an image in the execution trace" ----------------------
    assert 0 <= edge.first_index <= edge.last_index < len(trace)
    assert trace[edge.first_index].location.function == "split_quadrants"
