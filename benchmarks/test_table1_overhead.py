"""Table 1: instrumentation overhead.

Paper's rows (SGI hardware, gcc/uinst assembler-level instrumentation):

    |                  | Strassen (4 procs) |             | Fibonacci |       |
    | input            | 96.128.112         | 192.256.224 | 34        | 35    |
    | number of calls  | 136                | 136         | 18.4M     | 29.9M |
    | time (uninstr.)  | 8.19               | 28.72       | 5.17      | 8.36  |
    | time (instr.)    | 8.46               | 28.77       | 20.98     | 34.12 |

Shape to reproduce (scaled inputs -- Python on one machine, not Fortran
on an R8000 cluster; see EXPERIMENTS.md for the calibration notes):

* Strassen's monitor-call count is small and *independent of problem
  size*, so its overhead ratio stays near 1 (paper: 1.03x / 1.002x);
* Fibonacci makes exponentially many calls -- count matches the closed
  form 2*fib(n+1)-1 exactly -- so per-call monitoring dominates and the
  ratio is a large multiple (paper: ~4x with assembler-level hooks; the
  Python profile-hook analog is proportionally costlier);
* the Dyninst-style patch instrumentation (the paper's §6 proposal,
  implemented in ``repro.instrument.dyninst``) cuts the call-dominated
  overhead well below the profile-hook method, supporting the paper's
  conclusion that better compiler/debugger integration reduces cost.
"""

from __future__ import annotations

from repro.apps import fibonacci as fibmod
from repro.apps import strassen as st
from repro.instrument import format_table, measure_overhead, timed_run

from .conftest import write_artifact

#: scaled-down inputs (the paper's fib(35) would take minutes in Python)
STRASSEN_SIZES = (96, 256)
FIB_INPUTS = (20, 22)
REPEATS = 3


def _strassen_row(n: int, method: str):
    cfg = st.StrassenConfig(n=n, nprocs=4)
    return measure_overhead(
        f"strassen-4proc[{method}]",
        str(n),
        st.strassen_program(cfg),
        4,
        instrument_modules=[st],
        repeats=REPEATS,
        method=method,
    )


def _fib_row(n: int, method: str):
    return measure_overhead(
        f"fibonacci[{method}]",
        str(n),
        fibmod.fib_program(n),
        1,
        instrument_functions=[fibmod.fib],
        repeats=REPEATS,
        method=method,
    )


def test_table1_overhead(benchmark):
    rows = []
    for n in STRASSEN_SIZES:
        rows.append(_strassen_row(n, "uinst"))
    for n in FIB_INPUTS:
        rows.append(_fib_row(n, "uinst"))
    for n in FIB_INPUTS:
        rows.append(_fib_row(n, "patch"))

    # The benchmarked operation: one instrumented fib run (the paper's
    # worst case, where the monitor cost is the measured quantity).
    benchmark(
        lambda: timed_run(
            fibmod.fib_program(FIB_INPUTS[0]),
            1,
            instrument_functions=[fibmod.fib],
        )
    )

    table = format_table(rows)
    write_artifact("table1_overhead.txt", table)

    s_small, s_big, f20, f22, p20, p22 = rows
    # --- call-count shape -----------------------------------------------
    # Strassen's monitor calls don't grow with the matrix size...
    assert s_small.n_calls == s_big.n_calls
    # ...and Fibonacci's match the closed form exactly, in both methods.
    for row, n in ((f20, 20), (f22, 22), (p20, 20), (p22, 22)):
        assert row.n_calls == fibmod.fib_call_count(n)
    assert f22.n_calls > f20.n_calls * 2  # exponential growth
    assert f22.n_calls > 500 * s_big.n_calls  # calls dominate vs Strassen

    # --- overhead shape ---------------------------------------------------
    # Call-dominated fib pays a multiple; coarse-grained Strassen pays
    # far less (the paper's central contrast).
    assert f22.ratio > 1.5, f"fib ratio {f22.ratio}"
    assert f22.ratio > 2 * s_big.ratio, (
        f"call-dominated fib ({f22.ratio:.2f}x) must exceed "
        f"coarse-grained strassen ({s_big.ratio:.2f}x)"
    )
    # The §6 patch method beats the profile hook on call-heavy code.
    assert p22.ratio < f22.ratio, (
        f"patch ({p22.ratio:.2f}x) should undercut profile-hook "
        f"({f22.ratio:.2f}x)"
    )
