"""Figure 4: "Communication graph of Strassen's algorithm implementation.

    Each node corresponds to one or two messages.  The arcs describe
    causality of messages."

The benchmark regenerates the communication graph from the 8-process
Strassen trace, exports it in VCG format (as the paper rendered its
graphs with xvcg), and asserts the structure: one node per matched
message pair, star topology through process 0, and causality arcs from
each worker's operand receives to its result send.
"""

from __future__ import annotations

from repro.apps import strassen as st
from repro.graphs import build_comm_graph, comm_graph_to_dot, comm_graph_to_vcg

from .conftest import write_artifact


def test_fig4_commgraph(benchmark, strassen8_trace):
    trace = strassen8_trace
    graph = benchmark(lambda: build_comm_graph(trace))

    vcg = comm_graph_to_vcg(graph, title="Strassen communication graph")
    artifact = graph.as_text() + "\n\n" + vcg
    write_artifact("fig4_commgraph.txt", artifact)
    write_artifact("fig4_commgraph.dot", comm_graph_to_dot(graph))

    # --- structure ---------------------------------------------------------
    # 7 workers x 2 operand messages + 7 results = 21 matched pairs.
    assert graph.node_count() == 21
    assert graph.unmatched_sends == [] and graph.unmatched_recvs == []

    # Star topology: every message involves process 0.
    for node in graph.nodes:
        assert 0 in (node.src, node.dst)

    # Causality: each worker's result node is preceded by an operand node
    # of the same worker ("the arcs describe causality of messages").
    by_id = {n.node_id: n for n in graph.nodes}
    for node in graph.nodes:
        if node.tag == st.TAG_RESULT:
            preds = [by_id[i] for i in graph.predecessors(node.node_id)]
            assert any(
                p.tag in (st.TAG_OPERAND_A, st.TAG_OPERAND_B)
                and p.dst == node.src
                for p in preds
            ), f"result from worker {node.src} lacks an operand cause"

    # The VCG export carries every node and arc.
    assert vcg.count("node:") == 21
    assert vcg.count("edge:") == graph.arc_count()
