"""Execution-backend comparison: threaded vs simtime at scale.

The tentpole claim behind the pluggable-backend refactor: both
cooperative backends run the *same* engine (identical schedules,
identical traces -- asserted record-for-record in the conformance
suite), but the threaded backend pays one OS thread per rank plus an
O(nprocs) ``notify_all`` thundering herd on every token handoff, while
simtime uses lazy carriers and O(1) semaphore handoffs.  At 256 ranks
that difference must be worth **>= 10x** wall-clock on both scaling
workloads (the issue's floor):

* the token ring (pure point-to-point, scheduling-dominated), and
* the 2-D halo-exchange stencil (isend/irecv/waitall + numpy compute).

A 1024-rank stencil trace must additionally complete in single-digit
seconds on simtime -- the "1000+-rank traces are cheap" promise.

Results land in ``benchmarks/results/backend_compare.txt``, with a >2x
regression gate against the committed baseline in
``backend_compare_baseline.json`` (same pattern as the analysis-kernel
and tracefile-v3 gates wired into the CI benchmark smoke job).
"""

from __future__ import annotations

import json
import time

from benchmarks.conftest import RESULTS_DIR, write_artifact
from repro.apps import halo2d_program, reference_halo2d, ring_program
from repro.mp import run_program

NPROCS = 256
RING_ROUNDS = 4
HALO_TILE = 2
HALO_STEPS = 4
BIG_NPROCS = 1024

BASELINE = RESULTS_DIR / "backend_compare_baseline.json"
#: CI regression gate: fail when a measured speedup drops below
#: baseline/REGRESSION_FACTOR or the big-run wall exceeds baseline*factor.
REGRESSION_FACTOR = 2.0
#: absolute floors from the issue.
MIN_SPEEDUP = 10.0
MAX_BIG_WALL = 9.9  # "single-digit seconds" for the 1024-rank trace


def timed_run(prog, nprocs, backend, reps=1):
    """Best-of-``reps`` wall clock; returns (seconds, runtime)."""
    best, rt = float("inf"), None
    for _ in range(reps):
        t0 = time.perf_counter()
        rt = run_program(prog, nprocs=nprocs, backend=backend)
        best = min(best, time.perf_counter() - t0)
    return best, rt


def test_simtime_speedup_and_1024_rank_wall():
    walls = {}
    speedups = {}

    # -- ring: scheduling-dominated point-to-point ---------------------
    ring = ring_program(rounds=RING_ROUNDS)
    expect = float(RING_ROUNDS * sum(range(NPROCS)))
    # threaded is the expensive side: one rep (noise only raises the
    # ratio); simtime is cheap: best-of-2 shields the floor from noise.
    walls["ring_threaded"], rt_t = timed_run(ring, NPROCS, "threaded")
    walls["ring_simtime"], rt_s = timed_run(ring, NPROCS, "simtime", reps=2)
    assert rt_t.results()[0] == expect
    assert rt_s.results()[0] == expect
    speedups["ring"] = walls["ring_threaded"] / walls["ring_simtime"]

    # -- halo2d: nonblocking neighbourhood exchange + compute ----------
    halo = halo2d_program(tile=HALO_TILE, steps=HALO_STEPS)
    ref_sum = float(reference_halo2d(NPROCS, HALO_TILE, HALO_STEPS).sum())
    walls["halo_threaded"], rt_t = timed_run(halo, NPROCS, "threaded")
    walls["halo_simtime"], rt_s = timed_run(halo, NPROCS, "simtime", reps=2)
    for rt in (rt_t, rt_s):
        total = sum(rt.results())
        assert abs(total - ref_sum) < 1e-6 * max(1.0, abs(ref_sum))
    speedups["halo2d"] = walls["halo_threaded"] / walls["halo_simtime"]

    # -- 1024 ranks on simtime alone -----------------------------------
    big = halo2d_program(tile=HALO_TILE, steps=2)
    walls["big_simtime"], rt = timed_run(big, BIG_NPROCS, "simtime")
    assert len(rt.results()) == BIG_NPROCS

    for name in ("ring", "halo2d"):
        assert speedups[name] >= MIN_SPEEDUP, (
            f"simtime speedup on {name}@{NPROCS} is {speedups[name]:.1f}x, "
            f"below the {MIN_SPEEDUP}x floor"
        )
    assert walls["big_simtime"] <= MAX_BIG_WALL, (
        f"1024-rank stencil took {walls['big_simtime']:.1f}s on simtime; "
        f"the issue requires single-digit seconds"
    )

    # -- regression gate against the recorded baseline -----------------
    gate_lines = ["baseline: (none; recorded this run)"]
    if BASELINE.exists():
        baseline = json.loads(BASELINE.read_text())
        gate_lines = []
        for key, measured in (
            ("ring_speedup", speedups["ring"]),
            ("halo2d_speedup", speedups["halo2d"]),
        ):
            floor = baseline[key] / REGRESSION_FACTOR
            gate_lines.append(
                f"baseline {key} {baseline[key]:.1f}x, gate floor {floor:.1f}x"
            )
            assert measured >= floor, (
                f"{key} regressed: {measured:.1f}x measured vs "
                f"{baseline[key]:.1f}x baseline (floor {floor:.1f}x)"
            )
        ceiling = baseline["big_wall_seconds"] * REGRESSION_FACTOR
        gate_lines.append(
            f"baseline 1024-rank wall {baseline['big_wall_seconds']:.2f}s, "
            f"gate ceiling {ceiling:.2f}s"
        )
        assert walls["big_simtime"] <= ceiling, (
            f"1024-rank wall regressed: {walls['big_simtime']:.2f}s vs "
            f"{baseline['big_wall_seconds']:.2f}s baseline "
            f"(ceiling {ceiling:.2f}s)"
        )
    else:
        RESULTS_DIR.mkdir(exist_ok=True)
        BASELINE.write_text(
            json.dumps(
                {
                    "ring_speedup": round(speedups["ring"], 1),
                    "halo2d_speedup": round(speedups["halo2d"], 1),
                    "big_wall_seconds": round(walls["big_simtime"], 2),
                    "nprocs": NPROCS,
                }
            )
            + "\n"
        )

    write_artifact(
        "backend_compare.txt",
        "\n".join(
            [
                f"Execution backends at {NPROCS} ranks "
                f"(same engine, same traces -- see the conformance suite)",
                "",
                f"  ring x{RING_ROUNDS}      : threaded "
                f"{walls['ring_threaded']:6.2f} s | simtime "
                f"{walls['ring_simtime']:6.3f} s | "
                f"{speedups['ring']:5.1f}x (floor {MIN_SPEEDUP}x)",
                f"  halo2d {HALO_TILE}x{HALO_TILE}x{HALO_STEPS} : threaded "
                f"{walls['halo_threaded']:6.2f} s | simtime "
                f"{walls['halo_simtime']:6.3f} s | "
                f"{speedups['halo2d']:5.1f}x (floor {MIN_SPEEDUP}x)",
                "",
                f"  halo2d @ {BIG_NPROCS} ranks on simtime: "
                f"{walls['big_simtime']:.2f} s "
                f"(ceiling {MAX_BIG_WALL}s)",
                "",
                *gate_lines,
            ]
        ),
    )
