"""Schedule-space exploration throughput: serial vs the forked pool.

The explorer's batch path exists for one reason: replaying dozens of
steered schedules through the debugger-grade threaded engine is the
slow way to sweep a schedule space.  The mproc executor forks a
persistent worker pool that replays on the lean ``simtime`` engine, so
replaying one candidate wave through it must be **>= 2x** faster than
the serial threaded sweep (the issue's floor), at identical
classifications (asserted -- the speed is worthless if the verdicts
differ).  Both executors replay the same candidates of the same
recorded base run, so the comparison isolates exactly what the batch
knob changes.

Results land in ``benchmarks/results/explore.txt``, with a >2x
regression gate against the committed baseline in
``explore_baseline.json`` (same pattern as the backend-compare gate in
the CI benchmark smoke job).
"""

from __future__ import annotations

import json
import time

from benchmarks.conftest import RESULTS_DIR, write_artifact
from repro.apps import master_worker_program
from repro.explore import (
    ExploreContext,
    make_executor,
    run_base,
    schedule_candidates,
)

NPROCS = 96
N_TASKS = 2 * NPROCS
MAX_SCHEDULES = 12
WORKERS = 4

BASELINE = RESULTS_DIR / "explore_baseline.json"
#: CI regression gate: fail when measured throughput metrics drop below
#: baseline/REGRESSION_FACTOR.
REGRESSION_FACTOR = 2.0
#: absolute floor from the issue: batched replays must beat the serial
#: sweep by >2x.
MIN_SPEEDUP = 2.0


def replay_wave(batch: str, ctx, base, jobs, reps: int = 1):
    """Run one wave of replay jobs; returns (wall, status list).

    One untimed warmup job first: the pool forks its workers lazily on
    the first wave, and a long exploration amortizes that cost, so the
    measurement is steady-state throughput.  ``reps`` takes the best of
    several timed waves (used on the cheap side to shield the speedup
    floor from noise, as in the backend-compare benchmark).
    """
    best = float("inf")
    with make_executor(batch, ctx, base, workers=WORKERS) as executor:
        executor.run([jobs[0]])
        for _ in range(reps):
            t0 = time.perf_counter()
            results = executor.run(jobs)
            best = min(best, time.perf_counter() - t0)
    return best, [r["status"] for r in results]


def test_batched_replay_speedup():
    ctx = ExploreContext(
        program=master_worker_program(n_tasks=N_TASKS, task_cost=1.0),
        nprocs=NPROCS,
        backend="threaded",
    )
    base = run_base(ctx)
    candidates = schedule_candidates(base, ctx)[:MAX_SCHEDULES]
    assert len(candidates) == MAX_SCHEDULES, (
        f"expected >= {MAX_SCHEDULES} steerable candidates at {NPROCS} "
        f"ranks, got {len(candidates)}"
    )
    jobs = [
        {"id": i, "log": c["log"], "expand": False}
        for i, c in enumerate(candidates)
    ]

    # serial = the debugger-default path: every replay on the threaded
    # engine, one at a time, in-process.
    serial_wall, serial_statuses = replay_wave("serial", ctx, base, jobs)
    # mproc = the throughput path: forked pool, simtime replays.
    mproc_wall, mproc_statuses = replay_wave("mproc", ctx, base, jobs, reps=2)

    # Same candidates, same verdicts (results return in job order).
    assert serial_statuses == mproc_statuses
    assert set(serial_statuses) == {"clean"}  # master/worker is commutative

    speedup = serial_wall / mproc_wall
    assert speedup >= MIN_SPEEDUP, (
        f"batched replay speedup is {speedup:.1f}x at {NPROCS} ranks, "
        f"below the {MIN_SPEEDUP}x floor"
    )

    # -- regression gate against the recorded baseline -----------------
    gate_lines = ["baseline: (none; recorded this run)"]
    if BASELINE.exists():
        baseline = json.loads(BASELINE.read_text())
        floor = baseline["speedup"] / REGRESSION_FACTOR
        rate_floor = baseline["mproc_schedules_per_sec"] / REGRESSION_FACTOR
        gate_lines = [
            f"baseline speedup {baseline['speedup']:.1f}x, "
            f"gate floor {floor:.1f}x",
            f"baseline mproc rate {baseline['mproc_schedules_per_sec']:.1f} "
            f"schedules/s, gate floor {rate_floor:.1f}/s",
        ]
        assert speedup >= floor, (
            f"replay speedup regressed: {speedup:.1f}x measured vs "
            f"{baseline['speedup']:.1f}x baseline (floor {floor:.1f}x)"
        )
        mproc_rate = len(jobs) / mproc_wall
        assert mproc_rate >= rate_floor, (
            f"mproc replay rate regressed: {mproc_rate:.1f}/s vs "
            f"{baseline['mproc_schedules_per_sec']:.1f}/s baseline "
            f"(floor {rate_floor:.1f}/s)"
        )
    else:
        RESULTS_DIR.mkdir(exist_ok=True)
        BASELINE.write_text(
            json.dumps(
                {
                    "speedup": round(speedup, 1),
                    "mproc_schedules_per_sec": round(
                        len(jobs) / mproc_wall, 1
                    ),
                    "nprocs": NPROCS,
                    "max_schedules": MAX_SCHEDULES,
                }
            )
            + "\n"
        )

    write_artifact(
        "explore.txt",
        "\n".join(
            [
                f"Steered-replay throughput on master_worker@{NPROCS} "
                f"({N_TASKS} tasks, {MAX_SCHEDULES} schedules)",
                "",
                f"  serial (threaded replays)    : {serial_wall:6.2f} s "
                f"({len(jobs) / serial_wall:5.1f} schedules/s)",
                f"  mproc x{WORKERS} (simtime replays) : {mproc_wall:6.2f} s "
                f"({len(jobs) / mproc_wall:5.1f} schedules/s)",
                f"  speedup                      : {speedup:5.1f}x "
                f"(floor {MIN_SPEEDUP}x)",
                "",
                f"  verdicts identical across executors: "
                f"{len(jobs)}x clean",
                "",
                *gate_lines,
            ]
        ),
    )
