"""Figure 5: "Process 0 (at the bottom) and process 7 (at the top) are
blocked in receives waiting for data from each other."

The benchmark runs the buggy Strassen (wrong destination in matr_send),
confirms the run deadlocks with exactly the 0 <-> 7 receive cycle, and
regenerates the time-space view in which both hang in long receive bars.
"""

from __future__ import annotations

from repro import mp
from repro.analysis import analyze_deadlock
from repro.apps import strassen as st
from repro.trace import TraceRecorder
from repro.instrument import WrapperLibrary
from repro.viz import build_diagram, render_ascii

from .conftest import RESULTS_DIR, write_artifact


def run_buggy():
    cfg = st.StrassenConfig(n=16, nprocs=8, buggy=True)
    rt = mp.Runtime(8)
    recorder = TraceRecorder(8)
    WrapperLibrary(rt, recorder)
    report = rt.run(st.strassen_program(cfg), raise_errors=False)
    trace = recorder.snapshot()
    waiting = list(report.waiting)
    outcome = report.outcome
    rt.shutdown()
    return outcome, trace, waiting


def test_fig5_deadlock(benchmark):
    outcome, trace, waiting = benchmark(run_buggy)

    analysis = analyze_deadlock(waiting, nprocs=8, trace=trace)
    diagram = build_diagram(trace)
    view = render_ascii(diagram, columns=100)
    write_artifact(
        "fig5_deadlock.txt", view + "\n\n" + analysis.as_text()
    )
    from repro.viz import render_svg

    (RESULTS_DIR / "fig5_deadlock.svg").write_text(render_svg(diagram))

    # --- the figure's claim -------------------------------------------------
    assert outcome is mp.RunOutcome.DEADLOCK
    blocked_ranks = sorted(w.rank for w in waiting)
    assert blocked_ranks == [0, 7], "exactly 0 and 7 fail to make progress"
    peers = {w.rank: w.peer for w in waiting}
    assert peers == {0: 7, 7: 0}, "waiting for data from each other"
    assert all(w.kind is mp.WaitKind.RECV for w in waiting), "blocked in receives"
    assert analysis.cycles == [[0, 7]]

    # Workers 1-6 finished their (mismatched) work: the hang is isolated
    # to the 0/7 pair, as the figure shows -- they each completed a
    # result send and are not in the blocked set.
    blocked_set = {w.rank for w in waiting}
    assert blocked_set.isdisjoint(range(1, 7))
    send_counts = trace.send_counts()
    assert all(send_counts[w] == 1 for w in range(1, 7))  # result sent
    assert send_counts[7] == 0  # worker 7 never got that far
