"""Figure 2: "History displayed with NTV" -- full-trace view + stopline.

The figure shows the whole Strassen trace in NTV: construct bars per
process, angled message lines, and "the vertical line near the left side
represents the stopline".  The benchmark regenerates that display (ASCII
and SVG) with a stopline placed early in the run, and checks the NTV
interactions: full-file view, zoom, pan, and click-to-source.
"""

from __future__ import annotations

from repro.debugger import vertical_stopline_at_time
from repro.viz import Viewport, build_diagram, render_ascii, render_svg

from .conftest import RESULTS_DIR, write_artifact


def test_fig2_ntv_view(benchmark, strassen8_trace):
    trace = strassen8_trace
    diagram = build_diagram(trace)

    # The stopline "near the left side": 15% into the run.
    t_lo, t_hi = trace.span
    sl_time = t_lo + 0.15 * (t_hi - t_lo)
    stopline = vertical_stopline_at_time(trace, sl_time)
    diagram.set_stopline(stopline.time)

    render = lambda: render_svg(diagram)  # noqa: E731
    svg = benchmark(render)

    ascii_view = render_ascii(diagram, columns=100)
    write_artifact(
        "fig2_ntv_view.txt",
        ascii_view + "\n\n" + stopline.describe(),
    )
    (RESULTS_DIR / "fig2_ntv_view.svg").write_text(svg)

    # --- display shape ----------------------------------------------------
    lines = ascii_view.splitlines()
    assert lines[1].startswith("p7 |")  # 8 process rows, top rank first
    assert lines[8].startswith("p0 |")
    assert any("|" in ln[4:] for ln in lines[1:9]), "stopline indicator drawn"
    assert svg.count("<line") >= 21  # all message lines present
    assert "<title>stopline</title>" in svg

    # --- NTV interactions ---------------------------------------------------
    vp = Viewport.fit(t_lo, t_hi, columns=100)
    zoomed = vp.zoom(4.0, center=sl_time).pan((t_hi - t_lo) / 20)
    zoom_view = render_ascii(diagram, zoomed, columns=100)
    assert zoom_view  # zoom+pan renders
    # Click-through: a bar under the cursor names its source construct.
    bar = diagram.bars[0]
    src = diagram.source_of_click(bar.proc, (bar.t0 + bar.t1) / 2)
    assert src is not None and ".py" in src

    # Stopline thresholds exist for every process still active at the cut.
    assert len(stopline.thresholds) >= 1
