"""Trace-file format v3 economics: columnar decode vs JSON-lines.

The tentpole claims, each asserted and measured on a 200k-event trace:

(a) **decode throughput**: loading a v3 file (zero-copy numpy column
    decode + batch record materialization) is at least 5x faster than
    the v2 per-line ``json.loads`` path, and is additionally gated
    against ``benchmarks/results/tracefile_v3_baseline.json`` -- the
    run fails if the measured speedup regresses below half the
    recorded baseline (the same >2x regression-gate mechanism as the
    history-index suite).

(b) **load-path allocations**: the column-ingest path
    (``read_columns``, feeding ``HistoryIndex.extend_columns`` and the
    graph/viz consumers) allocates at least 3x less than the v2 parse
    for the same file -- columns are views of the mmap, and the side
    tables are interned per block.

(c) **equality**: both decoders and both windowed paths yield the same
    records, so the speed is not bought with fidelity.

Results land in ``benchmarks/results/tracefile_v3.txt``.
"""

from __future__ import annotations

import gc
import json
import math
import time
import tracemalloc
from contextlib import contextmanager

import pytest

from benchmarks.conftest import RESULTS_DIR, write_artifact
from repro.mp.datatypes import SourceLocation
from repro.trace import (
    EventKind,
    TraceFileReader,
    TraceFileWriter,
    TraceRecord,
)

N_EVENTS = 200_000
NPROCS = 8
#: a handful of sites, as real traces have: exercises per-block interning
LOCS = [
    SourceLocation("ring.py", 40 + i, name)
    for i, name in enumerate(["worker", "exchange", "reduce_local", "sweep"])
]

BASELINE = RESULTS_DIR / "tracefile_v3_baseline.json"
#: CI regression gate: fail when decode speedup drops below
#: baseline/REGRESSION_FACTOR (a >2x regression).
REGRESSION_FACTOR = 2.0
#: the tentpole's absolute floors
MIN_SPEEDUP = 5.0
MIN_ALLOC_RATIO = 3.0


@contextmanager
def gc_paused():
    """GC pauses scale with the *total* live heap (this module keeps
    several 200k-record lists alive), not with the work under test, so
    collection is suspended inside timed sections -- standard
    microbenchmark hygiene; both formats get the same treatment."""
    gc.collect()
    gc.disable()
    try:
        yield
    finally:
        gc.enable()


def synthesize_records(n: int = N_EVENTS):
    """A matched ring stream (send/recv/compute rounds) with realistic
    payload variety: rotating source locations, occasional peer
    locations and extra dicts."""
    out = []
    i = 0
    round_no = 0
    while i < n:
        phase = round_no % 3
        for proc in range(NPROCS):
            if i >= n:
                return out
            t = i * 0.01
            loc = LOCS[(proc + round_no) % len(LOCS)]
            if phase == 0:
                rec = TraceRecord(
                    index=i, proc=proc, kind=EventKind.SEND,
                    t0=t, t1=t + 0.005, marker=i + 1, location=loc,
                    src=proc, dst=(proc + 1) % NPROCS, tag=1, size=64,
                    seq=round_no,
                )
            elif phase == 1:
                rec = TraceRecord(
                    index=i, proc=proc, kind=EventKind.RECV,
                    t0=t, t1=t + 0.005, marker=i + 1, location=loc,
                    src=(proc - 1) % NPROCS, dst=proc, tag=1, size=64,
                    seq=round_no - 1, peer_location=LOCS[0],
                    peer_marker=i, peer_time=t - 0.01,
                )
            else:
                rec = TraceRecord(
                    index=i, proc=proc, kind=EventKind.COMPUTE,
                    t0=t, t1=t + 0.008, marker=i + 1, location=loc,
                )
                if round_no % 1000 == 0:
                    rec.extra = {"round": round_no}
            out.append(rec)
            i += 1
        round_no += 1
    return out


@pytest.fixture(scope="module")
def trace_files(tmp_path_factory):
    records = synthesize_records()
    tmp = tmp_path_factory.mktemp("tracefile_v3")
    p2, p3 = tmp / "trace_v2.jsonl", tmp / "trace_v3.trace"
    t0 = time.perf_counter()
    with TraceFileWriter(p2, nprocs=NPROCS, version=2) as w:
        for rec in records:
            w.write(rec)
    v2_write = time.perf_counter() - t0
    t0 = time.perf_counter()
    with TraceFileWriter(p3, nprocs=NPROCS, version=3) as w:
        for rec in records:
            w.write(rec)
    v3_write = time.perf_counter() - t0
    return records, p2, p3, v2_write, v3_write


def _best_decode_wall(path, repeats: int = 3) -> float:
    """Best-of-``repeats`` wall clock for a full ``read_all``.

    Each measurement drops its result before the next one runs: a
    decode timed while another decode's 200k records are still live
    pays that heap's allocator penalty (fresh arenas instead of hot
    just-freed pools) -- up to 3x on this workload -- so holding
    results across timings would charge whichever format runs second
    for the first one's garbage.  Dropping them keeps the allocator
    state identical for both formats.
    """
    best = math.inf
    for _ in range(repeats):
        with gc_paused():
            start = time.perf_counter()
            got = TraceFileReader(path).read_all()
            wall = time.perf_counter() - start
        del got
        best = min(best, wall)
    return best


def test_v3_decode_throughput_and_regression_gate(trace_files):
    records, p2, p3, v2_write, v3_write = trace_files
    n = len(records)

    # (c) fidelity first, untimed: the speed must buy the same records
    assert TraceFileReader(p2).read_all() == records
    assert TraceFileReader(p3).read_all() == records

    # -- decode wall clock (full file -> record objects) ---------------
    v2_wall = _best_decode_wall(p2)
    v3_wall = _best_decode_wall(p3)

    speedup = v2_wall / v3_wall
    assert speedup >= MIN_SPEEDUP, (
        f"v3 decode only {speedup:.1f}x over v2 "
        f"(tentpole floor {MIN_SPEEDUP}x)"
    )

    # -- column-load path wall clock (no record objects at all) --------
    with gc_paused():
        start = time.perf_counter()
        block = TraceFileReader(p3).read_columns()
        v3_cols_wall = time.perf_counter() - start
    assert len(block) == n
    del block

    # -- load-path allocations -----------------------------------------
    with gc_paused():
        tracemalloc.start()
        TraceFileReader(p2).read_all()
        _, v2_peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()

    with gc_paused():
        tracemalloc.start()
        block = TraceFileReader(p3).read_columns()
        _, v3_peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        del block

    alloc_ratio = v2_peak / v3_peak
    assert alloc_ratio >= MIN_ALLOC_RATIO, (
        f"v3 column-load allocates only {alloc_ratio:.1f}x less than the "
        f"v2 parse (tentpole floor {MIN_ALLOC_RATIO}x)"
    )

    # -- regression gate against the recorded baseline -----------------
    gate_line = "baseline: (none; recorded this run)"
    if BASELINE.exists():
        baseline = json.loads(BASELINE.read_text())
        floor = baseline["speedup"] / REGRESSION_FACTOR
        gate_line = (
            f"baseline speedup {baseline['speedup']:.1f}x, "
            f"gate floor {floor:.1f}x"
        )
        assert speedup >= floor, (
            f"v3 decode speedup regressed: {speedup:.1f}x measured vs "
            f"{baseline['speedup']:.1f}x baseline (floor {floor:.1f}x)"
        )
    else:
        RESULTS_DIR.mkdir(exist_ok=True)
        BASELINE.write_text(
            json.dumps({
                "speedup": round(speedup, 2),
                "alloc_ratio": round(alloc_ratio, 2),
                "events": n,
            }) + "\n"
        )

    v2_size = p2.stat().st_size
    v3_size = p3.stat().st_size
    write_artifact(
        "tracefile_v3.txt",
        "\n".join([
            "Trace file v3 (binary columnar) vs v2 (JSON lines)",
            f"trace: {n} events, {NPROCS} procs (matched ring)",
            "",
            f"  file size         : v2 {v2_size / 1e6:7.2f} MB   "
            f"v3 {v3_size / 1e6:7.2f} MB  ({v2_size / v3_size:.1f}x smaller)",
            f"  write             : v2 {v2_write:7.3f} s    "
            f"v3 {v3_write:7.3f} s",
            f"  decode -> records : v2 {v2_wall:7.3f} s    "
            f"v3 {v3_wall:7.3f} s  ({speedup:.1f}x, floor {MIN_SPEEDUP}x)",
            f"  decode -> columns : v3 {v3_cols_wall:7.3f} s  "
            f"({v2_wall / v3_cols_wall:.1f}x over v2 parse)",
            f"  load-path peak    : v2 {v2_peak / 1e6:7.2f} MB   "
            f"v3 {v3_peak / 1e6:7.2f} MB  "
            f"({alloc_ratio:.1f}x lower, floor {MIN_ALLOC_RATIO}x)",
            f"  {gate_line}",
            "",
            f"  throughput: v2 {n / v2_wall / 1e3:.0f}k rec/s -> "
            f"v3 {n / v3_wall / 1e3:.0f}k rec/s",
        ]),
    )


def test_v3_windowed_paths_agree(trace_files):
    """Windowed access: indexed columnar seeks equal the linear filter,
    and the parallel loader equals the serial one."""
    records, _, p3, _, _ = trace_files
    reader = TraceFileReader(p3)
    assert reader.has_index
    t_lo, t_hi = 500.0, 600.0
    indexed = reader.seek_window(t_lo, t_hi)
    linear = reader.seek_window(t_lo, t_hi, use_index=False)
    parallel = reader.seek_window(t_lo, t_hi, parallel=True)
    serial = reader.seek_window(t_lo, t_hi, parallel=False)
    assert indexed == linear == parallel == serial
    assert indexed == [r for r in records if r.t1 >= t_lo and r.t0 <= t_hi]
    cols = reader.read_columns(t_lo=t_lo, t_hi=t_hi)
    assert cols.to_records() == indexed
