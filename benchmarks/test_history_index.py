"""HistoryIndex economics: derive once, share everywhere.

Two claims, each asserted and measured:

(a) a multi-analysis debugging session (stopline -> frontiers -> races
    -> critical path on an 8-proc LU trace) performs exactly ONE
    vector-clock build and ONE matching build when the analyses share a
    HistoryIndex -- versus one full re-derivation per analysis without
    sharing.  The wall-clock speedup of the derivation work is reported
    and gated against ``benchmarks/results/history_index_baseline.json``:
    the run fails if the measured speedup regresses below half the
    recorded baseline (the >2x regression gate wired into CI).

(b) the incrementally-built index (record-by-record, with interleaved
    catch-up queries mid-stream) equals the batch-built reference on a
    200k-event stream -- clocks, pairs, and unmatched lists
    record-for-record.

Results land in ``benchmarks/results/history_index.txt``.
"""

from __future__ import annotations

import json
import time

import numpy as np
import pytest

from benchmarks.conftest import RESULTS_DIR, traced_run, write_artifact
from repro.analysis import (
    HistoryIndex,
    analyze_frontiers,
    compute_causal_order,
    critical_path,
    detect_races,
    ensure_index,
)
from repro.apps.lu import LUConfig, lu_program
from repro.debugger.stopline import StoplinePlacement, compute_stopline
from repro.trace.trace import Trace

from repro.mp.datatypes import SourceLocation
from repro.trace import EventKind, TraceRecord

N_EVENTS = 200_000
NPROCS = 8
LOC = SourceLocation("synthetic.py", 1, "worker")

BASELINE = RESULTS_DIR / "history_index_baseline.json"
#: CI regression gate: fail when the shared-vs-rederived speedup drops
#: below baseline/REGRESSION_FACTOR (i.e. a >2x regression).
REGRESSION_FACTOR = 2.0


def synthesize_matched_records(n: int = N_EVENTS):
    """A causal ring stream where every receive HAS a matching earlier
    send (keys agree per (src, dst, tag, seq) route), so the incremental
    clock joins and pair lists are fully exercised.  Every third round is
    compute-only; one send per 10k rounds is left unreceived."""
    i = 0
    round_no = 0
    while i < n:
        phase = round_no % 3
        for proc in range(NPROCS):
            if i >= n:
                return
            t = i * 0.01
            if phase == 0:
                yield TraceRecord(index=i, proc=proc, kind=EventKind.SEND,
                                  t0=t, t1=t + 0.005, marker=i + 1,
                                  location=LOC, src=proc,
                                  dst=(proc + 1) % NPROCS, tag=1, size=64,
                                  seq=round_no)
            elif phase == 1:
                if round_no % 10_000 == 1 and proc == 0:
                    # drop one receive: its partner send stays unmatched
                    yield TraceRecord(index=i, proc=proc,
                                      kind=EventKind.COMPUTE,
                                      t0=t, t1=t + 0.008, marker=i + 1,
                                      location=LOC)
                else:
                    yield TraceRecord(index=i, proc=proc,
                                      kind=EventKind.RECV,
                                      t0=t, t1=t + 0.005, marker=i + 1,
                                      location=LOC,
                                      src=(proc - 1) % NPROCS, dst=proc,
                                      tag=1, size=64, seq=round_no - 1)
            else:
                yield TraceRecord(index=i, proc=proc, kind=EventKind.COMPUTE,
                                  t0=t, t1=t + 0.008, marker=i + 1,
                                  location=LOC)
            i += 1
        round_no += 1


@pytest.fixture(scope="module")
def lu8_trace():
    """The 8-proc LU trace the session benchmark debugs."""
    cfg = LUConfig(grid=32, nprocs=8, panels=4, sweeps=4)
    _, trace = traced_run(lu_program(cfg), 8)
    return trace


def run_session(trace, index):
    """The scripted multi-analysis session: stopline, frontiers, races,
    critical path -- all on the same trace."""
    event = next(r.index for r in trace if r.is_recv)
    compute_stopline(trace, event, StoplinePlacement.PAST_FRONTIER, index=index)
    analyze_frontiers(trace, event, index=index)
    detect_races(trace, index=index)
    critical_path(trace, index=index)


def test_history_index_session_and_regression_gate(lu8_trace):
    records, nprocs = list(lu8_trace.records), lu8_trace.nprocs

    # -- shared: one index, four analyses ------------------------------
    shared_trace = Trace(records, nprocs)
    shared_index = ensure_index(shared_trace)
    start = time.perf_counter()
    run_session(shared_trace, shared_index)
    shared_wall = time.perf_counter() - start
    stats = shared_index.stats()

    # The acceptance criterion: exactly one build of each component.
    assert stats.clock_builds == 1
    assert stats.matching_builds == 1

    # -- re-derived: a fresh trace (thus fresh index) per analysis -----
    event = next(r.index for r in shared_trace if r.is_recv)
    start = time.perf_counter()
    compute_stopline(Trace(records, nprocs), event, StoplinePlacement.PAST_FRONTIER)
    analyze_frontiers(Trace(records, nprocs), event)
    detect_races(Trace(records, nprocs))
    critical_path(Trace(records, nprocs))
    rederived_wall = time.perf_counter() - start

    speedup = rederived_wall / shared_wall if shared_wall > 0 else float("inf")
    # Sharing can never be slower than re-deriving four times; allow
    # noise but require a real win.
    assert speedup > 1.2

    # -- regression gate against the recorded baseline -----------------
    gate_line = "baseline: (none; recorded this run)"
    if BASELINE.exists():
        baseline = json.loads(BASELINE.read_text())
        floor = baseline["speedup"] / REGRESSION_FACTOR
        gate_line = (
            f"baseline speedup {baseline['speedup']:.1f}x, "
            f"gate floor {floor:.1f}x"
        )
        assert speedup >= floor, (
            f"history-index speedup regressed: {speedup:.1f}x measured vs "
            f"{baseline['speedup']:.1f}x baseline (floor {floor:.1f}x)"
        )
    else:
        RESULTS_DIR.mkdir(exist_ok=True)
        BASELINE.write_text(
            json.dumps({"speedup": round(speedup, 2), "events": len(records)})
            + "\n"
        )

    write_artifact(
        "history_index.txt",
        "\n".join([
            "HistoryIndex shared-substrate economics",
            f"trace: {len(records)} events, {nprocs} procs (LU)",
            "session: stopline -> frontiers -> races -> critical path",
            "",
            f"  shared index     : {shared_wall * 1e3:8.1f} ms "
            f"({stats.clock_builds} clock build, "
            f"{stats.matching_builds} matching build)",
            f"  re-derived (x4)  : {rederived_wall * 1e3:8.1f} ms",
            f"  speedup          : {speedup:8.1f}x",
            f"  {gate_line}",
            "",
            stats.as_text(),
        ]),
    )


def test_incremental_equals_batch_200k():
    """(b): the sink-fed index equals batch derivation on a 200k-event
    stream, with catch-up queries interleaved mid-stream."""
    records = list(synthesize_matched_records())
    n = len(records)
    batch_trace = Trace(records, NPROCS)
    start = time.perf_counter()
    batch_order = compute_causal_order(batch_trace)
    batch_pairs = batch_trace.message_pairs()
    batch_wall = time.perf_counter() - start

    index = HistoryIndex(nprocs=NPROCS)
    start = time.perf_counter()
    for k, rec in enumerate(records):
        index.extend(rec)
        if k % 50_000 == 0:
            index.message_pairs()  # interleaved catch-up
            _ = index.clocks
    _ = index.clocks
    inc_wall = time.perf_counter() - start

    np.testing.assert_array_equal(index.clocks, batch_order.clocks)
    assert [(p.send.index, p.recv.index) for p in index.message_pairs()] == [
        (p.send.index, p.recv.index) for p in batch_pairs
    ]
    assert sorted(r.index for r in index.unmatched_sends()) == sorted(
        r.index for r in batch_trace.unmatched_sends()
    )
    assert [r.index for r in index.unmatched_recvs()] == [
        r.index for r in batch_trace.unmatched_recvs()
    ]
    stats = index.stats()
    assert stats.clock_builds == 1
    assert stats.matching_builds == 1
    assert stats.clock_extends == n
    # the stream must actually exercise matching: most receives pair up,
    # and the dropped receives leave their sends unmatched
    assert len(batch_pairs) > n // 4
    assert len(batch_trace.unmatched_sends()) > 0

    write_artifact(
        "history_index_200k.txt",
        "\n".join([
            "Incremental vs batch on a 200k-event stream",
            f"events: {n}, procs: {NPROCS}, "
            f"pairs: {len(batch_pairs)}",
            "",
            f"  batch derivation       : {batch_wall:8.3f}s",
            f"  incremental (streamed) : {inc_wall:8.3f}s "
            f"({inc_wall / n * 1e6:.1f} us/event)",
            "  equality: clocks, pairs, unmatched lists identical",
        ]),
    )
