"""Streaming-pipeline scaling: incremental consumers vs batch loading.

The pipeline exists so trace consumers do not have to hold -- or even
read -- the whole history.  On a >=200k-event trace this benchmark
measures, and asserts the direction of, both halves of that claim:

(a) graph construction: loading the full trace into memory and calling
    ``TraceGraph.from_trace`` versus streaming the file's records
    straight into ``TraceGraph.from_records`` (peak heap should collapse
    -- the graph is tiny, the record list is not);

(b) window rescans: a linear scan of the file versus ``seek_window``
    through the v2 index footer (bytes read should collapse -- the
    acceptance criterion: strictly fewer bytes than a full scan).

Results land in ``benchmarks/results/streaming_scaling.txt``.  Absolute
times are machine-dependent; the assertions are on relative shape only.
"""

from __future__ import annotations

import time
import tracemalloc

import pytest

from benchmarks.conftest import write_artifact
from repro.mp.datatypes import SourceLocation
from repro.trace import (
    EventKind,
    TraceFileReader,
    TraceFileWriter,
    TraceRecord,
    load_trace,
)
from repro.graphs.tracegraph import TraceGraph

N_EVENTS = 200_000
NPROCS = 8
LOC = SourceLocation("synthetic.py", 1, "worker")


def synthesize_records(n: int = N_EVENTS):
    """A deterministic ring-like event stream: send/recv pairs plus
    compute, with monotonically advancing virtual time."""
    seq = 0
    for i in range(n):
        proc = i % NPROCS
        t = i * 0.01
        phase = (i // NPROCS) % 3
        if phase == 0:
            yield TraceRecord(index=i, proc=proc, kind=EventKind.SEND,
                              t0=t, t1=t + 0.005, marker=i + 1, location=LOC,
                              src=proc, dst=(proc + 1) % NPROCS,
                              tag=1, size=64, seq=seq + proc)
        elif phase == 1:
            yield TraceRecord(index=i, proc=proc, kind=EventKind.RECV,
                              t0=t, t1=t + 0.005, marker=i + 1, location=LOC,
                              src=(proc - 1) % NPROCS, dst=proc,
                              tag=1, size=64, seq=seq + proc)
        else:
            yield TraceRecord(index=i, proc=proc, kind=EventKind.COMPUTE,
                              t0=t, t1=t + 0.008, marker=i + 1, location=LOC)
        if proc == NPROCS - 1 and phase == 1:
            seq += NPROCS


@pytest.fixture(scope="module")
def big_trace_file(tmp_path_factory):
    path = tmp_path_factory.mktemp("scaling") / "big.jsonl"
    with TraceFileWriter(path, nprocs=NPROCS, auto_flush_every=8192) as w:
        for rec in synthesize_records():
            w.write(rec)
    return path


def timed_peak(fn):
    """(result, wall seconds, peak Python-heap bytes) of one call."""
    tracemalloc.start()
    start = time.perf_counter()
    result = fn()
    wall = time.perf_counter() - start
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    return result, wall, peak


def test_streaming_scaling(big_trace_file):
    path = big_trace_file
    file_bytes = path.stat().st_size

    # -- (a) full-load vs incremental graph build ----------------------
    def full_load_build():
        trace = load_trace(path)
        return TraceGraph.from_trace(trace)

    def incremental_build():
        reader = TraceFileReader(path)
        return TraceGraph.from_records(reader.iter_records(), reader.nprocs)

    batch_graph, batch_wall, batch_peak = timed_peak(full_load_build)
    inc_graph, inc_wall, inc_peak = timed_peak(incremental_build)

    # 2/3 of the synthetic stream are message events (graph input).
    assert batch_graph.events_consumed == inc_graph.events_consumed > 0
    assert sorted(map(str, inc_graph.nodes)) == sorted(map(str, batch_graph.nodes))
    # The whole point: the streaming build never materializes the record
    # list, so its peak heap is a fraction of the batch build's.
    assert inc_peak < batch_peak / 2

    # -- (b) linear rescan vs indexed seek_window ----------------------
    reader = TraceFileReader(path)
    assert reader.has_index
    t_lo, t_hi = 500.0, 510.0  # ~1000 of 200k events

    mark = reader.bytes_read
    start = time.perf_counter()
    linear = reader.seek_window(t_lo, t_hi, use_index=False)
    linear_wall = time.perf_counter() - start
    linear_bytes = reader.bytes_read - mark

    mark = reader.bytes_read
    start = time.perf_counter()
    indexed = reader.seek_window(t_lo, t_hi)
    indexed_wall = time.perf_counter() - start
    indexed_bytes = reader.bytes_read - mark

    assert indexed == linear
    assert len(indexed) > 0
    # Acceptance criterion: the indexed path reads strictly fewer bytes.
    assert 0 < indexed_bytes < linear_bytes

    rows = [
        ("graph: full load + from_trace", f"{batch_wall:8.3f}s",
         f"{batch_peak / 2**20:9.1f} MiB peak heap"),
        ("graph: streamed from_records", f"{inc_wall:8.3f}s",
         f"{inc_peak / 2**20:9.1f} MiB peak heap"),
        ("rescan: linear scan", f"{linear_wall:8.3f}s",
         f"{linear_bytes / 2**20:9.1f} MiB read"),
        ("rescan: seek_window (indexed)", f"{indexed_wall:8.3f}s",
         f"{indexed_bytes / 2**20:9.1f} MiB read"),
    ]
    lines = [
        "Streaming pipeline scaling",
        f"trace: {N_EVENTS} events, {NPROCS} procs, "
        f"{file_bytes / 2**20:.1f} MiB on disk (format v2, indexed)",
        f"window for (b): t in [{t_lo}, {t_hi}] -> {len(indexed)} records",
        "",
    ]
    lines += [f"  {name:<32} {wall}  {mem}" for name, wall, mem in rows]
    lines += [
        "",
        f"peak-heap ratio (batch/streamed): {batch_peak / inc_peak:5.1f}x",
        f"bytes-read ratio (linear/indexed): {linear_bytes / indexed_bytes:5.1f}x",
    ]
    write_artifact("streaming_scaling.txt", "\n".join(lines))
