"""Vectorized analysis kernels vs the scalar reference engine.

The tentpole claim behind the columnar HistoryIndex core: on a
200k-event trace, the numpy kernels (segment-broadcast vector clocks,
lexsort matching, searchsorted windows, mask-based race detection,
cumsum critical-path DP) beat the per-record Python reference
(``engine="python"``) by a wide margin *while producing identical
output* -- the equality is asserted here record-for-record, then the
speedups are gated:

* clocks + matching: >= 5x (absolute floor), and
* race detection:    >= 10x (absolute floor),

plus a >2x regression gate against the committed baseline in
``benchmarks/results/analysis_kernels_baseline.json`` (same pattern as
the tracefile-v3 decode gate wired into the CI benchmark smoke job).

The synthetic trace is compute-heavy (1.25% sends, 1.25% receives, ring
routed, every 100th receive posted with a wildcard source) -- the shape
the paper's instrumented runs produce, where per-record interpretation
cost dominates the scalar kernels.

Results land in ``benchmarks/results/analysis_kernels.txt``.
"""

from __future__ import annotations

import json
import time
from collections import deque

import numpy as np

from benchmarks.conftest import RESULTS_DIR, write_artifact
from repro.analysis import HistoryIndex
from repro.analysis.critical_path import critical_path
from repro.analysis.races import detect_races
from repro.mp.datatypes import ANY_SOURCE, SourceLocation
from repro.trace import EventKind, TraceRecord

N_EVENTS = 200_000
NPROCS = 8
LOC = SourceLocation("synthetic.py", 1, "worker")

BASELINE = RESULTS_DIR / "analysis_kernels_baseline.json"
#: CI regression gate: fail when a measured speedup drops below
#: baseline/REGRESSION_FACTOR (i.e. a >2x regression).
REGRESSION_FACTOR = 2.0
#: absolute floors from the issue: the vectorized engine must clear
#: these regardless of what the baseline file says.
MIN_CLOCKS_MATCHING_SPEEDUP = 5.0
MIN_RACES_SPEEDUP = 10.0


def synthesize_records(n: int = N_EVENTS):
    """A deterministic compute-heavy stream: per 80-event stride one
    ring send and one (matching, FIFO) receive, the rest compute.
    Every 100th receive is posted with a wildcard source, so race
    detection has real work on both engines."""
    records = []
    seqs = [0] * NPROCS
    outstanding: deque[TraceRecord] = deque()
    recv_no = 0
    for i in range(n):
        t = i * 0.01
        proc = i % NPROCS
        slot = i % 80
        if slot == 0:
            dst = (proc + 1) % NPROCS
            rec = TraceRecord(index=i, proc=proc, kind=EventKind.SEND,
                              t0=t, t1=t + 0.005, marker=i + 1, location=LOC,
                              src=proc, dst=dst, tag=1, size=64,
                              seq=seqs[proc])
            seqs[proc] += 1
            outstanding.append(rec)
            records.append(rec)
        elif slot == 10 and outstanding:
            s = outstanding.popleft()
            recv_no += 1
            extra = {"posted_src": ANY_SOURCE} if recv_no % 100 == 0 else {}
            records.append(
                TraceRecord(index=i, proc=s.dst, kind=EventKind.RECV,
                            t0=t, t1=t + 0.005, marker=i + 1, location=LOC,
                            src=s.src, dst=s.dst, tag=1, size=64, seq=s.seq,
                            extra=extra)
            )
        else:
            records.append(
                TraceRecord(index=i, proc=proc, kind=EventKind.COMPUTE,
                            t0=t, t1=t + 0.008, marker=i + 1, location=LOC)
            )
    return records


def test_vectorized_kernels_speedup_and_regression_gate():
    records = synthesize_records()
    n = len(records)

    indexes = {}
    kernel_walls = {}
    cm_seconds = {}
    for engine in ("python", "numpy"):
        best = float("inf")
        for _rep in range(2):  # min-of-2: shields the gate from CI noise
            idx = HistoryIndex(nprocs=NPROCS, engine=engine)
            idx.extend_many(records)
            idx.message_pairs()  # forces (and times) the matching kernel
            _ = idx.clocks  # forces (and times) the clock kernel
            stats = idx.stats()
            best = min(best, stats.clock_seconds + stats.matching_seconds)
        cm_seconds[engine] = best
        indexes[engine] = idx
    py, vec = indexes["python"], indexes["numpy"]

    # -- equality first: speed means nothing on different answers ------
    np.testing.assert_array_equal(py.clocks, vec.clocks)
    assert [(p.send.index, p.recv.index) for p in py.message_pairs()] == [
        (p.send.index, p.recv.index) for p in vec.message_pairs()
    ]
    assert [r.index for r in py.unmatched_sends()] == [
        r.index for r in vec.unmatched_sends()
    ]

    t_lo, t_hi = py.span
    windows = [
        (t_lo + k * (t_hi - t_lo) / 64, t_lo + (k + 2) * (t_hi - t_lo) / 64)
        for k in range(32)
    ]
    window_walls = {}
    for engine, idx in indexes.items():
        start = time.perf_counter()
        win_out = [len(idx.window(lo, hi)) for lo, hi in windows]
        window_walls[engine] = time.perf_counter() - start
        kernel_walls.setdefault("window_counts", win_out)
        assert kernel_walls["window_counts"] == win_out  # engines agree

    race_results = {}
    for engine, idx in indexes.items():
        wall = float("inf")
        for _rep in range(2):  # min-of-2, as above: the 10x floor is gated
            start = time.perf_counter()
            races = detect_races(idx.trace, index=idx, engine=engine)
            wall = min(wall, time.perf_counter() - start)
        kernel_walls[f"races_{engine}"] = wall
        race_results[engine] = [
            (r.recv.index, r.matched_send.index, [a.index for a in r.alternatives])
            for r in races
        ]
    assert race_results["python"] == race_results["numpy"]
    assert len(race_results["numpy"]) > 0  # wildcards produced real races

    path_results = {}
    for engine, idx in indexes.items():
        start = time.perf_counter()
        cp = critical_path(idx.trace, index=idx, engine=engine)
        kernel_walls[f"path_{engine}"] = time.perf_counter() - start
        path_results[engine] = ([r.index for r in cp.records], cp.length)
    assert path_results["python"] == path_results["numpy"]

    # -- speedups ------------------------------------------------------
    py_cm, vec_cm = cm_seconds["python"], cm_seconds["numpy"]
    cm_speedup = py_cm / vec_cm if vec_cm > 0 else float("inf")
    races_speedup = (
        kernel_walls["races_python"] / kernel_walls["races_numpy"]
        if kernel_walls["races_numpy"] > 0
        else float("inf")
    )
    window_speedup = (
        window_walls["python"] / window_walls["numpy"]
        if window_walls["numpy"] > 0
        else float("inf")
    )
    path_speedup = (
        kernel_walls["path_python"] / kernel_walls["path_numpy"]
        if kernel_walls["path_numpy"] > 0
        else float("inf")
    )

    assert cm_speedup >= MIN_CLOCKS_MATCHING_SPEEDUP, (
        f"clocks+matching speedup {cm_speedup:.1f}x below the "
        f"{MIN_CLOCKS_MATCHING_SPEEDUP}x floor"
    )
    assert races_speedup >= MIN_RACES_SPEEDUP, (
        f"race-detection speedup {races_speedup:.1f}x below the "
        f"{MIN_RACES_SPEEDUP}x floor"
    )

    # -- regression gate against the recorded baseline -----------------
    gate_lines = ["baseline: (none; recorded this run)"]
    if BASELINE.exists():
        baseline = json.loads(BASELINE.read_text())
        gate_lines = []
        for key, measured in (
            ("clocks_matching_speedup", cm_speedup),
            ("races_speedup", races_speedup),
        ):
            floor = baseline[key] / REGRESSION_FACTOR
            gate_lines.append(
                f"baseline {key} {baseline[key]:.1f}x, gate floor {floor:.1f}x"
            )
            assert measured >= floor, (
                f"{key} regressed: {measured:.1f}x measured vs "
                f"{baseline[key]:.1f}x baseline (floor {floor:.1f}x)"
            )
    else:
        RESULTS_DIR.mkdir(exist_ok=True)
        BASELINE.write_text(
            json.dumps(
                {
                    "clocks_matching_speedup": round(cm_speedup, 1),
                    "races_speedup": round(races_speedup, 1),
                    "events": n,
                }
            )
            + "\n"
        )

    write_artifact(
        "analysis_kernels.txt",
        "\n".join(
            [
                "Vectorized analysis kernels vs scalar reference",
                f"trace: {n} events, {NPROCS} procs, "
                f"{len(py.message_pairs())} pairs, "
                f"{len(race_results['numpy'])} racing receives",
                "",
                f"  clocks+matching : python {py_cm * 1e3:8.1f} ms | "
                f"numpy {vec_cm * 1e3:8.1f} ms | {cm_speedup:6.1f}x "
                f"(floor {MIN_CLOCKS_MATCHING_SPEEDUP}x)",
                f"  race detection  : python "
                f"{kernel_walls['races_python'] * 1e3:8.1f} ms | numpy "
                f"{kernel_walls['races_numpy'] * 1e3:8.1f} ms | "
                f"{races_speedup:6.1f}x (floor {MIN_RACES_SPEEDUP}x)",
                f"  window (32 q)   : python "
                f"{window_walls['python'] * 1e3:8.1f} ms | numpy "
                f"{window_walls['numpy'] * 1e3:8.1f} ms | "
                f"{window_speedup:6.1f}x",
                f"  critical path   : python "
                f"{kernel_walls['path_python'] * 1e3:8.1f} ms | numpy "
                f"{kernel_walls['path_numpy'] * 1e3:8.1f} ms | "
                f"{path_speedup:6.1f}x",
                "  equality: clocks, pairs, unmatched, windows, races,",
                "            critical path identical across engines",
                *[f"  {line}" for line in gate_lines],
            ]
        ),
    )
