"""Figure 7: "Identification of the incorrect send destination with p2d2."

    "When the user requests a re-execution, the debugger restarts the
    computation, and as part of that, stores the execution markers in
    the UserMonitor threshold variables ...  When this occurs in our
    example, a few step operations would lead the user to the loop of
    MatrSend.  Stepping through the loop, the user will find that jres
    should be replaced by jres+1."

The benchmark drives the full localization: run the buggy program to the
deadlock, set a stopline before the first operand send, replay (all
eight processes stop consistently), then step process 0 through
matr_send until the send whose destination disagrees with the intended
worker -- and checks the replayed prefix is identical to the original.
"""

from __future__ import annotations

from repro import mp
from repro.apps import strassen as st
from repro.debugger import DebugSession

from .conftest import write_artifact


def localize_bug() -> dict:
    cfg = st.StrassenConfig(n=16, nprocs=8, buggy=True)
    session = DebugSession(st.strassen_program(cfg), 8)
    first = session.run()
    trace = session.trace()
    first_send = next(r for r in trace.by_proc(0) if r.is_send)
    stopline = session.set_stopline(first_send.index)
    replay_summary = session.replay()
    replay_markers = session.markers().as_dict()
    session.clear_thresholds()

    step_log = []
    bug = None
    for _ in range(12):
        session.step(0)
        sends = [r for r in session.trace().by_proc(0) if r.is_send]
        if len(sends) > len(step_log):
            rec = sends[-1]
            expected = 1  # jres = 0: both operands belong to worker 1
            wrong = rec.tag == st.TAG_OPERAND_B and rec.dst != expected
            step_log.append(
                f"send tag={rec.tag} dest=p{rec.dst} at {rec.location}"
                + ("   <-- jres should be jres+1" if wrong else "")
            )
            if wrong:
                bug = rec
                break
    out = {
        "first_outcome": first.outcome,
        "replay_outcome": replay_summary.outcome,
        "stopline": stopline,
        "replay_markers": replay_markers,
        "step_log": step_log,
        "bug": bug,
        "session": session,
    }
    return out


def test_fig7_replay_localize(benchmark):
    out = benchmark.pedantic(localize_bug, rounds=3, iterations=1)
    session = out["session"]

    lines = [
        f"initial run: {out['first_outcome'].value}",
        out["stopline"].describe(),
        f"replay: {out['replay_outcome'].value} at {out['replay_markers']}",
        "stepping process 0 through matr_send:",
    ] + ["  " + s for s in out["step_log"]]
    write_artifact("fig7_replay_localize.txt", "\n".join(lines))

    # --- the scenario's shape -------------------------------------------------
    assert out["first_outcome"] is mp.RunOutcome.DEADLOCK
    assert out["replay_outcome"] is mp.RunOutcome.STOPPED
    # The replay parked process 0 exactly at the stopline threshold.
    assert out["replay_markers"][0] == out["stopline"].thresholds[0]
    # A few steps located the send with the wrong destination.
    bug = out["bug"]
    assert bug is not None
    assert bug.tag == st.TAG_OPERAND_B and bug.dst == 0
    assert "strassen.py" in bug.location.filename
    assert len(out["step_log"]) <= 4  # "a few step operations"
    session.shutdown()
