"""Shared fixtures and artifact helpers for the per-figure benchmarks.

Every benchmark regenerates one table or figure of the paper: it runs
the workload, produces the same rows/series the paper reports, asserts
the *shape* (who wins, what pattern holds -- absolute numbers differ by
construction: the substrate is a simulator, not an SGI cluster), and
writes the artifact under ``benchmarks/results/`` for inspection.

Runtimes built here (``traced_run`` and the fixtures) deliberately do
not pin an execution backend, so the whole benchmark suite runs on the
same knob the test suite uses::

    REPRO_BACKEND=simtime pytest benchmarks/

(:data:`repro.mp.BACKEND_ENV_VAR`; default ``threaded``).  The
backend-comparison benchmark pins its backends explicitly, since the
comparison *is* the point there.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro import mp
from repro.apps import strassen as st
from repro.instrument import Uinst, WrapperLibrary, lifecycle_wrapper
from repro.trace import TraceRecorder

RESULTS_DIR = Path(__file__).resolve().parent / "results"


def write_artifact(name: str, content: str) -> Path:
    """Persist a reproduction artifact; also echo it for ``-s`` runs."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / name
    path.write_text(content if content.endswith("\n") else content + "\n")
    print(f"\n--- {name} ---\n{content}")
    return path


def traced_run(program, nprocs, *, functions=(), raise_errors=True, **rt_kw):
    """One instrumented run; returns (runtime, trace)."""
    rt = mp.Runtime(nprocs, **rt_kw)
    recorder = TraceRecorder(nprocs)
    WrapperLibrary(rt, recorder)
    wrappers = [lifecycle_wrapper(recorder)]
    if functions:
        uinst = Uinst(rt, recorder)
        for fn in functions:
            uinst.register_function(fn)
        wrappers.insert(0, uinst.target_wrapper())
    rt.run(program, raise_errors=raise_errors, target_wrappers=wrappers)
    rt.shutdown()
    return rt, recorder.snapshot()


@pytest.fixture(scope="session")
def strassen8_trace():
    """The Figure 3 run: correct Strassen on 8 processes."""
    cfg = st.StrassenConfig(n=16, nprocs=8)
    _, trace = traced_run(st.strassen_program(cfg), 8)
    return trace


@pytest.fixture(scope="session")
def buggy_strassen_state():
    """The Figure 5 run: buggy Strassen, returns (trace, waiting list)."""
    cfg = st.StrassenConfig(n=16, nprocs=8, buggy=True)
    rt = mp.Runtime(8)
    recorder = TraceRecorder(8)
    WrapperLibrary(rt, recorder)
    report = rt.run(st.strassen_program(cfg), raise_errors=False)
    trace = recorder.snapshot()
    waiting = list(report.waiting)
    rt.shutdown()
    return trace, waiting
