"""Sharded, compressed, out-of-core trace store at 10M events.

The big-trace tentpole, each claim asserted and measured on a 10M-event
synthetic halo-exchange trace (64 procs, 8 hash shards, zlib-compressed
blocks):

(a) **bounded memory**: answering windowed queries through the paged
    :class:`OutOfCoreIndex` grows RSS by less than 10% of what a full
    column materialization of the same store costs -- the whole point
    of paging is that a 100M-event trace never has to fit in memory.

(b) **seek latency**: with a locality-weighted query mix (debugging
    sessions revisit the same time neighbourhood), the p50
    ``seek_window`` latency on the paged store is sub-millisecond --
    cache-resident blocks answer without touching the codec.

(c) **on-disk reduction**: block compression shrinks the stored block
    bytes by at least 2x versus the raw columnar encoding (measured
    from the shard footers' ``raw_nbytes`` accounting).

A recorded baseline (``benchmarks/results/tracefile_sharded_baseline
.json``) gates regressions: the run fails when p50 seek latency rises
above ``baseline * 2`` or the compression ratio falls below
``baseline / 2``.  Results land in
``benchmarks/results/tracefile_sharded.txt``.
"""

from __future__ import annotations

import gc
import json
import resource
import statistics
import time

import numpy as np
import pytest

from benchmarks.conftest import RESULTS_DIR, write_artifact
from repro.analysis.paged import OutOfCoreIndex
from repro.mp.datatypes import SourceLocation
from repro.trace import EventKind, TraceFileReader, TraceShardWriter
from repro.trace.columnar import (
    COLUMN_SPEC,
    DEFAULT_KIND_TABLE,
    KIND_CODES,
    ColumnBlock,
)

N_EVENTS = 10_000_000
NPROCS = 64
SHARDS = 8
#: records per on-disk block, per shard: small blocks keep the paged
#: seek path sub-ms (mask + materialize cost scales with block size)
INDEX_BLOCK = 8_192
#: LRU capacity for the paged phase: bounds resident decoded columns
#: to ~20 MB against the ~1 GB full materialization
CACHE_BLOCKS = 24
#: synthesis chunk handed to ``write_columns`` (split across shards)
CHUNK = 500_000
#: inter-event spacing: 10M events over a ~100 s simulated run
DT = 1e-5

LOCS = [
    SourceLocation("halo2d.py", 40 + i, name)
    for i, name in enumerate(["exchange", "pack", "unpack", "sweep"])
]

BASELINE = RESULTS_DIR / "tracefile_sharded_baseline.json"
#: CI regression gate: fail on a >2x regression vs the recorded baseline
REGRESSION_FACTOR = 2.0
#: the tentpole's absolute floors
MAX_PAGED_RSS_FRACTION = 0.10
MAX_P50_SEEK_MS = 1.0
MIN_COMPRESSION = 2.0

SEND = KIND_CODES[EventKind.SEND]
RECV = KIND_CODES[EventKind.RECV]
COMPUTE = KIND_CODES[EventKind.COMPUTE]


def _maxrss_mb() -> float:
    """Peak RSS of this process in MB (ru_maxrss is KB on Linux)."""
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0


def synthesize_chunk(start: int, n: int) -> ColumnBlock:
    """``n`` events of a 2-D halo exchange, columns built straight in
    numpy -- no per-record objects anywhere on the write path."""
    idx = np.arange(start, start + n, dtype=np.int64)
    proc = (idx % NPROCS).astype(np.int32)
    rnd = idx // NPROCS
    phase = (rnd % 3).astype(np.int32)
    t0 = idx.astype(np.float64) * DT
    kind = np.where(
        phase == 0, SEND, np.where(phase == 1, RECV, COMPUTE)
    ).astype(np.uint8)
    msg = phase != 2
    east = ((proc + 1) % NPROCS).astype(np.int32)
    west = ((proc - 1) % NPROCS).astype(np.int32)
    none32 = np.full(n, -1, dtype=np.int32)
    none64 = np.full(n, -1, dtype=np.int64)
    cols = {
        "index": idx,
        "proc": proc,
        "kind": kind,
        "t0": t0,
        "t1": t0 + DT * 0.8,
        "marker": idx + 1,
        "src": np.where(phase == 0, proc, np.where(phase == 1, west, none32)),
        "dst": np.where(phase == 0, east, np.where(phase == 1, proc, none32)),
        "tag": np.where(msg, np.int32(7), none32),
        "size": np.where(msg, np.int64(8192), np.int64(0)),
        "seq": np.where(msg, rnd, none64),
        "peer_marker": none64,
        "peer_time": np.full(n, -1.0),
        "construct_id": none32,
        "loc": (proc % len(LOCS)).astype(np.int32),
        "ploc": none32,
        "extra": none32,
    }
    columns = {
        name: np.ascontiguousarray(cols[name], dtype=dt)
        for name, dt in COLUMN_SPEC
    }
    return ColumnBlock(
        columns=columns, locations=LOCS, peer_locations=[], extras=[],
        kind_table=DEFAULT_KIND_TABLE,
    )


@pytest.fixture(scope="module")
def sharded_store(tmp_path_factory):
    tmp = tmp_path_factory.mktemp("tracefile_sharded")
    path = tmp / "halo2d.trace"
    t0 = time.perf_counter()
    with TraceShardWriter(
        path, nprocs=NPROCS, by="hash", shards=SHARDS,
        index_block=INDEX_BLOCK, compression="auto",
    ) as w:
        for start in range(0, N_EVENTS, CHUNK):
            w.write_columns(synthesize_chunk(start, min(CHUNK, N_EVENTS - start)))
    write_wall = time.perf_counter() - t0
    return path, write_wall


def test_sharded_store_scales_to_10m_events(sharded_store):
    path, write_wall = sharded_store
    reader = TraceFileReader(path)
    assert reader.sharded

    # -- (c) on-disk reduction, from the shard footers' accounting -----
    refs = reader.block_entries()
    assert sum(ref.entry.count for ref in refs) == N_EVENTS
    comp_bytes = sum(ref.entry.nbytes for ref in refs)
    raw_bytes = sum(ref.entry.raw_nbytes or ref.entry.nbytes for ref in refs)
    compression = raw_bytes / comp_bytes
    assert compression >= MIN_COMPRESSION, (
        f"blocks compressed only {compression:.2f}x "
        f"(tentpole floor {MIN_COMPRESSION}x)"
    )

    # -- (a)+(b) paged phase FIRST: ru_maxrss is a monotonic high-water
    # mark, so the bounded-memory phase must run before the full load.
    gc.collect()
    rss_base = _maxrss_mb()
    paged = OutOfCoreIndex(TraceFileReader(path), cache_blocks=CACHE_BLOCKS)
    span_lo, span_hi = paged.span
    width = 200 * DT  # ~200 events per window

    # locality-weighted query mix: a debugging session dwells on one
    # neighbourhood (85% of seeks, narrow enough that its blocks stay
    # cache-resident) with occasional far jumps (15%)
    rng = np.random.default_rng(7)
    hot_lo = span_lo + (span_hi - span_lo) * 0.40
    hot_hi = hot_lo + (span_hi - span_lo) * 0.003
    latencies_ms = []
    total_hits = 0
    for i in range(200):
        if rng.random() < 0.85:
            lo = float(rng.uniform(hot_lo, hot_hi))
        else:
            lo = float(rng.uniform(span_lo, span_hi - width))
        start = time.perf_counter()
        hits = paged.seek_window(lo, lo + width)
        latencies_ms.append((time.perf_counter() - start) * 1e3)
        total_hits += len(hits)
    assert total_hits > 0
    stats = paged.stats()
    assert paged.cached_blocks <= CACHE_BLOCKS
    p50 = statistics.median(latencies_ms)
    p95 = sorted(latencies_ms)[int(0.95 * len(latencies_ms))]
    assert p50 <= MAX_P50_SEEK_MS, (
        f"p50 seek_window {p50:.3f} ms (tentpole ceiling "
        f"{MAX_P50_SEEK_MS} ms)"
    )
    gc.collect()
    paged_rss = max(_maxrss_mb() - rss_base, 0.0)
    del paged

    # -- full materialization: every column of all 10M events ----------
    gc.collect()
    rss_full_base = _maxrss_mb()
    t0 = time.perf_counter()
    block = TraceFileReader(path).read_columns()
    full_wall = time.perf_counter() - t0
    assert len(block) == N_EVENTS
    full_rss = _maxrss_mb() - rss_full_base
    resident_mb = sum(c.nbytes for c in block.columns.values()) / 1e6
    del block
    gc.collect()

    assert full_rss > 0, "full load did not move the RSS high-water mark"
    rss_fraction = paged_rss / full_rss
    assert rss_fraction < MAX_PAGED_RSS_FRACTION, (
        f"paged queries grew RSS by {paged_rss:.0f} MB = "
        f"{rss_fraction:.1%} of the {full_rss:.0f} MB full load "
        f"(tentpole ceiling {MAX_PAGED_RSS_FRACTION:.0%})"
    )

    # -- regression gate against the recorded baseline -----------------
    gate_line = "baseline: (none; recorded this run)"
    if BASELINE.exists():
        baseline = json.loads(BASELINE.read_text())
        p50_ceiling = baseline["p50_seek_ms"] * REGRESSION_FACTOR
        comp_floor = baseline["compression"] / REGRESSION_FACTOR
        gate_line = (
            f"baseline p50 {baseline['p50_seek_ms']:.3f} ms "
            f"(ceiling {p50_ceiling:.3f}), compression "
            f"{baseline['compression']:.1f}x (floor {comp_floor:.1f}x)"
        )
        assert p50 <= p50_ceiling, (
            f"paged seek p50 regressed: {p50:.3f} ms vs "
            f"{baseline['p50_seek_ms']:.3f} ms baseline"
        )
        assert compression >= comp_floor, (
            f"compression regressed: {compression:.2f}x vs "
            f"{baseline['compression']:.2f}x baseline"
        )
    else:
        RESULTS_DIR.mkdir(exist_ok=True)
        BASELINE.write_text(
            json.dumps({
                "p50_seek_ms": round(p50, 4),
                "compression": round(compression, 2),
                "events": N_EVENTS,
            }) + "\n"
        )

    disk_mb = sum(
        p.stat().st_size for p in path.parent.iterdir()
    ) / 1e6
    write_artifact(
        "tracefile_sharded.txt",
        "\n".join([
            "Sharded + compressed trace store, out-of-core queries",
            f"trace: {N_EVENTS / 1e6:.0f}M events, {NPROCS} procs, "
            f"{SHARDS} hash shards, zlib blocks of {INDEX_BLOCK} records",
            "",
            f"  write             : {write_wall:7.2f} s  "
            f"({N_EVENTS / write_wall / 1e6:.2f}M rec/s, bulk columns)",
            f"  on-disk           : {disk_mb:7.1f} MB total "
            f"({raw_bytes / 1e6:.0f} MB raw blocks, "
            f"{compression:.1f}x compression, floor {MIN_COMPRESSION}x)",
            f"  full column load  : {full_wall:7.2f} s, "
            f"+{full_rss:.0f} MB RSS ({resident_mb:.0f} MB columns)",
            f"  paged queries     : 200 seeks, p50 {p50:.3f} ms, "
            f"p95 {p95:.1f} ms (ceiling p50 {MAX_P50_SEEK_MS} ms)",
            f"  paged RSS growth  : +{paged_rss:.0f} MB = "
            f"{rss_fraction:.1%} of full load "
            f"(ceiling {MAX_PAGED_RSS_FRACTION:.0%})",
            f"  paged cache       : {stats.block_loads} block loads, "
            f"{stats.cache_hits} hits ({stats.hit_rate:.0%}), "
            f"{stats.evictions} evictions, "
            f"<={CACHE_BLOCKS} blocks resident",
            f"  {gate_line}",
        ]),
    )


def test_sharded_windows_match_linear_scan(sharded_store):
    """Fidelity spot-check: an indexed fan-out window equals a linear
    filter over the merged stream in a mid-trace slice."""
    path, _ = sharded_store
    reader = TraceFileReader(path)
    lo, hi = 33.0, 33.001
    got = reader.seek_window(lo, hi)
    assert got == sorted(got, key=lambda r: r.index)
    assert all(r.t1 >= lo and r.t0 <= hi for r in got)
    # the same slice through the paged index agrees
    paged = OutOfCoreIndex(TraceFileReader(path), cache_blocks=4)
    assert paged.seek_window(lo, hi) == got
