"""The parallel shard pipeline at 10M events: process-parallel index
builds and readahead for paged queries.

Two claims, each measured on the same 10M-event synthetic halo-exchange
store (64 procs, 8 hash shards, compressed blocks):

(a) **parallel index build**: ``HistoryIndex.from_file(parallel=8)``
    fans shard decode across a process pool and defers record-object
    materialization, building a query-ready index at least 3x faster
    than the serial eager build of the same file.  The deferred
    materialization cost is measured and reported separately -- the
    speedup claim is for a *query-ready* index (columns resident,
    kernels runnable), not an accounting trick left unstated.

(b) **readahead**: on a sequential window sweep (a debugger panning
    forward in time), background prefetch lifts the paged cache hit
    rate measurably above the identical sweep with readahead disabled.

A recorded baseline (``benchmarks/results/parallel_pipeline_baseline
.json``) gates regressions at ``REGRESSION_FACTOR``: the run fails when
the build speedup falls below ``baseline / 2`` or the readahead hit
rate below ``baseline / 2``.  Results land in
``benchmarks/results/parallel_pipeline.txt``.
"""

from __future__ import annotations

import json
import time

import numpy as np
import pytest

from benchmarks.conftest import RESULTS_DIR, write_artifact
from benchmarks.test_tracefile_sharded import (
    DT,
    INDEX_BLOCK,
    N_EVENTS,
    NPROCS,
    SHARDS,
    synthesize_chunk,
)
from repro.analysis.history import HistoryIndex
from repro.analysis.paged import OutOfCoreIndex, prefetch_enabled
from repro.trace import TraceFileReader, TraceShardWriter

CHUNK = 500_000
#: worker processes for the parallel build (the acceptance criterion's
#: shape: 8 shards, 8 workers -- oversubscribed on small CI boxes, where
#: the deferred-materialization win still carries the speedup)
BUILD_WORKERS = 8
#: events per shard block group: one t-ordered "page" of the sweep
BLOCK_SPAN = INDEX_BLOCK * SHARDS * DT
SWEEP_STEPS = 60
PREFETCH_DEPTH = 8
CACHE_BLOCKS = 48

BASELINE = RESULTS_DIR / "parallel_pipeline_baseline.json"
REGRESSION_FACTOR = 2.0
#: absolute floors (the tentpole's acceptance criteria)
MIN_BUILD_SPEEDUP = 3.0
MIN_HIT_RATE_GAIN = 0.05


@pytest.fixture(scope="module")
def sharded_store(tmp_path_factory):
    tmp = tmp_path_factory.mktemp("parallel_pipeline")
    path = tmp / "halo2d.trace"
    with TraceShardWriter(
        path, nprocs=NPROCS, by="hash", shards=SHARDS,
        index_block=INDEX_BLOCK, compression="auto",
    ) as w:
        for start in range(0, N_EVENTS, CHUNK):
            w.write_columns(
                synthesize_chunk(start, min(CHUNK, N_EVENTS - start))
            )
    return path


def test_parallel_index_build_speedup(sharded_store):
    path = sharded_store

    t0 = time.perf_counter()
    serial = HistoryIndex.from_file(TraceFileReader(path))
    serial_wall = time.perf_counter() - t0
    assert len(serial) == N_EVENTS
    serial_sum = int(serial.column("index").sum())
    del serial

    t0 = time.perf_counter()
    par = HistoryIndex.from_file(
        TraceFileReader(path), parallel=BUILD_WORKERS
    )
    parallel_wall = time.perf_counter() - t0
    assert len(par) == N_EVENTS
    stats = par.stats()
    assert stats.parallel_shards == SHARDS
    assert stats.parallel_workers == BUILD_WORKERS

    # the parallel index answers column queries identically, right now
    assert int(par.column("index").sum()) == serial_sum

    # deferred record materialization: bought lazily on first
    # record-level access, measured separately for honest accounting
    # (must run before window(), which is a record-level access)
    t0 = time.perf_counter()
    nrecords = len(par.records)
    materialize_wall = time.perf_counter() - t0
    assert nrecords == N_EVENTS
    assert len(par.window(40.0, 40.0 + 50 * DT)) > 0

    speedup = serial_wall / parallel_wall
    assert speedup >= MIN_BUILD_SPEEDUP, (
        f"parallel build only {speedup:.2f}x over serial "
        f"({parallel_wall:.2f}s vs {serial_wall:.2f}s; "
        f"floor {MIN_BUILD_SPEEDUP}x)"
    )

    gate_line = "baseline: (none; recorded this run)"
    hit_rate_floor = None
    if BASELINE.exists():
        baseline = json.loads(BASELINE.read_text())
        speedup_floor = baseline["build_speedup"] / REGRESSION_FACTOR
        gate_line = (
            f"baseline speedup {baseline['build_speedup']:.2f}x "
            f"(floor {speedup_floor:.2f}x)"
        )
        assert speedup >= speedup_floor, (
            f"parallel build regressed: {speedup:.2f}x vs "
            f"{baseline['build_speedup']:.2f}x baseline"
        )
        hit_rate_floor = baseline.get("prefetch_hit_rate")

    test_parallel_index_build_speedup.result = {
        "serial_wall": serial_wall,
        "parallel_wall": parallel_wall,
        "materialize_wall": materialize_wall,
        "speedup": speedup,
        "gate_line": gate_line,
        "hit_rate_floor": hit_rate_floor,
    }


def _sweep(paged) -> None:
    """Sequential forward pan: each window advances one block span."""
    for k in range(SWEEP_STEPS):
        lo = k * BLOCK_SPAN
        paged.seek_window(lo, lo + 1.5 * BLOCK_SPAN)
        paged.wait_prefetch(30.0)


@pytest.mark.skipif(
    not prefetch_enabled(), reason="REPRO_NO_PREFETCH is set"
)
def test_readahead_lifts_hit_rate(sharded_store):
    path = sharded_store
    with_pf = OutOfCoreIndex(
        TraceFileReader(path), cache_blocks=CACHE_BLOCKS,
        prefetch_blocks=PREFETCH_DEPTH,
    )
    without = OutOfCoreIndex(
        TraceFileReader(path), cache_blocks=CACHE_BLOCKS, prefetch_blocks=0,
    )
    t0 = time.perf_counter()
    _sweep(with_pf)
    sweep_pf_wall = time.perf_counter() - t0
    t0 = time.perf_counter()
    _sweep(without)
    sweep_plain_wall = time.perf_counter() - t0
    stats_pf = with_pf.stats()
    stats_plain = without.stats()
    with_pf.close()
    without.close()

    assert stats_pf.prefetch_hits > 0
    gain = stats_pf.hit_rate - stats_plain.hit_rate
    assert gain >= MIN_HIT_RATE_GAIN, (
        f"readahead hit rate {stats_pf.hit_rate:.1%} vs "
        f"{stats_plain.hit_rate:.1%} without (gain {gain:.1%}, "
        f"floor {MIN_HIT_RATE_GAIN:.0%})"
    )

    build = getattr(test_parallel_index_build_speedup, "result", None)
    if build and build["hit_rate_floor"] is not None:
        floor = build["hit_rate_floor"] / REGRESSION_FACTOR
        assert stats_pf.hit_rate >= floor, (
            f"readahead hit rate regressed: {stats_pf.hit_rate:.1%} vs "
            f"{build['hit_rate_floor']:.1%} baseline"
        )

    if build and not BASELINE.exists():
        RESULTS_DIR.mkdir(exist_ok=True)
        BASELINE.write_text(
            json.dumps({
                "build_speedup": round(build["speedup"], 2),
                "prefetch_hit_rate": round(stats_pf.hit_rate, 3),
                "events": N_EVENTS,
            }) + "\n"
        )

    lines = [
        "Parallel shard pipeline: process-parallel builds + readahead",
        f"trace: {N_EVENTS / 1e6:.0f}M events, {NPROCS} procs, "
        f"{SHARDS} hash shards, blocks of {INDEX_BLOCK} records",
        "",
    ]
    if build:
        lines += [
            f"  serial eager build  : {build['serial_wall']:7.2f} s "
            "(decode + record materialization)",
            f"  parallel build      : {build['parallel_wall']:7.2f} s "
            f"({SHARDS} shard tasks, {BUILD_WORKERS} workers, "
            "records deferred)",
            f"  build speedup       : {build['speedup']:7.2f}x "
            f"(floor {MIN_BUILD_SPEEDUP}x)",
            f"  deferred records    : {build['materialize_wall']:7.2f} s "
            "when first demanded (measured separately)",
            f"  {build['gate_line']}",
            "",
        ]
    lines += [
        f"  sweep               : {SWEEP_STEPS} windows advancing "
        f"{BLOCK_SPAN:.3f} s/step",
        f"  with readahead      : hit rate {stats_pf.hit_rate:.1%} "
        f"({stats_pf.prefetch_hits} of {stats_pf.cache_hits} hits "
        f"served by readahead, {stats_pf.prefetch_loads} speculative "
        f"loads), {sweep_pf_wall:.2f} s",
        f"  without readahead   : hit rate {stats_plain.hit_rate:.1%} "
        f"({stats_plain.block_loads} demand loads), "
        f"{sweep_plain_wall:.2f} s",
        f"  hit-rate gain       : +{gain:.1%} (floor "
        f"{MIN_HIT_RATE_GAIN:.0%})",
    ]
    write_artifact("parallel_pipeline.txt", "\n".join(lines))
