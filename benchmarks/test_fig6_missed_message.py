"""Figure 6: "Missed message from process 0 to process 7.  The correct
message sequence is shown in Figure 3.  The vertical stopline (on the
left side) gives a consistent set of breakpoints for replay."

The paper's diagnosis path: magnify the message bundle; notice that
"processes 1-6 each have a small vertical tick before a longer
computation bar" while "process 7 is missing that tick"; count receives
(1-6 get two, 7 gets one); then set a stopline "somewhere before the
first send in the group".

The benchmark regenerates each element: the per-process receive counts,
the tick asymmetry (worker 7 lacks the post-first-receive compute), the
missed-message identification, the zoomed view, and the consistent
stopline before the first send.
"""

from __future__ import annotations

from repro.analysis import analyze_matching
from repro.apps import strassen as st
from repro.debugger import compute_stopline, verify_stopline_consistency
from repro.viz import Viewport, build_diagram, render_ascii

from .conftest import write_artifact


def test_fig6_missed_message(benchmark, buggy_strassen_state):
    trace, waiting = buggy_strassen_state

    report = benchmark(lambda: analyze_matching(trace, blocked=waiting))

    # --- receive counts: the paper's key observation ------------------------
    counts = trace.recv_counts()
    count_lines = [
        f"  p{r}: {counts[r]} receive(s)" + ("   <-- anomaly" if r == 7 else "")
        for r in range(8)
    ]
    assert all(counts[w] == 2 for w in range(1, 7))
    assert counts[7] == 1
    assert counts[0] == 6  # six results arrived; the seventh never will

    # --- the tick: a short compute right after the first receive -----------
    def has_tick(rank: int) -> bool:
        rows = [r for r in trace.by_proc(rank) if r.is_recv or r.kind.value == "compute"]
        for prev, nxt in zip(rows, rows[1:]):
            if prev.is_recv and nxt.kind.value == "compute" and nxt.duration < 1.0:
                return True
        return False

    ticks = {r: has_tick(r) for r in range(1, 8)}
    assert all(ticks[w] for w in range(1, 7)), "workers 1-6 show the tick"
    assert not ticks[7], "process 7 is missing that tick"

    # --- the missed message --------------------------------------------------
    assert len(report.unmatched_sends) == 1
    assert len(report.missed) == 1
    missed = report.missed[0]
    assert missed.send.src == 0
    assert missed.starving.rank == 7  # "from process 0 to process 7"
    assert missed.send.tag == st.TAG_OPERAND_B

    # --- stopline before the first send in the group ------------------------
    first_send = next(r for r in trace.by_proc(0) if r.is_send)
    stopline = compute_stopline(trace, first_send.index)
    assert verify_stopline_consistency(trace, stopline), (
        "the stopline gives a consistent set of breakpoints"
    )
    assert stopline.thresholds[0] == first_send.marker

    # --- the magnified view ---------------------------------------------------
    diagram = build_diagram(trace)
    diagram.set_stopline(stopline.time)
    t_lo, _ = trace.span
    zoom = Viewport(t_lo, first_send.t1 + 30.0, columns=100)
    view = render_ascii(diagram, zoom, columns=100)

    artifact = "\n".join(
        ["Figure 6: per-process receive counts"]
        + count_lines
        + ["", report.as_text(), "", stopline.describe(), "", view]
    )
    write_artifact("fig6_missed_message.txt", artifact)
