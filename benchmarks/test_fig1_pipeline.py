"""Figure 1: "History visualization in p2d2" -- the architecture.

Figure 1 is the system diagram: the target program's instrumented
execution feeds trace data to p2d2, which drives the visualizers and,
from their selections, controls replay.  The benchmark exercises that
whole pipeline end to end -- run + trace + display + stopline + replay
-- and reports the per-stage event/artifact counts, verifying that each
stage consumes the previous one's output.
"""

from __future__ import annotations

from repro.apps import strassen as st
from repro.debugger import DebugSession
from repro.viz import build_diagram, render_ascii, render_svg

from .conftest import write_artifact


def pipeline_once() -> dict:
    """One full trip around Figure 1's loop; returns per-stage counts."""
    cfg = st.StrassenConfig(n=16, nprocs=8)
    session = DebugSession(st.strassen_program(cfg), 8)
    session.run()

    trace = session.trace()  # instrumented execution -> trace data
    diagram = build_diagram(trace)  # trace data -> visualizer
    ascii_view = render_ascii(diagram, columns=80)
    svg_view = render_svg(diagram)

    # visualizer selection -> stopline -> controlled replay
    anchor = next(r for r in trace.by_proc(0) if r.is_recv)
    stopline = session.set_stopline(anchor.index)
    diagram.set_stopline(stopline.time)
    summary = session.replay()

    stats = {
        "trace_records": len(trace),
        "message_pairs": len(trace.message_pairs()),
        "diagram_bars": len(diagram.bars),
        "diagram_messages": len(diagram.messages),
        "ascii_lines": len(ascii_view.splitlines()),
        "svg_bytes": len(svg_view),
        "stopline_thresholds": len(stopline.thresholds),
        "replay_outcome": summary.outcome.value,
    }
    session.shutdown()
    return stats


def test_fig1_pipeline(benchmark):
    stats = benchmark(pipeline_once)

    lines = ["Figure 1 pipeline: instrumented run -> trace -> display -> stopline -> replay"]
    for key, val in stats.items():
        lines.append(f"  {key:22s} {val}")
    write_artifact("fig1_pipeline.txt", "\n".join(lines))

    # Every stage produced output consumed by the next.
    assert stats["trace_records"] > 0
    assert stats["message_pairs"] == 21
    assert stats["diagram_messages"] == stats["message_pairs"]
    assert stats["diagram_bars"] > 0
    assert stats["ascii_lines"] >= 8 + 2  # one row per proc + frame
    assert stats["svg_bytes"] > 1000
    assert stats["stopline_thresholds"] >= 1
    assert stats["replay_outcome"] == "stopped"
