"""Figure 3: "History displayed with VK" -- the animated window view.

    "A trace of Strassen's matrix multiplication running on 8 processes.
    Process 0 (at the bottom) distributes pairs of submatrices among the
    other processes (each send is shown as a separate message).  Then
    process 0 receives 7 partial results and combines them into the
    final result."

The benchmark regenerates the VK view as a sequence of animation frames
and asserts the figure's story: 14 distribution sends (two per worker)
precede 7 result receives on process 0.
"""

from __future__ import annotations

from repro.viz import AnimatedView, build_diagram

from .conftest import write_artifact


def test_fig3_vk_view(benchmark, strassen8_trace):
    trace = strassen8_trace
    diagram = build_diagram(trace)

    def animate() -> list[str]:
        view = AnimatedView(diagram, columns=80)
        return view.frames(step_fraction=0.5)

    frames = benchmark(animate)

    artifact = "\n\n".join(
        f"--- frame {i} ---\n{frame}" for i, frame in enumerate(frames)
    )
    write_artifact("fig3_vk_frames.txt", artifact)

    # --- the figure's story -----------------------------------------------
    p0_events = [r for r in trace.by_proc(0) if r.is_message]
    sends = [r for r in p0_events if r.is_send]
    recvs = [r for r in p0_events if r.is_recv]
    # "distributes pairs of submatrices" -- each send a separate message.
    assert len(sends) == 14
    # "Then process 0 receives 7 partial results."
    assert len(recvs) == 7
    # Distribution strictly precedes collection.
    assert max(s.t1 for s in sends) <= min(r.t1 for r in recvs)
    # Every worker receives exactly two operand messages.
    counts = trace.recv_counts()
    assert all(counts[w] == 2 for w in range(1, 8))

    # --- VK mechanics -------------------------------------------------------
    assert len(frames) >= 3  # a genuine animation, not one still
    view = AnimatedView(diagram, columns=80)
    first = view.frame()
    view.forward()
    assert view.frame() != first  # scrolling changes the window
    view.backward()
    assert view.frame() == first  # and is reversible
    view.rescale(2.0)  # "change the time scale"
    assert view.window > 0
