"""Figure 8: "Past and future frontiers of a time point in a specific
processor ... The concurrency region is shown between the slanted black
lines."

The workload is the NAS-LU-like pipelined SSOR solver (the paper used a
NAS Parallel Benchmark LU trace).  The benchmark selects an event on a
middle rank (the user's circled click), computes the past/future
frontiers and the concurrency region between them, regenerates the
timeline with the slanted frontier overlays, and asserts the geometry:
frontiers are consistent cuts, the region lies between them, and it
*widens with pipeline distance* from the selected processor -- the
slant of Figure 8's black lines.
"""

from __future__ import annotations

from repro.analysis import (
    analyze_frontiers,
    compute_causal_order,
    is_consistent_frontier,
)
from repro.apps import LUConfig, lu_program
from repro.viz import build_diagram, render_ascii, render_svg

from .conftest import RESULTS_DIR, write_artifact
from .conftest import traced_run

NPROCS = 8
CENTER = 4


def test_fig8_frontiers(benchmark):
    # residual_every=0: pure pipeline, no mid-run global reductions
    # (those would synchronize everything and flatten the region).
    cfg = LUConfig(grid=16, nprocs=NPROCS, sweeps=3, residual_every=0)
    _, trace = traced_run(lu_program(cfg), NPROCS)
    order = compute_causal_order(trace)
    target = [r for r in trace.by_proc(CENTER) if r.is_recv][2]

    analysis = benchmark(lambda: analyze_frontiers(trace, target.index, order))

    # --- artifact -------------------------------------------------------------
    rows = [f"selected event: {target}"]
    for p in range(NPROCS):
        past = analysis.past_frontier.event(p)
        fut = analysis.future_frontier.event(p)
        rows.append(
            f"  p{p}: past={'t%.2f' % past.t1 if past else '--':>9} "
            f"future={'t%.2f' % fut.t0 if fut else '--':>9}"
        )
    conc = analysis.concurrency_events()
    rows.append(f"concurrency region: {len(conc)} events")
    diagram = build_diagram(trace)
    diagram.set_frontiers(
        analysis.past_frontier.times(), analysis.future_frontier.times()
    )
    rows.append("")
    rows.append(render_ascii(diagram, columns=100))
    write_artifact("fig8_frontiers.txt", "\n".join(rows))
    (RESULTS_DIR / "fig8_frontiers.svg").write_text(render_svg(diagram))

    # --- frontier correctness ---------------------------------------------------
    assert is_consistent_frontier(
        trace, analysis.past_frontier.indexes(), order, inclusive=True
    )
    assert is_consistent_frontier(
        trace, analysis.future_frontier.indexes(), order, inclusive=False
    )
    for p in range(NPROCS):
        past = analysis.past_frontier.event(p)
        fut = analysis.future_frontier.event(p)
        if past is not None:
            assert order.happens_before(past.index, target.index)
        if fut is not None:
            assert order.happens_before(target.index, fut.index)

    # Concurrency region lies strictly between the frontiers.
    past_set = set(order.past(target.index))
    future_set = set(order.future(target.index))
    for rec in conc:
        assert rec.index not in past_set and rec.index not in future_set

    # --- the slant: the region widens with pipeline distance --------------------
    # Width in virtual time between frontier *completions* (a blocked
    # receive's start time predates its causal trigger, so t1 is the
    # causally meaningful coordinate), and in event counts.
    def region_width(p: int) -> float:
        past = analysis.past_frontier.event(p)
        fut = analysis.future_frontier.event(p)
        lo = past.t1 if past else trace.span[0]
        hi = fut.t1 if fut else trace.span[1]
        return hi - lo

    def region_events(p: int) -> int:
        return sum(1 for r in conc if r.proc == p)

    # The selected processor's own events are totally ordered with the
    # selection: nothing of its own is concurrent.
    assert region_events(CENTER) == 0
    # Distant stages have genuinely concurrent work (the wavefront).
    assert region_events(NPROCS - 1) > 0 and region_events(0) > 0
    assert region_width(NPROCS - 1) >= region_width(CENTER + 1)

    # The slanted black lines: moving away from the selected processor,
    # the last-affecting (past-frontier) time falls and the
    # first-affected (future-frontier) time rises, on both sides.
    past_t = {p: e.t1 for p, e in analysis.past_frontier.events.items() if e}
    fut_t = {p: e.t1 for p, e in analysis.future_frontier.events.items() if e}
    below = [p for p in range(CENTER, NPROCS) if p in past_t]
    for a, b in zip(below, below[1:]):
        assert past_t[b] <= past_t[a] + 1e-9, f"past frontier slants down {a}->{b}"
    below_f = [p for p in range(CENTER, NPROCS) if p in fut_t]
    for a, b in zip(below_f, below_f[1:]):
        assert fut_t[b] >= fut_t[a] - 1e-9, f"future frontier slants up {a}->{b}"
