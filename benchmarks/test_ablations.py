"""Ablations of the paper's design knobs (DESIGN.md §6).

Not tables in the paper, but trade-offs it discusses explicitly:

* the dissemination arc limit (§4.3: "this technique allows us to
  control the size of the history at the cost of some resolution");
* checkpointing for replay (§6: "we could improve on this by
  periodically checkpointing ... and keeping a logarithmic backlog");
* instrumentation granularity (§2: the three methods "vary in ...
  the history event resolution"; §3: trace size is controlled "by
  selectively instrumenting constructs").
"""

from __future__ import annotations

from repro import mp
from repro.apps import fibonacci as fibmod
from repro.apps import strassen as st
from repro.debugger import DebugSession
from repro.graphs import ArcKind, TraceGraph
from repro.instrument import (
    AimsMonitor,
    Uinst,
    WrapperLibrary,
    instrument_app_function,
    lifecycle_wrapper,
)
from repro.trace import TraceRecorder

from .conftest import traced_run, write_artifact


# ----------------------------------------------------------------------
# 1. dissemination limit vs graph size & zoom resolution
# ----------------------------------------------------------------------
def test_ablation_dissemination_limit(benchmark):
    _, trace = traced_run(fibmod.fib_program(12), 1, functions=[fibmod.fib])
    limits = [None, 64, 16, 4]

    def build_all():
        return {lim: TraceGraph.from_trace(trace, arc_limit=lim) for lim in limits}

    graphs = benchmark(build_all)

    def call_arcs(g):
        return [a for a in g.arcs() if a.kind is ArcKind.CALL]

    baseline_events = sum(a.count for a in call_arcs(graphs[None]))
    rows = ["limit   arcs   merges   events   max_arc_span"]
    stats = {}
    for lim in limits:
        g = graphs[lim]
        arcs = call_arcs(g)
        events = sum(a.count for a in arcs)
        span = max((a.last_index - a.first_index for a in arcs), default=0)
        stats[lim] = (len(arcs), g.total_merges(), events, span)
        rows.append(
            f"{str(lim):>5}  {len(arcs):5d}  {g.total_merges():6d}  "
            f"{events:6d}  {span:6d}"
        )
    write_artifact("ablation_dissemination.txt", "\n".join(rows))

    # Conservation at every limit; arc count monotone in the limit;
    # resolution (trace span per arc) degrades as the limit shrinks.
    for lim in limits:
        assert stats[lim][2] == baseline_events
    assert stats[4][0] <= stats[16][0] <= stats[64][0] <= stats[None][0]
    assert stats[4][0] < stats[None][0]  # merging actually happened
    assert stats[4][3] >= stats[None][3]  # coarser arcs cover more trace

    # Zoom reconstruction recovers the originals from the coarsest graph.
    g4 = graphs[4]
    merged = max(call_arcs(g4), key=lambda a: a.count)
    originals = g4.reconstruct_arc(merged, trace)
    assert len(originals) >= merged.count


# ----------------------------------------------------------------------
# 2. replay cost vs checkpoint backlog
# ----------------------------------------------------------------------
def test_ablation_checkpoint_fast_skip(benchmark):
    def stepper(comm):
        for _ in range(60):
            comm.compute(1.0)
        return comm.rank

    def replay_with(use_checkpoint: bool) -> int:
        """Replay to marker 50 after stops at 10/20/30/40; returns how
        many trace records the replay re-recorded."""
        session = DebugSession(stepper, 1, checkpoint_base=8)
        for m in (10, 20, 30, 40):
            session.set_threshold(0, m)
            session.run() if m == 10 else session.cont()
        session.replay(thresholds={0: 50}, use_checkpoint=use_checkpoint)
        n_records = len(session.trace().by_proc(0))
        session.shutdown()
        return n_records

    with_cp = benchmark.pedantic(
        lambda: replay_with(True), rounds=3, iterations=1
    )
    without_cp = replay_with(False)

    write_artifact(
        "ablation_checkpoints.txt",
        "replay-to-marker-50 re-recorded trace records\n"
        f"  without checkpoint skip: {without_cp}\n"
        f"  with    checkpoint skip: {with_cp}\n"
        "(the checkpoint at marker 40 gates recording; §6's backlog)",
    )

    # The fast-skip suppresses the prefix: far fewer records re-recorded.
    assert with_cp < without_cp
    assert with_cp <= 50 - 40 + 2  # roughly the post-checkpoint suffix


# ----------------------------------------------------------------------
# 3. marker granularity vs trace size
# ----------------------------------------------------------------------
LOOPY_SRC_FN = None  # instrumented lazily below


def _loopy(n):
    total = 0
    for i in range(n):
        total += i * i
    for i in range(n):
        total -= i
    return total


def test_ablation_instrumentation_granularity(benchmark):
    cfg = st.StrassenConfig(n=8, nprocs=4)
    program = st.strassen_program(cfg)

    def run_with(level: str) -> int:
        rt = mp.Runtime(4)
        recorder = TraceRecorder(4)
        WrapperLibrary(rt, recorder)
        wrappers = [lifecycle_wrapper(recorder)]
        if level in ("functions", "loops"):
            uinst = Uinst(rt, recorder)
            uinst.register_module(st)
            wrappers.insert(0, uinst.target_wrapper())
        loopy = _loopy
        if level == "loops":
            monitor = AimsMonitor(rt, recorder)
            loopy = instrument_app_function(
                _loopy, monitor, constructs=("function", "loop")
            )

        def prog(comm):
            out = program(comm)
            loopy(10)  # a loop-bearing local phase every rank runs
            return out

        rt.run(prog, target_wrappers=wrappers)
        rt.shutdown()
        return len(recorder.snapshot())

    sizes = {level: run_with(level) for level in ("comm", "functions", "loops")}
    benchmark(lambda: run_with("comm"))

    write_artifact(
        "ablation_granularity.txt",
        "instrumentation level -> trace records (same program)\n"
        + "\n".join(
            f"  {level:10s} {n:6d}"
            for level, n in sizes.items()
        )
        + "\n(§2's resolution spectrum: wrappers < +function entries < +loops)",
    )

    # The paper's resolution/size trade-off, monotone across methods.
    assert sizes["comm"] < sizes["functions"] < sizes["loops"]
