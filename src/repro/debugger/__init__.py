"""``repro.debugger`` -- the p2d2 analog: trace-driven debugging (§4).

* :class:`DebugSession` -- the programmable debugger: launch, stop,
  step, inspect, plus the paper's contributions: stoplines, controlled
  replay, and parallel undo.
* :mod:`~repro.debugger.stopline` -- timeline breakpoints (vertical
  slice or past/future frontier placement).
* :mod:`~repro.debugger.replay` -- the marker-threshold replay engine
  with nondeterminism control.
* :mod:`~repro.debugger.breakpoints` -- conventional location
  breakpoints over instrumentation points.
* :mod:`~repro.debugger.checkpoints` -- the §6 logarithmic-backlog
  checkpoint extension.
* :mod:`~repro.debugger.commands` -- a text command front end.
"""

from .breakpoints import Breakpoint, BreakpointManager, Watchpoint
from .checkpoints import Checkpoint, LogBacklog
from .commands import CommandError, CommandInterpreter, run_script
from .replay import (
    ReplayExecution,
    ReplaySpec,
    build_execution,
    execute_replay,
    replay_matches_markers,
)
from .session import DebugSession, StopSummary
from .stopline import (
    Stopline,
    StoplinePlacement,
    compute_stopline,
    verify_stopline_consistency,
    vertical_stopline_at_time,
)

__all__ = [
    "Breakpoint",
    "BreakpointManager",
    "Checkpoint",
    "CommandError",
    "CommandInterpreter",
    "DebugSession",
    "LogBacklog",
    "ReplayExecution",
    "ReplaySpec",
    "StopSummary",
    "Watchpoint",
    "Stopline",
    "StoplinePlacement",
    "build_execution",
    "compute_stopline",
    "execute_replay",
    "replay_matches_markers",
    "run_script",
    "verify_stopline_consistency",
    "vertical_stopline_at_time",
]
