"""The debug session -- the p2d2 analog.

One :class:`DebugSession` owns everything the paper's Figure 1 wires
together: the target execution (our simulated runtime), the
instrumentation producing trace data, the UserMonitor threshold surface,
location breakpoints, stopline computation, and the replay / undo
engines.  It is programmable rather than graphical: every p2d2 button is
a method, so the worked Figure 5-7 debugging session is a script (see
``examples/debug_deadlock.py``).

Replay discipline: the session's *generation* counts re-executions.
Every replay rebuilds the runtime from the :class:`ReplaySpec`, forces
recorded nondeterminism from the accumulated master communication log,
installs thresholds, and runs to the stop.  Location breakpoints are
re-registered across generations.  Marker vectors at every stop are
recorded (they are the undo targets) and fed to the logarithmic
checkpoint backlog.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Optional, Sequence

from repro.analysis.deadlock import DeadlockReport, analyze_deadlock
from repro.analysis.history import HistoryIndex
from repro.analysis.matching import MatchingReport, analyze_matching
from repro.mp.clock import CostModel
from repro.mp.process import ProcState
from repro.mp.record import CommLog
from repro.mp.runtime import ProgramSpec
from repro.mp.scheduler import RunOutcome, RunReport
from repro.trace.markers import MarkerVector
from repro.trace.sinks import CallbackSink, TraceSink
from repro.trace.trace import Trace

from .breakpoints import Breakpoint, BreakpointManager
from .checkpoints import LogBacklog
from .replay import (
    ReplayExecution,
    ReplaySpec,
    build_execution,
    execute_replay,
)
from .stopline import Stopline, StoplinePlacement, compute_stopline


@dataclass
class StopSummary:
    """What the debugger shows when control returns to the user."""

    generation: int
    outcome: RunOutcome
    states: dict[int, str]
    markers: dict[int, int]
    reasons: dict[int, Optional[str]]

    def describe(self) -> str:
        lines = [f"[gen {self.generation}] {self.outcome.value}"]
        for rank in sorted(self.states):
            reason = f" ({self.reasons[rank]})" if self.reasons.get(rank) else ""
            lines.append(
                f"  p{rank}: {self.states[rank]}"
                f" marker={self.markers[rank]}{reason}"
            )
        return "\n".join(lines)


class DebugSession:
    """A trace-driven debugging session over one program.

    Parameters mirror :class:`~repro.debugger.replay.ReplaySpec`; the
    wrapper instrumentation library is always installed (it provides the
    communication history and markers), uinst function-entry
    instrumentation is optional.
    """

    def __init__(
        self,
        program: ProgramSpec,
        nprocs: int,
        *,
        policy: str = "run_to_block",
        seed: int = 0,
        backend: Optional[str] = None,
        cost_model: Optional[CostModel] = None,
        uinst_functions: Sequence[Callable] = (),
        uinst_modules: Sequence[Any] = (),
        checkpoint_base: int = 4,
    ) -> None:
        self.spec = ReplaySpec(
            program=program,
            nprocs=nprocs,
            policy=policy,
            seed=seed,
            backend=backend,
            cost_model=cost_model,
            uinst_functions=tuple(uinst_functions),
            uinst_modules=tuple(uinst_modules),
        )
        #: master nondeterminism log accumulated across generations
        self.master_log = CommLog()
        #: marker vectors recorded at each stop, oldest first (undo targets)
        self.stop_history: list[MarkerVector] = []
        self.generation = 0
        self.checkpoints = LogBacklog(base=checkpoint_base)
        self.current_stopline: Optional[Stopline] = None
        self._saved_breakpoints: list[Breakpoint] = []
        #: sinks the user subscribed to the live trace stream; they are
        #: re-attached to every replay generation's fresh recorder
        self._streaming_sinks: list[TraceSink] = []
        self._execution: ReplayExecution = build_execution(self.spec)
        self.breakpoints = BreakpointManager(self.runtime)
        self._last_report: Optional[RunReport] = None
        #: this generation's shared analysis substrate (lazily attached
        #: to the live stream; invalidated and rebuilt across replays)
        self._index: Optional[HistoryIndex] = None
        #: an out-of-core paged index over an on-disk trace, when the
        #: user is debugging against a recorded file (``stats`` folds
        #: its cache/prefetch counters into the report)
        self.paged_index = None

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------
    @property
    def runtime(self):
        return self._execution.runtime

    @property
    def nprocs(self) -> int:
        return self.spec.nprocs

    def trace(self) -> Trace:
        """A consistent snapshot of the history collected so far."""
        return self._execution.recorder.snapshot()

    def index(self) -> HistoryIndex:
        """The shared analysis substrate for the current generation.

        Built on first demand: an :class:`~repro.analysis.history.IndexSink`
        is attached to the live trace stream (with backfill), so the
        index tracks the execution incrementally from then on.  All
        session analyses (stoplines, matching/deadlock reports, the
        ``stats`` command) consume this one index; vector clocks and
        matching are derived exactly once per generation.  After
        :meth:`replay`/:meth:`undo` the old index is invalidated and a
        fresh one is bound to the new execution on next demand.
        """
        if self._index is None or self._index.stale:
            self._index = HistoryIndex(
                nprocs=self.nprocs, generation=self.generation
            )
            self._execution.recorder.subscribe(self._index.sink(), backfill=True)
        # refresh the §4.4 blocked-wait snapshot for missed-message and
        # deadlock diagnoses
        self._index.set_blocked(self.runtime.blocked_waits())
        return self._index

    def attach_paged_index(self, paged) -> None:
        """Bind an :class:`~repro.analysis.paged.OutOfCoreIndex` so the
        ``stats`` command reports its cache and readahead behavior."""
        self.paged_index = paged

    @property
    def recorder(self):
        """The current generation's trace recorder (its ``bus`` is the
        live event stream)."""
        return self._execution.recorder

    # ------------------------------------------------------------------
    # live trace stream (the streaming pipeline surface)
    # ------------------------------------------------------------------
    def subscribe(self, sink: TraceSink, backfill: bool = True) -> TraceSink:
        """Attach a sink to the live trace stream.

        The sink observes every record the instrumentation publishes
        from now on (``backfill`` first replays this generation's
        retained history so the prefix is complete).  Across
        :meth:`replay`/:meth:`undo` the subscription survives: the sink
        is re-attached to the new generation's recorder and sees the
        re-execution's records as they are produced.
        """
        self._streaming_sinks.append(sink)
        return self._execution.recorder.subscribe(sink, backfill=backfill)

    def unsubscribe(self, sink: TraceSink) -> None:
        self._streaming_sinks.remove(sink)
        self._execution.recorder.unsubscribe(sink)

    def add_trace_callback(self, fn, backfill: bool = True) -> CallbackSink:
        """Shorthand: subscribe a per-record analysis callback."""
        sink = CallbackSink(fn)
        self.subscribe(sink, backfill=backfill)
        return sink

    def live_graph(self, arc_limit: Optional[int] = 64):
        """A trace graph built incrementally from the live stream (§3.2
        "built as the execution is running").  The returned graph tracks
        this generation's history only; call again after a replay for a
        fresh one."""
        from repro.graphs.tracegraph import TraceGraph

        graph = TraceGraph(self.nprocs, arc_limit)
        self._execution.recorder.subscribe(graph.sink(), backfill=True)
        return graph

    def markers(self) -> MarkerVector:
        return MarkerVector(self.runtime.markers())

    def states(self) -> dict[int, ProcState]:
        return self.runtime.states()

    def results(self) -> list[Any]:
        return self.runtime.results()

    @property
    def finished(self) -> bool:
        return all(p.terminated for p in self.runtime.procs)

    # ------------------------------------------------------------------
    # execution control (the conventional debugger surface)
    # ------------------------------------------------------------------
    def _absorb_run(self, report: RunReport) -> StopSummary:
        self._last_report = report
        # Fold this generation's matching decisions into the master log
        # (matches made during replay equal the forced ones; matches
        # beyond the old history extend it).
        merged = dict(self.master_log.recv_matches)
        merged.update(self.runtime.comm_log.recv_matches)
        self.master_log.recv_matches = merged
        wa = dict(self.master_log.waitany_choices)
        wa.update(self.runtime.comm_log.waitany_choices)
        self.master_log.waitany_choices = wa
        # Record the stop vector (undo target + checkpoint).
        vector = self.markers()
        self.stop_history.append(vector)
        self.checkpoints.add(vector)
        return self._summary(report)

    def _summary(self, report: RunReport) -> StopSummary:
        return StopSummary(
            generation=self.generation,
            outcome=report.outcome,
            states={p.rank: p.state.value for p in self.runtime.procs},
            markers=self.runtime.markers(),
            reasons={
                p.rank: (p.stop.reason.value if p.stop.reason else None)
                for p in self.runtime.procs
            },
        )

    def run(self) -> StopSummary:
        """Run until the program finishes, stops, or deadlocks."""
        return self._absorb_run(self.runtime.run_until_idle())

    def cont(self, ranks: Optional[Sequence[int]] = None) -> StopSummary:
        """Resume stopped processes (all, or a subset) and run on."""
        return self._absorb_run(self.runtime.resume(ranks))

    def step(self, rank: int) -> StopSummary:
        """Advance one process to its next instrumentation point.

        This is the marker-granular "step" that, after a stopline
        replay, walks the user to the faulty construct (Figure 7: "a few
        step operations would lead the user to the loop of MatrSend").
        """
        return self._absorb_run(self.runtime.step(rank))

    def interrupt(self) -> StopSummary:
        """Stop everything at the next instrumentation points."""
        self.runtime.interrupt_all()
        summary = self._absorb_run(self.runtime.run_until_idle())
        self.runtime.clear_interrupts()
        return summary

    def set_threshold(self, rank: int, marker: Optional[int]) -> None:
        self.runtime.set_threshold(rank, marker)

    def clear_thresholds(self) -> None:
        for p in self.runtime.procs:
            p.set_threshold(None)

    def stack(self, rank: int, max_frames: int = 25) -> list[str]:
        """The user-level Python stack of a parked or blocked process.

        p2d2's conventional surface includes stack inspection; in the
        simulator a stopped process's worker thread is parked inside the
        scheduler, so its user frames are live and can be read with
        ``sys._current_frames``.  Runtime-internal frames are filtered
        out; frames are returned outermost first.
        """
        import sys

        from repro.mp.locutil import is_infrastructure_file

        proc = self.runtime.procs[rank]
        if proc.state not in (ProcState.STOPPED, ProcState.BLOCKED):
            raise ValueError(
                f"p{rank} is {proc.state.value}; stacks are readable only "
                "while stopped or blocked"
            )
        ident = self.runtime.backend.carrier_ident(proc)
        assert ident is not None
        frame = sys._current_frames().get(ident)
        out: list[str] = []
        depth = 0
        while frame is not None and depth < 200:
            filename = frame.f_code.co_filename
            if not is_infrastructure_file(filename) and "threading" not in filename:
                out.append(
                    f"{frame.f_code.co_name} at {filename}:{frame.f_lineno}"
                )
            frame = frame.f_back
            depth += 1
        out.reverse()
        return out[:max_frames]

    def frame_locals(self, rank: int, depth: int = 0) -> dict[str, str]:
        """repr()s of the locals of one user frame (0 = innermost).

        Read-only inspection: values are stringified immediately so no
        live references escape the parked thread.
        """
        import sys

        from repro.mp.locutil import is_infrastructure_file

        proc = self.runtime.procs[rank]
        if proc.state not in (ProcState.STOPPED, ProcState.BLOCKED):
            raise ValueError(f"p{rank} is {proc.state.value}")
        ident = self.runtime.backend.carrier_ident(proc)
        assert ident is not None
        frame = sys._current_frames().get(ident)
        user_frames = []
        while frame is not None:
            filename = frame.f_code.co_filename
            if not is_infrastructure_file(filename) and "threading" not in filename:
                user_frames.append(frame)
            frame = frame.f_back
        if depth >= len(user_frames):
            raise ValueError(
                f"p{rank} has {len(user_frames)} user frames; depth {depth} "
                "out of range"
            )
        target = user_frames[depth]
        return {k: repr(v)[:120] for k, v in target.f_locals.items()}

    def where(self, rank: int) -> str:
        """Current position of a process (location + marker + state)."""
        proc = self.runtime.procs[rank]
        wait = f" waiting: {proc.wait_info}" if proc.wait_info else ""
        return (
            f"p{rank} [{proc.state.value}] marker={proc.marker} "
            f"at {proc.current_location}{wait}"
        )

    # ------------------------------------------------------------------
    # stoplines (§4.1)
    # ------------------------------------------------------------------
    def set_stopline(
        self,
        event_index: int,
        placement: StoplinePlacement = StoplinePlacement.VERTICAL,
    ) -> Stopline:
        """Compute and remember a stopline from a trace event (the
        user's click in the time-space display)."""
        idx = self.index()
        self.current_stopline = compute_stopline(
            idx.trace, event_index, placement, index=idx
        )
        return self.current_stopline

    # ------------------------------------------------------------------
    # replay and undo (§4.1, §4.2)
    # ------------------------------------------------------------------
    def replay(
        self,
        thresholds: "MarkerVector | dict[int, int] | None" = None,
        use_checkpoint: bool = True,
    ) -> StopSummary:
        """Re-execute under nondeterminism control up to ``thresholds``
        (default: the current stopline's).

        The old execution is torn down; the new one stops each process
        at its threshold marker, giving the consistent cross-process
        breakpoint set of §4.1.
        """
        if thresholds is None:
            if self.current_stopline is None:
                raise ValueError("no stopline set and no thresholds given")
            vector = self.current_stopline.thresholds
        elif isinstance(thresholds, MarkerVector):
            vector = thresholds
        else:
            vector = MarkerVector(thresholds)

        record_from = None
        if use_checkpoint:
            cp = self.checkpoints.nearest_before(vector)
            if cp is not None:
                record_from = cp.markers

        saved_bps = self.breakpoints.list()
        self.runtime.shutdown()
        # Finalize the outgoing generation's trace file (if any): the
        # recorder is discarded below, and an attached file would
        # otherwise be dropped with its tail unflushed and no index.
        self._execution.recorder.close()
        # The outgoing generation's history no longer describes any
        # execution: refuse every future query against it.
        if self._index is not None:
            self._index.invalidate()
            self._index = None
        self.generation += 1
        # Re-attach user subscriptions before the replay runs, so the
        # sinks observe the re-execution's records live.
        def _resubscribe(execution: ReplayExecution) -> None:
            for sink in self._streaming_sinks:
                execution.recorder.subscribe(sink, backfill=True)

        self._execution = execute_replay(
            self.spec, self.master_log, vector, record_from=record_from,
            on_build=_resubscribe,
        )
        self.breakpoints = BreakpointManager(self.runtime)
        for bp in saved_bps:
            self.breakpoints._breakpoints[bp.bp_id] = bp
        report = self._execution.report
        assert report is not None
        return self._absorb_run(report)

    def undo(self, steps: int = 1) -> StopSummary:
        """The parallel undo (§4.2): replay to the marker vector recorded
        ``steps`` resumptions ago.

        "Every time a target process stops, p2d2 records its execution
        marker.  If an undo operation is requested, the debugger replays
        the program ... each process execution stops at the last
        creation of an execution tag preceding the desired state."
        """
        # stop_history[-1] is the *current* state; the undo target is
        # ``steps`` entries earlier.
        idx = len(self.stop_history) - 1 - steps
        if idx < 0:
            raise ValueError(
                f"cannot undo {steps} step(s): only "
                f"{len(self.stop_history) - 1} prior stop(s) recorded"
            )
        target = self.stop_history[idx]
        # Discard the undone suffix so consecutive undos walk backwards.
        del self.stop_history[idx:]
        return self.replay(thresholds=target)

    # ------------------------------------------------------------------
    # history analysis (§4.4)
    # ------------------------------------------------------------------
    def matching_report(self) -> MatchingReport:
        idx = self.index()
        return analyze_matching(
            idx.trace, blocked=self.runtime.blocked_waits(), index=idx
        )

    def deadlock_report(self) -> DeadlockReport:
        return analyze_deadlock(
            self.runtime.blocked_waits(), self.nprocs, index=self.index()
        )

    # ------------------------------------------------------------------
    def shutdown(self) -> None:
        self.runtime.shutdown()
        self._execution.recorder.close()

    def __enter__(self) -> "DebugSession":
        return self

    def __exit__(self, *exc: object) -> None:
        self.shutdown()
