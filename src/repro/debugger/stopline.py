"""Stoplines: breakpoints in the timeline (paper §3.1, §4.1).

    "This combination of features permits p2d2 to implement a stopline,
    that is, a breakpoint in the timeline.  When the user requests one
    at a particular point, the debugger can find out the corresponding
    execution markers for each of the processes ... When execution is
    replayed, the execution markers tell the debugger when to stop each
    of the processes."

A stopline is computed from a trace plus a selected point and yields a
:class:`~repro.trace.markers.MarkerVector` of per-process thresholds.
Three placements:

* ``vertical`` -- the Figure 2/6 vertical slice at the selected event's
  start time.  Consistent because trace causality guarantees no message
  crosses a time slice backwards ("the stopline passes through a
  concurrent set of events").
* ``past`` / ``future`` -- the §4.1 frontier placements: stop each
  process immediately after the last event that could affect the
  selected state, or immediately before the first event it could
  affect.

Thresholds follow the UserMonitor convention: a process parks when its
counter *reaches* the threshold, i.e. before executing the construct
bearing that marker.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.analysis.causality import CausalOrder
from repro.analysis.frontiers import analyze_frontiers
from repro.trace.events import TraceRecord
from repro.trace.markers import MarkerVector
from repro.trace.trace import Trace

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.analysis.history import HistoryIndex


class StoplinePlacement(enum.Enum):
    VERTICAL = "vertical"
    PAST_FRONTIER = "past"
    FUTURE_FRONTIER = "future"


@dataclass
class Stopline:
    """A computed stopline: the selected point plus per-rank thresholds.

    ``time`` is where the indicator line is drawn in the time-space
    display; ``thresholds`` is what the replay programs into the
    UserMonitor threshold variables.
    """

    placement: StoplinePlacement
    time: float
    anchor: Optional[TraceRecord]
    thresholds: MarkerVector

    def describe(self) -> str:
        parts = [f"stopline ({self.placement.value}) at t={self.time:.2f}"]
        if self.anchor is not None:
            parts.append(
                f"anchored on p{self.anchor.proc} marker {self.anchor.marker}"
            )
        parts.append(
            "thresholds: "
            + ", ".join(f"p{r}:{self.thresholds[r]}" for r in self.thresholds)
        )
        return "; ".join(parts)


def vertical_stopline_at_time(trace: Trace, time: float) -> Stopline:
    """A vertical stopline at an arbitrary time (no anchoring event).

    Each process stops before its first construct *not yet completed*
    at ``time`` (a receive that was still blocked at the slice is
    re-executed and blocks again -- the replayed state matches the
    original).  Processes whose trace ends earlier get no threshold: a
    replay lets them run to completion, which is where they were.
    The resulting cut is consistent by construction: every included
    event completed by ``time``, and trace causality puts each included
    receive's send no later than the receive.
    """
    thresholds: dict[int, int] = {}
    for p in range(trace.nprocs):
        rec = trace.first_ending_after(p, time)
        if rec is not None:
            thresholds[p] = rec.marker
    return Stopline(
        placement=StoplinePlacement.VERTICAL,
        time=time,
        anchor=None,
        thresholds=MarkerVector(thresholds),
    )


def compute_stopline(
    trace: Trace,
    event_index: int,
    placement: StoplinePlacement = StoplinePlacement.VERTICAL,
    order: Optional[CausalOrder] = None,
    index: "Optional[HistoryIndex]" = None,
) -> Stopline:
    """Stopline for a selected event (the user's click).

    ``vertical`` slices at the event's start time; the selected process
    is pinned to stop exactly at the selected construct.  ``past`` /
    ``future`` use the frontier thresholds of
    :class:`~repro.analysis.frontiers.FrontierAnalysis`, with the causal
    order drawn from the shared HistoryIndex.
    """
    from repro.analysis.history import ensure_index

    idx = ensure_index(trace, index=index)
    trace = idx.trace
    anchor = trace[event_index]
    if placement is StoplinePlacement.VERTICAL:
        sl = vertical_stopline_at_time(trace, anchor.t0)
        merged = sl.thresholds.as_dict()
        merged[anchor.proc] = anchor.marker
        return Stopline(
            placement=placement,
            time=anchor.t0,
            anchor=anchor,
            thresholds=MarkerVector(merged),
        )
    analysis = analyze_frontiers(trace, event_index, order, index=idx)
    if placement is StoplinePlacement.PAST_FRONTIER:
        thresholds = analysis.past_stopline()
    else:
        thresholds = analysis.future_stopline()
    return Stopline(
        placement=placement,
        time=anchor.t0,
        anchor=anchor,
        thresholds=MarkerVector(thresholds),
    )


def verify_stopline_consistency(
    trace: Trace,
    stopline: Stopline,
    index: "Optional[HistoryIndex]" = None,
) -> bool:
    """Check the §4.1 consistency argument on the achieved cut.

    The cut "everything with marker < threshold per process" must not
    contain a receive whose send lies outside -- no message into the cut
    from beyond the stopline.
    """
    from repro.analysis.history import ensure_index

    idx = ensure_index(trace, index=index)
    trace = idx.trace
    thresholds = stopline.thresholds
    included: set[int] = set()
    for p in range(trace.nprocs):
        limit = thresholds.get(p)
        for rec in idx.by_proc(p):
            if limit is None or rec.marker < limit:
                included.add(rec.index)
    for pair in idx.message_pairs():
        if pair.recv.index in included and pair.send.index not in included:
            return False
    return True
