"""Interactive command-line debugger: ``python -m repro.debugger``.

Loads an SPMD program from a Python file and drives it through the
:class:`~repro.debugger.commands.CommandInterpreter` -- the closest this
reproduction gets to sitting in front of p2d2:

    python -m repro.debugger my_program.py --nprocs 4
    (p2d2) run
    (p2d2) states
    (p2d2) stopline 12
    (p2d2) replay
    (p2d2) step 0
    (p2d2) backtrace 0
    (p2d2) quit

The program file must define a callable taking one argument (the
communicator); by default the entry point is ``main``, overridable with
``--entry``.  ``--uinst`` additionally instruments every function defined
in the program file (function-entry markers), and ``--command/-c`` runs
commands non-interactively.
"""

from __future__ import annotations

import argparse
import sys
import types
from pathlib import Path

from .commands import CommandError, CommandInterpreter
from .session import DebugSession

PROMPT = "(p2d2) "


def load_program(path: Path, entry: str) -> tuple[types.ModuleType, object]:
    """Import ``path`` as a module and return (module, entry callable)."""
    source = path.read_text()
    module = types.ModuleType(path.stem)
    module.__dict__["__file__"] = str(path)
    code = compile(source, str(path), "exec")
    exec(code, module.__dict__)
    target = module.__dict__.get(entry)
    if not callable(target):
        raise SystemExit(
            f"error: {path} does not define a callable {entry!r} "
            f"(use --entry to pick another)"
        )
    return module, target


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.debugger",
        description="Trace-driven debugger for simulated message-passing "
        "programs (p2d2 reproduction).",
    )
    parser.add_argument("program", type=Path, help="Python file with the SPMD program")
    parser.add_argument("--nprocs", "-n", type=int, default=4,
                        help="number of simulated processes (default 4)")
    parser.add_argument("--entry", default="main",
                        help="entry function name (default: main)")
    parser.add_argument("--policy", default="run_to_block",
                        choices=["run_to_block", "round_robin", "virtual_time", "random"],
                        help="scheduling policy")
    parser.add_argument("--seed", type=int, default=0, help="scheduling seed")
    parser.add_argument("--uinst", action="store_true",
                        help="instrument every function in the program file")
    parser.add_argument("--command", "-c", action="append", default=[],
                        help="run this command and exit (repeatable)")
    return parser


def repl(interp: CommandInterpreter, lines, out=sys.stdout, echo: bool = False) -> None:
    """Feed command lines (an iterable) to the interpreter."""
    for raw in lines:
        line = raw.strip()
        if echo:
            print(f"{PROMPT}{line}", file=out)
        if line in ("quit", "exit", "q"):
            return
        try:
            result = interp.execute(line)
        except CommandError as exc:
            result = f"error: {exc}"
        except Exception as exc:  # noqa: BLE001 - surface, keep REPL alive
            result = f"internal error: {type(exc).__name__}: {exc}"
        if result:
            print(result, file=out)


def _stdin_lines():
    """Prompted line iterator over stdin (EOF ends the session)."""
    while True:
        try:
            yield input(PROMPT)
        except EOFError:
            return


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    module, target = load_program(args.program, args.entry)
    uinst_modules = [module] if args.uinst else []
    session = DebugSession(
        target,
        args.nprocs,
        policy=args.policy,
        seed=args.seed,
        uinst_modules=uinst_modules,
    )
    interp = CommandInterpreter(session)
    print(
        f"loaded {args.program} ({args.entry}) on {args.nprocs} simulated "
        f"processes -- type 'help' for commands, 'quit' to leave"
    )
    try:
        if args.command:
            repl(interp, args.command, echo=True)
        else:
            repl(interp, _stdin_lines())
    finally:
        session.shutdown()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
