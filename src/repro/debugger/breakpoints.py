"""Location breakpoints -- the conventional half of the debugger.

p2d2's standard operations [5] include per-process breakpoints; the
trace-driven features of this paper layer marker thresholds on top.
This module provides the conventional kind: stop when an
instrumentation point is generated at a matching source location
(file:line, function name, or an arbitrary predicate), optionally
restricted to a rank subset, with hit counting and ignore counts.

A breakpoint fires *at an instrumentation point*, so its effective
granularity is whatever instrumentation is installed: communication
constructs under the wrapper library, every user function entry under
uinst, down to loops under AIMS source instrumentation.
"""

from __future__ import annotations

import itertools
import sys
from dataclasses import dataclass, field
from typing import Any, Callable, Optional, Sequence

from repro.mp.datatypes import SourceLocation
from repro.mp.locutil import is_infrastructure_file
from repro.mp.process import Process
from repro.mp.runtime import Runtime

_bp_ids = itertools.count(1)

Predicate = Callable[[Process, SourceLocation], bool]


@dataclass
class Breakpoint:
    """One registered breakpoint."""

    bp_id: int
    predicate: Predicate
    description: str
    ranks: Optional[frozenset[int]] = None
    enabled: bool = True
    ignore_count: int = 0
    hits: int = 0
    #: (rank, marker) of each firing, for inspection
    hit_log: list[tuple[int, int]] = field(default_factory=list)

    def matches(self, proc: Process, loc: SourceLocation) -> bool:
        if not self.enabled:
            return False
        if self.ranks is not None and proc.rank not in self.ranks:
            return False
        return self.predicate(proc, loc)

    def fire(self, proc: Process) -> bool:
        """Count a match; True if the process should actually stop."""
        self.hits += 1
        if self.ignore_count > 0:
            self.ignore_count -= 1
            return False
        self.hit_log.append((proc.rank, proc.marker))
        return True


_MISSING = object()


@dataclass
class Watchpoint:
    """A data watchpoint over a local variable.

    The software-instruction-counter work the paper builds on [11] used
    marker counting "for replaying parallel programs and for organizing
    watchpoints"; this is that second use.  At every instrumentation
    point the manager searches the process's live user frames
    (innermost first) for a local named ``var``; the watchpoint fires
    when the value satisfies ``predicate`` or -- in change mode -- when
    its repr differs from the previously observed one.

    Granularity caveat (inherent to marker-based watchpoints): changes
    are only *observed* at instrumentation points, so a value that
    changes and changes back between markers is missed -- exactly the
    resolution trade-off of Section 2.
    """

    wp_id: int
    var: str
    predicate: Optional[Callable[[Any], bool]]
    on_change: bool
    ranks: Optional[frozenset[int]] = None
    enabled: bool = True
    hits: int = 0
    #: rank -> last observed repr (change mode)
    last_seen: dict[int, str] = field(default_factory=dict)

    @property
    def description(self) -> str:
        mode = "change" if self.on_change else "predicate"
        return f"watch {self.var} ({mode})"

    def evaluate(self, proc: Process, value: Any) -> bool:
        """Did the watchpoint fire for this observation?"""
        if self.on_change:
            current = repr(value)[:200]
            previous = self.last_seen.get(proc.rank)
            self.last_seen[proc.rank] = current
            fired = previous is not None and previous != current
        else:
            assert self.predicate is not None
            fired = bool(self.predicate(value))
        if fired:
            self.hits += 1
        return fired


def _find_user_local(var: str) -> Any:
    """Search the calling thread's user frames, innermost first, for a
    local named ``var``; returns ``_MISSING`` if absent everywhere."""
    frame = sys._getframe(1)
    depth = 0
    while frame is not None and depth < 100:
        if not is_infrastructure_file(frame.f_code.co_filename):
            if var in frame.f_locals:
                return frame.f_locals[var]
        frame = frame.f_back
        depth += 1
    return _MISSING


class BreakpointManager:
    """Registers breakpoints and watchpoints, hooked into every process."""

    def __init__(self, runtime: Runtime) -> None:
        if not runtime.procs:
            raise RuntimeError("attach BreakpointManager after Runtime.launch()")
        self.runtime = runtime
        self._breakpoints: dict[int, Breakpoint] = {}
        self._watchpoints: dict[int, Watchpoint] = {}
        for proc in runtime.procs:
            proc.marker_hooks.append(self._hook)
        #: bp_id/wp_id of the most recent firing (debugger UI convenience)
        self.last_hit: Optional[int] = None

    # ------------------------------------------------------------------
    def _hook(self, proc: Process, loc: SourceLocation, args: tuple) -> None:
        del args
        for bp in self._breakpoints.values():
            if bp.matches(proc, loc) and bp.fire(proc):
                self.last_hit = bp.bp_id
                proc.stop.breakpoint_hit = True
                return
        for wp in self._watchpoints.values():
            if not wp.enabled:
                continue
            if wp.ranks is not None and proc.rank not in wp.ranks:
                continue
            value = _find_user_local(wp.var)
            if value is _MISSING:
                continue
            if wp.evaluate(proc, value):
                self.last_hit = wp.wp_id
                proc.stop.breakpoint_hit = True
                return

    # ------------------------------------------------------------------
    # registration
    # ------------------------------------------------------------------
    def _add(
        self,
        predicate: Predicate,
        description: str,
        ranks: Optional[Sequence[int]],
        ignore_count: int,
    ) -> Breakpoint:
        bp = Breakpoint(
            bp_id=next(_bp_ids),
            predicate=predicate,
            description=description,
            ranks=frozenset(ranks) if ranks is not None else None,
            ignore_count=ignore_count,
        )
        self._breakpoints[bp.bp_id] = bp
        return bp

    def break_at_line(
        self,
        filename_suffix: str,
        lineno: int,
        ranks: Optional[Sequence[int]] = None,
        ignore_count: int = 0,
    ) -> Breakpoint:
        """Stop at instrumentation points on ``*filename_suffix:lineno``."""

        def pred(proc: Process, loc: SourceLocation) -> bool:
            return loc.lineno == lineno and loc.filename.endswith(filename_suffix)

        return self._add(
            pred, f"{filename_suffix}:{lineno}", ranks, ignore_count
        )

    def break_at_function(
        self,
        function: str,
        ranks: Optional[Sequence[int]] = None,
        ignore_count: int = 0,
    ) -> Breakpoint:
        """Stop at instrumentation points inside ``function``."""

        def pred(proc: Process, loc: SourceLocation) -> bool:
            return loc.function == function

        return self._add(pred, f"function {function}", ranks, ignore_count)

    def break_when(
        self,
        predicate: Predicate,
        description: str = "<predicate>",
        ranks: Optional[Sequence[int]] = None,
        ignore_count: int = 0,
    ) -> Breakpoint:
        """Arbitrary predicate breakpoint (Paradyn-style assertion)."""
        return self._add(predicate, description, ranks, ignore_count)

    # ------------------------------------------------------------------
    # watchpoints
    # ------------------------------------------------------------------
    def watch_local(
        self,
        var: str,
        predicate: Optional[Callable[[Any], bool]] = None,
        ranks: Optional[Sequence[int]] = None,
    ) -> Watchpoint:
        """Watch a user local: stop when ``predicate(value)`` holds, or
        -- with no predicate -- whenever the value changes between
        instrumentation points."""
        wp = Watchpoint(
            wp_id=next(_bp_ids),
            var=var,
            predicate=predicate,
            on_change=predicate is None,
            ranks=frozenset(ranks) if ranks is not None else None,
        )
        self._watchpoints[wp.wp_id] = wp
        return wp

    def remove_watchpoint(self, wp_id: int) -> bool:
        return self._watchpoints.pop(wp_id, None) is not None

    def watchpoints(self) -> list[Watchpoint]:
        return sorted(self._watchpoints.values(), key=lambda w: w.wp_id)

    # ------------------------------------------------------------------
    # management
    # ------------------------------------------------------------------
    def get(self, bp_id: int) -> Breakpoint:
        return self._breakpoints[bp_id]

    def remove(self, bp_id: int) -> bool:
        return self._breakpoints.pop(bp_id, None) is not None

    def clear(self) -> None:
        self._breakpoints.clear()

    def list(self) -> list[Breakpoint]:
        return sorted(self._breakpoints.values(), key=lambda b: b.bp_id)

    def __len__(self) -> int:
        return len(self._breakpoints)
