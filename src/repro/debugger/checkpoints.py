"""Checkpointing with a logarithmic backlog (paper §6 future work).

    "We could improve on this by periodically checkpointing program
    states and keeping a logarithmic backlog of process states."

In the simulator a process's Python state cannot be snapshotted
generically, so a checkpoint is a *marker vector* plus the communication
log prefix needed to replay to it; the saving comes from the replay
engine's ``record_from`` fast-skip (instrumentation recording stays off
until the checkpoint, which is where the real-world cost concentrates).
Applications may additionally register cooperative state snapshots for
inspection.

The *logarithmic backlog* keeps the stored checkpoints exponentially
spaced looking backwards: after many stops, you retain ~log(n)
checkpoints -- dense near the present, sparse in the deep past --
bounding memory while keeping any undo target within a factor-2 replay
of some retained checkpoint.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from repro.trace.markers import MarkerVector


@dataclass
class Checkpoint:
    """One retained stop: marker vector + optional app-state snapshots."""

    seq: int  # stop sequence number (monotone)
    markers: MarkerVector
    app_state: dict[int, Any] = field(default_factory=dict)

    def total_progress(self) -> int:
        """Sum of marker counters (a scalar 'how far' measure)."""
        return sum(self.markers[r] for r in self.markers)


class LogBacklog:
    """Exponentially-thinned checkpoint store.

    Retention rule: a checkpoint with sequence number ``s`` survives
    while ``s`` is a multiple of the largest power of two not exceeding
    its age bucket -- concretely, we keep the most recent ``base``
    checkpoints, every 2nd of the next ``base``, every 4th beyond that,
    and so on.  Total retained is O(base * log(n)).
    """

    def __init__(self, base: int = 4) -> None:
        if base < 1:
            raise ValueError("base must be >= 1")
        self.base = base
        self._checkpoints: list[Checkpoint] = []
        self._next_seq = 0

    # ------------------------------------------------------------------
    def add(self, markers: MarkerVector, app_state: Optional[dict[int, Any]] = None) -> Checkpoint:
        cp = Checkpoint(self._next_seq, markers, app_state or {})
        self._next_seq += 1
        self._checkpoints.append(cp)
        self._thin()
        return cp

    def _thin(self) -> None:
        newest = self._next_seq - 1
        kept: list[Checkpoint] = []
        for cp in self._checkpoints:
            age = newest - cp.seq
            bucket = age // self.base  # 0: keep all, 1: every 2nd, ...
            stride = 1 << min(bucket, 30)
            if cp.seq % stride == 0 or age < self.base:
                kept.append(cp)
        self._checkpoints = kept

    # ------------------------------------------------------------------
    def checkpoints(self) -> list[Checkpoint]:
        return list(self._checkpoints)

    def __len__(self) -> int:
        return len(self._checkpoints)

    def nearest_before(self, target: MarkerVector) -> Optional[Checkpoint]:
        """The most advanced retained checkpoint a replay toward
        ``target`` may start recording from: its markers must not exceed
        the target on any constrained rank (i.e. target dominates it)."""
        best: Optional[Checkpoint] = None
        for cp in self._checkpoints:
            if target.dominates(cp.markers):
                if best is None or cp.total_progress() > best.total_progress():
                    best = cp
        return best

    def latest(self) -> Optional[Checkpoint]:
        return self._checkpoints[-1] if self._checkpoints else None
