"""Controlled replay (paper §4.1-§4.2).

    "When the user requests a re-execution, the debugger restarts the
    computation, and as part of that, stores the execution markers in
    the UserMonitor threshold variables ...  When the routine generates
    an execution marker equal to the threshold value, it triggers a
    debugger-set breakpoint."

A replay is a *fresh execution* of the same program (the paper: "our
current implementation of replay and undo is done in straightforward
manner by re-executing until an execution marker threshold is
encountered") with two controls applied:

* the previous run's :class:`~repro.mp.record.CommLog` forces every
  wildcard receive and ``waitany`` to its recorded outcome (§4.2
  nondeterminism control), making the re-execution event-equivalent;
* a :class:`~repro.trace.markers.MarkerVector` of thresholds parks each
  process at the stopline.

:class:`ReplaySpec` captures everything needed to rebuild the execution
(program, nprocs, policy, seed, cost model, instrumentation choices);
:func:`execute_replay` performs one controlled re-execution and returns
the new runtime + instrumentation, leaving the caller (the debug
session) in charge from the stop onward.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Optional, Sequence

from repro.instrument.uinst import Uinst
from repro.instrument.wrappers import WrapperLibrary, lifecycle_wrapper
from repro.mp.clock import CostModel
from repro.mp.record import CommLog
from repro.mp.runtime import ProgramSpec, Runtime
from repro.mp.scheduler import RunReport
from repro.trace.markers import MarkerVector
from repro.trace.recorder import TraceRecorder


@dataclass
class ReplaySpec:
    """Everything needed to re-create an execution deterministically."""

    program: ProgramSpec
    nprocs: int
    policy: str = "run_to_block"
    seed: int = 0
    #: execution backend name (``None`` -> environment default); must be
    #: a cooperative backend, since replay drives the debugger surface
    backend: Optional[str] = None
    cost_model: Optional[CostModel] = None
    #: functions / modules to instrument with uinst (function entries)
    uinst_functions: Sequence[Callable] = ()
    uinst_modules: Sequence[Any] = ()
    lifecycle_records: bool = True


@dataclass
class ReplayExecution:
    """A live (re-)execution: the runtime plus its instrumentation."""

    runtime: Runtime
    recorder: TraceRecorder
    wrapper_lib: WrapperLibrary
    uinst: Optional[Uinst] = None
    report: Optional[RunReport] = None
    #: markers each process should fast-record from (checkpoint skip)
    record_from: Optional[MarkerVector] = None


def build_execution(
    spec: ReplaySpec,
    replay_log: Optional[CommLog] = None,
    record_from: Optional[MarkerVector] = None,
) -> ReplayExecution:
    """Construct and launch (but do not run) an execution of ``spec``.

    ``record_from`` implements the checkpoint fast-skip: trace recording
    for each rank stays off until its marker counter reaches the given
    value, making replays to deep stoplines cheaper (the §6 checkpoint
    extension, adapted: state cannot be snapshotted, but the expensive
    part of a replay -- instrumentation recording -- can be skipped).
    """
    runtime = Runtime(
        spec.nprocs,
        backend=spec.backend,
        policy=spec.policy,
        seed=spec.seed,
        cost_model=spec.cost_model,
        replay_log=replay_log,
    )
    recorder = TraceRecorder(spec.nprocs)
    wrapper_lib = WrapperLibrary(runtime, recorder)
    wrappers = []
    uinst = None
    if spec.uinst_functions or spec.uinst_modules:
        uinst = Uinst(runtime, recorder)
        for fn in spec.uinst_functions:
            uinst.register_function(fn)
        for mod in spec.uinst_modules:
            uinst.register_module(mod)
        wrappers.append(uinst.target_wrapper())
    if spec.lifecycle_records:
        wrappers.append(lifecycle_wrapper(recorder))
    runtime.launch(spec.program, target_wrappers=wrappers)

    if record_from is not None and len(record_from):
        _install_record_gates(runtime, recorder, record_from)

    return ReplayExecution(
        runtime=runtime,
        recorder=recorder,
        wrapper_lib=wrapper_lib,
        uinst=uinst,
        record_from=record_from,
    )


def _install_record_gates(
    runtime: Runtime, recorder: TraceRecorder, record_from: MarkerVector
) -> None:
    """Disable recording per rank until its marker reaches the gate."""
    for proc in runtime.procs:
        gate = record_from.get(proc.rank)
        if gate is None or gate <= 0:
            continue
        recorder.set_enabled(False, proc=proc.rank)

        def hook(p, loc, args, _gate=gate):
            if p.marker >= _gate and not recorder.is_enabled(p.rank):
                recorder.set_enabled(True, proc=p.rank)

        proc.marker_hooks.append(hook)


def execute_replay(
    spec: ReplaySpec,
    replay_log: CommLog,
    thresholds: MarkerVector,
    record_from: Optional[MarkerVector] = None,
    on_build: Optional[Callable[[ReplayExecution], None]] = None,
) -> ReplayExecution:
    """One controlled replay: rebuild, program thresholds, run to stop.

    ``on_build`` is invoked after the execution is constructed but
    before it runs -- the hook the debug session uses to re-attach
    streaming sinks to the fresh recorder, so subscribers observe the
    re-execution's records as they are produced.

    Returns the execution with ``report`` filled; the caller owns
    shutdown.  Processes without a threshold run until they exit or
    block (they were past their last marker at the stopline).
    """
    execution = build_execution(spec, replay_log, record_from)
    if on_build is not None:
        on_build(execution)
    execution.runtime.set_thresholds(thresholds.as_dict())
    execution.report = execution.runtime.run_until_idle()
    return execution


def replay_matches_markers(
    execution: ReplayExecution, thresholds: MarkerVector
) -> bool:
    """Did every thresholded process stop exactly at its marker?

    Processes that exited or blocked before reaching the threshold
    return False -- the stopline lay beyond reachable history (e.g. a
    threshold past a deadlock).  A threshold naming a rank outside the
    execution is a caller error, reported as such.
    """
    procs = execution.runtime.procs
    for rank in thresholds:
        if not 0 <= rank < len(procs):
            raise ValueError(
                f"marker threshold names rank {rank}, but the execution "
                f"has {len(procs)} rank(s) (valid: 0..{len(procs) - 1})"
            )
        if procs[rank].marker != thresholds[rank]:
            return False
    return True
