"""A text command front end over :class:`DebugSession`.

p2d2 is a GUI; its operations map one-to-one onto the commands below, so
scripted and interactive (REPL) debugging sessions read like the paper's
worked example.  ``examples/debug_deadlock.py`` drives this interpreter
through the Figure 5-7 scenario.

Commands::

    run                     start / resume the whole program
    continue [r ...]        resume stopped processes (all or listed)
    step <r>                advance process r one instrumentation point
    interrupt               stop everything
    where [r]               position of one/all processes
    backtrace <r>           user-level stack of a stopped/blocked process
    locals <r> [depth]      locals of one of its frames (0 = innermost)
    states                  process states and markers
    break <file:line|fn> [r ...]   set a location breakpoint
    breaks                  list breakpoints
    delete <id>             remove a breakpoint
    threshold <r> <m|off>   set a UserMonitor threshold directly
    stopline <event> [vertical|past|future]   compute a stopline
    replay                  replay to the current stopline
    undo [n]                parallel undo of the last n resumptions
    trace [n]               show the last n trace records (default 10)
    matching                unmatched/intertwined/missed-message report
    deadlock                wait-for cycle report
    profile                 per-process time breakdown + comm matrix
    critical                critical-path analysis of the trace
    races                   wildcard message races in the trace
    stats                   history-index build/extend counters and
                            per-kernel engine timings
    save-trace <file>       write the history to a trace file
    export-svg <file>       render the time-space diagram as SVG
    help                    this text
"""

from __future__ import annotations

import shlex
from typing import Callable

from .session import DebugSession
from .stopline import StoplinePlacement


class CommandError(Exception):
    """Bad command syntax or arguments."""


class CommandInterpreter:
    """Parses command lines and drives a session; returns display text."""

    def __init__(self, session: DebugSession) -> None:
        self.session = session
        self._handlers: dict[str, Callable[[list[str]], str]] = {
            "run": self._cmd_run,
            "continue": self._cmd_continue,
            "c": self._cmd_continue,
            "step": self._cmd_step,
            "s": self._cmd_step,
            "interrupt": self._cmd_interrupt,
            "where": self._cmd_where,
            "backtrace": self._cmd_backtrace,
            "bt": self._cmd_backtrace,
            "locals": self._cmd_locals,
            "states": self._cmd_states,
            "break": self._cmd_break,
            "breaks": self._cmd_breaks,
            "delete": self._cmd_delete,
            "threshold": self._cmd_threshold,
            "stopline": self._cmd_stopline,
            "replay": self._cmd_replay,
            "undo": self._cmd_undo,
            "trace": self._cmd_trace,
            "matching": self._cmd_matching,
            "deadlock": self._cmd_deadlock,
            "profile": self._cmd_profile,
            "critical": self._cmd_critical,
            "races": self._cmd_races,
            "stats": self._cmd_stats,
            "save-trace": self._cmd_save_trace,
            "export-svg": self._cmd_export_svg,
            "help": self._cmd_help,
        }

    # ------------------------------------------------------------------
    def execute(self, line: str) -> str:
        """Run one command line; returns the text to display."""
        parts = shlex.split(line)
        if not parts:
            return ""
        cmd, args = parts[0], parts[1:]
        handler = self._handlers.get(cmd)
        if handler is None:
            raise CommandError(f"unknown command {cmd!r}; try 'help'")
        return handler(args)

    # ------------------------------------------------------------------
    @staticmethod
    def _rank(token: str) -> int:
        try:
            return int(token)
        except ValueError:
            raise CommandError(f"expected a rank, got {token!r}") from None

    def _cmd_run(self, args: list[str]) -> str:
        return self.session.run().describe()

    def _cmd_continue(self, args: list[str]) -> str:
        ranks = [self._rank(a) for a in args] or None
        return self.session.cont(ranks).describe()

    def _cmd_step(self, args: list[str]) -> str:
        if len(args) != 1:
            raise CommandError("usage: step <rank>")
        return self.session.step(self._rank(args[0])).describe()

    def _cmd_interrupt(self, args: list[str]) -> str:
        return self.session.interrupt().describe()

    def _cmd_where(self, args: list[str]) -> str:
        if args:
            return self.session.where(self._rank(args[0]))
        return "\n".join(
            self.session.where(r) for r in range(self.session.nprocs)
        )

    def _cmd_backtrace(self, args: list[str]) -> str:
        if len(args) != 1:
            raise CommandError("usage: backtrace <rank>")
        try:
            frames = self.session.stack(self._rank(args[0]))
        except ValueError as exc:
            return str(exc)
        return "\n".join(f"#{i} {f}" for i, f in enumerate(frames)) or "(no user frames)"

    def _cmd_locals(self, args: list[str]) -> str:
        if not 1 <= len(args) <= 2:
            raise CommandError("usage: locals <rank> [depth]")
        depth = int(args[1]) if len(args) > 1 else 0
        try:
            values = self.session.frame_locals(self._rank(args[0]), depth)
        except ValueError as exc:
            return str(exc)
        return "\n".join(f"{k} = {v}" for k, v in sorted(values.items()))

    def _cmd_states(self, args: list[str]) -> str:
        states = self.session.states()
        markers = self.session.markers()
        return "\n".join(
            f"p{r}: {states[r].value} marker={markers.get(r, 0)}"
            for r in sorted(states)
        )

    def _cmd_break(self, args: list[str]) -> str:
        if not args:
            raise CommandError("usage: break <file:line | function> [rank ...]")
        spec = args[0]
        ranks = [self._rank(a) for a in args[1:]] or None
        if ":" in spec:
            filename, _, lineno = spec.rpartition(":")
            try:
                bp = self.session.breakpoints.break_at_line(
                    filename, int(lineno), ranks=ranks
                )
            except ValueError:
                raise CommandError(f"bad line number in {spec!r}") from None
        else:
            bp = self.session.breakpoints.break_at_function(spec, ranks=ranks)
        return f"breakpoint {bp.bp_id}: {bp.description}"

    def _cmd_breaks(self, args: list[str]) -> str:
        bps = self.session.breakpoints.list()
        if not bps:
            return "no breakpoints"
        return "\n".join(
            f"{bp.bp_id}: {bp.description} hits={bp.hits}"
            f"{' (disabled)' if not bp.enabled else ''}"
            for bp in bps
        )

    def _cmd_delete(self, args: list[str]) -> str:
        if len(args) != 1:
            raise CommandError("usage: delete <breakpoint-id>")
        ok = self.session.breakpoints.remove(int(args[0]))
        return "deleted" if ok else "no such breakpoint"

    def _cmd_threshold(self, args: list[str]) -> str:
        if len(args) != 2:
            raise CommandError("usage: threshold <rank> <marker|off>")
        rank = self._rank(args[0])
        if args[1] == "off":
            self.session.set_threshold(rank, None)
            return f"p{rank}: threshold cleared"
        self.session.set_threshold(rank, int(args[1]))
        return f"p{rank}: threshold {args[1]}"

    def _cmd_stopline(self, args: list[str]) -> str:
        if not args:
            raise CommandError("usage: stopline <event-index> [vertical|past|future]")
        event = int(args[0])
        placement = StoplinePlacement.VERTICAL
        if len(args) > 1:
            try:
                placement = {
                    "vertical": StoplinePlacement.VERTICAL,
                    "past": StoplinePlacement.PAST_FRONTIER,
                    "future": StoplinePlacement.FUTURE_FRONTIER,
                }[args[1]]
            except KeyError:
                raise CommandError(f"unknown placement {args[1]!r}") from None
        return self.session.set_stopline(event, placement).describe()

    def _cmd_replay(self, args: list[str]) -> str:
        return self.session.replay().describe()

    def _cmd_undo(self, args: list[str]) -> str:
        steps = int(args[0]) if args else 1
        return self.session.undo(steps).describe()

    def _cmd_trace(self, args: list[str]) -> str:
        n = int(args[0]) if args else 10
        records = list(self.session.trace())[-n:]
        return "\n".join(str(r) for r in records) or "(empty trace)"

    def _cmd_matching(self, args: list[str]) -> str:
        return self.session.matching_report().as_text()

    def _cmd_deadlock(self, args: list[str]) -> str:
        return self.session.deadlock_report().as_text()

    def _cmd_profile(self, args: list[str]) -> str:
        from repro.analysis import (
            communication_matrix,
            function_profile_text,
            time_breakdown_text,
        )

        idx = self.session.index()
        trace = idx.trace
        parts = [
            time_breakdown_text(trace, index=idx),
            "",
            communication_matrix(trace, index=idx).as_text(),
        ]
        fn = function_profile_text(trace, index=idx)
        if "no function records" not in fn:
            parts += ["", fn]
        return "\n".join(parts)

    def _cmd_critical(self, args: list[str]) -> str:
        from repro.analysis import critical_path

        limit = int(args[0]) if args else 12
        idx = self.session.index()
        return critical_path(idx.trace, index=idx).as_text(limit=limit)

    def _cmd_races(self, args: list[str]) -> str:
        from repro.analysis import detect_races

        idx = self.session.index()
        races = detect_races(idx.trace, index=idx)
        if not races:
            return "no message races detected"
        return "\n".join(r.describe() for r in races)

    def _cmd_stats(self, args: list[str]) -> str:
        text = self.session.index().stats().as_text()
        paged = getattr(self.session, "paged_index", None)
        if paged is not None:
            text += "\n" + paged.stats().as_text()
        return text

    def _cmd_save_trace(self, args: list[str]) -> str:
        if len(args) != 1:
            raise CommandError("usage: save-trace <file>")
        from repro.trace import save_trace

        trace = self.session.trace()
        save_trace(trace, args[0])
        return f"wrote {len(trace)} records to {args[0]}"

    def _cmd_export_svg(self, args: list[str]) -> str:
        if len(args) != 1:
            raise CommandError("usage: export-svg <file>")
        from repro.viz import build_diagram, save_svg

        diagram = build_diagram(self.session.trace())
        if self.session.current_stopline is not None:
            diagram.set_stopline(self.session.current_stopline.time)
        save_svg(diagram, args[0])
        return f"wrote {args[0]}"

    def _cmd_help(self, args: list[str]) -> str:
        return __doc__ or ""


def run_script(session: DebugSession, lines: list[str]) -> list[str]:
    """Execute a list of command lines; returns their outputs."""
    interp = CommandInterpreter(session)
    return [interp.execute(line) for line in lines]
