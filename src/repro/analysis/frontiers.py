"""Consistent frontiers and concurrency regions (paper §4.1, Figure 8).

    "In order to depict the past and future of an event we use the
    notion of consistent frontier [15].  It is defined as a set of
    events in which no event happens before another.  Lack of circular
    message dependencies in the trace file guarantees that set of most
    recent events in the past is a consistent frontier (past frontier).
    The same is true for the set of earliest events of the future
    (future frontier)."

Figure 8: the user clicks an event; the debugger draws the past and
future frontiers in the timeline; the region between them is the
concurrency region.  §4.1 also sketches frontier *stoplines*: "stopping
execution in each process either immediately after the point where it
could last affect the selected state or immediately before the point
where it could first be affected by the selected state" -- implemented
here as the per-process marker thresholds the two frontiers induce.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Optional, Sequence

import numpy as np

from repro.trace.events import TraceRecord
from repro.trace.trace import Trace

from .causality import CausalOrder

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .history import HistoryIndex


@dataclass
class Frontier:
    """One event per process (None where the process has no event on the
    relevant side)."""

    events: dict[int, Optional[TraceRecord]] = field(default_factory=dict)

    def event(self, proc: int) -> Optional[TraceRecord]:
        return self.events.get(proc)

    def indexes(self) -> list[int]:
        return [r.index for r in self.events.values() if r is not None]

    def times(self) -> dict[int, float]:
        return {
            p: r.t1 for p, r in self.events.items() if r is not None
        }

    def markers(self) -> dict[int, int]:
        return {
            p: r.marker for p, r in self.events.items() if r is not None
        }


@dataclass
class FrontierAnalysis:
    """Past/future frontiers and concurrency region of one event."""

    event: TraceRecord
    past_frontier: Frontier
    future_frontier: Frontier
    concurrency_indexes: Sequence[int]
    order: CausalOrder

    def concurrency_events(self) -> list[TraceRecord]:
        return [self.order.trace[i] for i in self.concurrency_indexes]

    # -- frontier stoplines (§4.1 last paragraph) ------------------------
    def past_stopline(self) -> dict[int, int]:
        """Marker thresholds stopping each process *immediately after*
        the last event that could affect the selected state.

        A threshold of ``m`` stops before the construct with marker
        ``m``, so "immediately after event with marker k" is ``k + 1``.
        Processes with no past event get threshold 1 (stop at their
        first construct).
        """
        out: dict[int, int] = {}
        for p in range(self.order.trace.nprocs):
            rec = self.past_frontier.event(p)
            out[p] = (rec.marker + 1) if rec is not None else 1
        out[self.event.proc] = self.event.marker
        return out

    def future_stopline(self) -> dict[int, int]:
        """Thresholds stopping each process *immediately before* the
        first event the selected state could affect.  Processes never
        affected get no threshold (omitted: they run to completion)."""
        out: dict[int, int] = {}
        for p in range(self.order.trace.nprocs):
            rec = self.future_frontier.event(p)
            if rec is not None:
                out[p] = rec.marker
        out[self.event.proc] = self.event.marker
        return out


def analyze_frontiers(
    trace: "Trace | Iterable[TraceRecord]",
    event_index: int,
    order: Optional[CausalOrder] = None,
    index: "Optional[HistoryIndex]" = None,
) -> FrontierAnalysis:
    """Compute past/future frontiers of the event at ``event_index``.

    ``trace`` may be a materialized :class:`Trace` or any record
    iterator (e.g. a trace-file reader's stream) -- the streaming form
    of the §4.1 analysis.  The causal order comes from the shared
    :class:`~repro.analysis.history.HistoryIndex` (``index=`` to pass an
    existing one; a bare trace memoizes one on demand); an explicit
    ``order=`` still wins for back compatibility.
    """
    from .history import ensure_index

    idx = ensure_index(trace, index=index)
    trace = idx.trace
    if order is None:
        order = idx.order
    event = trace[event_index]

    past = order.past(event_index)  # ascending trace indexes
    future = order.future(event_index)

    # Frontier members per process in two scatter assignments: ascending
    # past indexes overwrite, so each slot keeps the *latest* past event;
    # future is scattered in reverse so each slot keeps the *earliest*.
    nprocs = trace.nprocs
    proc_col = idx.column("proc")
    last_past = np.full(nprocs, -1, dtype=np.int64)
    last_past[proc_col[past]] = past
    first_future = np.full(nprocs, -1, dtype=np.int64)
    rev = future[::-1]
    first_future[proc_col[rev]] = rev

    past_frontier = Frontier()
    future_frontier = Frontier()
    for p in range(nprocs):
        i, j = int(last_past[p]), int(first_future[p])
        past_frontier.events[p] = trace[i] if i >= 0 else None
        future_frontier.events[p] = trace[j] if j >= 0 else None

    # concurrency region = everything in neither closure (reuses the two
    # closures just computed instead of re-deriving them)
    mask = np.ones(len(trace), dtype=bool)
    mask[past] = False
    mask[future] = False
    mask[event_index] = False

    return FrontierAnalysis(
        event=event,
        past_frontier=past_frontier,
        future_frontier=future_frontier,
        concurrency_indexes=np.nonzero(mask)[0].tolist(),
        order=order,
    )


def is_antichain(
    trace: "Trace | Iterable[TraceRecord]",
    indexes: Sequence[int],
    order: Optional[CausalOrder] = None,
    index: "Optional[HistoryIndex]" = None,
) -> bool:
    """Literal reading of the paper's definition: "a set of events in
    which no event happens before another".

    One vectorized clock-matrix comparison over the k selected events:
    ``a -> b`` iff ``VC[a][proc(a)] <= VC[b][proc(a)]``, so gathering
    each member's own clock component and comparing against the k x k
    matrix of those components answers every pair at once.
    """
    from .history import ensure_index

    idx = ensure_index(trace, index=index)
    trace = idx.trace
    if order is None:
        order = idx.order
    sel = np.asarray(list(indexes), dtype=np.int64)
    k = len(sel)
    if k < 2:
        return True
    procs = np.fromiter((trace[int(i)].proc for i in sel), dtype=np.int64, count=k)
    clocks = order.clocks[sel]  # (k, nprocs)
    own = clocks[np.arange(k), procs]  # own component of each member
    # hb[b, a] <=> member a happens before member b (a's own component
    # is visible in b's clock).
    hb = own[None, :] <= clocks[:, procs]
    distinct = sel[None, :] != sel[:, None]  # i != j on *event* identity
    return not bool(np.any(hb & distinct))


def cut_of_frontier(
    trace: "Trace | Iterable[TraceRecord]",
    indexes: Sequence[int],
    inclusive: bool = True,
    index: "Optional[HistoryIndex]" = None,
) -> Optional[set[int]]:
    """The per-process prefix cut a frontier bounds.

    ``inclusive`` keeps each frontier member inside the cut (the shape
    of a *past* frontier: "immediately after the point where it could
    last affect"); ``inclusive=False`` cuts strictly before each member
    (the shape of a *future* frontier / stopline: stop *before* the
    member executes).  Processes without a member contribute an empty
    prefix when exclusive and their whole row is outside either way.

    Returns None for an ill-formed frontier (two members on one process).
    """
    from .history import ensure_index

    idx = ensure_index(trace, index=index)
    trace = idx.trace
    members = [trace[i] for i in indexes]
    by_proc: dict[int, int] = {}
    for rec in members:
        if rec.proc in by_proc:
            return None
        by_proc[rec.proc] = rec.index
    included: set[int] = set()
    for p, limit in by_proc.items():
        for rec in idx.by_proc(p):
            if rec.index < limit or (inclusive and rec.index == limit):
                included.add(rec.index)
            if rec.index >= limit:
                break
    return included


def is_consistent_cut(
    trace: Trace,
    included: "set[int]",
    index: "Optional[HistoryIndex]" = None,
) -> bool:
    """Is the event set closed under happens-before?

    Messages are the only cross-process causality, so a per-process
    prefix set is a consistent cut iff no message is received inside it
    but sent outside it -- the paper's "no message was received before
    it was sent" criterion (§4.1).  (The caller guarantees the
    per-process prefix property; :func:`cut_of_frontier` constructs it.)
    """
    from .history import ensure_index

    pairs = ensure_index(trace, index=index).message_pairs()
    for pair in pairs:
        if pair.recv.index in included and pair.send.index not in included:
            return False
    return True


def is_consistent_frontier(
    trace: "Trace | Iterable[TraceRecord]",
    indexes: Sequence[int],
    order: Optional[CausalOrder] = None,
    inclusive: bool = True,
    index: "Optional[HistoryIndex]" = None,
) -> bool:
    """Does this frontier bound a consistent cut?

    This is what the paper's "consistent frontier" guarantees in
    practice: a legal set of cross-process breakpoints [18].  A *past*
    frontier (most recent events in the past) is consistent inclusively;
    a *future* frontier (earliest events of the future) is consistent
    exclusively -- stopping just before each member.  Frontier members
    need not form an antichain (see :func:`is_antichain` for the
    literal reading): a past-frontier member may causally precede
    another through a message chain without invalidating the cut.
    """
    from .history import ensure_index

    del order  # kept for signature compatibility; cut test needs no VCs
    idx = ensure_index(trace, index=index)
    trace = idx.trace
    included = cut_of_frontier(trace, indexes, inclusive=inclusive, index=idx)
    if included is None:
        return False
    return is_consistent_cut(trace, included, index=idx)
