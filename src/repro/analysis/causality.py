"""Happens-before over trace events, via vector clocks.

The causality relation the paper's features rest on (§4.1):

* program order: events of one process in trace order;
* message order: a send happens before its matching receive;
* transitive closure of the above.

"The consistency of breakpoints derived from the stopline follows from
the causality of communications in the trace file, i.e., no message was
received before it was sent."

Vector clocks are computed in one pass over the trace (recording order
is a linearization of happens-before: a receive record is only appended
after its matching send's record exists), stored as an ``(n_events,
nprocs)`` NumPy array for O(1) comparisons and vectorized past/future
closures.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.trace.trace import Trace


@dataclass
class CausalOrder:
    """Vector clocks plus comparison/closure queries for one trace.

    ``clocks[i]`` is the vector clock of the record with trace index
    ``i`` (component p = count of events of process p in that record's
    causal past, inclusive).
    """

    trace: Trace
    clocks: np.ndarray  # (n_events, nprocs), dtype int64
    #: per-record proc column (int64), derived lazily when not supplied.
    #: A HistoryIndex hands in its column-store view so closure queries
    #: never pay the O(n) Python attribute walk.
    procs: Optional[np.ndarray] = None

    def _proc_column(self) -> np.ndarray:
        if self.procs is None:
            self.procs = np.fromiter(
                (r.proc for r in self.trace), dtype=np.int64, count=len(self.trace)
            )
        return self.procs

    # ------------------------------------------------------------------
    # pairwise relations
    # ------------------------------------------------------------------
    def happens_before(self, a: int, b: int) -> bool:
        """Does record ``a`` causally precede record ``b``?  (strict)

        Standard vector-clock test: since every record increments its own
        process component, ``a -> b`` iff b's clock has seen a's own
        component: ``VC[a][proc(a)] <= VC[b][proc(a)]``.
        """
        if a == b:
            return False
        pa = self.trace[a].proc
        return bool(self.clocks[a, pa] <= self.clocks[b, pa])

    def concurrent(self, a: int, b: int) -> bool:
        """Neither ordered: the pair lies in each other's concurrency
        region (the area between the slanted lines of Figure 8)."""
        if a == b:
            return False
        return not self.happens_before(a, b) and not self.happens_before(b, a)

    # ------------------------------------------------------------------
    # closures
    # ------------------------------------------------------------------
    def past(self, e: int) -> np.ndarray:
        """Trace indexes of all events that happen before ``e``.

        "The past of the event is defined as the set of events that are
        guaranteed to have happened before it."
        """
        procs = self._proc_column()
        own = self.clocks[np.arange(len(self.trace)), procs]
        mask = own <= self.clocks[e, procs]
        mask[e] = False
        return np.nonzero(mask)[0]

    def future(self, e: int) -> np.ndarray:
        """Trace indexes of all events ``e`` happens before.

        "An event is in the future of the current event if the [current
        event] happened before [it]."
        """
        pe = self.trace[e].proc
        mask = self.clocks[:, pe] >= self.clocks[e, pe]
        mask[e] = False
        return np.nonzero(mask)[0]

    def concurrency_region(self, e: int) -> np.ndarray:
        """Events neither in the past nor the future of ``e``."""
        mask = np.ones(len(self.trace), dtype=bool)
        mask[self.past(e)] = False
        mask[self.future(e)] = False
        mask[e] = False
        return np.nonzero(mask)[0]

    # ------------------------------------------------------------------
    def vector_of(self, e: int) -> tuple[int, ...]:
        return tuple(int(x) for x in self.clocks[e])


def compute_causal_order(trace: Trace) -> CausalOrder:
    """One-pass vector-clock computation over a trace.

    Every record counts as an event on its process (component +1); a
    receive additionally joins the clock of its matched send.  Records
    are visited in per-process program order interleaved so that every
    receive is visited after its send (guaranteed because trace indexes
    are assigned in a causal linearization).
    """
    n = len(trace)
    nprocs = trace.nprocs
    clocks = np.zeros((n, nprocs), dtype=np.int64)
    current = np.zeros((nprocs, nprocs), dtype=np.int64)  # per-proc running VC

    send_of_recv: dict[int, int] = {
        pair.recv.index: pair.send.index for pair in trace.message_pairs()
    }

    for rec in trace:  # trace order = causal linearization
        p = rec.proc
        current[p, p] += 1
        if rec.index in send_of_recv:
            s = send_of_recv[rec.index]
            np.maximum(current[p], clocks[s], out=current[p])
        clocks[rec.index] = current[p]
    return CausalOrder(trace=trace, clocks=clocks)


def check_trace_causality(trace: Trace, index=None) -> Optional[str]:
    """Verify the fundamental invariant: no receive completes before its
    matching send completed (returns a description of the first
    violation, or None).

    This is the property that makes a vertical stopline a consistent cut
    (§4.1: "no message was received before it was sent").  Pass a
    :class:`~repro.analysis.history.HistoryIndex` via ``index=`` to reuse
    an existing matching.
    """
    from .history import ensure_index

    for pair in ensure_index(trace, index=index).message_pairs():
        if pair.recv.t1 < pair.send.t1:
            return (
                f"receive {pair.recv.index} (t1={pair.recv.t1}) completes "
                f"before its send {pair.send.index} (t1={pair.send.t1})"
            )
    return None
