"""Deadlock detection from wait-for relations (paper §4.4).

    "When provided with the history trace, the debugger is also able to
    detect deadlocks due to circular dependency in sends or receives."

Two entry points:

* :func:`build_wait_graph` / :func:`find_cycles` -- the wait-for graph
  over currently-blocked processes (a blocked receive waits on its
  source; a blocked synchronous send on its destination; an
  ``ANY_SOURCE`` receive on every other live process) and its cycles;
* :func:`analyze_deadlock` -- the full report combining cycles with the
  §4.4 missed-message diagnosis, which explains *why* the cycle exists
  (the Strassen case: 0 <-> 7 cycle caused by the operand that went
  astray).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Optional, Sequence

import networkx as nx

from repro.mp.datatypes import ANY_SOURCE
from repro.mp.process import WaitInfo
from repro.trace.events import TraceRecord
from repro.trace.trace import Trace

from .matching import MissedMessage, diagnose_missed_messages

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .history import HistoryIndex


@dataclass
class DeadlockReport:
    """Cycles, the waits behind them, and probable causes."""

    waiting: list[WaitInfo] = field(default_factory=list)
    cycles: list[list[int]] = field(default_factory=list)
    missed: list[MissedMessage] = field(default_factory=list)

    @property
    def deadlocked(self) -> bool:
        return bool(self.cycles)

    def involved_ranks(self) -> set[int]:
        return {r for cycle in self.cycles for r in cycle}

    def as_text(self) -> str:
        if not self.waiting:
            return "no blocked processes"
        lines = ["deadlock report:"]
        for w in self.waiting:
            lines.append(f"  {w}")
        for cycle in self.cycles:
            pretty = " -> ".join(f"p{r}" for r in cycle + cycle[:1])
            lines.append(f"  cycle: {pretty}")
        for m in self.missed:
            lines.append("  cause? " + m.describe())
        if not self.cycles:
            lines.append("  no circular dependency (starvation, not deadlock)")
        return "\n".join(lines)


def build_wait_graph(
    waiting: Sequence[WaitInfo],
    nprocs: int,
) -> nx.DiGraph:
    """Directed wait-for graph: edge p -> q means p cannot proceed until
    q acts.  A wildcard receive waits on every other process that is
    itself still blocked (an exited process can no longer send)."""
    g = nx.DiGraph()
    blocked_ranks = {w.rank for w in waiting}
    g.add_nodes_from(blocked_ranks)
    for w in waiting:
        if w.peer == ANY_SOURCE:
            for q in range(nprocs):
                if q != w.rank and q in blocked_ranks:
                    g.add_edge(w.rank, q)
        elif 0 <= w.peer < nprocs:
            g.add_edge(w.rank, w.peer)
    return g


def find_cycles(graph: nx.DiGraph) -> list[list[int]]:
    """All simple cycles, each rotated to start at its smallest rank and
    sorted for deterministic output."""
    cycles = []
    for cycle in nx.simple_cycles(graph):
        k = cycle.index(min(cycle))
        cycles.append(cycle[k:] + cycle[:k])
    cycles.sort()
    return cycles


def analyze_deadlock(
    waiting: Sequence[WaitInfo],
    nprocs: int,
    trace: "Trace | Iterable[TraceRecord] | None" = None,
    index: "Optional[HistoryIndex]" = None,
) -> DeadlockReport:
    """Full deadlock analysis.

    ``waiting`` usually comes from ``RunReport.waiting`` or
    ``Runtime.blocked_waits()``.  Supplying the trace -- either
    materialized or as any record iterator (a trace-file stream, a
    sink's history) -- or a :class:`~repro.analysis.history.HistoryIndex`
    enables the missed-message causal diagnosis without re-deriving the
    unmatched-send list.
    """
    graph = build_wait_graph(waiting, nprocs)
    report = DeadlockReport(
        waiting=list(waiting),
        cycles=find_cycles(graph),
    )
    if trace is not None or index is not None:
        from .history import ensure_index

        idx = ensure_index(trace, nprocs=nprocs, index=index)
        report.missed = diagnose_missed_messages(idx.unmatched_sends(), waiting)
    return report


def wait_chain(waiting: Sequence[WaitInfo], nprocs: int, start: int) -> list[int]:
    """Follow who-waits-for-whom from ``start`` until it escapes the
    blocked set or revisits a rank (cycle)."""
    peer_of = {w.rank: w.peer for w in waiting}
    chain = [start]
    seen = {start}
    cur = start
    while cur in peer_of:
        nxt = peer_of[cur]
        if nxt == ANY_SOURCE or not 0 <= nxt < nprocs:
            break
        chain.append(nxt)
        if nxt in seen:
            break
        seen.add(nxt)
        cur = nxt
    return chain
