"""Message-race detection (paper §4.4, after Netzer et al. [15][17]).

    "If however the program is multithreaded, then message racing can
    occur.  In this case the user might want to turn on the race
    detection feature of the debugger."

In this runtime the only admissible nondeterminism is wildcard matching
(``ANY_SOURCE``/``ANY_TAG``) -- single-threaded processes, as the paper
assumes -- so a *message race* is: a wildcard receive for which some
other send could have been delivered instead.  Two detectors:

* :func:`detect_races` -- static, from one trace + its causal order: a
  send races with a receive if it matches the receive's posted pattern
  and is not causally after the receive (so some schedule could deliver
  it there).  The posted pattern is captured by the wrapper library in
  each receive record's ``extra``.
* :func:`explore_schedules` -- empirical: rerun the program under many
  seeded random schedules and report how many distinct matchings occur
  (1 means no schedule-visible race for the seeds tried).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

import numpy as np

from repro.mp.datatypes import ANY_SOURCE, ANY_TAG
from repro.trace.events import TraceRecord
from repro.trace.trace import Trace

from .causality import CausalOrder

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .history import HistoryIndex


class UnsteerableAlternativeError(ValueError):
    """The alternative is already consumed by a receive that happens
    before the racing one, so single-steer forcing cannot deliver it
    (the forcing log would force one envelope at two receives and the
    replay would deadlock waiting for a second copy)."""


@dataclass
class MessageRace:
    """A wildcard receive with alternative deliverable sends."""

    recv: TraceRecord
    matched_send: TraceRecord
    alternatives: list[TraceRecord] = field(default_factory=list)

    def describe(self) -> str:
        alts = ", ".join(
            f"{s.src}->{s.dst}#{s.seq}@{s.location.lineno}" for s in self.alternatives
        )
        return (
            f"race at p{self.recv.proc} recv (marker {self.recv.marker}, "
            f"{self.recv.location}): matched {self.matched_send.src}->"
            f"{self.matched_send.dst}#{self.matched_send.seq}; "
            f"could also match: {alts}"
        )


def _posted_pattern(rec: TraceRecord) -> tuple[int, int]:
    """(posted source, posted tag) of a receive record, defaulting to the
    resolved values when the wrapper didn't capture the pattern."""
    src = rec.extra.get("posted_src", rec.src)
    tag = rec.extra.get("posted_tag", rec.tag)
    return src, tag


def is_wildcard_recv(rec: TraceRecord) -> bool:
    src, tag = _posted_pattern(rec)
    return src == ANY_SOURCE or tag == ANY_TAG


def detect_races(
    trace: Trace,
    order: Optional[CausalOrder] = None,
    include_tag_wildcards: bool = True,
    index: "Optional[HistoryIndex]" = None,
    engine: Optional[str] = None,
) -> list[MessageRace]:
    """All wildcard receives with at least one racing alternative.

    A send ``s2`` races with receive ``r`` (matched to ``s``) when:

    * ``s2 != s`` targets ``r``'s process and matches the posted
      (source, tag) pattern, and
    * ``r`` does not happen before ``s2`` -- i.e. ``s2`` does not
      causally depend on the outcome of ``r``, so a different schedule
      could have had ``s2``'s message available at ``r``.

    Derived state (clocks, matching) comes from the shared
    :class:`~repro.analysis.history.HistoryIndex`: pass ``index=`` (or
    a precomputed ``order=``) when a caller already holds one; a bare
    trace memoizes the index so nothing is derived twice either way.

    ``engine`` defaults to the index's engine.  The numpy kernel builds
    one candidate mask over the send (dst, src, tag) columns per
    wildcard receive and evaluates happens-before for *all* sends at
    once against the clock matrix; the python kernel is the O(receives
    x sends) per-pair reference.  Both report wall-clock into the
    index's per-kernel stats (``races[<engine>]``).
    """
    from .history import ENGINES, ensure_index

    idx = ensure_index(trace, index=index)
    eng = engine if engine is not None else idx.engine
    if eng not in ENGINES:
        raise ValueError(f"unknown engine {eng!r}; expected one of {ENGINES}")
    start = time.perf_counter()
    try:
        if eng == "python":
            races = _detect_races_python(idx, order, include_tag_wildcards)
        else:
            races = _detect_races_numpy(idx, order, include_tag_wildcards)
    finally:
        idx.record_kernel(f"races[{eng}]", time.perf_counter() - start)
    return races


def _detect_races_python(
    idx: "HistoryIndex",
    order: Optional[CausalOrder],
    include_tag_wildcards: bool,
) -> list[MessageRace]:
    """Reference kernel: per-pair ``happens_before`` calls."""
    trace = idx.trace
    if order is None:
        order = idx.order
    pairs = {p.recv.index: p.send for p in idx.message_pairs()}
    sends = [r for r in trace if r.is_send]
    races: list[MessageRace] = []
    for rec in trace:
        if not rec.is_recv or not is_wildcard_recv(rec):
            continue
        psrc, ptag = _posted_pattern(rec)
        if psrc != ANY_SOURCE and not include_tag_wildcards:
            continue
        matched = pairs.get(rec.index)
        if matched is None:
            continue
        alternatives = []
        for s2 in sends:
            if s2.index == matched.index or s2.dst != rec.proc:
                continue
            if psrc not in (ANY_SOURCE, s2.src):
                continue
            if ptag not in (ANY_TAG, s2.tag):
                continue
            if not order.happens_before(rec.index, s2.index):
                alternatives.append(s2)
        if alternatives:
            races.append(
                MessageRace(recv=rec, matched_send=matched, alternatives=alternatives)
            )
    return races


def _detect_races_numpy(
    idx: "HistoryIndex",
    order: Optional[CausalOrder],
    include_tag_wildcards: bool,
) -> list[MessageRace]:
    """Vectorized kernel over the index's column store.

    Per wildcard receive ``r`` on process ``pr``, the racing-send set is
    one boolean mask over the send columns: ``dst == pr`` (narrowed by
    the posted source/tag when not wildcarded), minus the matched send,
    intersected with NOT ``r -> s2``.  The happens-before test for all
    sends at once is the standard vector-clock comparison against row
    ``pr`` of the clock matrix: ``r -> s2`` iff
    ``clocks[r, pr] <= clocks[s2, pr]``, so the *negation* is a single
    ``<`` over the precomputed send-clock column.
    """
    from .history import RECV_CODES, SEND_CODES

    trace = idx.trace
    clocks = order.clocks if order is not None else idx.clocks
    cols = idx.columns
    kind = cols["kind"]
    recv_idx = np.nonzero(kind == RECV_CODES[0])[0]
    wildcards: list[TraceRecord] = []
    for i in recv_idx.tolist():
        rec = trace[i]
        if not is_wildcard_recv(rec):
            continue
        psrc, _ = _posted_pattern(rec)
        if psrc != ANY_SOURCE and not include_tag_wildcards:
            continue
        wildcards.append(rec)
    if not wildcards:
        return []
    pairs = {p.recv.index: p.send for p in idx.message_pairs()}
    send_idx = np.nonzero(np.isin(kind, SEND_CODES))[0]
    if send_idx.size == 0:
        return []
    s_src = cols["src"][send_idx]
    s_dst = cols["dst"][send_idx]
    s_tag = cols["tag"][send_idx]
    send_clocks = clocks[send_idx]
    recs = trace.records  # one tuple grab; skips __getitem__ per alternative
    races: list[MessageRace] = []
    for rec in wildcards:
        matched = pairs.get(rec.index)
        if matched is None:
            continue
        psrc, ptag = _posted_pattern(rec)
        pr = rec.proc
        mask = s_dst == pr
        if psrc != ANY_SOURCE:
            mask &= s_src == psrc
        if ptag != ANY_TAG:
            mask &= s_tag == ptag
        mask &= send_idx != matched.index
        mask &= send_clocks[:, pr] < clocks[rec.index, pr]
        alt = send_idx[mask]
        if alt.size:
            races.append(
                MessageRace(
                    recv=rec,
                    matched_send=matched,
                    alternatives=[recs[j] for j in alt.tolist()],
                )
            )
    return races


def steer_to_alternative(
    base_log,
    trace: Trace,
    race: MessageRace,
    alternative: TraceRecord,
    order: Optional[CausalOrder] = None,
    index: "Optional[HistoryIndex]" = None,
):
    """Build a forcing log that delivers ``alternative`` to the racing
    receive -- deterministic exploration of the other side of a race.

    The §4.2 machinery forces replays back to the *observed* matching;
    steering turns the same mechanism into a what-if tool: replaying
    under the returned log, the racing receive matches ``alternative``
    instead of its original message.

    Everything downstream of the steer point may legitimately diverge
    (the master may hand out tasks in a different order, so later
    matchings differ), so forcing is kept only for receives that
    *happen before* the racing receive; everything else matches by the
    normal rules.  Forced-entry/receive alignment assumes blocking
    receives (completion order == post order per process); programs
    built on out-of-order ``irecv`` completion should steer manually.

    ``alternative`` must be one of ``race.alternatives``.
    """
    from repro.mp.message import Envelope
    from repro.mp.record import CommLog

    from .history import ensure_index

    if alternative.index not in {a.index for a in race.alternatives}:
        raise ValueError("alternative is not one of the race's candidates")
    idx = ensure_index(trace, index=index)
    trace = idx.trace
    if order is None:
        order = idx.order

    rank = race.recv.proc
    alt_env = Envelope(
        src=alternative.src,
        dst=alternative.dst,
        tag=alternative.tag,
        seq=alternative.seq,
        comm_id=alternative.extra.get("comm", 0),
    )

    # Align each rank's forced entries (sorted by post index) with its
    # receive records in program order.
    steered = CommLog()
    race_entry_key = None
    for r in range(trace.nprocs):
        entries = sorted(
            (post, env)
            for (rr, post), env in base_log.recv_matches.items()
            if rr == r
        )
        recvs = [rec for rec in trace.by_proc(r) if rec.is_recv]
        if len(entries) != len(recvs):
            raise ValueError(
                f"forcing-log/trace misalignment on rank {r}: the base log "
                f"records {len(entries)} receive matching(s) but the trace "
                f"has {len(recvs)} receive record(s); the log and trace must "
                "come from the same execution (blocking receives, completion "
                "order == post order) for steering to align them"
            )
        for (post_idx, env), rec in zip(entries, recvs):
            if rec.index == race.recv.index:
                race_entry_key = (r, post_idx)
            elif order.happens_before(rec.index, race.recv.index):
                steered.recv_matches[(r, post_idx)] = env
    if race_entry_key is None:
        raise ValueError(
            "the racing receive's matching is not in the base log"
        )
    for key, env in steered.recv_matches.items():
        if env == alt_env:
            raise UnsteerableAlternativeError(
                f"alternative {alt_env} is already delivered to receive "
                f"{key} in the forced prefix (it happens before the racing "
                "receive); a single steer cannot deliver it again -- "
                "exploring that matching requires exchanging the earlier "
                "receive's message too"
            )
    steered.recv_matches[race_entry_key] = alt_env
    # waitany choices: keep only those whose position is safely causal --
    # conservatively, none (free choice downstream of a steer).
    return steered


def matching_fingerprint(comm_log, markers=None) -> tuple:
    """A hashable summary of one run's matching decisions.

    ``markers`` (optional rank -> execution-marker mapping) extends the
    fingerprint with execution-marker coordinates: two forcing logs with
    identical matchings but different steer points (the schedule-space
    explorer tags each candidate with the racing receive's marker) hash
    differently, while plain matching fingerprints stay comparable with
    pre-marker callers.
    """
    fp = tuple(
        (rank, idx, env.src, env.tag, env.seq)
        for (rank, idx), env in sorted(comm_log.recv_matches.items())
    )
    if markers:
        fp = fp + (("markers",) + tuple(sorted(markers.items())),)
    return fp


def explore_schedules(
    program,
    nprocs: int,
    seeds=range(8),
    *,
    backend=None,
    policy: str = "random",
) -> dict[tuple, int]:
    """Run under several random schedules; map matching fingerprints to
    occurrence counts.  More than one key = schedule-sensitive matching
    (an observed race).

    ``backend`` / ``policy`` pass through to the runtime, so the sweep
    can run on the fast deterministic engines (``backend="simtime"``);
    the runtime is shut down even when a schedule crashes or deadlocks,
    so no execution threads outlive a failed sweep.
    """
    from repro.mp.runtime import Runtime

    seen: dict[tuple, int] = {}
    for seed in seeds:
        rt = Runtime(nprocs, backend=backend, policy=policy, seed=seed)
        try:
            rt.run(program)
            fp = matching_fingerprint(rt.comm_log)
        finally:
            rt.shutdown()
        seen[fp] = seen.get(fp, 0) + 1
    return seen
