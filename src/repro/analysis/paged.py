"""Out-of-core history access: window queries with bounded memory.

:class:`~repro.analysis.history.HistoryIndex` materializes the whole
trace -- records, columns, derived kernels -- which is the right trade
for traces that fit in RAM and analyses that consume all of history
(clocks, matching, critical path).  The paper's *zoom* workflow is
different: "the required arcs are reconstructed by rescanning the
appropriate portion of the trace file" (§4.3).  For a 100M-event trace
that rescan must not re-materialize everything; it needs exactly what
:class:`OutOfCoreIndex` provides:

* only the trace file's **per-block metadata** stays resident -- one
  :class:`~repro.trace.tracefile.BlockRef` (byte offsets, record count,
  t-span, proc set) per columnar block, a few hundred bytes each;
* :meth:`window` / :meth:`seek_window` select overlapping blocks from
  that metadata, page the needed :class:`ColumnBlock`\\ s in through the
  reader (decompressing on the fly when the file is compressed), and
  answer from them;
* decoded blocks live in a **bounded LRU cache**, so a query session's
  resident memory is O(cache), not O(trace), and repeated queries over
  the same region (the zoom pattern: narrow, adjacent windows) hit the
  cache instead of the disk.

Works identically over a single v3 file and a shard manifest (blocks
are then paged per shard).  The facade is deliberately *not* a full
``HistoryIndex``: global derivations (vector clocks, matching) need the
whole history and would defeat the memory bound; build an in-memory
index (``paged=False``) when you need those.

Construct directly, or via
``HistoryIndex.from_file(reader, paged=True)``.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from operator import attrgetter
from typing import TYPE_CHECKING, Optional

import numpy as np

from repro.trace.columnar import ColumnBlock
from repro.trace.events import TraceRecord

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.trace.tracefile import BlockRef, TraceFileReader

#: default LRU capacity: 32 blocks x 512 records x ~100 B/record keeps
#: the hot set of a zoom session under a couple of MB
DEFAULT_CACHE_BLOCKS = 32


@dataclass
class PagedStats:
    """Cache/paging economics of one :class:`OutOfCoreIndex`.

    ``block_loads`` counts blocks decoded off disk, ``cache_hits``
    blocks served from the LRU, ``evictions`` blocks dropped to stay
    inside the bound; ``queries`` counts window queries answered.
    """

    block_loads: int = 0
    cache_hits: int = 0
    evictions: int = 0
    queries: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.block_loads + self.cache_hits
        return self.cache_hits / total if total else 0.0

    def snapshot(self) -> "PagedStats":
        return PagedStats(
            self.block_loads, self.cache_hits, self.evictions, self.queries
        )


def _block_nbytes(block: ColumnBlock) -> int:
    """Resident-size estimate of one decoded block (column arrays; the
    interned side tables are shared and comparatively small)."""
    return sum(col.nbytes for col in block.columns.values())


class BlockCache:
    """A bounded LRU of decoded :class:`ColumnBlock`\\ s.

    Bounded by block count and optionally by the decoded columns' total
    bytes (whichever bound trips first evicts the least recently used
    block).
    """

    def __init__(
        self,
        max_blocks: int = DEFAULT_CACHE_BLOCKS,
        max_bytes: Optional[int] = None,
    ) -> None:
        if max_blocks < 1:
            raise ValueError(f"max_blocks must be >= 1, got {max_blocks}")
        self.max_blocks = max_blocks
        self.max_bytes = max_bytes
        self._blocks: "OrderedDict[BlockRef, ColumnBlock]" = OrderedDict()
        #: decoded bytes currently resident
        self.nbytes = 0
        #: blocks evicted over the cache's lifetime
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._blocks)

    def get(self, ref: "BlockRef") -> Optional[ColumnBlock]:
        block = self._blocks.get(ref)
        if block is not None:
            self._blocks.move_to_end(ref)
        return block

    def put(self, ref: "BlockRef", block: ColumnBlock) -> None:
        if ref in self._blocks:  # pragma: no cover - get() precedes put()
            self._blocks.move_to_end(ref)
            return
        self._blocks[ref] = block
        self.nbytes += _block_nbytes(block)
        while len(self._blocks) > self.max_blocks or (
            self.max_bytes is not None
            and self.nbytes > self.max_bytes
            and len(self._blocks) > 1
        ):
            _, evicted = self._blocks.popitem(last=False)
            self.nbytes -= _block_nbytes(evicted)
            self.evictions += 1


class OutOfCoreIndex:
    """Window queries over a trace file with O(cache) resident memory.

    Reads only the file's block metadata at construction (the footer
    index, or every shard's footer via the manifest); record data is
    paged in per query and cached in a bounded LRU.

    Parameters
    ----------
    reader:
        An indexed v3 :class:`~repro.trace.tracefile.TraceFileReader`
        (single file or shard manifest).  Footerless files must be
        ``reindex``\\ ed first -- paging needs the per-block metadata.
    cache_blocks / cache_bytes:
        The LRU bound: at most ``cache_blocks`` decoded blocks resident,
        additionally capped at ``cache_bytes`` decoded column bytes when
        given.
    """

    def __init__(
        self,
        reader: "TraceFileReader",
        *,
        cache_blocks: int = DEFAULT_CACHE_BLOCKS,
        cache_bytes: Optional[int] = None,
    ) -> None:
        self.reader = reader
        self.nprocs = reader.nprocs
        self._refs = reader.block_entries()
        # per-block spans as arrays: a 100M-event trace has ~10^4-10^5
        # blocks, and scanning them per query must not dominate the
        # sub-ms cached-seek path -- selection is one vectorized compare
        self._t_min = np.array(
            [ref.entry.t_min for ref in self._refs], dtype=np.float64
        )
        self._t_max = np.array(
            [ref.entry.t_max for ref in self._refs], dtype=np.float64
        )
        self._counts = np.array(
            [ref.entry.count for ref in self._refs], dtype=np.int64
        )
        self._cache = BlockCache(cache_blocks, cache_bytes)
        self._stats = PagedStats()

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        """Records in the trace (from metadata; nothing is loaded)."""
        return int(self._counts.sum())

    @property
    def nblocks(self) -> int:
        return len(self._refs)

    @property
    def cached_blocks(self) -> int:
        return len(self._cache)

    @property
    def resident_bytes(self) -> int:
        """Decoded column bytes currently held by the LRU."""
        return self._cache.nbytes

    @property
    def span(self) -> tuple[float, float]:
        """(earliest t0, latest t1); (0, 0) while empty."""
        if not self._refs:
            return (0.0, 0.0)
        return (float(self._t_min.min()), float(self._t_max.max()))

    # ------------------------------------------------------------------
    def _load(self, ref: "BlockRef") -> ColumnBlock:
        block = self._cache.get(ref)
        if block is not None:
            self._stats.cache_hits += 1
            return block
        block = self.reader.load_block(ref)
        self._stats.block_loads += 1
        self._cache.put(ref, block)
        return block

    def _select(
        self, t_lo: float, t_hi: float, procs: Optional[set[int]]
    ) -> "list[BlockRef]":
        # same semantics as IndexBlock.overlaps, but one vectorized
        # compare over all block spans (callers reject degenerate
        # windows and empty proc filters before getting here)
        refs = self._refs
        if not refs:
            return []
        hits = np.nonzero((self._t_max >= t_lo) & (self._t_min <= t_hi))[0]
        if procs is None:
            return [refs[i] for i in hits.tolist()]
        return [
            refs[i]
            for i in hits.tolist()
            if not procs.isdisjoint(refs[i].entry.procs)
        ]

    # ------------------------------------------------------------------
    def window_columns(
        self,
        t_lo: float,
        t_hi: float,
        procs: Optional[set[int]] = None,
    ) -> ColumnBlock:
        """The window's records as one :class:`ColumnBlock`, in trace
        order -- the columnar twin of :meth:`seek_window`."""
        self._stats.queries += 1
        if t_lo > t_hi or (procs is not None and not procs):
            return ColumnBlock.empty()
        parts: list[ColumnBlock] = []
        for ref in self._select(t_lo, t_hi, procs):
            block = self._load(ref)
            mask = block.window_mask(t_lo, t_hi, procs)
            if mask.all():
                parts.append(block)
            elif mask.any():
                parts.append(block.filter(mask))
        merged = ColumnBlock.concat(parts)
        index_col = merged.columns["index"]
        if index_col.size and np.any(index_col[1:] < index_col[:-1]):
            merged = merged.filter(np.argsort(index_col, kind="stable"))
        return merged

    def seek_window(
        self,
        t_lo: float,
        t_hi: float,
        procs: Optional[set[int]] = None,
    ) -> list[TraceRecord]:
        """Records overlapping ``[t_lo, t_hi]`` (inclusive bounds,
        optional proc filter), in trace order.  Same result as
        ``TraceFileReader.seek_window``, but served through the block
        cache: only overlapping blocks are resident, and a repeat of a
        nearby window reuses them."""
        self._stats.queries += 1
        if t_lo > t_hi or (procs is not None and not procs):
            return []
        out: list[TraceRecord] = []
        for ref in self._select(t_lo, t_hi, procs):
            block = self._load(ref)
            mask = block.window_mask(t_lo, t_hi, procs)
            if mask.all():
                out.extend(block.to_records())
            elif mask.any():
                out.extend(block.filter(mask).to_records())
        out.sort(key=attrgetter("index"))
        return out

    def window(self, t_lo: float, t_hi: float) -> list[TraceRecord]:
        """``HistoryIndex.window``-compatible query (no proc filter)."""
        return self.seek_window(t_lo, t_hi)

    # ------------------------------------------------------------------
    def stats(self) -> PagedStats:
        """A point-in-time copy of the paging counters (evictions are
        folded in from the cache)."""
        snap = self._stats.snapshot()
        snap.evictions = self._cache.evictions
        return snap


__all__ = [
    "DEFAULT_CACHE_BLOCKS",
    "BlockCache",
    "OutOfCoreIndex",
    "PagedStats",
]
