"""Out-of-core history access: window queries with bounded memory.

:class:`~repro.analysis.history.HistoryIndex` materializes the whole
trace -- records, columns, derived kernels -- which is the right trade
for traces that fit in RAM and analyses that consume all of history
(clocks, matching, critical path).  The paper's *zoom* workflow is
different: "the required arcs are reconstructed by rescanning the
appropriate portion of the trace file" (§4.3).  For a 100M-event trace
that rescan must not re-materialize everything; it needs exactly what
:class:`OutOfCoreIndex` provides:

* only the trace file's **per-block metadata** stays resident -- one
  :class:`~repro.trace.tracefile.BlockRef` (byte offsets, record count,
  t-span, proc set) per columnar block, a few hundred bytes each;
* :meth:`window` / :meth:`seek_window` select overlapping blocks from
  that metadata, page the needed :class:`ColumnBlock`\\ s in through the
  reader (decompressing on the fly when the file is compressed), and
  answer from them;
* decoded blocks live in a **bounded LRU cache**, so a query session's
  resident memory is O(cache), not O(trace), and repeated queries over
  the same region (the zoom pattern: narrow, adjacent windows) hit the
  cache instead of the disk.

Works identically over a single v3 file and a shard manifest (blocks
are then paged per shard).  The facade is deliberately *not* a full
``HistoryIndex``: global derivations (vector clocks, matching) need the
whole history and would defeat the memory bound; build an in-memory
index (``paged=False``) when you need those.

The zoom pattern is sequential in time, so after every window query a
**background prefetcher** speculatively pages in the blocks adjacent
(in t-order) to the queried span: by the time the user pans or zooms to
the neighbouring window its blocks are already cache hits.  Readahead
is bounded (``prefetch_blocks`` per query), canceled by the next query
(a generation counter), deduplicated against demand loads (a
single-flight table guarantees a block is never decoded twice
concurrently), and can be disabled globally with the
``REPRO_NO_PREFETCH`` environment variable.

All query entry points, the cache, and the loader are thread-safe:
the prefetcher shares them with any number of demand-query threads.

Construct directly, or via
``HistoryIndex.from_file(reader, paged=True)``.
"""

from __future__ import annotations

import os
import threading
from collections import OrderedDict
from concurrent.futures import CancelledError, Future, ThreadPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from dataclasses import dataclass
from operator import attrgetter
from typing import TYPE_CHECKING, Optional

import numpy as np

from repro.trace.columnar import ColumnBlock
from repro.trace.events import TraceRecord

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.trace.tracefile import BlockRef, TraceFileReader

#: default LRU capacity: 32 blocks x 512 records x ~100 B/record keeps
#: the hot set of a zoom session under a couple of MB
DEFAULT_CACHE_BLOCKS = 32
#: blocks speculatively paged in after each window query
DEFAULT_PREFETCH_BLOCKS = 4
#: set (to anything non-empty) to disable readahead globally
NO_PREFETCH_ENV_VAR = "REPRO_NO_PREFETCH"


def prefetch_enabled() -> bool:
    """Whether readahead is allowed in this process (the
    ``REPRO_NO_PREFETCH`` opt-out wins over any constructor argument,
    so one environment variable keeps the demand-only path honest)."""
    return not os.environ.get(NO_PREFETCH_ENV_VAR)


@dataclass
class PagedStats:
    """Cache/paging economics of one :class:`OutOfCoreIndex`.

    ``block_loads`` counts blocks decoded off disk *on demand* (a query
    thread waited for the decode), ``prefetch_loads`` blocks decoded
    speculatively by the readahead thread, ``cache_hits`` demand
    accesses served from the LRU -- of which ``prefetch_hits`` touched a
    block that readahead brought in (first touch only; once a
    prefetched block is demand-hit it counts as an ordinary resident
    block).  ``evictions`` counts blocks dropped to stay inside the
    bound; ``queries`` counts window queries answered.
    """

    block_loads: int = 0
    cache_hits: int = 0
    evictions: int = 0
    queries: int = 0
    prefetch_loads: int = 0
    prefetch_hits: int = 0

    @property
    def hit_rate(self) -> float:
        """Fraction of demand block accesses that did not wait for a
        disk decode (readahead raises this on sequential zooms)."""
        total = self.block_loads + self.cache_hits
        return self.cache_hits / total if total else 0.0

    def snapshot(self) -> "PagedStats":
        return PagedStats(
            self.block_loads,
            self.cache_hits,
            self.evictions,
            self.queries,
            self.prefetch_loads,
            self.prefetch_hits,
        )

    def as_text(self) -> str:
        """Human-readable dump (the debugger ``stats`` command)."""
        lines = [
            f"paged index: {self.queries} window quer"
            f"{'y' if self.queries == 1 else 'ies'}",
            f"  demand loads   : {self.block_loads} block(s)",
            f"  cache hits     : {self.cache_hits} "
            f"(hit rate {self.hit_rate:.1%}, "
            f"{self.prefetch_hits} served by readahead)",
            f"  prefetch loads : {self.prefetch_loads} speculative block(s)",
            f"  evictions      : {self.evictions}",
        ]
        return "\n".join(lines)


def _block_nbytes(block: ColumnBlock) -> int:
    """Resident-size estimate of one decoded block (column arrays; the
    interned side tables are shared and comparatively small)."""
    return sum(col.nbytes for col in block.columns.values())


class BlockCache:
    """A bounded LRU of decoded :class:`ColumnBlock`\\ s.

    Bounded by block count and optionally by the decoded columns' total
    bytes (whichever bound trips first evicts the least recently used
    block).  All operations are atomic under an internal lock: the
    cache is shared between demand-query threads and the readahead
    thread, and eviction accounting must never interleave mid-update.
    """

    def __init__(
        self,
        max_blocks: int = DEFAULT_CACHE_BLOCKS,
        max_bytes: Optional[int] = None,
    ) -> None:
        if max_blocks < 1:
            raise ValueError(f"max_blocks must be >= 1, got {max_blocks}")
        self.max_blocks = max_blocks
        self.max_bytes = max_bytes
        self._blocks: "OrderedDict[BlockRef, ColumnBlock]" = OrderedDict()
        self._lock = threading.RLock()
        #: decoded bytes currently resident
        self.nbytes = 0
        #: blocks evicted over the cache's lifetime
        self.evictions = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._blocks)

    def __contains__(self, ref: "BlockRef") -> bool:
        """Residency probe that does *not* touch recency -- the
        prefetcher uses it so speculative planning never promotes a
        block the user has not actually asked for."""
        with self._lock:
            return ref in self._blocks

    def get(self, ref: "BlockRef") -> Optional[ColumnBlock]:
        with self._lock:
            block = self._blocks.get(ref)
            if block is not None:
                self._blocks.move_to_end(ref)
            return block

    def put(self, ref: "BlockRef", block: ColumnBlock) -> None:
        with self._lock:
            if ref in self._blocks:
                self._blocks.move_to_end(ref)
                return
            self._blocks[ref] = block
            self.nbytes += _block_nbytes(block)
            while len(self._blocks) > self.max_blocks or (
                self.max_bytes is not None
                and self.nbytes > self.max_bytes
                and len(self._blocks) > 1
            ):
                _, evicted = self._blocks.popitem(last=False)
                self.nbytes -= _block_nbytes(evicted)
                self.evictions += 1


class OutOfCoreIndex:
    """Window queries over a trace file with O(cache) resident memory.

    Reads only the file's block metadata at construction (the footer
    index, or every shard's footer via the manifest); record data is
    paged in per query and cached in a bounded LRU.

    Parameters
    ----------
    reader:
        An indexed v3 :class:`~repro.trace.tracefile.TraceFileReader`
        (single file or shard manifest).  Footerless files must be
        ``reindex``\\ ed first -- paging needs the per-block metadata.
    cache_blocks / cache_bytes:
        The LRU bound: at most ``cache_blocks`` decoded blocks resident,
        additionally capped at ``cache_bytes`` decoded column bytes when
        given.
    prefetch_blocks:
        Readahead depth: after each window query, up to this many
        blocks adjacent (in t-order) to the queried span are decoded in
        the background.  ``0`` disables readahead; ``None`` picks the
        default.  The ``REPRO_NO_PREFETCH`` environment variable
        disables readahead regardless of this argument.
    """

    def __init__(
        self,
        reader: "TraceFileReader",
        *,
        cache_blocks: int = DEFAULT_CACHE_BLOCKS,
        cache_bytes: Optional[int] = None,
        prefetch_blocks: Optional[int] = None,
    ) -> None:
        self.reader = reader
        self.nprocs = reader.nprocs
        self._refs = reader.block_entries()
        # per-block spans as arrays: a 100M-event trace has ~10^4-10^5
        # blocks, and scanning them per query must not dominate the
        # sub-ms cached-seek path -- selection is one vectorized compare
        self._t_min = np.array(
            [ref.entry.t_min for ref in self._refs], dtype=np.float64
        )
        self._t_max = np.array(
            [ref.entry.t_max for ref in self._refs], dtype=np.float64
        )
        self._counts = np.array(
            [ref.entry.count for ref in self._refs], dtype=np.int64
        )
        self._cache = BlockCache(cache_blocks, cache_bytes)
        self._stats = PagedStats()
        # -- concurrency state -----------------------------------------
        # one lock guards the stats, the single-flight table, and the
        # prefetch bookkeeping; BlockCache carries its own (leaf) lock
        self._lock = threading.RLock()
        self._inflight: "dict[BlockRef, Future]" = {}
        self._prefetched: "set[BlockRef]" = set()
        if prefetch_blocks is None:
            prefetch_blocks = DEFAULT_PREFETCH_BLOCKS
        if prefetch_blocks < 0:
            raise ValueError(
                f"prefetch_blocks must be >= 0, got {prefetch_blocks}"
            )
        if not prefetch_enabled():
            prefetch_blocks = 0
        # never let readahead churn the whole working set out
        self.prefetch_blocks = min(prefetch_blocks, max(0, cache_blocks - 1))
        # blocks sorted by span start: "adjacent" for readahead purposes
        # means neighbouring in this order, not in file/shard layout
        self._t_order = np.argsort(self._t_min, kind="stable")
        self._t_rank = np.empty(len(self._refs), dtype=np.int64)
        self._t_rank[self._t_order] = np.arange(len(self._refs))
        self._prefetch_pool: Optional[ThreadPoolExecutor] = None
        self._prefetch_pending: Optional[Future] = None
        self._prefetch_gen = 0
        self._closed = False

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        """Records in the trace (from metadata; nothing is loaded)."""
        return int(self._counts.sum())

    @property
    def nblocks(self) -> int:
        return len(self._refs)

    @property
    def cached_blocks(self) -> int:
        return len(self._cache)

    @property
    def resident_bytes(self) -> int:
        """Decoded column bytes currently held by the LRU."""
        return self._cache.nbytes

    @property
    def span(self) -> tuple[float, float]:
        """(earliest t0, latest t1); (0, 0) while empty."""
        if not self._refs:
            return (0.0, 0.0)
        return (float(self._t_min.min()), float(self._t_max.max()))

    # ------------------------------------------------------------------
    def _load(self, ref: "BlockRef", *, speculative: bool = False) -> ColumnBlock:
        """Fetch one block through the cache.

        Single-flight: when several threads (demand queries, the
        prefetcher) want the same non-resident block, exactly one
        decodes it and the rest wait on its future -- a block is never
        decoded twice concurrently.  ``speculative`` marks prefetcher
        calls, which are accounted separately and never counted as
        demand traffic.
        """
        fut: Optional[Future] = None
        leader = False
        with self._lock:
            block = self._cache.get(ref)
            if block is not None:
                if not speculative:
                    self._stats.cache_hits += 1
                    if ref in self._prefetched:
                        self._prefetched.discard(ref)
                        self._stats.prefetch_hits += 1
                return block
            fut = self._inflight.get(ref)
            if fut is None:
                fut = Future()
                self._inflight[ref] = fut
                leader = True
        if not leader:
            block = fut.result()
            if not speculative:
                with self._lock:
                    # served by someone else's in-flight decode: no disk
                    # wait of our own, so it counts as a hit (and as a
                    # readahead hit when the prefetcher led the load)
                    self._stats.cache_hits += 1
                    if ref in self._prefetched:
                        self._prefetched.discard(ref)
                        self._stats.prefetch_hits += 1
            return block
        try:
            block = self.reader.load_block(ref)
        except BaseException as exc:
            with self._lock:
                self._inflight.pop(ref, None)
            fut.set_exception(exc)
            raise
        with self._lock:
            self._cache.put(ref, block)
            if speculative:
                self._stats.prefetch_loads += 1
                self._prefetched.add(ref)
            else:
                self._stats.block_loads += 1
            self._inflight.pop(ref, None)
        fut.set_result(block)
        return block

    def _select_idx(
        self, t_lo: float, t_hi: float, procs: Optional[set[int]]
    ) -> np.ndarray:
        # same semantics as IndexBlock.overlaps, but one vectorized
        # compare over all block spans (callers reject degenerate
        # windows and empty proc filters before getting here)
        if not self._refs:
            return np.empty(0, dtype=np.int64)
        hits = np.nonzero((self._t_max >= t_lo) & (self._t_min <= t_hi))[0]
        if procs is None:
            return hits
        keep = [
            i
            for i in hits.tolist()
            if not procs.isdisjoint(self._refs[i].entry.procs)
        ]
        return np.array(keep, dtype=np.int64)

    def _select(
        self, t_lo: float, t_hi: float, procs: Optional[set[int]]
    ) -> "list[BlockRef]":
        return [
            self._refs[i] for i in self._select_idx(t_lo, t_hi, procs).tolist()
        ]

    # ------------------------------------------------------------------
    # readahead
    # ------------------------------------------------------------------
    def _schedule_prefetch(self, sel_idx: np.ndarray) -> None:
        """Queue speculative loads of the blocks t-adjacent to the
        window just answered.  Bounded (``prefetch_blocks``), biased
        forward (zooms advance in time more often than they rewind),
        and superseded by the next query via a generation counter."""
        if self.prefetch_blocks <= 0 or sel_idx.size == 0 or self._closed:
            return
        ranks = self._t_rank[sel_idx]
        lo, hi = int(ranks.min()), int(ranks.max())
        after = self._t_order[hi + 1 : hi + 1 + self.prefetch_blocks]
        before = self._t_order[max(0, lo - self.prefetch_blocks) : lo][::-1]
        candidates = after.tolist() + before.tolist()
        refs = [
            self._refs[i]
            for i in candidates[: self.prefetch_blocks]
            if self._refs[i] not in self._cache
        ]
        if not refs:
            return
        with self._lock:
            if self._closed:
                return
            self._prefetch_gen += 1
            gen = self._prefetch_gen
            stale = self._prefetch_pending
            if self._prefetch_pool is None:
                self._prefetch_pool = ThreadPoolExecutor(
                    max_workers=1, thread_name_prefix="repro-prefetch"
                )
            pool = self._prefetch_pool
        if stale is not None:
            stale.cancel()  # drop queued-but-unstarted stale readahead
        fut = pool.submit(self._prefetch_task, refs, gen)
        with self._lock:
            self._prefetch_pending = fut

    def _prefetch_task(self, refs: "list[BlockRef]", gen: int) -> None:
        for ref in refs:
            with self._lock:
                if gen != self._prefetch_gen or self._closed:
                    return  # a newer query superseded this readahead
            if ref in self._cache:
                continue
            try:
                self._load(ref, speculative=True)
            except Exception:
                return  # the demand path will surface decode errors

    def wait_prefetch(self, timeout: Optional[float] = None) -> bool:
        """Block until the pending readahead (if any) finishes; True
        when nothing is left in flight.  Deterministic hook for tests
        and benchmarks -- production queries never need it."""
        with self._lock:
            fut = self._prefetch_pending
        if fut is None:
            return True
        try:
            fut.result(timeout)
        except FutureTimeoutError:
            return False
        except (CancelledError, Exception):
            pass
        return True

    def close(self) -> None:
        """Stop the readahead thread.  Queries keep working (demand
        loads only).  Idempotent."""
        with self._lock:
            self._closed = True
            self._prefetch_gen += 1  # wake/retire any running task
            pool, self._prefetch_pool = self._prefetch_pool, None
            self._prefetch_pending = None
        if pool is not None:
            pool.shutdown(wait=True, cancel_futures=True)

    # ------------------------------------------------------------------
    def window_columns(
        self,
        t_lo: float,
        t_hi: float,
        procs: Optional[set[int]] = None,
    ) -> ColumnBlock:
        """The window's records as one :class:`ColumnBlock`, in trace
        order -- the columnar twin of :meth:`seek_window`."""
        with self._lock:
            self._stats.queries += 1
        if t_lo > t_hi or (procs is not None and not procs):
            return ColumnBlock.empty()
        sel = self._select_idx(t_lo, t_hi, procs)
        parts: list[ColumnBlock] = []
        for i in sel.tolist():
            block = self._load(self._refs[i])
            mask = block.window_mask(t_lo, t_hi, procs)
            if mask.all():
                parts.append(block)
            elif mask.any():
                parts.append(block.filter(mask))
        self._schedule_prefetch(sel)
        merged = ColumnBlock.concat(parts)
        index_col = merged.columns["index"]
        if index_col.size and np.any(index_col[1:] < index_col[:-1]):
            merged = merged.filter(np.argsort(index_col, kind="stable"))
        return merged

    def seek_window(
        self,
        t_lo: float,
        t_hi: float,
        procs: Optional[set[int]] = None,
    ) -> list[TraceRecord]:
        """Records overlapping ``[t_lo, t_hi]`` (inclusive bounds,
        optional proc filter), in trace order.  Same result as
        ``TraceFileReader.seek_window``, but served through the block
        cache: only overlapping blocks are resident, and a repeat of a
        nearby window reuses them."""
        with self._lock:
            self._stats.queries += 1
        if t_lo > t_hi or (procs is not None and not procs):
            return []
        sel = self._select_idx(t_lo, t_hi, procs)
        out: list[TraceRecord] = []
        for i in sel.tolist():
            block = self._load(self._refs[i])
            mask = block.window_mask(t_lo, t_hi, procs)
            if mask.all():
                out.extend(block.to_records())
            elif mask.any():
                out.extend(block.filter(mask).to_records())
        self._schedule_prefetch(sel)
        out.sort(key=attrgetter("index"))
        return out

    def window(self, t_lo: float, t_hi: float) -> list[TraceRecord]:
        """``HistoryIndex.window``-compatible query (no proc filter)."""
        return self.seek_window(t_lo, t_hi)

    # ------------------------------------------------------------------
    def stats(self) -> PagedStats:
        """A point-in-time copy of the paging counters (evictions are
        folded in from the cache)."""
        with self._lock:
            snap = self._stats.snapshot()
        snap.evictions = self._cache.evictions
        return snap


__all__ = [
    "DEFAULT_CACHE_BLOCKS",
    "DEFAULT_PREFETCH_BLOCKS",
    "NO_PREFETCH_ENV_VAR",
    "BlockCache",
    "OutOfCoreIndex",
    "PagedStats",
    "prefetch_enabled",
]
