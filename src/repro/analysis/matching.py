"""Send/receive matching anomalies (paper §4.4).

    "The debugger maintains a list of unmatched sends and receives...
    As soon as the communication graph has been built, the user is
    informed about the unmatched send/receives.  At this point,
    information about intertwined messages is also available to the
    user."

Three diagnostics:

* **unmatched lists** -- sends never received and receives never
  satisfied (from the trace and/or the live runtime);
* **intertwined messages** -- two messages between the same (src, dst)
  whose receive order inverts their send order (legal across different
  tags under MPI, but frequently a bug symptom; see MPI std. p.31);
* **missed-message diagnosis** (Figure 6) -- pairing an unmatched send
  with a blocked receive that is plausibly its intended consumer, e.g.
  the Strassen bug's operand that went to the wrong rank while worker 7
  starves for exactly that tag.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional, Sequence

import numpy as np

from repro.mp.datatypes import ANY_SOURCE, ANY_TAG
from repro.mp.process import WaitInfo, WaitKind
from repro.trace.events import TraceRecord
from repro.trace.trace import Trace

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .history import HistoryIndex


@dataclass(frozen=True)
class IntertwinedPair:
    """Two same-route messages received in inverted send order."""

    first_send: TraceRecord  # sent earlier...
    second_send: TraceRecord
    first_recv: TraceRecord  # ...but received later
    second_recv: TraceRecord

    def route(self) -> tuple[int, int]:
        return (self.first_send.src, self.first_send.dst)


@dataclass(frozen=True)
class MissedMessage:
    """An unmatched send paired with a starving receive (Figure 6).

    ``send`` went to ``send.dst``; ``starving`` suggests its intended
    destination was ``starving.rank`` -- "Missed message from process 0
    to process 7."
    """

    send: TraceRecord
    starving: WaitInfo

    def describe(self) -> str:
        return (
            f"missed message: send {self.send.src}->{self.send.dst} "
            f"tag={self.send.tag} at {self.send.location} was never "
            f"received; process {self.starving.rank} is blocked waiting "
            f"for (source={self.starving.peer}, tag={self.starving.tag}) "
            f"at {self.starving.location} -- likely intended destination "
            f"{self.starving.rank}"
        )


@dataclass
class MatchingReport:
    """Everything §4.4's first-level analysis surfaces."""

    unmatched_sends: list[TraceRecord] = field(default_factory=list)
    unmatched_recvs: list[TraceRecord] = field(default_factory=list)
    intertwined: list[IntertwinedPair] = field(default_factory=list)
    missed: list[MissedMessage] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not (self.unmatched_sends or self.unmatched_recvs or self.missed)

    def as_text(self) -> str:
        lines = ["matching report:"]
        if self.clean and not self.intertwined:
            lines.append("  no anomalies")
        for rec in self.unmatched_sends:
            lines.append(
                f"  unmatched send {rec.src}->{rec.dst} tag={rec.tag} "
                f"seq={rec.seq} at {rec.location}"
            )
        for rec in self.unmatched_recvs:
            lines.append(
                f"  unmatched recv on p{rec.proc} (src={rec.src}, "
                f"tag={rec.tag}) at {rec.location}"
            )
        for pair in self.intertwined:
            lines.append(
                f"  intertwined on route {pair.route()}: send@{pair.first_send.t1:.2f} "
                f"received after send@{pair.second_send.t1:.2f}"
            )
        for m in self.missed:
            lines.append("  " + m.describe())
        return "\n".join(lines)


def find_intertwined(
    trace: Trace,
    index: "Optional[HistoryIndex]" = None,
) -> list[IntertwinedPair]:
    """Pairs of same-(src,dst) messages whose receive order inverts the
    send order.  Under non-overtaking this can only happen across
    different tags (the same-tag case would be a runtime bug)."""
    from .history import ensure_index

    out: list[IntertwinedPair] = []
    pairs = ensure_index(trace, index=index).message_pairs()
    by_route: dict[tuple[int, int], list] = {}
    for p in pairs:
        by_route.setdefault((p.send.src, p.send.dst), []).append(p)
    for route_pairs in by_route.values():
        route_pairs.sort(key=lambda p: p.send.t1)
        k = len(route_pairs)
        if k < 2:
            continue
        # inversion pairs in one broadcast compare: after the send-order
        # sort, (i, j) is intertwined iff i < j but recv_t1[i] > recv_t1[j].
        # np.nonzero walks row-major, preserving the (i asc, j asc) order
        # of the scalar double loop.
        recv_t1 = np.fromiter(
            (p.recv.t1 for p in route_pairs), dtype=np.float64, count=k
        )
        inverted = np.triu(recv_t1[:, None] > recv_t1[None, :], 1)
        for i, j in zip(*(arr.tolist() for arr in np.nonzero(inverted))):
            a, b = route_pairs[i], route_pairs[j]
            out.append(
                IntertwinedPair(
                    first_send=a.send,
                    second_send=b.send,
                    first_recv=a.recv,
                    second_recv=b.recv,
                )
            )
    return out


def diagnose_missed_messages(
    unmatched_sends: Sequence[TraceRecord],
    blocked: Sequence[WaitInfo],
) -> list[MissedMessage]:
    """Pair unmatched sends with compatible starving receives.

    A blocked receive is a candidate consumer of an unmatched send when
    its tag pattern matches the send's tag, its source pattern matches
    the sender, and it is not the process the message actually went to
    (that process simply hasn't consumed it yet -- not "missed")."""
    out: list[MissedMessage] = []
    for send in unmatched_sends:
        for wait in blocked:
            if wait.kind is not WaitKind.RECV:
                continue
            tag_ok = wait.tag in (ANY_TAG, send.tag)
            src_ok = wait.peer in (ANY_SOURCE, send.src)
            went_elsewhere = wait.rank != send.dst
            if tag_ok and src_ok and went_elsewhere:
                out.append(MissedMessage(send=send, starving=wait))
    return out


def analyze_matching(
    trace: Trace,
    blocked: Optional[Sequence[WaitInfo]] = None,
    index: "Optional[HistoryIndex]" = None,
) -> MatchingReport:
    """The full §4.4 first-level report for a trace (plus, when the
    runtime's blocked-wait list is supplied, missed-message diagnoses).

    Unmatched lists and pairs come from the shared
    :class:`~repro.analysis.history.HistoryIndex`; when neither
    ``blocked`` nor ``index`` is given but the index carries live
    blocked-wait state (fed by :meth:`DebugSession.index`), that state
    is used for the missed-message diagnosis.
    """
    from .history import ensure_index

    idx = ensure_index(trace, index=index)
    report = MatchingReport(
        unmatched_sends=idx.unmatched_sends(),
        unmatched_recvs=idx.unmatched_recvs(),
        intertwined=find_intertwined(idx.trace, index=idx),
    )
    if blocked is None:
        blocked = idx.blocked
    if blocked:
        report.missed = diagnose_missed_messages(report.unmatched_sends, blocked)
    return report
