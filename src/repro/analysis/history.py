"""The :class:`HistoryIndex`: one shared analysis substrate per trace.

Every history analysis the debugger offers (§4.1-§4.4: frontiers,
stoplines, deadlock, races, critical path, matching reports) rests on
the same derived primitives -- vector clocks, send/receive matching,
per-process program-order rows, span/marker lookup tables -- and before
this module each analysis re-derived them with a full O(n*p) pass over
the trace.  MAD's event-graph-centric design (Kranzlmüller et al.) and
Okita et al.'s scalable trace analysis both argue the opposite
structure: *one* incrementally-maintained derived-state container that
all debugging activities consume.  That container is this class.

Storage is **columnar**: alongside the record list the index keeps the
fixed-width fields (``index/proc/kind/src/dst/tag/seq/t0/t1/marker/
size``) as incrementally-grown numpy arrays (amortized doubling),
appended per record in :meth:`extend` and bulk-copied from a decoded
:class:`~repro.trace.columnar.ColumnBlock` in :meth:`extend_columns`.
The hot kernels run on these columns as batched array operations:

* vector clocks -- only receive-join events are touched in Python; the
  segments between joins are filled by broadcast (O(messages*p) array
  work instead of O(n*p) Python iterations);
* message matching -- one ``np.lexsort`` grouping over the
  (src, dst, tag, seq) key columns instead of a per-record dict loop;
* :meth:`window` -- a sorted-t0 interval index answered with
  ``searchsorted`` instead of a full list scan.

The scalar per-record implementations remain as *reference kernels*,
selectable with ``engine="python"`` and property-tested equal to the
vectorized defaults (``tests/property/test_analysis_kernels_properties``);
``benchmarks/test_analysis_kernels.py`` gates the speedup.

Maintenance is incremental with a lazy catch-up discipline:

* :meth:`extend` (fed by an :class:`IndexSink` on the TraceBus) appends
  the record and updates the O(1) components eagerly -- program-order
  rows, the (proc, marker) lookup table, the span, the columns;
* the expensive components -- vector clocks, message matching, the
  window index -- keep a high-water mark and, on first access after new
  records arrived, fold in only the suffix.  They are never rebuilt
  from scratch once built (in either engine), which is what
  ``stats().clock_builds == 1`` asserts.

Generation discipline: an index belongs to one execution.  When
``DebugSession.replay()``/``undo()`` discards an execution it calls
:meth:`invalidate` on that generation's index; a stale index refuses
every query (raising :class:`StaleIndexError`) so analyses can never
silently read the previous execution's history.

Sharing discipline: :func:`ensure_index` memoizes the index on the
:class:`~repro.trace.trace.Trace` itself, so consumers that still take
a bare trace (the pre-index call signatures all still work) share one
index per trace without threading any argument.

Incremental matching assumes trace causality (a receive record never
precedes its matching send record -- the recording order is a causal
linearization, the same §4.1 property stoplines rest on).  A trace that
violates it -- see :func:`~repro.analysis.causality.check_trace_causality`
-- would list such receives as unmatched where the batch two-pass
matcher pairs them.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Iterable, Optional, Sequence

import numpy as np

from repro.trace.columnar import DEFAULT_KIND_TABLE, KIND_CODES, kind_code_lut
from repro.trace.events import RECV_KINDS, SEND_KINDS, TraceRecord
from repro.trace.sinks import TraceSink
from repro.trace.trace import MessagePair, Trace, ensure_trace

from .causality import CausalOrder

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.mp.process import WaitInfo
    from repro.trace.columnar import ColumnBlock
    from repro.trace.tracefile import TraceFileReader

    from .paged import OutOfCoreIndex


class StaleIndexError(RuntimeError):
    """A query hit an index whose execution generation was discarded."""


#: the index's column-store layout: every fixed-width field an analysis
#: kernel touches.  dtypes mirror the v3 file's COLUMN_SPEC so
#: ``extend_columns`` copies block columns without a cast.
STORE_SPEC: tuple[tuple[str, str], ...] = (
    ("index", "<i8"),
    ("proc", "<i4"),
    ("kind", "u1"),
    ("src", "<i4"),
    ("dst", "<i4"),
    ("tag", "<i4"),
    ("seq", "<i8"),
    ("t0", "<f8"),
    ("t1", "<f8"),
    ("marker", "<i8"),
    ("size", "<i8"),
)

#: kind codes (shared with the v3 file format) of message operations
SEND_CODES: np.ndarray = np.array(
    sorted(KIND_CODES[k] for k in SEND_KINDS), dtype=np.uint8
)
RECV_CODES: np.ndarray = np.array(
    sorted(KIND_CODES[k] for k in RECV_KINDS), dtype=np.uint8
)
_RECV_CODE = int(RECV_CODES[0])  # RECV is the single receive-side kind

ENGINES = ("numpy", "python")


@dataclass
class IndexStats:
    """Observability snapshot of one index's build/extend economics.

    ``*_builds`` counts from-scratch derivations of a component (the
    multi-analysis acceptance criterion: exactly one each per trace);
    ``*_extends`` counts records folded in incrementally;
    ``*_seconds`` is wall-clock spent deriving; ``hits``/``misses``
    count memoized-component lookups per component name.
    ``kernel_calls``/``kernel_seconds`` count the analysis kernels that
    consume the index without owning state in it (race detection,
    critical path), keyed by ``"name[engine]"``.
    """

    generation: int = 0
    engine: str = "numpy"
    records: int = 0
    #: shard/chunk decode tasks fanned out by a parallel from_file build
    parallel_shards: int = 0
    #: worker processes those tasks ran on (0 = the build was serial)
    parallel_workers: int = 0
    clock_builds: int = 0
    clock_extends: int = 0
    clock_seconds: float = 0.0
    matching_builds: int = 0
    matching_extends: int = 0
    matching_seconds: float = 0.0
    window_builds: int = 0
    window_extends: int = 0
    window_seconds: float = 0.0
    trace_snapshots: int = 0
    hits: dict = field(default_factory=dict)
    misses: dict = field(default_factory=dict)
    kernel_calls: dict = field(default_factory=dict)
    kernel_seconds: dict = field(default_factory=dict)

    def hit(self, component: str) -> None:
        self.hits[component] = self.hits.get(component, 0) + 1

    def miss(self, component: str) -> None:
        self.misses[component] = self.misses.get(component, 0) + 1

    def kernel(self, name: str, seconds: float) -> None:
        self.kernel_calls[name] = self.kernel_calls.get(name, 0) + 1
        self.kernel_seconds[name] = self.kernel_seconds.get(name, 0.0) + seconds

    def snapshot(self) -> "IndexStats":
        return IndexStats(
            generation=self.generation,
            engine=self.engine,
            records=self.records,
            parallel_shards=self.parallel_shards,
            parallel_workers=self.parallel_workers,
            clock_builds=self.clock_builds,
            clock_extends=self.clock_extends,
            clock_seconds=self.clock_seconds,
            matching_builds=self.matching_builds,
            matching_extends=self.matching_extends,
            matching_seconds=self.matching_seconds,
            window_builds=self.window_builds,
            window_extends=self.window_extends,
            window_seconds=self.window_seconds,
            trace_snapshots=self.trace_snapshots,
            hits=dict(self.hits),
            misses=dict(self.misses),
            kernel_calls=dict(self.kernel_calls),
            kernel_seconds=dict(self.kernel_seconds),
        )

    def as_text(self) -> str:
        lines = [
            f"history index stats (generation {self.generation}, "
            f"{self.records} records, engine={self.engine})",
        ]
        if self.parallel_shards:
            lines.append(
                f"  parallel build: {self.parallel_shards} shard task(s) "
                f"across {self.parallel_workers} worker process(es)"
            )
        lines += [
            f"  vector clocks : {self.clock_builds} build(s), "
            f"{self.clock_extends} record(s) folded, "
            f"{self.clock_seconds * 1e3:.2f} ms",
            f"  matching      : {self.matching_builds} build(s), "
            f"{self.matching_extends} record(s) folded, "
            f"{self.matching_seconds * 1e3:.2f} ms",
            f"  window index  : {self.window_builds} build(s), "
            f"{self.window_extends} record(s) folded, "
            f"{self.window_seconds * 1e3:.2f} ms",
            f"  trace snapshots: {self.trace_snapshots}",
        ]
        for name in sorted(self.kernel_calls):
            lines.append(
                f"  kernel {name:<15s}: {self.kernel_calls[name]} call(s), "
                f"{self.kernel_seconds.get(name, 0.0) * 1e3:.2f} ms"
            )
        for name in sorted(set(self.hits) | set(self.misses)):
            lines.append(
                f"  {name:<13s} : {self.hits.get(name, 0)} hit(s), "
                f"{self.misses.get(name, 0)} miss(es)"
            )
        return "\n".join(lines)


class HistoryIndex:
    """Shared, incrementally-maintained derived state for one history.

    Components (each computed once, then extended):

    * ``order`` -- vector clocks as a :class:`CausalOrder`;
    * ``message_pairs()`` / ``unmatched_sends()`` / ``unmatched_recvs()``
      / ``send_of_recv`` -- send/receive matching;
    * ``by_proc(p)`` -- per-process program-order rows;
    * ``span`` / ``record_at_marker()`` / ``window()`` -- span, marker
      and time-window lookup;
    * ``column(name)`` / ``columns`` -- the structure-of-arrays view of
      the indexed records, the substrate the vectorized kernels (and
      columnar consumers such as race detection and the critical-path
      DP) run on;
    * ``blocked`` -- the runtime's blocked-wait snapshot, when supplied.

    ``engine`` selects the kernel implementations: ``"numpy"`` (default)
    runs the vectorized clock/matching/window kernels over the column
    store; ``"python"`` runs the scalar per-record reference kernels.
    Both are incremental and produce identical state.

    ``trace`` materializes (and memoizes) an immutable
    :class:`~repro.trace.trace.Trace` view over the indexed records for
    consumers that navigate positionally.
    """

    def __init__(
        self,
        records: Optional[Iterable[TraceRecord]] = None,
        nprocs: Optional[int] = None,
        generation: int = 0,
        engine: str = "numpy",
    ) -> None:
        if engine not in ENGINES:
            raise ValueError(f"unknown engine {engine!r}; expected one of {ENGINES}")
        if nprocs is None:
            if records is None:
                raise ValueError("need nprocs when starting from an empty stream")
            records = list(records)
            nprocs = 0
            for rec in records:
                nprocs = max(nprocs, rec.proc + 1, rec.src + 1, rec.dst + 1)
        self.nprocs = max(1, nprocs)
        self.generation = generation
        self.engine = engine
        self._stale = False
        self._records: list[TraceRecord] = []
        # indexed rows; >= len(self._records) while column blocks await
        # record materialization (the deferred-ingest path below)
        self._n = 0
        # blocks ingested column-only; their TraceRecord objects are
        # materialized on first record-level access (_ensure_records)
        self._pending_blocks: list["ColumnBlock"] = []
        # column store (structure of arrays, amortized doubling) --------
        self._cap = 0
        self._cols: dict[str, np.ndarray] = {
            name: np.empty(0, dtype=dt) for name, dt in STORE_SPEC
        }
        # eager O(1) components -------------------------------------------
        self._rows: list[list[TraceRecord]] = [[] for _ in range(self.nprocs)]
        self._marker_first: dict[tuple[int, int], TraceRecord] = {}
        self._t_lo: Optional[float] = None
        self._t_hi: Optional[float] = None
        # matching (lazy catch-up) ----------------------------------------
        self._matched_upto = 0
        self._open_sends: dict[tuple[int, int, int, int], TraceRecord] = {}
        self._pairs: list[MessagePair] = []
        self._send_of_recv: dict[int, int] = {}
        self._unmatched_recvs: list[TraceRecord] = []
        # vector clocks (lazy catch-up) -----------------------------------
        self._clocked_upto = 0
        self._clocks = np.zeros((0, self.nprocs), dtype=np.int64)
        self._current = np.zeros((self.nprocs, self.nprocs), dtype=np.int64)
        # window interval index (lazy catch-up) ---------------------------
        self._window_upto = 0
        self._t0_order: Optional[np.ndarray] = None
        self._t0_sorted: Optional[np.ndarray] = None
        # memoized views ---------------------------------------------------
        self._trace: Optional[Trace] = None
        self._order: Optional[CausalOrder] = None
        self._blocked: Optional[list["WaitInfo"]] = None
        self._stats = IndexStats(generation=generation, engine=engine)
        if records is not None:
            self.extend_many(records)

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_trace(
        cls, trace: Trace, generation: int = 0, engine: str = "numpy"
    ) -> "HistoryIndex":
        """Index an existing immutable trace (the batch entry point).

        When the trace's record indexes are already positional the trace
        object itself becomes the index's materialized view, so
        trace-level caches (``by_proc`` and friends) are shared rather
        than duplicated.  The positional check rides along the single
        ingest pass.
        """
        index = cls(nprocs=trace.nprocs, generation=generation, engine=engine)
        positional = True
        for pos, rec in enumerate(trace):
            if positional and rec.index != pos:
                positional = False
            index.extend(rec)
        if positional:
            index._trace = trace
            index._stats.trace_snapshots += 1
        return index

    @classmethod
    def from_file(
        cls,
        reader: "TraceFileReader",
        generation: int = 0,
        engine: str = "numpy",
        *,
        paged: bool = False,
        cache_blocks: Optional[int] = None,
        cache_bytes: Optional[int] = None,
        prefetch_blocks: Optional[int] = None,
        parallel: "int | bool | None" = None,
    ) -> "HistoryIndex | OutOfCoreIndex":
        """Index a trace file through the bulk columnar path.

        Uses :meth:`TraceFileReader.read_columns`, so a v3 file is
        ingested column-wise (no per-record JSON parsing); v1/v2 files
        bridge through the record path transparently.

        ``parallel=N`` fans block decode + column ingest across a pool
        of ``N`` worker processes (``True`` = one per CPU): each worker
        decodes one shard (or one contiguous chunk of a single file's
        blocks) with the threaded block loader and ships columns back;
        the parent merges the partial stores by global record index and
        ingests them with record materialization *deferred* -- record
        objects appear on first record-level access.  Falls back to the
        serial path when the file has too few shards/blocks to split or
        the platform cannot fork.

        ``paged=True`` returns an
        :class:`~repro.analysis.paged.OutOfCoreIndex` instead: only
        block metadata is read now, record data is paged in per window
        query through a bounded LRU (``cache_blocks``/``cache_bytes``),
        with background readahead of adjacent blocks
        (``prefetch_blocks``) -- resident memory stays O(cache) rather
        than O(trace).  The paged facade serves window queries only;
        build an in-memory index for the global derivations (clocks,
        matching).
        """
        if paged:
            from .paged import OutOfCoreIndex

            if parallel not in (None, False):
                raise ValueError(
                    "parallel= applies to the in-memory build; a paged "
                    "index never bulk-decodes (it pages blocks per query)"
                )
            kwargs: dict = {}
            if cache_blocks is not None:
                kwargs["cache_blocks"] = cache_blocks
            if cache_bytes is not None:
                kwargs["cache_bytes"] = cache_bytes
            if prefetch_blocks is not None:
                kwargs["prefetch_blocks"] = prefetch_blocks
            return OutOfCoreIndex(reader, **kwargs)
        if cache_blocks is not None or cache_bytes is not None:
            raise ValueError(
                "cache_blocks/cache_bytes apply to paged=True only"
            )
        if prefetch_blocks is not None:
            raise ValueError("prefetch_blocks applies to paged=True only")
        if parallel not in (None, False):
            from repro.trace.tracefile import read_columns_parallel

            result = read_columns_parallel(reader, parallel)
            if result is not None:
                block, ntasks, nworkers = result
                index = cls(
                    nprocs=reader.nprocs, generation=generation, engine=engine
                )
                index.extend_columns(block, defer_records=True)
                index._stats.parallel_shards = ntasks
                index._stats.parallel_workers = nworkers
                return index
            # fall through: the serial path is exact and always works
        index = cls(nprocs=reader.nprocs, generation=generation, engine=engine)
        index.extend_columns(reader.read_columns())
        return index

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def invalidate(self) -> None:
        """Mark this generation's history as discarded (post-replay).

        Every subsequent query or extension raises
        :class:`StaleIndexError`: an index must never answer for an
        execution that no longer exists.
        """
        self._stale = True

    @property
    def stale(self) -> bool:
        return self._stale

    def _check_live(self) -> None:
        if self._stale:
            raise StaleIndexError(
                f"history index for generation {self.generation} was "
                "invalidated by a replay; ask the session for the current "
                "generation's index"
            )

    # ------------------------------------------------------------------
    # column store plumbing
    # ------------------------------------------------------------------
    def _grow(self, need: int) -> None:
        if need <= self._cap:
            return
        new_cap = max(64, need, 2 * self._cap)
        n = self._n
        for name, dt in STORE_SPEC:
            buf = np.empty(new_cap, dtype=dt)
            buf[:n] = self._cols[name][:n]
            self._cols[name] = buf
        self._cap = new_cap

    def column(self, name: str) -> np.ndarray:
        """One column of the store, trimmed to the indexed length.

        The returned array is a live view: it reflects (and is
        invalidated by) subsequent extensions.  ``index`` is positional,
        ``kind`` holds :data:`~repro.trace.columnar.KIND_CODES` codes.
        """
        self._check_live()
        return self._cols[name][: self._n]

    @property
    def columns(self) -> dict[str, np.ndarray]:
        """All store columns, trimmed to the indexed length."""
        self._check_live()
        n = self._n
        return {name: self._cols[name][:n] for name, _ in STORE_SPEC}

    # ------------------------------------------------------------------
    # deferred record materialization (the parallel-build fast path)
    # ------------------------------------------------------------------
    def _ingest_block_records(self, block: "ColumnBlock") -> None:
        """Materialize one block's TraceRecord objects and fold them
        into the record list, per-proc rows, and marker table."""
        records = block.to_records()
        pos = len(self._records)
        rows = self._rows
        marker_first = self._marker_first
        for rec in records:
            if rec.index != pos:
                rec.index = pos  # to_records() objects are ours to mutate
            pos += 1
            rows[rec.proc].append(rec)
            marker_first.setdefault((rec.proc, rec.marker), rec)
        self._records.extend(records)

    def _ensure_records(self) -> None:
        """Catch the record list up to the column store.

        A build through ``extend_columns(..., defer_records=True)`` (the
        ``from_file(parallel=N)`` path) ingests columns only -- record
        objects, per-proc rows, and the marker table are materialized
        here, on first record-level access.  Columnar consumers (window
        index, race masks, the matching/clock key columns) never pay for
        objects they do not touch.
        """
        if not self._pending_blocks:
            return
        pending, self._pending_blocks = self._pending_blocks, []
        for block in pending:
            self._ingest_block_records(block)

    # ------------------------------------------------------------------
    # extension (the IndexSink feed)
    # ------------------------------------------------------------------
    def extend(self, record: TraceRecord) -> None:
        """Fold one record in: O(1) now, amortized O(p) once the clock
        and matching components catch up to it.

        Raises :class:`ValueError` for a record whose ``proc`` falls
        outside ``[0, nprocs)`` -- such a record would silently vanish
        from the per-process rows and every clock/matching kernel.
        """
        self._check_live()
        if not 0 <= record.proc < self.nprocs:
            raise ValueError(
                f"record {record.index} has proc {record.proc} outside "
                f"[0, {self.nprocs}); the index cannot place it"
            )
        self._ensure_records()  # appended records must follow materialized ones
        pos = self._n
        if record.index != pos:
            # windowed / ring-buffer streams have sparse global indexes;
            # positional invariants (clock rows, path DP) need re-indexed
            # copies, same as ensure_trace.
            record = replace(record, index=pos)
        if self._cap <= pos:
            self._grow(pos + 1)
        self._records.append(record)
        cols = self._cols
        cols["index"][pos] = pos
        cols["proc"][pos] = record.proc
        cols["kind"][pos] = KIND_CODES[record.kind]
        cols["src"][pos] = record.src
        cols["dst"][pos] = record.dst
        cols["tag"][pos] = record.tag
        cols["seq"][pos] = record.seq
        cols["t0"][pos] = record.t0
        cols["t1"][pos] = record.t1
        cols["marker"][pos] = record.marker
        cols["size"][pos] = record.size
        self._n = pos + 1
        self._rows[record.proc].append(record)
        self._marker_first.setdefault((record.proc, record.marker), record)
        if self._t_lo is None or record.t0 < self._t_lo:
            self._t_lo = record.t0
        if self._t_hi is None or record.t1 > self._t_hi:
            self._t_hi = record.t1
        self._stats.records = self._n

    def extend_many(self, records: Iterable[TraceRecord]) -> int:
        n = 0
        for rec in records:
            self.extend(rec)
            n += 1
        return n

    def extend_columns(
        self, block: "ColumnBlock", *, defer_records: bool = False
    ) -> int:
        """Bulk-ingest one decoded columnar block (the
        :meth:`TraceFileReader.read_columns` feed).

        Equivalent to ``extend_many(block.to_records())`` but feeds the
        column store with vectorized slice copies straight from the
        block's arrays (no per-record field stores), updates the span
        from the block's time columns in one step, and re-indexes
        positionally by mutating the freshly materialized records in
        place instead of copying each one.

        ``defer_records=True`` skips the record-object materialization
        (the dominant cost of a bulk build): the block is stashed and
        its TraceRecords, per-proc rows, and marker entries appear
        lazily on first record-level access.  Columnar state is
        complete either way -- the two modes are observably identical.
        """
        self._check_live()
        n = len(block)
        if n == 0:
            return 0
        bcols = block.columns
        nprocs = self.nprocs
        bproc = bcols["proc"]
        bad = (bproc < 0) | (bproc >= nprocs)
        if bad.any():
            culprit = int(bproc[int(np.argmax(bad))])
            raise ValueError(
                f"column block contains proc {culprit} outside "
                f"[0, {nprocs}); the index cannot place it"
            )
        pos = self._n
        # columns: one vectorized copy per field --------------------------
        self._grow(pos + n)
        cols = self._cols
        sl = slice(pos, pos + n)
        cols["index"][sl] = np.arange(pos, pos + n, dtype=np.int64)
        kind_codes = bcols["kind"]
        if block.kind_table != DEFAULT_KIND_TABLE:
            # the block carries the *file's* kind codes; remap to ours
            kind_codes = kind_code_lut(block.kind_table)[kind_codes]
        cols["kind"][sl] = kind_codes
        for name in ("proc", "src", "dst", "tag", "seq", "t0", "t1",
                     "marker", "size"):
            cols[name][sl] = bcols[name]
        self._n = pos + n
        # records, rows, marker table -------------------------------------
        if defer_records:
            self._pending_blocks.append(block)
        else:
            self._ensure_records()  # keep materialization in ingest order
            self._ingest_block_records(block)
        t_lo = float(bcols["t0"].min())
        t_hi = float(bcols["t1"].max())
        if self._t_lo is None or t_lo < self._t_lo:
            self._t_lo = t_lo
        if self._t_hi is None or t_hi > self._t_hi:
            self._t_hi = t_hi
        self._stats.records = self._n
        return n

    def __len__(self) -> int:
        return self._n

    @property
    def records(self) -> Sequence[TraceRecord]:
        self._ensure_records()
        return self._records

    def sink(self) -> "IndexSink":
        """A bus sink feeding this index (attach to a recorder)."""
        return IndexSink(self)

    # ------------------------------------------------------------------
    # eager components
    # ------------------------------------------------------------------
    def by_proc(self, proc: int) -> Sequence[TraceRecord]:
        """This process's records in program order (live view)."""
        self._check_live()
        self._ensure_records()
        return self._rows[proc]

    @property
    def span(self) -> tuple[float, float]:
        """(earliest t0, latest t1); (0, 0) while empty."""
        self._check_live()
        if self._t_lo is None or self._t_hi is None:
            return (0.0, 0.0)
        return (self._t_lo, self._t_hi)

    def record_at_marker(self, proc: int, marker: int) -> Optional[TraceRecord]:
        """First record of ``proc`` carrying ``marker`` (O(1) lookup)."""
        self._check_live()
        self._ensure_records()
        return self._marker_first.get((proc, marker))

    # ------------------------------------------------------------------
    # time windows (the zoom-rescan primitive)
    # ------------------------------------------------------------------
    def _ensure_window_index(self) -> None:
        n = self._n
        if self._t0_order is not None and self._window_upto >= n:
            self._stats.hit("window")
            return
        self._stats.miss("window")
        start = time.perf_counter()
        lo = self._window_upto
        t0 = self._cols["t0"]
        if self._t0_order is None or lo == 0:
            self._stats.window_builds += 1
            order = np.argsort(t0[:n], kind="stable").astype(np.int64)
            self._t0_order = order
            self._t0_sorted = t0[:n][order]
        else:
            # merge the sorted suffix into the existing order (ties keep
            # trace order: suffix indexes are all larger, insert after)
            suf = t0[lo:n]
            suf_order = np.argsort(suf, kind="stable").astype(np.int64) + lo
            suf_sorted = t0[suf_order]
            at = np.searchsorted(self._t0_sorted, suf_sorted, side="right")
            self._t0_order = np.insert(self._t0_order, at, suf_order)
            self._t0_sorted = np.insert(self._t0_sorted, at, suf_sorted)
        self._window_upto = n
        self._stats.window_extends += n - lo
        self._stats.window_seconds += time.perf_counter() - start

    def window(self, t_lo: float, t_hi: float) -> list[TraceRecord]:
        """Records overlapping [t_lo, t_hi], in trace order.

        The numpy engine serves this from a sorted-t0 interval index:
        ``searchsorted`` bounds the candidates with ``t0 <= t_hi``, one
        vectorized compare keeps those with ``t1 >= t_lo``.  The python
        engine is the reference full scan.
        """
        self._check_live()
        self._ensure_records()  # results are record objects
        if self.engine == "python":
            return [r for r in self._records if r.t1 >= t_lo and r.t0 <= t_hi]
        self._ensure_window_index()
        n = self._n
        if n == 0:
            return []
        k = int(np.searchsorted(self._t0_sorted, t_hi, side="right"))
        cand = self._t0_order[:k]
        sel = cand[self._cols["t1"][cand] >= t_lo]
        sel = np.sort(sel)
        records = self._records
        return [records[i] for i in sel.tolist()]

    # ------------------------------------------------------------------
    # message matching
    # ------------------------------------------------------------------
    def _ensure_matching(self) -> None:
        n = self._n
        if self._matched_upto >= n:
            self._stats.hit("matching")
            return
        self._ensure_records()  # both kernels pair record objects
        self._stats.miss("matching")
        start = time.perf_counter()
        if self._matched_upto == 0:
            self._stats.matching_builds += 1
        lo = self._matched_upto
        if self.engine == "python":
            self._match_suffix_python(lo, n)
        else:
            self._match_suffix_numpy(lo, n)
        self._matched_upto = n
        self._stats.matching_extends += n - lo
        self._stats.matching_seconds += time.perf_counter() - start

    def _match_suffix_python(self, lo: int, n: int) -> None:
        """Reference kernel: the per-record dict loop."""
        for rec in self._records[lo:n]:
            if rec.is_send:
                self._open_sends[rec.message_key()] = rec
            elif rec.is_recv:
                send = self._open_sends.pop(rec.message_key(), None)
                if send is None:
                    self._unmatched_recvs.append(rec)
                else:
                    self._pairs.append(MessagePair(send, rec))
                    self._send_of_recv[rec.index] = send.index

    def _match_suffix_numpy(self, lo: int, n: int) -> None:
        """Vectorized kernel: lexsort-group the (src, dst, tag, seq) key
        columns, pair each group's send with its receive.

        Sends still open from earlier catch-ups join the sort as
        carried-in events (their record indexes precede the suffix), so
        incremental state is exact.  Groups with at most one send and
        one receive -- every key under MPI non-overtaking -- are paired
        by pure array ops; pathological duplicate-key groups fall back
        to the reference slot walk per group.
        """
        cols = self._cols
        kind = cols["kind"][lo:n]
        send_rel = np.nonzero(np.isin(kind, SEND_CODES))[0]
        recv_rel = np.nonzero(kind == _RECV_CODE)[0]
        records = self._records
        if recv_rel.size == 0:
            for i in (send_rel + lo).tolist():
                rec = records[i]
                self._open_sends[rec.message_key()] = rec
            return
        carry = np.fromiter(
            (rec.index for rec in self._open_sends.values()),
            dtype=np.int64,
            count=len(self._open_sends),
        )
        m_s = carry.size + send_rel.size
        evt = np.concatenate([carry, send_rel + lo, recv_rel + lo])
        src = cols["src"][evt]
        dst = cols["dst"][evt]
        tag = cols["tag"][evt]
        seq = cols["seq"][evt]
        order = np.lexsort((evt, seq, tag, dst, src))
        sc, dc, tc, qc = src[order], dst[order], tag[order], seq[order]
        boundary = np.empty(evt.size, dtype=bool)
        boundary[0] = True
        boundary[1:] = (
            (sc[1:] != sc[:-1])
            | (dc[1:] != dc[:-1])
            | (tc[1:] != tc[:-1])
            | (qc[1:] != qc[:-1])
        )
        ngroups = int(boundary.sum())
        gid = np.empty(evt.size, dtype=np.int64)
        gid[order] = np.cumsum(boundary) - 1
        send_gid, recv_gid = gid[:m_s], gid[m_s:]
        s_cnt = np.bincount(send_gid, minlength=ngroups)
        r_cnt = np.bincount(recv_gid, minlength=ngroups)
        simple = (s_cnt <= 1) & (r_cnt <= 1)
        s_of = np.full(ngroups, -1, dtype=np.int64)
        s_of[send_gid] = evt[:m_s]
        r_of = np.full(ngroups, -1, dtype=np.int64)
        r_of[recv_gid] = evt[m_s:]
        paired = simple & (s_of >= 0) & (r_of >= 0) & (s_of < r_of)
        new_pairs = list(zip(s_of[paired].tolist(), r_of[paired].tolist()))
        unmatched = r_of[simple & (r_of >= 0) & ~paired].tolist()
        opened = s_of[simple & (s_of >= 0) & ~paired].tolist()
        consumed: list[int] = [s for s, _ in new_pairs if s < lo]
        # duplicate-key groups: reference slot semantics, per group ----
        cplx = np.nonzero(~simple)[0]
        if cplx.size:
            corder = np.lexsort((evt, gid))
            g_sorted = gid[corder]
            starts = np.searchsorted(g_sorted, cplx, side="left")
            ends = np.searchsorted(g_sorted, cplx, side="right")
            is_recv_flag = np.zeros(evt.size, dtype=bool)
            is_recv_flag[m_s:] = True
            for a, b in zip(starts.tolist(), ends.tolist()):
                slot = -1
                group = corder[a:b]
                first = int(evt[group[0]])
                for j in group.tolist():
                    e = int(evt[j])
                    if is_recv_flag[j]:
                        if slot >= 0:
                            new_pairs.append((slot, e))
                            slot = -1
                        else:
                            unmatched.append(e)
                    else:
                        slot = e
                if slot >= 0:
                    opened.append(slot)
                elif first < lo:
                    # the group consumed (or overwrote away) its carried
                    # open send; drop its key below
                    consumed.append(first)
        # fold results into the incremental state ----------------------
        open_sends = self._open_sends
        for s in consumed:
            del open_sends[records[s].message_key()]
        for i in opened:
            if i >= lo:  # carried sends that stayed open are already there
                rec = records[i]
                open_sends[rec.message_key()] = rec
        new_pairs.sort(key=lambda p: p[1])
        send_of_recv = self._send_of_recv
        pairs = self._pairs
        for s, r in new_pairs:
            pairs.append(MessagePair(records[s], records[r]))
            send_of_recv[r] = s
        unmatched.sort()
        self._unmatched_recvs.extend(records[i] for i in unmatched)

    def message_pairs(self) -> list[MessagePair]:
        """All matched (send, recv) pairs, in receive order."""
        self._check_live()
        self._ensure_matching()
        return self._pairs

    def unmatched_sends(self) -> list[TraceRecord]:
        """Sends whose message was never received, in trace order."""
        self._check_live()
        self._ensure_matching()
        return sorted(self._open_sends.values(), key=lambda r: r.index)

    def unmatched_recvs(self) -> list[TraceRecord]:
        """Receives with no matching send in the indexed history."""
        self._check_live()
        self._ensure_matching()
        return self._unmatched_recvs

    @property
    def send_of_recv(self) -> dict[int, int]:
        """recv record index -> matched send record index."""
        self._check_live()
        self._ensure_matching()
        return self._send_of_recv

    # ------------------------------------------------------------------
    # vector clocks
    # ------------------------------------------------------------------
    def _ensure_clocks(self) -> None:
        n = self._n
        if self._clocked_upto >= n:
            self._stats.hit("clocks")
            return
        self._ensure_matching()  # recv joins need send_of_recv
        self._stats.miss("clocks")
        start = time.perf_counter()
        if self._clocked_upto == 0:
            self._stats.clock_builds += 1
        if self._clocks.shape[0] < n:
            cap = max(64, n, 2 * self._clocks.shape[0])
            grown = np.zeros((cap, self.nprocs), dtype=np.int64)
            grown[: self._clocks.shape[0]] = self._clocks
            self._clocks = grown
        lo = self._clocked_upto
        if self.engine == "python":
            self._clocks_suffix_python(lo, n)
        else:
            self._clocks_suffix_numpy(lo, n)
        self._clocked_upto = n
        self._stats.clock_extends += n - lo
        self._stats.clock_seconds += time.perf_counter() - start

    def _clocks_suffix_python(self, lo: int, n: int) -> None:
        """Reference kernel: one Python iteration per record."""
        clocks = self._clocks
        current = self._current
        send_of_recv = self._send_of_recv
        for rec in self._records[lo:n]:
            p = rec.proc
            row = current[p]
            row[p] += 1
            s = send_of_recv.get(rec.index)
            if s is not None:
                np.maximum(row, clocks[s], out=row)
            clocks[rec.index] = row

    def _clocks_suffix_numpy(self, lo: int, n: int) -> None:
        """Vectorized kernel: Python touches only receive-join events.

        A process's clock changes its *own* component at every event but
        its other components only at receive joins, so each per-process
        row splits into segments delimited by joins: within a segment
        every clock row equals the segment base except the own column,
        which is a running count.  The kernel walks the joins in trace
        order maintaining the per-process running bases as plain Python
        lists (length p -- no numpy-call overhead inside the loop) and
        collects each new segment base into a per-process table; the
        clock matrix is then written in two bulk operations per process
        -- one ``B[segment_id]`` gather for the inter-join broadcasts,
        one global scatter for the own-component counters.

        ``self._current`` keeps the scalar kernel's invariant between
        catch-ups -- row p is the clock after p's last indexed event --
        so the two engines' persistent state is interchangeable.
        """
        from bisect import bisect_right

        cols = self._cols
        nprocs = self.nprocs
        clocks = self._clocks
        current = self._current
        m = n - lo
        proc_sub = cols["proc"][lo:n]
        kind_sub = cols["kind"][lo:n]
        order = np.argsort(proc_sub, kind="stable")
        bounds = np.searchsorted(proc_sub[order], np.arange(nprocs + 1))
        idxs_by_proc = [order[bounds[p]: bounds[p + 1]] for p in range(nprocs)]
        counts0 = [int(current[p, p]) for p in range(nprocs)]
        own_abs = np.empty(m, dtype=np.int64)
        for p in range(nprocs):
            rows = idxs_by_proc[p]
            own_abs[rows] = counts0[p] + np.arange(
                1, rows.size + 1, dtype=np.int64
            )
        # matched joins of the suffix, in trace order, with the scalar
        # reads the loop needs gathered up front (no full-column tolist)
        send_map = self._send_of_recv
        recv_rels = np.nonzero(kind_sub == _RECV_CODE)[0]
        sends = [send_map.get(int(i) + lo) for i in recv_rels]
        keep = [k for k, s in enumerate(sends) if s is not None]
        i_rels = recv_rels[keep].tolist() if keep else []
        s_abs = [sends[k] for k in keep]
        own_i_l = own_abs[recv_rels[keep]].tolist() if keep else []
        p_l = proc_sub[recv_rels[keep]].tolist() if keep else []
        s_rel_arr = np.asarray([s - lo for s in s_abs], dtype=np.int64)
        in_suffix = [s >= lo for s in s_abs]
        own_s_l = np.where(
            s_rel_arr >= 0, own_abs[np.maximum(s_rel_arr, 0)], 0
        ).tolist() if keep else []
        q_l = proc_sub[np.maximum(s_rel_arr, 0)].tolist() if keep else []
        # per-process running base (non-own components) + segment tables
        base = [current[p].tolist() for p in range(nprocs)]
        seg_bases: list[list[list[int]]] = [[base[p][:]] for p in range(nprocs)]
        join_rows: list[list[int]] = [[] for _ in range(nprocs)]
        for k in range(len(i_rels)):
            own_i = own_i_l[k]
            p = p_l[k]
            bp = base[p]
            if in_suffix[k]:
                q = q_l[k]
                # the send's segment: last join of q at or before its row
                rel_row = own_s_l[k] - 1 - counts0[q]
                sc = seg_bases[q][bisect_right(join_rows[q], rel_row)]
                bp = [a if a >= b else b for a, b in zip(bp, sc)]
                v = own_s_l[k]  # the send's own component
                if v > bp[q]:
                    bp[q] = v
            else:
                # prior-batch send: its clock row is already final
                sc = clocks[s_abs[k]].tolist()
                bp = [a if a >= b else b for a, b in zip(bp, sc)]
            bp[p] = own_i
            base[p] = bp  # the old list stays frozen in its segment table
            join_rows[p].append(own_i - 1 - counts0[p])
            seg_bases[p].append(bp)
        # bulk fill: global segment ids -> one contiguous gather, then
        # one scatter for the own-component counters -----------------
        gid = np.empty(m, dtype=np.int64)
        offset = 0
        tables = []
        for p in range(nprocs):
            rows = idxs_by_proc[p]
            tables.extend(seg_bases[p])
            if rows.size:
                if join_rows[p]:
                    gid[rows] = offset + np.searchsorted(
                        np.asarray(join_rows[p], dtype=np.int64),
                        np.arange(rows.size, dtype=np.int64),
                        side="right",
                    )
                else:
                    gid[rows] = offset
            offset += len(seg_bases[p])
            current[p] = base[p]
            current[p, p] = counts0[p] + rows.size
        table_all = np.asarray(tables, dtype=np.int64)
        # gid is in [0, len(tables)) by construction; "clip" skips the
        # bounds pass, and writing straight into the matrix avoids a
        # second (n x p)-sized temporary
        table_all.take(gid, axis=0, mode="clip", out=clocks[lo:n])
        clocks[np.arange(lo, n), proc_sub] = own_abs

    @property
    def clocks(self) -> np.ndarray:
        """The (n_records, nprocs) vector-clock matrix (read-only view)."""
        self._check_live()
        self._ensure_clocks()
        return self._clocks[: self._n]

    @property
    def order(self) -> CausalOrder:
        """Happens-before queries over the indexed history.

        The returned :class:`CausalOrder` is a zero-copy view of the
        incrementally-maintained clock matrix; accessing it never
        re-derives clocks already computed.
        """
        self._check_live()
        self._ensure_clocks()
        trace = self.trace
        if self._order is None or self._order.trace is not trace:
            self._stats.miss("order")
            n = self._n
            self._order = CausalOrder(
                trace=trace,
                clocks=self._clocks[:n],
                procs=self._cols["proc"][:n].astype(np.int64),
            )
        else:
            self._stats.hit("order")
        return self._order

    # ------------------------------------------------------------------
    # kernel observability (races, critical path, ... report here)
    # ------------------------------------------------------------------
    def record_kernel(self, name: str, seconds: float) -> None:
        """Attribute one analysis-kernel invocation to this index's
        stats (surfaced by the debugger ``stats`` command)."""
        self._stats.kernel(name, seconds)

    # ------------------------------------------------------------------
    # trace view
    # ------------------------------------------------------------------
    @property
    def trace(self) -> Trace:
        """An immutable Trace snapshot of the indexed records, memoized
        until the next extension."""
        self._check_live()
        self._ensure_records()
        if self._trace is None or len(self._trace) != len(self._records):
            self._stats.miss("trace")
            self._stats.trace_snapshots += 1
            self._trace = Trace(self._records, self.nprocs)
            # The snapshot and the index describe the same history; hand
            # the trace our derived state so its own lazy accessors
            # never re-derive what the index already holds.
            bind_trace_index(self._trace, self)
        else:
            self._stats.hit("trace")
        return self._trace

    # ------------------------------------------------------------------
    # blocked-wait state (runtime snapshot for §4.4 diagnoses)
    # ------------------------------------------------------------------
    def set_blocked(self, waiting: Optional[Sequence["WaitInfo"]]) -> None:
        """Cache the runtime's blocked-wait snapshot for §4.4 consumers
        (missed-message and deadlock diagnoses)."""
        self._check_live()
        self._blocked = list(waiting) if waiting is not None else None

    @property
    def blocked(self) -> Optional[list["WaitInfo"]]:
        self._check_live()
        return self._blocked

    # ------------------------------------------------------------------
    def stats(self) -> IndexStats:
        """A point-in-time copy of the build/extend counters."""
        return self._stats.snapshot()


class IndexSink(TraceSink):
    """Feeds a :class:`HistoryIndex` from a TraceBus as records stream
    in -- the streaming half of the shared substrate."""

    def __init__(self, index: HistoryIndex) -> None:
        self.index = index

    def emit(self, record: TraceRecord) -> None:
        self.index.extend(record)


def bind_trace_index(trace: Trace, index: HistoryIndex) -> None:
    """Memoize ``index`` on ``trace`` so every consumer handed the bare
    trace shares the same derived state (the back-compat seam)."""
    trace._history_index = index


def ensure_index(
    source: "HistoryIndex | Trace | Iterable[TraceRecord]",
    nprocs: Optional[int] = None,
    index: Optional[HistoryIndex] = None,
    engine: str = "numpy",
) -> HistoryIndex:
    """Coerce anything history-shaped into a shared :class:`HistoryIndex`.

    Precedence: an explicitly passed ``index`` wins; an index argument
    passes through; a :class:`Trace` gets an index memoized *on the
    trace object*, so repeated analyses over the same trace share one
    derivation; any other record iterable is materialized first.
    ``engine`` applies only when a new index is built here.
    """
    if index is not None:
        return index
    if isinstance(source, HistoryIndex):
        return source
    if not isinstance(source, Trace):
        source = ensure_trace(source, nprocs=nprocs)
    cached = getattr(source, "_history_index", None)
    if cached is not None and not cached.stale:
        return cached
    built = HistoryIndex.from_trace(source, engine=engine)
    bind_trace_index(source, built)
    return built
