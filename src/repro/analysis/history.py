"""The :class:`HistoryIndex`: one shared analysis substrate per trace.

Every history analysis the debugger offers (§4.1-§4.4: frontiers,
stoplines, deadlock, races, critical path, matching reports) rests on
the same derived primitives -- vector clocks, send/receive matching,
per-process program-order rows, span/marker lookup tables -- and before
this module each analysis re-derived them with a full O(n*p) pass over
the trace.  MAD's event-graph-centric design (Kranzlmüller et al.) and
Okita et al.'s scalable trace analysis both argue the opposite
structure: *one* incrementally-maintained derived-state container that
all debugging activities consume.  That container is this class.

Maintenance is incremental with a lazy catch-up discipline:

* :meth:`extend` (fed by an :class:`IndexSink` on the TraceBus) appends
  the record and updates the O(1) components eagerly -- program-order
  rows, the (proc, marker) lookup table, the span;
* the expensive components -- vector clocks and message matching --
  keep a high-water mark and, on first access after new records
  arrived, fold in only the suffix (amortized O(p) per record).  They
  are never rebuilt from scratch once built, which is what
  ``stats().clock_builds == 1`` asserts.

Generation discipline: an index belongs to one execution.  When
``DebugSession.replay()``/``undo()`` discards an execution it calls
:meth:`invalidate` on that generation's index; a stale index refuses
every query (raising :class:`StaleIndexError`) so analyses can never
silently read the previous execution's history.

Sharing discipline: :func:`ensure_index` memoizes the index on the
:class:`~repro.trace.trace.Trace` itself, so consumers that still take
a bare trace (the pre-index call signatures all still work) share one
index per trace without threading any argument.

Incremental matching assumes trace causality (a receive record never
precedes its matching send record -- the recording order is a causal
linearization, the same §4.1 property stoplines rest on).  A trace that
violates it -- see :func:`~repro.analysis.causality.check_trace_causality`
-- would list such receives as unmatched where the batch two-pass
matcher pairs them.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Iterable, Optional, Sequence

import numpy as np

from repro.trace.events import TraceRecord
from repro.trace.sinks import TraceSink
from repro.trace.trace import MessagePair, Trace, ensure_trace

from .causality import CausalOrder

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.mp.process import WaitInfo
    from repro.trace.columnar import ColumnBlock
    from repro.trace.tracefile import TraceFileReader


class StaleIndexError(RuntimeError):
    """A query hit an index whose execution generation was discarded."""


@dataclass
class IndexStats:
    """Observability snapshot of one index's build/extend economics.

    ``*_builds`` counts from-scratch derivations of a component (the
    multi-analysis acceptance criterion: exactly one each per trace);
    ``*_extends`` counts records folded in incrementally;
    ``*_seconds`` is wall-clock spent deriving; ``hits``/``misses``
    count memoized-component lookups per component name.
    """

    generation: int = 0
    records: int = 0
    clock_builds: int = 0
    clock_extends: int = 0
    clock_seconds: float = 0.0
    matching_builds: int = 0
    matching_extends: int = 0
    matching_seconds: float = 0.0
    trace_snapshots: int = 0
    hits: dict = field(default_factory=dict)
    misses: dict = field(default_factory=dict)

    def hit(self, component: str) -> None:
        self.hits[component] = self.hits.get(component, 0) + 1

    def miss(self, component: str) -> None:
        self.misses[component] = self.misses.get(component, 0) + 1

    def snapshot(self) -> "IndexStats":
        return IndexStats(
            generation=self.generation,
            records=self.records,
            clock_builds=self.clock_builds,
            clock_extends=self.clock_extends,
            clock_seconds=self.clock_seconds,
            matching_builds=self.matching_builds,
            matching_extends=self.matching_extends,
            matching_seconds=self.matching_seconds,
            trace_snapshots=self.trace_snapshots,
            hits=dict(self.hits),
            misses=dict(self.misses),
        )

    def as_text(self) -> str:
        lines = [
            f"history index stats (generation {self.generation}, "
            f"{self.records} records)",
            f"  vector clocks : {self.clock_builds} build(s), "
            f"{self.clock_extends} record(s) folded, "
            f"{self.clock_seconds * 1e3:.2f} ms",
            f"  matching      : {self.matching_builds} build(s), "
            f"{self.matching_extends} record(s) folded, "
            f"{self.matching_seconds * 1e3:.2f} ms",
            f"  trace snapshots: {self.trace_snapshots}",
        ]
        for name in sorted(set(self.hits) | set(self.misses)):
            lines.append(
                f"  {name:<13s} : {self.hits.get(name, 0)} hit(s), "
                f"{self.misses.get(name, 0)} miss(es)"
            )
        return "\n".join(lines)


class HistoryIndex:
    """Shared, incrementally-maintained derived state for one history.

    Components (each computed once, then extended):

    * ``order`` -- vector clocks as a :class:`CausalOrder`;
    * ``message_pairs()`` / ``unmatched_sends()`` / ``unmatched_recvs()``
      / ``send_of_recv`` -- send/receive matching;
    * ``by_proc(p)`` -- per-process program-order rows;
    * ``span`` / ``record_at_marker()`` -- span and marker lookup;
    * ``blocked`` -- the runtime's blocked-wait snapshot, when supplied.

    ``trace`` materializes (and memoizes) an immutable
    :class:`~repro.trace.trace.Trace` view over the indexed records for
    consumers that navigate positionally.
    """

    def __init__(
        self,
        records: Optional[Iterable[TraceRecord]] = None,
        nprocs: Optional[int] = None,
        generation: int = 0,
    ) -> None:
        if nprocs is None:
            if records is None:
                raise ValueError("need nprocs when starting from an empty stream")
            records = list(records)
            nprocs = 0
            for rec in records:
                nprocs = max(nprocs, rec.proc + 1, rec.src + 1, rec.dst + 1)
        self.nprocs = max(1, nprocs)
        self.generation = generation
        self._stale = False
        self._records: list[TraceRecord] = []
        # eager O(1) components -------------------------------------------
        self._rows: list[list[TraceRecord]] = [[] for _ in range(self.nprocs)]
        self._marker_first: dict[tuple[int, int], TraceRecord] = {}
        self._t_lo: Optional[float] = None
        self._t_hi: Optional[float] = None
        # matching (lazy catch-up) ----------------------------------------
        self._matched_upto = 0
        self._open_sends: dict[tuple[int, int, int, int], TraceRecord] = {}
        self._pairs: list[MessagePair] = []
        self._send_of_recv: dict[int, int] = {}
        self._unmatched_recvs: list[TraceRecord] = []
        # vector clocks (lazy catch-up) -----------------------------------
        self._clocked_upto = 0
        self._clocks = np.zeros((0, self.nprocs), dtype=np.int64)
        self._current = np.zeros((self.nprocs, self.nprocs), dtype=np.int64)
        # memoized views ---------------------------------------------------
        self._trace: Optional[Trace] = None
        self._order: Optional[CausalOrder] = None
        self._blocked: Optional[list["WaitInfo"]] = None
        self._stats = IndexStats(generation=generation)
        if records is not None:
            self.extend_many(records)

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_trace(cls, trace: Trace, generation: int = 0) -> "HistoryIndex":
        """Index an existing immutable trace (the batch entry point).

        When the trace's record indexes are already positional the trace
        object itself becomes the index's materialized view, so
        trace-level caches (``by_proc`` and friends) are shared rather
        than duplicated.
        """
        index = cls(nprocs=trace.nprocs, generation=generation)
        positional = all(rec.index == k for k, rec in enumerate(trace))
        index.extend_many(trace)
        if positional:
            index._trace = trace
            index._stats.trace_snapshots += 1
        return index

    @classmethod
    def from_file(
        cls, reader: "TraceFileReader", generation: int = 0
    ) -> "HistoryIndex":
        """Index a trace file through the bulk columnar path.

        Uses :meth:`TraceFileReader.read_columns`, so a v3 file is
        ingested column-wise (no per-record JSON parsing); v1/v2 files
        bridge through the record path transparently.
        """
        index = cls(nprocs=reader.nprocs, generation=generation)
        index.extend_columns(reader.read_columns())
        return index

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def invalidate(self) -> None:
        """Mark this generation's history as discarded (post-replay).

        Every subsequent query or extension raises
        :class:`StaleIndexError`: an index must never answer for an
        execution that no longer exists.
        """
        self._stale = True

    @property
    def stale(self) -> bool:
        return self._stale

    def _check_live(self) -> None:
        if self._stale:
            raise StaleIndexError(
                f"history index for generation {self.generation} was "
                "invalidated by a replay; ask the session for the current "
                "generation's index"
            )

    # ------------------------------------------------------------------
    # extension (the IndexSink feed)
    # ------------------------------------------------------------------
    def extend(self, record: TraceRecord) -> None:
        """Fold one record in: O(1) now, amortized O(p) once the clock
        and matching components catch up to it."""
        self._check_live()
        pos = len(self._records)
        if record.index != pos:
            # windowed / ring-buffer streams have sparse global indexes;
            # positional invariants (clock rows, path DP) need re-indexed
            # copies, same as ensure_trace.
            record = replace(record, index=pos)
        self._records.append(record)
        if 0 <= record.proc < self.nprocs:
            self._rows[record.proc].append(record)
            self._marker_first.setdefault((record.proc, record.marker), record)
        if self._t_lo is None or record.t0 < self._t_lo:
            self._t_lo = record.t0
        if self._t_hi is None or record.t1 > self._t_hi:
            self._t_hi = record.t1
        self._stats.records = len(self._records)

    def extend_many(self, records: Iterable[TraceRecord]) -> int:
        n = 0
        for rec in records:
            self.extend(rec)
            n += 1
        return n

    def extend_columns(self, block: "ColumnBlock") -> int:
        """Bulk-ingest one decoded columnar block (the
        :meth:`TraceFileReader.read_columns` feed).

        Equivalent to ``extend_many(block.to_records())`` but updates
        the span from the block's time columns in one vectorized step
        and re-indexes positionally by mutating the freshly
        materialized records in place instead of copying each one.
        """
        self._check_live()
        n = len(block)
        if n == 0:
            return 0
        records = block.to_records()
        pos = len(self._records)
        rows = self._rows
        marker_first = self._marker_first
        nprocs = self.nprocs
        for rec in records:
            if rec.index != pos:
                rec.index = pos  # to_records() objects are ours to mutate
            pos += 1
            p = rec.proc
            if 0 <= p < nprocs:
                rows[p].append(rec)
                marker_first.setdefault((p, rec.marker), rec)
        self._records.extend(records)
        t_lo = float(block.columns["t0"].min())
        t_hi = float(block.columns["t1"].max())
        if self._t_lo is None or t_lo < self._t_lo:
            self._t_lo = t_lo
        if self._t_hi is None or t_hi > self._t_hi:
            self._t_hi = t_hi
        self._stats.records = len(self._records)
        return n

    def __len__(self) -> int:
        return len(self._records)

    @property
    def records(self) -> Sequence[TraceRecord]:
        return self._records

    def sink(self) -> "IndexSink":
        """A bus sink feeding this index (attach to a recorder)."""
        return IndexSink(self)

    # ------------------------------------------------------------------
    # eager components
    # ------------------------------------------------------------------
    def by_proc(self, proc: int) -> Sequence[TraceRecord]:
        """This process's records in program order (live view)."""
        self._check_live()
        return self._rows[proc]

    @property
    def span(self) -> tuple[float, float]:
        """(earliest t0, latest t1); (0, 0) while empty."""
        self._check_live()
        if self._t_lo is None or self._t_hi is None:
            return (0.0, 0.0)
        return (self._t_lo, self._t_hi)

    def record_at_marker(self, proc: int, marker: int) -> Optional[TraceRecord]:
        """First record of ``proc`` carrying ``marker`` (O(1) lookup)."""
        self._check_live()
        return self._marker_first.get((proc, marker))

    def window(self, t_lo: float, t_hi: float) -> list[TraceRecord]:
        """Records overlapping [t_lo, t_hi] (the zoom-rescan primitive)."""
        self._check_live()
        return [r for r in self._records if r.t1 >= t_lo and r.t0 <= t_hi]

    # ------------------------------------------------------------------
    # message matching
    # ------------------------------------------------------------------
    def _ensure_matching(self) -> None:
        n = len(self._records)
        if self._matched_upto >= n:
            self._stats.hit("matching")
            return
        self._stats.miss("matching")
        start = time.perf_counter()
        if self._matched_upto == 0:
            self._stats.matching_builds += 1
        lo = self._matched_upto
        for rec in self._records[lo:]:
            if rec.is_send:
                self._open_sends[rec.message_key()] = rec
            elif rec.is_recv:
                send = self._open_sends.pop(rec.message_key(), None)
                if send is None:
                    self._unmatched_recvs.append(rec)
                else:
                    self._pairs.append(MessagePair(send, rec))
                    self._send_of_recv[rec.index] = send.index
        self._matched_upto = n
        self._stats.matching_extends += n - lo
        self._stats.matching_seconds += time.perf_counter() - start

    def message_pairs(self) -> list[MessagePair]:
        """All matched (send, recv) pairs, in receive order."""
        self._check_live()
        self._ensure_matching()
        return self._pairs

    def unmatched_sends(self) -> list[TraceRecord]:
        """Sends whose message was never received, in trace order."""
        self._check_live()
        self._ensure_matching()
        return list(self._open_sends.values())

    def unmatched_recvs(self) -> list[TraceRecord]:
        """Receives with no matching send in the indexed history."""
        self._check_live()
        self._ensure_matching()
        return self._unmatched_recvs

    @property
    def send_of_recv(self) -> dict[int, int]:
        """recv record index -> matched send record index."""
        self._check_live()
        self._ensure_matching()
        return self._send_of_recv

    # ------------------------------------------------------------------
    # vector clocks
    # ------------------------------------------------------------------
    def _ensure_clocks(self) -> None:
        n = len(self._records)
        if self._clocked_upto >= n:
            self._stats.hit("clocks")
            return
        self._ensure_matching()  # recv joins need send_of_recv
        self._stats.miss("clocks")
        start = time.perf_counter()
        if self._clocked_upto == 0:
            self._stats.clock_builds += 1
        if self._clocks.shape[0] < n:
            cap = max(64, n, 2 * self._clocks.shape[0])
            grown = np.zeros((cap, self.nprocs), dtype=np.int64)
            grown[: self._clocks.shape[0]] = self._clocks
            self._clocks = grown
        lo = self._clocked_upto
        clocks = self._clocks
        current = self._current
        send_of_recv = self._send_of_recv
        for rec in self._records[lo:]:
            p = rec.proc
            row = current[p]
            row[p] += 1
            s = send_of_recv.get(rec.index)
            if s is not None:
                np.maximum(row, clocks[s], out=row)
            clocks[rec.index] = row
        self._clocked_upto = n
        self._stats.clock_extends += n - lo
        self._stats.clock_seconds += time.perf_counter() - start

    @property
    def clocks(self) -> np.ndarray:
        """The (n_records, nprocs) vector-clock matrix (read-only view)."""
        self._check_live()
        self._ensure_clocks()
        return self._clocks[: len(self._records)]

    @property
    def order(self) -> CausalOrder:
        """Happens-before queries over the indexed history.

        The returned :class:`CausalOrder` is a zero-copy view of the
        incrementally-maintained clock matrix; accessing it never
        re-derives clocks already computed.
        """
        self._check_live()
        self._ensure_clocks()
        trace = self.trace
        if self._order is None or self._order.trace is not trace:
            self._stats.miss("order")
            self._order = CausalOrder(
                trace=trace, clocks=self._clocks[: len(self._records)]
            )
        else:
            self._stats.hit("order")
        return self._order

    # ------------------------------------------------------------------
    # trace view
    # ------------------------------------------------------------------
    @property
    def trace(self) -> Trace:
        """An immutable Trace snapshot of the indexed records, memoized
        until the next extension."""
        self._check_live()
        if self._trace is None or len(self._trace) != len(self._records):
            self._stats.miss("trace")
            self._stats.trace_snapshots += 1
            self._trace = Trace(self._records, self.nprocs)
            # The snapshot and the index describe the same history; hand
            # the trace our derived state so its own lazy accessors
            # never re-derive what the index already holds.
            bind_trace_index(self._trace, self)
        else:
            self._stats.hit("trace")
        return self._trace

    # ------------------------------------------------------------------
    # blocked-wait state (runtime snapshot for §4.4 diagnoses)
    # ------------------------------------------------------------------
    def set_blocked(self, waiting: Optional[Sequence["WaitInfo"]]) -> None:
        """Cache the runtime's blocked-wait snapshot for §4.4 consumers
        (missed-message and deadlock diagnoses)."""
        self._check_live()
        self._blocked = list(waiting) if waiting is not None else None

    @property
    def blocked(self) -> Optional[list["WaitInfo"]]:
        self._check_live()
        return self._blocked

    # ------------------------------------------------------------------
    def stats(self) -> IndexStats:
        """A point-in-time copy of the build/extend counters."""
        return self._stats.snapshot()


class IndexSink(TraceSink):
    """Feeds a :class:`HistoryIndex` from a TraceBus as records stream
    in -- the streaming half of the shared substrate."""

    def __init__(self, index: HistoryIndex) -> None:
        self.index = index

    def emit(self, record: TraceRecord) -> None:
        self.index.extend(record)


def bind_trace_index(trace: Trace, index: HistoryIndex) -> None:
    """Memoize ``index`` on ``trace`` so every consumer handed the bare
    trace shares the same derived state (the back-compat seam)."""
    trace._history_index = index


def ensure_index(
    source: "HistoryIndex | Trace | Iterable[TraceRecord]",
    nprocs: Optional[int] = None,
    index: Optional[HistoryIndex] = None,
) -> HistoryIndex:
    """Coerce anything history-shaped into a shared :class:`HistoryIndex`.

    Precedence: an explicitly passed ``index`` wins; an index argument
    passes through; a :class:`Trace` gets an index memoized *on the
    trace object*, so repeated analyses over the same trace share one
    derivation; any other record iterable is materialized first.
    """
    if index is not None:
        return index
    if isinstance(source, HistoryIndex):
        return source
    if not isinstance(source, Trace):
        source = ensure_trace(source, nprocs=nprocs)
    cached = getattr(source, "_history_index", None)
    if cached is not None and not cached.stale:
        return cached
    built = HistoryIndex.from_trace(source)
    bind_trace_index(source, built)
    return built
