"""Trace-derived performance profiles.

AIMS -- the toolkit the paper builds its first acquisition method on --
is a *performance* analysis system; the same traces that drive debugging
answer "where did the time go".  This module distills a trace into the
three classic reports:

* :func:`time_breakdown` -- per process: computing / communicating /
  blocked-in-receive virtual time (the colored-bar totals of the
  time-space diagram);
* :func:`communication_matrix` -- messages and payload volume per
  (src, dst) route;
* :func:`function_profile` -- inclusive/exclusive virtual time and call
  counts per function (needs function-entry instrumentation).

Each has an ``as_text`` rendering used by the debugger's reporting.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

import numpy as np

from repro.trace.events import COLLECTIVE_KINDS, EventKind
from repro.trace.trace import Trace

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .history import HistoryIndex


# ----------------------------------------------------------------------
# time breakdown
# ----------------------------------------------------------------------
@dataclass
class ProcTimeBreakdown:
    """Virtual-time totals for one process."""

    proc: int
    compute: float = 0.0
    send: float = 0.0
    #: receive time spent after the message was available (overhead)
    recv_overhead: float = 0.0
    #: receive time spent waiting for the message to exist (blocked)
    recv_blocked: float = 0.0
    collective: float = 0.0

    @property
    def total(self) -> float:
        return (
            self.compute
            + self.send
            + self.recv_overhead
            + self.recv_blocked
            + self.collective
        )


def time_breakdown(
    trace: Trace,
    index: "Optional[HistoryIndex]" = None,
) -> list[ProcTimeBreakdown]:
    """Per-process virtual-time decomposition.

    Receive time is split at the matched message's send completion: the
    portion of the receive bar before ``peer_time`` is genuine waiting
    (the process could not have proceeded), the rest is transfer and
    overhead.  Collective records overlap their constituent traffic, so
    only the overhead *not* inside constituent sends/receives is counted
    (approximated as the collective record's duration minus contained
    message durations, floored at zero).
    """
    from .history import ensure_index

    idx = ensure_index(trace, index=index)
    trace = idx.trace
    out = [ProcTimeBreakdown(p) for p in range(trace.nprocs)]
    for rec in trace:
        row = out[rec.proc]
        if rec.kind is EventKind.COMPUTE:
            row.compute += rec.duration
        elif rec.is_send:
            row.send += rec.duration
        elif rec.is_recv:
            if rec.peer_time >= 0.0:
                blocked = max(0.0, min(rec.peer_time, rec.t1) - rec.t0)
            else:
                blocked = 0.0
            row.recv_blocked += blocked
            row.recv_overhead += rec.duration - blocked
        elif rec.kind in COLLECTIVE_KINDS:
            inner = sum(
                r.duration
                for r in idx.by_proc(rec.proc)
                if r.is_message and rec.t0 <= r.t0 and r.t1 <= rec.t1
            )
            row.collective += max(0.0, rec.duration - inner)
    return out


def time_breakdown_text(trace: Trace, index: "Optional[HistoryIndex]" = None) -> str:
    rows = time_breakdown(trace, index=index)
    lines = ["proc   compute     send  recv-wait  recv-ovhd  collective"]
    for r in rows:
        lines.append(
            f"p{r.proc:<4d} {r.compute:8.2f} {r.send:8.2f} "
            f"{r.recv_blocked:10.2f} {r.recv_overhead:10.2f} "
            f"{r.collective:11.2f}"
        )
    return "\n".join(lines)


# ----------------------------------------------------------------------
# communication matrix
# ----------------------------------------------------------------------
@dataclass
class CommMatrix:
    """Message counts and element volume per (src, dst) route."""

    nprocs: int
    counts: np.ndarray  # (nprocs, nprocs) int64
    volume: np.ndarray  # (nprocs, nprocs) int64

    def busiest_route(self) -> tuple[int, int]:
        flat = int(np.argmax(self.volume))
        return divmod(flat, self.nprocs)

    def totals(self) -> tuple[int, int]:
        """(total messages, total elements)."""
        return int(self.counts.sum()), int(self.volume.sum())

    def as_text(self) -> str:
        lines = ["message counts (rows = src, cols = dst)"]
        header = "     " + "".join(f"{d:>6d}" for d in range(self.nprocs))
        lines.append(header)
        for s in range(self.nprocs):
            cells = "".join(f"{int(self.counts[s, d]):>6d}" for d in range(self.nprocs))
            lines.append(f"p{s:<4d}{cells}")
        msgs, elems = self.totals()
        lines.append(f"total: {msgs} messages, {elems} elements")
        return "\n".join(lines)


def communication_matrix(
    trace: Trace,
    user_only: bool = True,
    index: "Optional[HistoryIndex]" = None,
) -> CommMatrix:
    """Build the route matrix from send records.

    ``user_only`` drops collective plumbing (reserved tags), showing the
    application's own traffic pattern.
    """
    from repro.mp.datatypes import COLLECTIVE_TAG_BASE

    from .history import SEND_CODES, ensure_index

    idx = ensure_index(trace, index=index)
    nprocs = idx.nprocs
    cols = idx.columns
    counts = np.zeros((nprocs, nprocs), dtype=np.int64)
    volume = np.zeros_like(counts)
    src = cols["src"]
    dst = cols["dst"]
    mask = np.isin(cols["kind"], SEND_CODES)
    if user_only:
        mask &= cols["tag"] < COLLECTIVE_TAG_BASE
    mask &= (src >= 0) & (src < nprocs) & (dst >= 0) & (dst < nprocs)
    np.add.at(counts, (src[mask], dst[mask]), 1)
    np.add.at(volume, (src[mask], dst[mask]), cols["size"][mask])
    return CommMatrix(nprocs, counts, volume)


# ----------------------------------------------------------------------
# function profile
# ----------------------------------------------------------------------
@dataclass
class FunctionStats:
    """Dynamic profile of one function (across all processes)."""

    name: str
    calls: int = 0
    inclusive: float = 0.0  # time between entry and exit
    exclusive: float = 0.0  # inclusive minus time in instrumented callees

    @property
    def mean_inclusive(self) -> float:
        return self.inclusive / self.calls if self.calls else 0.0


def function_profile(
    trace: Trace,
    index: "Optional[HistoryIndex]" = None,
) -> dict[str, FunctionStats]:
    """gprof-flavoured profile from FUNC_ENTRY/FUNC_EXIT records."""
    from .history import ensure_index

    idx = ensure_index(trace, index=index)
    trace = idx.trace
    stats: dict[str, FunctionStats] = {}
    for p in range(trace.nprocs):
        # stack of [name, t_entry, child_time]
        stack: list[list] = []
        for rec in idx.by_proc(p):
            if rec.kind is EventKind.FUNC_ENTRY:
                stack.append([rec.location.function, rec.t0, 0.0])
            elif rec.kind is EventKind.FUNC_EXIT and stack:
                if stack[-1][0] != rec.location.function:
                    continue  # mismatched exit (partial trace); skip
                name, t_in, child = stack.pop()
                fs = stats.setdefault(name, FunctionStats(name))
                dur = rec.t1 - t_in
                fs.calls += 1
                fs.inclusive += dur
                fs.exclusive += max(0.0, dur - child)
                if stack:
                    stack[-1][2] += dur
    return stats


def function_profile_text(
    trace: Trace,
    top: int = 15,
    index: "Optional[HistoryIndex]" = None,
) -> str:
    stats = sorted(
        function_profile(trace, index=index).values(), key=lambda s: -s.exclusive
    )[:top]
    lines = ["function                     calls   inclusive   exclusive"]
    for s in stats:
        lines.append(
            f"{s.name:<26s} {s.calls:7d} {s.inclusive:11.2f} {s.exclusive:11.2f}"
        )
    return "\n".join(lines) if stats else "(no function records in trace)"
