"""Critical-path analysis over the happens-before DAG.

The longest causal chain through the trace bounds the execution's
makespan: no scheduling or overlap can make the run shorter than its
critical path.  Identifying it tells the user *which* dependency chain
(computes and message hops) to attack -- the quantitative companion to
eyeballing the time-space diagram's dominant diagonal.

Edges and weights:

* program order: consecutive records of one process, weighted by the
  later record's duration (plus any idle gap in between -- idle gaps are
  *not* on the critical path, so they carry zero weight);
* message order: a send's record to its receive's record, weighted by
  the transfer portion of the receive (completion minus send time).

The path is computed by a longest-path pass in trace order, which is a
topological order of the happens-before DAG (receives are recorded after
their sends; per-process order is program order).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Optional

import numpy as np

from repro.trace.columnar import KIND_CODES
from repro.trace.events import COLLECTIVE_KINDS, EventKind, TraceRecord
from repro.trace.trace import Trace

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .history import HistoryIndex

#: kinds whose records carry zero path weight: aggregate/wait records
#: overlap their constituent point-to-point events (which carry the
#: weight) and include wait time.
ZERO_WEIGHT_KINDS = frozenset(COLLECTIVE_KINDS) | {
    EventKind.WAIT,
    EventKind.WAITALL,
    EventKind.WAITANY,
    EventKind.SENDRECV,
    EventKind.TEST,
}
_ZERO_WEIGHT_CODES = np.array(
    sorted(KIND_CODES[k] for k in ZERO_WEIGHT_KINDS), dtype=np.uint8
)


@dataclass
class CriticalPath:
    """The longest weighted causal chain of a trace."""

    records: list[TraceRecord]
    length: float
    #: total duration of all events on every process (for the ratio)
    span: float
    #: effective work weight of each path record (blocked receive time
    #: excluded), parallel to ``records``
    weights: list[float] = None  # type: ignore[assignment]

    @property
    def dominance(self) -> float:
        """Path length / trace span: near 1.0 means fully serialized."""
        return self.length / self.span if self.span > 0 else 0.0

    def hops(self) -> int:
        """How many times the path crosses processes (message edges)."""
        return sum(
            1
            for a, b in zip(self.records, self.records[1:])
            if a.proc != b.proc
        )

    def as_text(self, limit: int = 30) -> str:
        lines = [
            f"critical path: {self.length:.2f} time units over "
            f"{len(self.records)} events, {self.hops()} message hops, "
            f"dominance {self.dominance:.2f}"
        ]
        shown = self.records if len(self.records) <= limit else (
            self.records[: limit // 2] + self.records[-limit // 2:]
        )
        skipped = len(self.records) - len(shown)
        for i, rec in enumerate(shown):
            if skipped and i == limit // 2:
                lines.append(f"  ... {skipped} events ...")
            lines.append(f"  {rec}")
        return "\n".join(lines)


def critical_path(
    trace: "Trace | Iterable[TraceRecord]",
    index: "Optional[HistoryIndex]" = None,
    engine: Optional[str] = None,
) -> CriticalPath:
    """Longest path through the happens-before DAG of the trace.

    Accepts a materialized :class:`Trace` or any record iterator (the
    streaming consumers hand a file reader's stream straight in).  The
    send-of-recv map and span come from the shared
    :class:`~repro.analysis.history.HistoryIndex`.

    ``engine`` defaults to the index's engine.  The numpy kernel runs
    the longest-path DP as per-process cumulative-sum segments delimited
    by receive joins (Python touches only the joins); the python kernel
    is the per-record reference.  Both report wall-clock into the
    index's per-kernel stats (``critical_path[<engine>]``).
    """
    from .history import ENGINES, ensure_index

    idx = ensure_index(trace, index=index)
    eng = engine if engine is not None else idx.engine
    if eng not in ENGINES:
        raise ValueError(f"unknown engine {eng!r}; expected one of {ENGINES}")
    start = time.perf_counter()
    try:
        if eng == "python":
            result = _critical_path_python(idx)
        else:
            result = _critical_path_numpy(idx)
    finally:
        idx.record_kernel(f"critical_path[{eng}]", time.perf_counter() - start)
    return result


def _critical_path_python(idx: "HistoryIndex") -> CriticalPath:
    """Reference kernel: one Python DP step per record."""
    trace = idx.trace
    n = len(trace)
    if n == 0:
        return CriticalPath([], 0.0, 0.0, [])

    dist = [0.0] * n  # longest path ENDING at record i (inclusive)
    pred = [-1] * n
    send_of_recv = idx.send_of_recv
    last_on_proc: dict[int, int] = {}

    def work(rec: TraceRecord) -> float:
        """The record's weight as path work.

        A blocking receive's bar includes time spent *waiting* for the
        message; that waiting is not work on this chain (the message
        edge carries it), so only the portion after the send completed
        counts.  Unmatched receives (deadlocked) contribute nothing.
        """
        if rec.is_recv:
            s = send_of_recv.get(rec.index)
            if s is None:
                return 0.0
            return max(0.0, rec.t1 - max(trace[s].t1, rec.t0))
        if rec.kind in ZERO_WEIGHT_KINDS:
            return 0.0
        return rec.duration

    for rec in trace:  # trace order is a topological order
        i = rec.index
        w = work(rec)
        best = w
        best_pred = -1
        # program-order edge
        j = last_on_proc.get(rec.proc, -1)
        if j >= 0:
            cand = dist[j] + w
            if cand > best:
                best, best_pred = cand, j
        # message edge: send completion -> receive completion
        s = send_of_recv.get(i)
        if s is not None:
            transfer = max(0.0, rec.t1 - max(trace[s].t1, rec.t0))
            cand = dist[s] + transfer
            if cand > best:
                best, best_pred = cand, s
        dist[i] = best
        pred[i] = best_pred
        last_on_proc[rec.proc] = i

    end = max(range(n), key=lambda i: dist[i])
    path = []
    i = end
    while i >= 0:
        path.append(trace[i])
        i = pred[i]
    path.reverse()
    t_lo, t_hi = idx.span
    return CriticalPath(
        records=path,
        length=dist[end],
        span=t_hi - t_lo,
        weights=[work(rec) for rec in path],
    )


def _critical_path_numpy(idx: "HistoryIndex") -> CriticalPath:
    """Vectorized kernel over the index's column store.

    Between receive joins, a process's DP is a pure running sum (every
    weight and distance is non-negative, so the program-order candidate
    always wins or ties the fresh-start one), so each process's rows
    split into segments delimited by its matched receives and a segment
    is one chained ``np.cumsum`` flush -- sequential additions, hence
    bitwise-identical to the scalar loop.  Python touches only the
    joins (O(messages) iterations), where the send edge competes with
    the program edge under the scalar tie-break (program first, send
    wins only strictly).
    """
    trace = idx.trace
    n = len(trace)
    if n == 0:
        return CriticalPath([], 0.0, 0.0, [])
    cols = idx.columns
    send_of_recv = idx.send_of_recv  # also forces matching before clocks
    nprocs = idx.nprocs
    t0 = cols["t0"]
    t1 = cols["t1"]
    kind = cols["kind"]
    proc_col = cols["proc"]

    # --- weights, vectorized ------------------------------------------
    from .history import RECV_CODES

    w = t1 - t0
    w[np.isin(kind, _ZERO_WEIGHT_CODES)] = 0.0
    w[kind == RECV_CODES[0]] = 0.0  # unmatched receives contribute nothing
    if send_of_recv:
        r_arr = np.fromiter(
            send_of_recv.keys(), dtype=np.int64, count=len(send_of_recv)
        )
        s_arr = np.fromiter(
            send_of_recv.values(), dtype=np.int64, count=len(send_of_recv)
        )
        w[r_arr] = np.maximum(0.0, t1[r_arr] - np.maximum(t1[s_arr], t0[r_arr]))

    # --- per-process segment machinery --------------------------------
    order = np.argsort(proc_col, kind="stable").astype(np.int64)
    bounds = np.searchsorted(proc_col[order], np.arange(nprocs + 1))
    idxs_by_proc = [order[bounds[p]: bounds[p + 1]] for p in range(nprocs)]
    rowpos = np.empty(n, dtype=np.int64)
    for p in range(nprocs):
        rows = idxs_by_proc[p]
        rowpos[rows] = np.arange(rows.size, dtype=np.int64)

    dist = np.zeros(n, dtype=np.float64)
    pred = np.full(n, -1, dtype=np.int64)
    tail = [0.0] * nprocs  # dist of each process's last flushed record
    flushed = [0] * nprocs  # rowpos high-water mark per process
    # contiguous per-process weight views: flushes slice, never gather
    w_by_proc = [w[idxs_by_proc[p]] for p in range(nprocs)]

    def flush(p: int, upto: int) -> None:
        a = flushed[p]
        if upto > a:
            rows = idxs_by_proc[p][a:upto]
            wseg = w_by_proc[p][a:upto]
            buf = np.empty(rows.size + 1, dtype=np.float64)
            buf[0] = tail[p]
            buf[1:] = wseg
            np.add.accumulate(buf, out=buf)  # sequential adds, bitwise
            seg = buf[1:]
            dist[rows] = seg
            prev_i = np.empty(rows.size, dtype=np.int64)
            prev_i[0] = idxs_by_proc[p][a - 1] if a > 0 else -1
            prev_i[1:] = rows[:-1]
            # the program edge is taken only when strictly better than a
            # fresh start (same `cand > best` test as the scalar loop)
            pred[rows] = np.where(seg > wseg, prev_i, -1)
            tail[p] = float(seg[-1])
            flushed[p] = upto

    joins = sorted(send_of_recv.keys())
    if joins:
        j_arr = np.asarray(joins, dtype=np.int64)
        s_list = [send_of_recv[i] for i in joins]
        s_arr2 = np.asarray(s_list, dtype=np.int64)
        jp_l = proc_col[j_arr].tolist()
        jrp_l = rowpos[j_arr].tolist()
        jw_l = w[j_arr].tolist()
        sq_l = proc_col[s_arr2].tolist()
        srp_l = rowpos[s_arr2].tolist()
    for k, i in enumerate(joins):
        s = s_list[k]
        p = jp_l[k]
        rp = jrp_l[k]
        flush(p, rp)
        wi = jw_l[k]
        best = wi
        best_pred = -1
        if rp > 0:
            prev = int(idxs_by_proc[p][rp - 1])
            cand = float(dist[prev]) + wi
            if cand > best:
                best, best_pred = cand, prev
        q = sq_l[k]
        if srp_l[k] >= flushed[q]:
            # the send's distance is still pending in q's open segment;
            # every q-row up to it is join-free (joins are processed in
            # ascending trace order), so flushing through it is exact
            flush(q, srp_l[k] + 1)
        cand = float(dist[s]) + wi
        if cand > best:
            best, best_pred = cand, s
        dist[i] = best
        pred[i] = best_pred
        tail[p] = best
        flushed[p] = rp + 1
    for p in range(nprocs):
        flush(p, idxs_by_proc[p].size)

    end = int(np.argmax(dist))  # first maximum, same as the scalar max()
    path = []
    i = end
    while i >= 0:
        path.append(trace[i])
        i = int(pred[i])
    path.reverse()
    t_lo, t_hi = idx.span
    return CriticalPath(
        records=path,
        length=float(dist[end]),
        span=t_hi - t_lo,
        weights=[float(w[rec.index]) for rec in path],
    )


def slack_per_process(
    trace: Trace,
    path: "CriticalPath | None" = None,
    index: "Optional[HistoryIndex]" = None,
) -> dict[int, float]:
    """Per-process slack: how much of the run each process spent NOT on
    the critical path (a target ranking for load balancing)."""
    from .history import ensure_index

    idx = ensure_index(trace, index=index)
    trace = idx.trace
    if path is None:
        path = critical_path(trace, index=idx)
    on_path: dict[int, float] = {p: 0.0 for p in range(trace.nprocs)}
    for rec, w in zip(path.records, path.weights):
        on_path[rec.proc] += w
    t_lo, t_hi = idx.span
    total = t_hi - t_lo
    return {p: max(0.0, total - on_path[p]) for p in range(trace.nprocs)}
