"""Critical-path analysis over the happens-before DAG.

The longest causal chain through the trace bounds the execution's
makespan: no scheduling or overlap can make the run shorter than its
critical path.  Identifying it tells the user *which* dependency chain
(computes and message hops) to attack -- the quantitative companion to
eyeballing the time-space diagram's dominant diagonal.

Edges and weights:

* program order: consecutive records of one process, weighted by the
  later record's duration (plus any idle gap in between -- idle gaps are
  *not* on the critical path, so they carry zero weight);
* message order: a send's record to its receive's record, weighted by
  the transfer portion of the receive (completion minus send time).

The path is computed by a longest-path pass in trace order, which is a
topological order of the happens-before DAG (receives are recorded after
their sends; per-process order is program order).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Optional

from repro.trace.events import TraceRecord
from repro.trace.trace import Trace

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .history import HistoryIndex


@dataclass
class CriticalPath:
    """The longest weighted causal chain of a trace."""

    records: list[TraceRecord]
    length: float
    #: total duration of all events on every process (for the ratio)
    span: float
    #: effective work weight of each path record (blocked receive time
    #: excluded), parallel to ``records``
    weights: list[float] = None  # type: ignore[assignment]

    @property
    def dominance(self) -> float:
        """Path length / trace span: near 1.0 means fully serialized."""
        return self.length / self.span if self.span > 0 else 0.0

    def hops(self) -> int:
        """How many times the path crosses processes (message edges)."""
        return sum(
            1
            for a, b in zip(self.records, self.records[1:])
            if a.proc != b.proc
        )

    def as_text(self, limit: int = 30) -> str:
        lines = [
            f"critical path: {self.length:.2f} time units over "
            f"{len(self.records)} events, {self.hops()} message hops, "
            f"dominance {self.dominance:.2f}"
        ]
        shown = self.records if len(self.records) <= limit else (
            self.records[: limit // 2] + self.records[-limit // 2:]
        )
        skipped = len(self.records) - len(shown)
        for i, rec in enumerate(shown):
            if skipped and i == limit // 2:
                lines.append(f"  ... {skipped} events ...")
            lines.append(f"  {rec}")
        return "\n".join(lines)


def critical_path(
    trace: "Trace | Iterable[TraceRecord]",
    index: "Optional[HistoryIndex]" = None,
) -> CriticalPath:
    """Longest path through the happens-before DAG of the trace.

    Accepts a materialized :class:`Trace` or any record iterator (the
    streaming consumers hand a file reader's stream straight in).  The
    send-of-recv map and span come from the shared
    :class:`~repro.analysis.history.HistoryIndex`.
    """
    from .history import ensure_index

    idx = ensure_index(trace, index=index)
    trace = idx.trace
    n = len(trace)
    if n == 0:
        return CriticalPath([], 0.0, 0.0, [])

    dist = [0.0] * n  # longest path ENDING at record i (inclusive)
    pred = [-1] * n
    send_of_recv = idx.send_of_recv
    last_on_proc: dict[int, int] = {}

    def work(rec: TraceRecord) -> float:
        """The record's weight as path work.

        A blocking receive's bar includes time spent *waiting* for the
        message; that waiting is not work on this chain (the message
        edge carries it), so only the portion after the send completed
        counts.  Unmatched receives (deadlocked) contribute nothing.
        """
        if rec.is_recv:
            s = send_of_recv.get(rec.index)
            if s is None:
                return 0.0
            return max(0.0, rec.t1 - max(trace[s].t1, rec.t0))
        from repro.trace.events import EventKind

        if rec.is_collective or rec.kind in (
            EventKind.WAIT,
            EventKind.WAITALL,
            EventKind.WAITANY,
            EventKind.SENDRECV,
            EventKind.TEST,
        ):
            # Aggregate records overlap their constituent point-to-point
            # events (which carry the weight) and include wait time.
            return 0.0
        return rec.duration

    for rec in trace:  # trace order is a topological order
        i = rec.index
        w = work(rec)
        best = w
        best_pred = -1
        # program-order edge
        j = last_on_proc.get(rec.proc, -1)
        if j >= 0:
            cand = dist[j] + w
            if cand > best:
                best, best_pred = cand, j
        # message edge: send completion -> receive completion
        s = send_of_recv.get(i)
        if s is not None:
            transfer = max(0.0, rec.t1 - max(trace[s].t1, rec.t0))
            cand = dist[s] + transfer
            if cand > best:
                best, best_pred = cand, s
        dist[i] = best
        pred[i] = best_pred
        last_on_proc[rec.proc] = i

    end = max(range(n), key=lambda i: dist[i])
    path = []
    i = end
    while i >= 0:
        path.append(trace[i])
        i = pred[i]
    path.reverse()
    t_lo, t_hi = idx.span
    return CriticalPath(
        records=path,
        length=dist[end],
        span=t_hi - t_lo,
        weights=[work(rec) for rec in path],
    )


def slack_per_process(
    trace: Trace,
    path: "CriticalPath | None" = None,
    index: "Optional[HistoryIndex]" = None,
) -> dict[int, float]:
    """Per-process slack: how much of the run each process spent NOT on
    the critical path (a target ranking for load balancing)."""
    from .history import ensure_index

    idx = ensure_index(trace, index=index)
    trace = idx.trace
    if path is None:
        path = critical_path(trace, index=idx)
    on_path: dict[int, float] = {p: 0.0 for p in range(trace.nprocs)}
    for rec, w in zip(path.records, path.weights):
        on_path[rec.proc] += w
    t_lo, t_hi = idx.span
    total = t_hi - t_lo
    return {p: max(0.0, total - on_path[p]) for p in range(trace.nprocs)}
