"""``repro.analysis`` -- history analysis (paper §4.1, §4.4).

* :mod:`~repro.analysis.causality` -- vector clocks, happens-before,
  past/future closures.
* :mod:`~repro.analysis.frontiers` -- consistent frontiers, concurrency
  regions, frontier stoplines (Figure 8).
* :mod:`~repro.analysis.matching` -- unmatched send/receive lists,
  intertwined messages, missed-message diagnosis (Figure 6).
* :mod:`~repro.analysis.deadlock` -- wait-for graphs and circular
  dependency detection (Figure 5).
* :mod:`~repro.analysis.races` -- message-race detection and schedule
  exploration.
* :mod:`~repro.analysis.history` -- the shared, incrementally-maintained
  :class:`HistoryIndex` substrate every analysis above consumes.
"""

from .causality import CausalOrder, check_trace_causality, compute_causal_order
from .history import (
    ENGINES,
    HistoryIndex,
    IndexSink,
    IndexStats,
    StaleIndexError,
    ensure_index,
)
from .paged import BlockCache, OutOfCoreIndex, PagedStats
from .deadlock import (
    DeadlockReport,
    analyze_deadlock,
    build_wait_graph,
    find_cycles,
    wait_chain,
)
from .frontiers import (
    Frontier,
    FrontierAnalysis,
    analyze_frontiers,
    cut_of_frontier,
    is_antichain,
    is_consistent_cut,
    is_consistent_frontier,
)
from .matching import (
    IntertwinedPair,
    MatchingReport,
    MissedMessage,
    analyze_matching,
    diagnose_missed_messages,
    find_intertwined,
)
from .critical_path import CriticalPath, critical_path, slack_per_process
from .profile import (
    CommMatrix,
    FunctionStats,
    ProcTimeBreakdown,
    communication_matrix,
    function_profile,
    function_profile_text,
    time_breakdown,
    time_breakdown_text,
)
from .races import (
    MessageRace,
    detect_races,
    explore_schedules,
    is_wildcard_recv,
    matching_fingerprint,
    steer_to_alternative,
)

__all__ = [
    "CausalOrder",
    "CommMatrix",
    "CriticalPath",
    "ENGINES",
    "HistoryIndex",
    "IndexSink",
    "IndexStats",
    "BlockCache",
    "OutOfCoreIndex",
    "PagedStats",
    "StaleIndexError",
    "ensure_index",
    "FunctionStats",
    "ProcTimeBreakdown",
    "communication_matrix",
    "critical_path",
    "function_profile",
    "function_profile_text",
    "slack_per_process",
    "steer_to_alternative",
    "time_breakdown",
    "time_breakdown_text",
    "DeadlockReport",
    "Frontier",
    "FrontierAnalysis",
    "IntertwinedPair",
    "MatchingReport",
    "MessageRace",
    "MissedMessage",
    "analyze_deadlock",
    "analyze_frontiers",
    "analyze_matching",
    "build_wait_graph",
    "check_trace_causality",
    "compute_causal_order",
    "detect_races",
    "diagnose_missed_messages",
    "explore_schedules",
    "find_cycles",
    "find_intertwined",
    "cut_of_frontier",
    "is_antichain",
    "is_consistent_cut",
    "is_consistent_frontier",
    "is_wildcard_recv",
    "matching_fingerprint",
    "wait_chain",
]
