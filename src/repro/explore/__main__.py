"""``python -m repro.explore`` -- schedule-insensitivity as one command.

Examples::

    # certify the safe demo app (exit 0)
    python -m repro.explore --app schedbug:safe --nprocs 5

    # hunt the seeded ordering bug (exit 1, prints the forcing log)
    python -m repro.explore --app schedbug --nprocs 5 --verbose

    # batched exploration over 4 forked workers, JSON report
    python -m repro.explore --app master_worker --nprocs 8 \\
        --batch mproc --workers 4 --json report.json

Exit status: 0 when every explored schedule is clean, 1 when any
schedule crashed, deadlocked, or diverged, 2 on usage errors.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.apps import CONFORMANCE_PROGRAMS, SCHEDBUG_MODES, schedbug_program

from .driver import explore


def resolve_app(spec: str, nprocs: int, seed: int):
    """``name`` or ``name:option`` -> a launchable program target.

    ``schedbug`` takes its mode as the option (``schedbug:crash``);
    every other name comes from :data:`repro.apps.CONFORMANCE_PROGRAMS`.
    """
    name, _, option = spec.partition(":")
    if name == "schedbug":
        mode = option or "unsafe"
        if mode not in SCHEDBUG_MODES:
            raise SystemExit(
                f"unknown schedbug mode {mode!r}; expected one of "
                f"{', '.join(SCHEDBUG_MODES)}"
            )
        return schedbug_program(n_tasks=max(4, nprocs + 2), mode=mode), spec
    if option:
        raise SystemExit(f"app {name!r} takes no option (got {option!r})")
    factory = CONFORMANCE_PROGRAMS.get(name)
    if factory is None:
        raise SystemExit(
            f"unknown app {name!r}; available: "
            f"schedbug[:{'|'.join(SCHEDBUG_MODES)}], "
            + ", ".join(sorted(CONFORMANCE_PROGRAMS))
        )
    return factory(nprocs, seed), spec


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.explore",
        description="Systematic race-driven schedule-space exploration.",
    )
    parser.add_argument(
        "--app",
        default="schedbug",
        help="program to explore: schedbug[:mode] or a repro.apps name "
        "(default: schedbug)",
    )
    parser.add_argument("--nprocs", type=int, default=5)
    parser.add_argument("--depth", type=int, default=2,
                        help="steering depth bound (default: 2)")
    parser.add_argument("--max-schedules", type=int, default=64,
                        help="replay budget (default: 64)")
    parser.add_argument("--batch", choices=("serial", "mproc"),
                        default="serial")
    parser.add_argument("--workers", type=int, default=4,
                        help="pool size for --batch mproc (default: 4)")
    parser.add_argument("--policy", default="run_to_block")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--backend", default=None,
                        help="base-run engine (cooperative; default: env)")
    parser.add_argument("--replay-backend", default=None,
                        help="steered-replay engine (default: base engine "
                        "under serial, simtime under mproc)")
    parser.add_argument("--no-tag-wildcards", action="store_true",
                        help="only steer ANY_SOURCE races")
    parser.add_argument("--json", type=Path, default=None, metavar="PATH",
                        help="also write the full report as JSON")
    parser.add_argument("--verbose", action="store_true",
                        help="describe every bad schedule, not just the worst")
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    program, name = resolve_app(args.app, args.nprocs, args.seed)
    report = explore(
        program,
        args.nprocs,
        depth=args.depth,
        max_schedules=args.max_schedules,
        batch=args.batch,
        workers=args.workers,
        policy=args.policy,
        seed=args.seed,
        backend=args.backend,
        replay_backend=args.replay_backend,
        include_tag_wildcards=not args.no_tag_wildcards,
        program_name=name,
    )
    print(report.as_text(verbose=args.verbose))
    if args.json is not None:
        args.json.write_text(json.dumps(report.to_jsonable(), indent=1))
        print(f"report written to {args.json}")
    return 1 if report.schedule_sensitive else 0


if __name__ == "__main__":
    sys.exit(main())
