"""``repro.explore`` -- systematic schedule-space exploration.

"Is my program schedule-insensitive?" as a one-call (or one-command:
``python -m repro.explore``) workflow: record a base run, enumerate its
message races, steer + replay every deliverable alternative depth-
bounded DFS-style with fingerprint deduplication, and classify each
explored schedule as clean, numerically divergent, deadlocked, or
crashed -- with the forcing log that reproduces it and the first
divergent event per process.

* :func:`explore` -- the driver (see :mod:`repro.explore.driver`).
* :class:`ExplorationReport` / :class:`ScheduleOutcome` /
  :class:`ScheduleStatus` -- the result surface.
* :class:`SerialReplayExecutor` / :class:`MprocReplayExecutor` -- where
  replays run (in-process, or batched over forked workers).
"""

from .batch import MprocReplayExecutor, SerialReplayExecutor, make_executor
from .context import (
    BaseRunFailed,
    ExploreContext,
    TracedRun,
    run_base,
    run_schedule_job,
    schedule_candidates,
)
from .driver import explore
from .report import ExplorationReport, ScheduleOutcome, ScheduleStatus

__all__ = [
    "BaseRunFailed",
    "ExplorationReport",
    "ExploreContext",
    "MprocReplayExecutor",
    "ScheduleOutcome",
    "ScheduleStatus",
    "SerialReplayExecutor",
    "TracedRun",
    "explore",
    "make_executor",
    "run_base",
    "run_schedule_job",
    "schedule_candidates",
]
