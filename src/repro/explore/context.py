"""Shared per-schedule work: traced replay, classification, expansion.

Both replay executors (serial in-process and the forked mproc pool) run
the same job function, :func:`run_schedule_job`, against an
:class:`ExploreContext` + :class:`BaseRun` pair.  The pair is built once
by the driver and -- under the pool -- inherited by workers across the
``fork``, so jobs and results crossing process boundaries are small
JSON-able dicts (a forcing log in, a classification + next-depth
candidates out), never traces.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from typing import Optional

from repro.analysis.history import ensure_index
from repro.analysis.races import (
    UnsteerableAlternativeError,
    detect_races,
    matching_fingerprint,
    steer_to_alternative,
)
from repro.instrument.wrappers import WrapperLibrary
from repro.mp.record import CommLog
from repro.mp.runtime import ProgramSpec, Runtime
from repro.mp.scheduler import RunOutcome
from repro.trace.diff import (
    diff_traces,
    first_divergence_locations,
    results_equal,
)
from repro.trace.recorder import TraceRecorder
from repro.trace.trace import Trace

from .report import ScheduleStatus


@dataclass
class ExploreContext:
    """Everything needed to re-execute and judge one schedule."""

    program: ProgramSpec
    nprocs: int
    policy: str = "run_to_block"
    seed: int = 0
    #: replay engine; must be cooperative (wrappers record the trace)
    backend: Optional[str] = None
    include_tag_wildcards: bool = True
    #: cap on alternatives steered per race point (None = all)
    max_alternatives: Optional[int] = None
    rtol: float = 1e-9
    atol: float = 1e-12

    def with_backend(self, backend: Optional[str]) -> "ExploreContext":
        return replace(self, backend=backend) if backend else self


@dataclass
class TracedRun:
    """One instrumented execution, reduced to what exploration needs."""

    outcome: RunOutcome
    trace: Trace
    comm_log: CommLog
    results: list
    blocked: list[str] = field(default_factory=list)
    error: Optional[str] = None


class BaseRunFailed(RuntimeError):
    """The un-steered base run did not finish cleanly."""


def run_traced(
    ctx: ExploreContext, replay_log: Optional[CommLog] = None
) -> TracedRun:
    """One instrumented execution of the context's program.

    Never raises on program failure: crashes and deadlocks are outcomes
    to classify, not errors.  The runtime is always shut down, so no
    execution threads outlive the call.
    """
    rt = Runtime(
        ctx.nprocs,
        backend=ctx.backend,
        policy=ctx.policy,
        seed=ctx.seed,
        replay_log=replay_log,
    )
    recorder = TraceRecorder(ctx.nprocs)
    WrapperLibrary(rt, recorder)
    try:
        report = rt.run(ctx.program, raise_errors=False)
        error = None
        exc = rt.first_exception()
        if exc is not None:
            error = f"{type(exc).__name__}: {exc}"
        blocked = [str(w) for w in report.waiting]
        if report.outcome is RunOutcome.LIMIT and error is None:
            error = "scheduler grant budget exhausted"
        return TracedRun(
            outcome=report.outcome,
            trace=recorder.snapshot(),
            comm_log=rt.comm_log,
            results=rt.results(),
            blocked=blocked,
            error=error,
        )
    finally:
        rt.shutdown()


def run_base(ctx: ExploreContext) -> TracedRun:
    """The recorded reference run; exploration needs it clean."""
    base = run_traced(ctx)
    if base.outcome is not RunOutcome.FINISHED:
        detail = base.error or "; ".join(base.blocked) or base.outcome.value
        raise BaseRunFailed(
            f"the base run did not finish ({base.outcome.value}): {detail} "
            "-- record a clean reference execution before exploring its "
            "schedule space"
        )
    return base


# ----------------------------------------------------------------------
# candidate generation
# ----------------------------------------------------------------------
def schedule_candidates(run: TracedRun, ctx: ExploreContext) -> list[dict]:
    """All steered forcing logs one run's races admit, as JSON-able
    candidate dicts ``{fingerprint, log, steer}``.

    The fingerprint is the steered log's matching fingerprint extended
    with the racing receive's execution marker
    (:func:`~repro.analysis.races.matching_fingerprint`), the dedup key
    of the DFS: two candidates forcing the same prefix at the same steer
    point are the same schedule.
    """
    idx = ensure_index(run.trace)
    races = detect_races(
        run.trace,
        index=idx,
        include_tag_wildcards=ctx.include_tag_wildcards,
    )
    candidates: list[dict] = []
    for race in races:
        alternatives = race.alternatives
        if ctx.max_alternatives is not None:
            alternatives = alternatives[: ctx.max_alternatives]
        for alt in alternatives:
            try:
                steered = steer_to_alternative(
                    run.comm_log, run.trace, race, alt, index=idx
                )
            except UnsteerableAlternativeError:
                # Consumed by a forced-prefix receive: reaching that
                # matching needs a multi-receive exchange, outside the
                # single-steer space this driver enumerates.
                continue
            fp = matching_fingerprint(
                steered, markers={race.recv.proc: race.recv.marker}
            )
            steer = (
                f"p{race.recv.proc} recv marker {race.recv.marker} "
                f"({race.recv.location}) takes {alt.src}->{alt.dst}"
                f"#{alt.seq} tag {alt.tag} instead of "
                f"{race.matched_send.src}->{race.matched_send.dst}"
                f"#{race.matched_send.seq}"
            )
            candidates.append(
                {
                    "fingerprint": fp,
                    "log": steered.to_jsonable(),
                    "steer": steer,
                    "race_key": (race.recv.proc, race.recv.marker),
                }
            )
    return candidates


# ----------------------------------------------------------------------
# the job function both executors run
# ----------------------------------------------------------------------
def classify(run: TracedRun, base: TracedRun, ctx: ExploreContext) -> ScheduleStatus:
    if run.outcome is RunOutcome.ERROR or run.outcome is RunOutcome.LIMIT:
        return ScheduleStatus.CRASH
    if run.outcome is RunOutcome.DEADLOCK:
        return ScheduleStatus.DEADLOCK
    if results_equal(run.results, base.results, ctx.rtol, ctx.atol):
        return ScheduleStatus.CLEAN
    return ScheduleStatus.DIVERGENT


def run_schedule_job(ctx: ExploreContext, base: TracedRun, job: dict) -> dict:
    """Replay one steered schedule and judge it.

    ``job`` carries ``{id, log, expand}``; the result mirrors it with
    the classification, divergence locations vs the base trace, the
    realized full-matching fingerprint (for convergence dedup), and --
    when ``expand`` -- the next depth's candidates derived from the
    replayed trace.
    """
    t0 = time.perf_counter()
    steered = CommLog.from_jsonable(job["log"])
    run = run_traced(ctx, replay_log=steered)
    status = classify(run, base, ctx)
    divergences: list[dict] = []
    if status is not ScheduleStatus.CLEAN:
        divergences = first_divergence_locations(diff_traces(base.trace, run.trace))
    candidates: list[dict] = []
    if job.get("expand") and status in (
        ScheduleStatus.CLEAN,
        ScheduleStatus.DIVERGENT,
    ):
        candidates = schedule_candidates(run, ctx)
    result_repr = None
    if run.outcome is RunOutcome.FINISHED:
        result_repr = repr(run.results[0])
    return {
        "id": job["id"],
        "status": status.value,
        "realized": matching_fingerprint(run.comm_log),
        "divergences": divergences,
        "result_repr": result_repr,
        "error": run.error,
        "blocked": run.blocked,
        "events": len(run.trace),
        "wall": time.perf_counter() - t0,
        "candidates": candidates,
    }
