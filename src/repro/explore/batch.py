"""Replay executors: serial in-process, and a forked worker pool.

The driver hands both the same JSON-able job dicts; they differ only in
*where* :func:`~repro.explore.context.run_schedule_job` runs:

* :class:`SerialReplayExecutor` -- in the calling process, one job at a
  time, on the context's configured (debugger-grade) replay engine.
* :class:`MprocReplayExecutor` -- a persistent pool of ``fork``-ed
  worker processes (the same start method and queue transport as the
  ``mproc`` execution backend).  Workers inherit the program, base
  trace, and context at fork time, so only forcing logs and outcome
  summaries cross the queues.  Each worker replays on the lean
  ``simtime`` engine by default -- the batch path exists for
  throughput -- and multiple replays overlap across OS processes.
"""

from __future__ import annotations

import multiprocessing
import queue as queue_mod
from typing import Any, Optional

from repro.mp.errors import MPError

from .context import BaseRunFailed, ExploreContext, TracedRun, run_schedule_job

#: how long (seconds) the pool waits on one job's result before deciding
#: the worker died; replays are sub-second, so this is generous.
RESULT_TIMEOUT = 120.0


class SerialReplayExecutor:
    """Reference executor: replay every schedule in the calling process."""

    name = "serial"
    #: jobs the driver should hand over per wave (1 = strict DFS order)
    wave_size = 1

    def __init__(self, ctx: ExploreContext, base: TracedRun) -> None:
        self.ctx = ctx
        self.base = base

    def run(self, jobs: list[dict]) -> list[dict]:
        return [run_schedule_job(self.ctx, self.base, job) for job in jobs]

    def close(self) -> None:
        pass

    def __enter__(self) -> "SerialReplayExecutor":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


def _pool_worker(
    ctx: ExploreContext, base: TracedRun, job_q: Any, result_q: Any
) -> None:
    """Worker loop: drain jobs until the ``None`` sentinel."""
    while True:
        job = job_q.get()
        if job is None:
            return
        try:
            result = run_schedule_job(ctx, base, job)
        except BaseException as exc:  # noqa: BLE001 - report, don't die
            result = {
                "id": job["id"],
                "status": "crash",
                "realized": None,
                "divergences": [],
                "result_repr": None,
                "error": f"explorer worker failed: {type(exc).__name__}: {exc}",
                "blocked": [],
                "events": 0,
                "wall": 0.0,
                "candidates": [],
            }
        result_q.put(result)


class MprocReplayExecutor:
    """Persistent forked pool; jobs fan out, summaries fan back in."""

    name = "mproc"

    def __init__(
        self,
        ctx: ExploreContext,
        base: TracedRun,
        workers: int = 4,
        replay_backend: Optional[str] = "simtime",
    ) -> None:
        if workers < 1:
            raise ValueError(f"need >= 1 worker, got {workers}")
        try:
            self._mp = multiprocessing.get_context("fork")
        except ValueError:
            raise MPError(
                "the mproc replay executor requires the 'fork' start "
                "method (unavailable on this platform); use batch='serial'"
            ) from None
        self.ctx = ctx.with_backend(replay_backend)
        self.base = base
        self.workers = workers
        self.wave_size = 2 * workers
        self._job_q: Any = None
        self._result_q: Any = None
        self._procs: list[Any] = []

    # ------------------------------------------------------------------
    def _ensure_started(self) -> None:
        if self._procs:
            return
        self._job_q = self._mp.Queue()
        self._result_q = self._mp.Queue()
        for i in range(self.workers):
            proc = self._mp.Process(
                target=_pool_worker,
                args=(self.ctx, self.base, self._job_q, self._result_q),
                name=f"explore-worker-{i}",
                daemon=True,
            )
            proc.start()
            self._procs.append(proc)

    def run(self, jobs: list[dict]) -> list[dict]:
        """Execute one wave; results return in job order."""
        if not jobs:
            return []
        self._ensure_started()
        for job in jobs:
            self._job_q.put(job)
        by_id: dict[int, dict] = {}
        while len(by_id) < len(jobs):
            try:
                result = self._result_q.get(timeout=RESULT_TIMEOUT)
            except queue_mod.Empty:
                self.close()
                raise MPError(
                    f"explore pool timed out after {RESULT_TIMEOUT:.0f}s "
                    f"waiting for {len(jobs) - len(by_id)} of {len(jobs)} "
                    "replay result(s); worker process(es) presumed dead"
                ) from None
            by_id[result["id"]] = result
        return [by_id[job["id"]] for job in jobs]

    def close(self) -> None:
        if not self._procs:
            return
        for _ in self._procs:
            try:
                self._job_q.put(None)
            except Exception:
                pass
        for proc in self._procs:
            proc.join(timeout=2.0)
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=1.0)
        self._procs = []
        for q in (self._job_q, self._result_q):
            if q is not None:
                q.cancel_join_thread()
                q.close()
        self._job_q = self._result_q = None

    def __enter__(self) -> "MprocReplayExecutor":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


def make_executor(
    batch: str,
    ctx: ExploreContext,
    base: TracedRun,
    workers: int = 4,
    replay_backend: Optional[str] = None,
):
    """Executor factory: ``batch`` is ``"serial"`` or ``"mproc"``."""
    if batch == "serial":
        return SerialReplayExecutor(ctx.with_backend(replay_backend), base)
    if batch == "mproc":
        return MprocReplayExecutor(
            ctx, base, workers=workers, replay_backend=replay_backend or "simtime"
        )
    raise ValueError(f"unknown batch mode {batch!r}; expected 'serial' or 'mproc'")
