"""The schedule-space exploration driver.

Turns the §4.2 replay machinery into a nondeterminism fuzzer (ROADMAP
item 4, after MAD's event manipulation):

1. record one instrumented base run and index it;
2. enumerate race points (:func:`~repro.analysis.races.detect_races`)
   and build one steered forcing log per deliverable alternative
   (:func:`~repro.analysis.races.steer_to_alternative`);
3. replay candidates depth-bounded DFS-style, deduplicating forced
   prefixes by marker-extended matching fingerprint and realized
   schedules by full fingerprint -- every explored schedule is replayed
   exactly once;
4. classify each replay (clean / numeric divergence / deadlock /
   crash, with :func:`~repro.trace.diff.diff_traces` locating the first
   divergent event per process) and, below the depth bound, expand the
   replayed trace's *new* races into the next candidates;
5. batch replays through a pluggable executor -- serial, or the forked
   mproc pool for throughput.

The result is an :class:`~repro.explore.report.ExplorationReport`: a
verdict ("schedule-insensitive over the explored space" or the precise
forcing log + first divergence of every schedule that went wrong).
"""

from __future__ import annotations

import time
from typing import Optional

from repro.analysis.races import matching_fingerprint
from repro.mp.runtime import ProgramSpec

from .batch import make_executor
from .context import (
    ExploreContext,
    run_base,
    schedule_candidates,
)
from .report import ExplorationReport, ScheduleOutcome, ScheduleStatus


def explore(
    program: ProgramSpec,
    nprocs: int,
    *,
    depth: int = 1,
    max_schedules: int = 64,
    batch: str = "serial",
    workers: int = 4,
    policy: str = "run_to_block",
    seed: int = 0,
    backend: Optional[str] = None,
    replay_backend: Optional[str] = None,
    include_tag_wildcards: bool = True,
    max_alternatives: Optional[int] = None,
    rtol: float = 1e-9,
    atol: float = 1e-12,
    program_name: Optional[str] = None,
) -> ExplorationReport:
    """Systematically explore the matching space of ``program``.

    Parameters
    ----------
    depth:
        How many steers may be stacked: 1 explores every alternative of
        the base run's races; 2 additionally explores the races newly
        exposed by those schedules, and so on.
    max_schedules:
        Replay budget; candidates beyond it are counted as ``pending``.
    batch, workers:
        ``"serial"`` replays in-process; ``"mproc"`` fans replays out
        over ``workers`` forked processes.
    backend / replay_backend:
        Engine for the base run / for the steered replays.  Both must
        be cooperative (the trace wrappers need in-process execution).
        ``replay_backend=None`` keeps the base engine under ``serial``
        and selects ``"simtime"`` under ``"mproc"``.
    """
    if depth < 1:
        raise ValueError(f"depth must be >= 1, got {depth}")
    if max_schedules < 1:
        raise ValueError(f"max_schedules must be >= 1, got {max_schedules}")

    t0 = time.perf_counter()
    ctx = ExploreContext(
        program=program,
        nprocs=nprocs,
        policy=policy,
        seed=seed,
        backend=backend,
        include_tag_wildcards=include_tag_wildcards,
        max_alternatives=max_alternatives,
        rtol=rtol,
        atol=atol,
    )
    base = run_base(ctx)
    root = schedule_candidates(base, ctx)

    report = ExplorationReport(
        program=program_name or getattr(program, "__name__", repr(program)),
        nprocs=nprocs,
        depth=depth,
        batch=batch,
        races_at_root=len({c["race_key"] for c in root}),
        base_events=len(base.trace),
    )

    #: forced-prefix fingerprints already scheduled (pre-replay dedup)
    visited: set[tuple] = {c["fingerprint"] for c in root}
    #: realized full matchings already observed (post-replay dedup)
    realized: set[tuple] = {matching_fingerprint(base.comm_log)}

    # DFS stack of (candidate, depth); reversed so the first-found race
    # is explored first.
    stack: list[tuple[dict, int]] = [(c, 1) for c in reversed(root)]
    next_id = 0

    with make_executor(
        batch, ctx, base, workers=workers, replay_backend=replay_backend
    ) as executor:
        while stack and next_id < max_schedules:
            wave_budget = min(executor.wave_size, max_schedules - next_id)
            wave: list[tuple[dict, int]] = []
            jobs: list[dict] = []
            while stack and len(jobs) < wave_budget:
                candidate, cand_depth = stack.pop()
                job = {
                    "id": next_id,
                    "log": candidate["log"],
                    "expand": cand_depth < depth,
                }
                next_id += 1
                wave.append((candidate, cand_depth))
                jobs.append(job)
            for (candidate, cand_depth), result in zip(
                wave, executor.run(jobs)
            ):
                fp = result["realized"]
                if fp is not None:
                    fp = tuple(fp)
                    if fp in realized:
                        report.converged += 1
                        continue
                    realized.add(fp)
                report.outcomes.append(
                    ScheduleOutcome(
                        schedule_id=result["id"],
                        depth=cand_depth,
                        steer=candidate["steer"],
                        fingerprint=candidate["fingerprint"],
                        forcing_log=candidate["log"],
                        status=ScheduleStatus(result["status"]),
                        divergences=result["divergences"],
                        result_repr=result["result_repr"],
                        error=result["error"],
                        blocked=result["blocked"],
                        events=result["events"],
                        wall=result["wall"],
                    )
                )
                for child in reversed(result["candidates"]):
                    if child["fingerprint"] in visited:
                        report.deduped += 1
                        continue
                    visited.add(child["fingerprint"])
                    stack.append((child, cand_depth + 1))

    report.pending = len(stack)
    report.wall = time.perf_counter() - t0
    return report
