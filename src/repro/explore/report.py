"""Result dataclasses for schedule-space exploration.

One :class:`ScheduleOutcome` per replayed alternative schedule, rolled
up into an :class:`ExplorationReport` -- the artifact the "is my
program schedule-insensitive?" workflow produces.  Everything here is
JSON-serializable (``to_jsonable``) so reports can be archived next to
the forcing logs that reproduce each schedule.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional


class ScheduleStatus(enum.Enum):
    """How one explored schedule ended, worst first."""

    CRASH = "crash"  # a rank raised
    DEADLOCK = "deadlock"  # all live ranks blocked
    DIVERGENT = "divergent"  # finished, numerically different results
    CLEAN = "clean"  # finished, same results as the base run


#: ordering used by :meth:`ExplorationReport.worst` (lower = worse).
_SEVERITY = {
    ScheduleStatus.CRASH: 0,
    ScheduleStatus.DEADLOCK: 1,
    ScheduleStatus.DIVERGENT: 2,
    ScheduleStatus.CLEAN: 3,
}


@dataclass
class ScheduleOutcome:
    """One steered replay: what was forced, and what happened."""

    schedule_id: int
    depth: int
    #: human description of the steer point (rank/marker/alternative)
    steer: str
    #: dedup key: matching fingerprint extended with the steer marker
    fingerprint: tuple
    #: JSON form of the forcing log that reproduces this schedule
    forcing_log: dict
    status: ScheduleStatus
    #: first divergent event per process vs the base run
    #: (:func:`repro.trace.diff.first_divergence_locations` dicts)
    divergences: list[dict] = field(default_factory=list)
    result_repr: Optional[str] = None
    error: Optional[str] = None
    blocked: list[str] = field(default_factory=list)
    events: int = 0
    wall: float = 0.0

    def first_divergence(self) -> Optional[dict]:
        return self.divergences[0] if self.divergences else None

    def describe(self) -> str:
        lines = [
            f"schedule #{self.schedule_id} (depth {self.depth}): "
            f"{self.status.value.upper()}",
            f"  steer: {self.steer}",
        ]
        if self.error:
            lines.append(f"  error: {self.error}")
        for wait in self.blocked[:4]:
            lines.append(f"  blocked: {wait}")
        div = self.first_divergence()
        if div is not None:
            left = div["left"] or {}
            right = div["right"] or {}

            def show(side: dict) -> str:
                if not side:
                    return "<end of trace>"
                msg = ""
                if side["src"] >= 0 or side["dst"] >= 0:
                    msg = f" {side['src']}->{side['dst']}#{side['seq']}"
                return (
                    f"{side['kind']}{msg} marker {side['marker']} "
                    f"at {side['location']}"
                )

            lines.append(
                f"  first divergence: p{div['proc']} event #{div['position']}"
                f" -- base {show(left)} vs {show(right)}"
            )
        if self.result_repr is not None:
            lines.append(f"  results: {self.result_repr}")
        n_forced = len(self.forcing_log.get("recv_matches", ()))
        lines.append(f"  forcing log: {n_forced} forced matching(s)")
        return "\n".join(lines)

    def to_jsonable(self) -> dict:
        return {
            "schedule_id": self.schedule_id,
            "depth": self.depth,
            "steer": self.steer,
            "fingerprint": [list(entry) for entry in self.fingerprint],
            "forcing_log": self.forcing_log,
            "status": self.status.value,
            "divergences": self.divergences,
            "result_repr": self.result_repr,
            "error": self.error,
            "blocked": self.blocked,
            "events": self.events,
            "wall": self.wall,
        }


@dataclass
class ExplorationReport:
    """Everything one exploration produced."""

    program: str
    nprocs: int
    depth: int
    batch: str
    races_at_root: int
    outcomes: list[ScheduleOutcome] = field(default_factory=list)
    #: candidates skipped because their forced prefix was already tried
    deduped: int = 0
    #: replays whose realized full matching converged with a prior one
    converged: int = 0
    #: candidates left unexplored when the schedule budget ran out
    pending: int = 0
    wall: float = 0.0
    base_events: int = 0

    # ------------------------------------------------------------------
    @property
    def explored(self) -> int:
        return len(self.outcomes)

    @property
    def counts(self) -> dict[str, int]:
        out = {status.value: 0 for status in ScheduleStatus}
        for outcome in self.outcomes:
            out[outcome.status.value] += 1
        return out

    @property
    def schedule_sensitive(self) -> bool:
        """Did any explored schedule crash, deadlock, or diverge?"""
        return any(o.status is not ScheduleStatus.CLEAN for o in self.outcomes)

    @property
    def schedules_per_sec(self) -> float:
        return self.explored / self.wall if self.wall > 0 else 0.0

    def worst(self) -> Optional[ScheduleOutcome]:
        """The most severe outcome (ties broken by discovery order)."""
        if not self.outcomes:
            return None
        return min(self.outcomes, key=lambda o: (_SEVERITY[o.status], o.schedule_id))

    def bad_schedules(self) -> list[ScheduleOutcome]:
        return [o for o in self.outcomes if o.status is not ScheduleStatus.CLEAN]

    # ------------------------------------------------------------------
    def as_text(self, verbose: bool = False) -> str:
        counts = self.counts
        lines = [
            f"explored {self.explored} alternative schedule(s) of "
            f"{self.program} on {self.nprocs} ranks "
            f"(depth {self.depth}, batch {self.batch}):",
            "  " + ", ".join(
                f"{counts[s.value]} {s.value}" for s in ScheduleStatus
            ),
            f"  races at root: {self.races_at_root}; prefix-deduped: "
            f"{self.deduped}; converged replays: {self.converged}; "
            f"pending (budget): {self.pending}",
            f"  wall: {self.wall:.2f}s ({self.schedules_per_sec:.1f} "
            "schedules/sec)",
        ]
        if not self.schedule_sensitive:
            lines.append(
                "  verdict: no schedule-dependent behaviour found -- the "
                "program looks schedule-insensitive over the explored space"
            )
        else:
            lines.append("  verdict: SCHEDULE-SENSITIVE")
            shown = self.bad_schedules() if verbose else [self.worst()]
            for outcome in shown:
                assert outcome is not None
                lines.extend("  " + ln for ln in outcome.describe().splitlines())
        return "\n".join(lines)

    def to_jsonable(self) -> dict:
        return {
            "program": self.program,
            "nprocs": self.nprocs,
            "depth": self.depth,
            "batch": self.batch,
            "races_at_root": self.races_at_root,
            "explored": self.explored,
            "counts": self.counts,
            "schedule_sensitive": self.schedule_sensitive,
            "deduped": self.deduped,
            "converged": self.converged,
            "pending": self.pending,
            "wall": self.wall,
            "schedules_per_sec": self.schedules_per_sec,
            "base_events": self.base_events,
            "outcomes": [o.to_jsonable() for o in self.outcomes],
        }
