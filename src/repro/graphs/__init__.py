"""``repro.graphs`` -- graph abstractions of the execution history.

* :mod:`~repro.graphs.tracegraph` -- the trace graph (§3.2): function +
  channel nodes, call + message arcs, dissemination size control, zoom
  reconstruction by trace rescan.
* :mod:`~repro.graphs.callgraph` -- dynamic call graphs (Figure 9).
* :mod:`~repro.graphs.commgraph` -- communication graphs (Figure 4):
  nodes are matched message pairs, arcs are message causality.
* :mod:`~repro.graphs.actions` -- action graphs (§4.4): coarse,
  comprehensible summaries of each function's activity.
* :mod:`~repro.graphs.export` -- VCG (xvcg) and DOT writers.
"""

from .actions import Action, ActionGraph, ActionKind, build_action_graph
from .callgraph import CallEdge, CallGraph, build_call_graph
from .commgraph import CommGraph, CommNode, build_comm_graph
from .export import (
    call_graph_to_dot,
    call_graph_to_vcg,
    comm_graph_to_dot,
    comm_graph_to_vcg,
    trace_graph_to_dot,
    trace_graph_to_vcg,
)
from .tracegraph import (
    ROOT_FUNCTION,
    Arc,
    ArcKind,
    ChannelNode,
    FunctionNode,
    TraceGraph,
    iter_channel_traffic,
    projection,
)

__all__ = [
    "Action",
    "ActionGraph",
    "ActionKind",
    "Arc",
    "ArcKind",
    "CallEdge",
    "CallGraph",
    "ChannelNode",
    "CommGraph",
    "CommNode",
    "FunctionNode",
    "ROOT_FUNCTION",
    "TraceGraph",
    "build_action_graph",
    "build_call_graph",
    "build_comm_graph",
    "call_graph_to_dot",
    "call_graph_to_vcg",
    "comm_graph_to_dot",
    "comm_graph_to_vcg",
    "iter_channel_traffic",
    "projection",
    "trace_graph_to_dot",
    "trace_graph_to_vcg",
]
