"""Dynamic call graphs (paper Figure 9 and §3.2/§4.3).

The projection of the trace graph onto one process is that process's
dynamic call graph [Graham-Kessler-McKusick].  Figure 9 displays it with
*multiple parallel arcs* for repeated calls -- "Multiple arcs show
multiple function calls.  The number of calls per arc is adjustable" --
which is exactly the dissemination trade-off: an arc of weight k stands
for k calls.

This module builds call graphs directly from FUNC_ENTRY/FUNC_EXIT trace
records (entry/exit pairing by a per-process stack) and renders them
through :mod:`repro.graphs.export` in VCG format, as the paper did with
xvcg.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.trace.events import EventKind
from repro.trace.trace import Trace

from .tracegraph import ROOT_FUNCTION


@dataclass
class CallEdge:
    """caller -> callee with dynamic call statistics."""

    caller: str
    callee: str
    calls: int = 0
    #: total virtual time spent inside callee for these calls (inclusive)
    inclusive_time: float = 0.0
    #: trace indexes of the first and last call ("each arc has an image
    #: in the execution trace")
    first_index: int = -1
    last_index: int = -1

    def arcs_displayed(self, calls_per_arc: int) -> int:
        """How many parallel arcs Figure 9-style rendering draws."""
        if calls_per_arc < 1:
            raise ValueError("calls_per_arc must be >= 1")
        return max(1, -(-self.calls // calls_per_arc))


@dataclass
class CallGraph:
    """The dynamic call graph of one process (or a merged view)."""

    proc: Optional[int]
    edges: dict[tuple[str, str], CallEdge] = field(default_factory=dict)
    #: per-function entry counts
    counts: dict[str, int] = field(default_factory=dict)

    # ------------------------------------------------------------------
    def _edge(self, caller: str, callee: str) -> CallEdge:
        key = (caller, callee)
        edge = self.edges.get(key)
        if edge is None:
            edge = self.edges[key] = CallEdge(caller, callee)
        return edge

    def functions(self) -> list[str]:
        names = set(self.counts)
        for caller, callee in self.edges:
            names.add(caller)
            names.add(callee)
        return sorted(names)

    def callees_of(self, fn: str) -> list[CallEdge]:
        return [e for e in self.edges.values() if e.caller == fn]

    def callers_of(self, fn: str) -> list[CallEdge]:
        return [e for e in self.edges.values() if e.callee == fn]

    def total_calls(self) -> int:
        return sum(e.calls for e in self.edges.values())

    # ------------------------------------------------------------------
    def as_text(self, calls_per_arc: int = 1) -> str:
        """Text rendering ("the user can display them either in text or
        in graphical form")."""
        lines = [f"dynamic call graph (proc={'all' if self.proc is None else self.proc})"]
        for edge in sorted(self.edges.values(), key=lambda e: (e.caller, e.callee)):
            arcs = edge.arcs_displayed(calls_per_arc)
            lines.append(
                f"  {edge.caller} -> {edge.callee}"
                f"  calls={edge.calls}  arcs={arcs}"
                f"  t={edge.inclusive_time:.2f}"
            )
        return "\n".join(lines)


def build_call_graph(trace: Trace, proc: Optional[int] = None) -> CallGraph:
    """Build from FUNC_ENTRY/FUNC_EXIT records.

    ``proc=None`` merges all processes into one graph (useful for SPMD
    programs where all ranks share code).
    """
    graph = CallGraph(proc)
    procs = range(trace.nprocs) if proc is None else [proc]
    for p in procs:
        # stack entries: (function name, entry time, entry index)
        stack: list[tuple[str, float, int]] = [(ROOT_FUNCTION, 0.0, -1)]
        graph.counts.setdefault(ROOT_FUNCTION, 0)
        for rec in trace.by_proc(p):
            if rec.kind is EventKind.FUNC_ENTRY:
                fn = rec.location.function
                caller = stack[-1][0]
                edge = graph._edge(caller, fn)
                edge.calls += 1
                if edge.first_index < 0:
                    edge.first_index = rec.index
                edge.last_index = rec.index
                graph.counts[fn] = graph.counts.get(fn, 0) + 1
                stack.append((fn, rec.t0, rec.index))
            elif rec.kind is EventKind.FUNC_EXIT:
                if len(stack) > 1 and stack[-1][0] == rec.location.function:
                    fn, t_in, _ = stack.pop()
                    caller = stack[-1][0]
                    graph._edge(caller, fn).inclusive_time += rec.t1 - t_in
    return graph
