"""Graph export: VCG (as in the paper's Figure 9, for xvcg) and DOT.

    "The graph was converted to VCG format displayed with the xvcg graph
    layout tool."

The VCG writer emits the classic GDL syntax (``graph: { node: {...}
edge: {...} }``); the DOT writer targets graphviz.  Both are plain-text
and deterministic, so renderings are diffable in tests.
"""

from __future__ import annotations

from typing import Optional

from .callgraph import CallGraph
from .commgraph import CommGraph
from .tracegraph import Arc, ArcKind, ChannelNode, FunctionNode, TraceGraph


def _q(s: str) -> str:
    """Quote a label for VCG/DOT."""
    return '"' + s.replace('"', "'") + '"'


# ----------------------------------------------------------------------
# VCG
# ----------------------------------------------------------------------
def call_graph_to_vcg(
    graph: CallGraph,
    title: str = "dynamic call graph",
    calls_per_arc: int = 0,
) -> str:
    """Figure 9-style VCG: multiple parallel arcs for repeated calls.

    ``calls_per_arc`` > 0 draws ``ceil(calls / calls_per_arc)`` parallel
    arcs per edge ("the number of calls per arc is adjustable");
    0 draws one arc labelled with the count.
    """
    lines = [
        "graph: {",
        f"  title: {_q(title)}",
        "  layoutalgorithm: dfs",
        "  display_edge_labels: yes",
    ]
    for fn in graph.functions():
        label = f"{fn} ({graph.counts.get(fn, 0)})" if fn in graph.counts else fn
        lines.append(f"  node: {{ title: {_q(fn)} label: {_q(label)} }}")
    for edge in sorted(graph.edges.values(), key=lambda e: (e.caller, e.callee)):
        if calls_per_arc > 0:
            for _ in range(edge.arcs_displayed(calls_per_arc)):
                lines.append(
                    f"  edge: {{ sourcename: {_q(edge.caller)} "
                    f"targetname: {_q(edge.callee)} }}"
                )
        else:
            lines.append(
                f"  edge: {{ sourcename: {_q(edge.caller)} "
                f"targetname: {_q(edge.callee)} label: {_q(str(edge.calls))} }}"
            )
    lines.append("}")
    return "\n".join(lines)


def comm_graph_to_vcg(graph: CommGraph, title: str = "communication graph") -> str:
    """Figure 4-style VCG of the communication graph."""
    lines = [
        "graph: {",
        f"  title: {_q(title)}",
        "  layoutalgorithm: minbackward",
    ]
    for node in graph.nodes:
        label = f"{node.src}->{node.dst} t{node.tag}"
        lines.append(f"  node: {{ title: {_q(f'n{node.node_id}')} label: {_q(label)} }}")
    for a, b in graph.arcs:
        lines.append(
            f"  edge: {{ sourcename: {_q(f'n{a}')} targetname: {_q(f'n{b}')} }}"
        )
    lines.append("}")
    return "\n".join(lines)


def trace_graph_to_vcg(graph: TraceGraph, title: str = "trace graph") -> str:
    """VCG of the full trace graph (function + channel nodes)."""
    lines = ["graph: {", f"  title: {_q(title)}"]
    for node in graph.nodes:
        shape = "ellipse" if isinstance(node, ChannelNode) else "box"
        lines.append(
            f"  node: {{ title: {_q(str(node))} label: {_q(str(node))} "
            f"shape: {shape} }}"
        )
    for arc in graph.arcs():
        label = f"{arc.kind.value} x{arc.count}" if arc.count > 1 else arc.kind.value
        lines.append(
            f"  edge: {{ sourcename: {_q(str(arc.src))} "
            f"targetname: {_q(str(arc.dst))} label: {_q(label)} }}"
        )
    lines.append("}")
    return "\n".join(lines)


# ----------------------------------------------------------------------
# DOT
# ----------------------------------------------------------------------
def call_graph_to_dot(graph: CallGraph, name: str = "callgraph") -> str:
    lines = [f"digraph {name} {{", "  rankdir=TB;"]
    for fn in graph.functions():
        lines.append(f"  {_q(fn)};")
    for edge in sorted(graph.edges.values(), key=lambda e: (e.caller, e.callee)):
        lines.append(
            f"  {_q(edge.caller)} -> {_q(edge.callee)} "
            f"[label={_q(str(edge.calls))}];"
        )
    lines.append("}")
    return "\n".join(lines)


def comm_graph_to_dot(graph: CommGraph, name: str = "commgraph") -> str:
    lines = [f"digraph {name} {{"]
    for node in graph.nodes:
        lines.append(
            f"  n{node.node_id} [label={_q(f'{node.src}->{node.dst} t{node.tag}')}];"
        )
    for a, b in graph.arcs:
        lines.append(f"  n{a} -> n{b};")
    lines.append("}")
    return "\n".join(lines)


def trace_graph_to_dot(
    graph: TraceGraph, name: str = "tracegraph", proc: Optional[int] = None
) -> str:
    """DOT of the trace graph, optionally restricted to one process's
    function nodes plus all channels."""

    def keep(arc: Arc) -> bool:
        if proc is None:
            return True
        for end in (arc.src, arc.dst):
            if isinstance(end, FunctionNode) and end.proc != proc:
                return False
        return True

    def nid(node) -> str:
        return _q(str(node))

    lines = [f"digraph {name} {{"]
    used = set()
    kept = [a for a in graph.arcs() if keep(a)]
    for arc in kept:
        used.add(arc.src)
        used.add(arc.dst)
    for node in used:
        shape = "ellipse" if isinstance(node, ChannelNode) else "box"
        lines.append(f"  {nid(node)} [shape={shape}];")
    for arc in kept:
        style = {
            ArcKind.CALL: "solid",
            ArcKind.SEND: "dashed",
            ArcKind.RECV: "dotted",
        }[arc.kind]
        lines.append(
            f"  {nid(arc.src)} -> {nid(arc.dst)} "
            f"[style={style}, label={_q(f'x{arc.count}')}];"
        )
    lines.append("}")
    return "\n".join(lines)
