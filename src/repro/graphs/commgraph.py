"""The communication graph (paper Figure 4 and §4.4).

    "Each node corresponds to one or two messages.  The arcs describe
    causality of messages." (Figure 4 caption)

    "The debugger maintains a list of unmatched sends and receives.  The
    list is updated as execution progresses.  When a send or receive is
    matched, the pair is added as a node in the communication graph."
    (§4.4)

So: one node per *matched* message pair; unmatched sends/receives are
kept aside as the anomaly list.  Arcs connect nodes whose constituent
events are adjacent in some process's program order -- the immediate
causality relation whose transitive closure is happens-before restricted
to message events.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

from repro.trace.trace import MessagePair, Trace

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.analysis.history import HistoryIndex


@dataclass
class CommNode:
    """One matched message (a send/receive pair)."""

    node_id: int
    pair: MessagePair

    @property
    def src(self) -> int:
        return self.pair.send.proc

    @property
    def dst(self) -> int:
        return self.pair.recv.proc

    @property
    def tag(self) -> int:
        return self.pair.send.tag

    def __str__(self) -> str:
        return (
            f"n{self.node_id}[{self.src}->{self.dst} "
            f"tag={self.tag} #{self.pair.send.seq}]"
        )


@dataclass
class CommGraph:
    """Nodes = matched pairs; arcs = immediate message causality."""

    nodes: list[CommNode] = field(default_factory=list)
    #: (from node_id, to node_id)
    arcs: list[tuple[int, int]] = field(default_factory=list)
    unmatched_sends: list = field(default_factory=list)
    unmatched_recvs: list = field(default_factory=list)

    def successors(self, node_id: int) -> list[int]:
        return [b for (a, b) in self.arcs if a == node_id]

    def predecessors(self, node_id: int) -> list[int]:
        return [a for (a, b) in self.arcs if b == node_id]

    def node_count(self) -> int:
        return len(self.nodes)

    def arc_count(self) -> int:
        return len(self.arcs)

    def nodes_of_proc(self, proc: int) -> list[CommNode]:
        return [n for n in self.nodes if proc in (n.src, n.dst)]

    def as_text(self) -> str:
        lines = [f"communication graph: {len(self.nodes)} nodes, {len(self.arcs)} arcs"]
        for node in self.nodes:
            succ = self.successors(node.node_id)
            arrow = f" -> {succ}" if succ else ""
            lines.append(f"  {node}{arrow}")
        if self.unmatched_sends:
            lines.append(f"  unmatched sends: {len(self.unmatched_sends)}")
        if self.unmatched_recvs:
            lines.append(f"  unmatched recvs: {len(self.unmatched_recvs)}")
        return "\n".join(lines)


def build_comm_graph(
    trace: Trace,
    index: "Optional[HistoryIndex]" = None,
) -> CommGraph:
    """Build the communication graph from a trace.

    For each process, its message events (sends and receives) are taken
    in program order; consecutive events' nodes are linked, giving the
    per-process causality chains that Figure 4's arcs draw, plus the
    implicit send->recv causality already inside each node.  Matching
    comes from the shared :class:`~repro.analysis.history.HistoryIndex`.
    """
    from repro.analysis.history import ensure_index

    idx = ensure_index(trace, index=index)
    trace = idx.trace
    graph = CommGraph()
    pairs = idx.message_pairs()
    graph.unmatched_sends = idx.unmatched_sends()
    graph.unmatched_recvs = idx.unmatched_recvs()

    # One node per matched pair; index events -> node id.
    event_node: dict[int, int] = {}
    for i, pair in enumerate(pairs):
        graph.nodes.append(CommNode(i, pair))
        event_node[pair.send.index] = i
        event_node[pair.recv.index] = i

    # Per-process adjacency between consecutive message events.
    seen_arcs: set[tuple[int, int]] = set()
    for p in range(trace.nprocs):
        prev: Optional[int] = None
        for rec in idx.by_proc(p):
            node_id = event_node.get(rec.index)
            if node_id is None:
                continue
            if prev is not None and prev != node_id:
                arc = (prev, node_id)
                if arc not in seen_arcs:
                    seen_arcs.add(arc)
                    graph.arcs.append(arc)
            prev = node_id
    return graph
