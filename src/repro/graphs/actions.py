"""Action graphs -- the first level of history analysis (§4.4).

    "The first level of analysis is done at the level of the call graph.
    For every function, the calls made while the function is active are
    classified into actions and the call graph is transformed into
    actions graph.  The action graph represents history with less
    resolution than the time-space diagram and makes it more
    understandable."

We classify each function activation's direct children (communication
events, compute phases, and calls) into *actions*: maximal runs of
same-category activity.  A run of sends becomes one ``distribute``
action, a run of receives one ``collect``, computation one ``compute``,
and calls one ``call:<callee>`` action.  The graph maps each function to
its action sequence with occurrence counts.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

from repro.trace.events import EventKind
from repro.trace.trace import Trace

from .tracegraph import ROOT_FUNCTION

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.analysis.history import HistoryIndex


class ActionKind(enum.Enum):
    DISTRIBUTE = "distribute"  # a run of sends
    COLLECT = "collect"  # a run of receives
    SYNC = "sync"  # collectives
    COMPUTE = "compute"
    CALL = "call"


def _category(kind: EventKind) -> "ActionKind | None":
    from repro.trace.events import COLLECTIVE_KINDS, RECV_KINDS, SEND_KINDS

    if kind in SEND_KINDS:
        return ActionKind.DISTRIBUTE
    if kind in RECV_KINDS:
        return ActionKind.COLLECT
    if kind in COLLECTIVE_KINDS:
        return ActionKind.SYNC
    if kind is EventKind.COMPUTE:
        return ActionKind.COMPUTE
    if kind is EventKind.FUNC_ENTRY:
        return ActionKind.CALL
    return None


@dataclass(frozen=True)
class Action:
    """One classified activity run inside a function activation."""

    kind: ActionKind
    detail: str  # peer set, callee name, or compute label
    count: int  # events folded into the run
    t0: float
    t1: float

    def __str__(self) -> str:
        core = f"{self.kind.value}"
        if self.detail:
            core += f"({self.detail})"
        if self.count > 1:
            core += f" x{self.count}"
        return core


@dataclass
class ActionGraph:
    """function name -> list of action sequences (one per activation)."""

    proc: int
    activations: dict[str, list[list[Action]]] = field(default_factory=dict)

    def actions_of(self, function: str) -> list[list[Action]]:
        return self.activations.get(function, [])

    def summary(self, function: str) -> list[str]:
        """The typical action sequence of a function (first activation)."""
        seqs = self.actions_of(function)
        return [str(a) for a in seqs[0]] if seqs else []

    def as_text(self) -> str:
        lines = [f"action graph (proc {self.proc})"]
        for fn in sorted(self.activations):
            for i, seq in enumerate(self.activations[fn]):
                chain = " ; ".join(str(a) for a in seq) or "(no actions)"
                lines.append(f"  {fn}#{i}: {chain}")
        return "\n".join(lines)


def build_action_graph(
    trace: Trace,
    proc: int,
    index: "Optional[HistoryIndex]" = None,
) -> ActionGraph:
    """Classify each function activation's direct children into actions."""
    from repro.analysis.history import ensure_index

    idx = ensure_index(trace, index=index)
    graph = ActionGraph(proc)
    # Frame stack: (function name, list of (category, detail, record)).
    stack: list[tuple[str, list[tuple[ActionKind, str, object]]]] = [
        (ROOT_FUNCTION, [])
    ]

    def close_frame() -> None:
        fn, raw = stack.pop()
        graph.activations.setdefault(fn, []).append(_fold_runs(raw))

    for rec in idx.by_proc(proc):
        cat = _category(rec.kind)
        if rec.kind is EventKind.FUNC_ENTRY:
            stack[-1][1].append((ActionKind.CALL, rec.location.function, rec))
            stack.append((rec.location.function, []))
        elif rec.kind is EventKind.FUNC_EXIT:
            if len(stack) > 1:
                close_frame()
        elif cat is not None:
            detail = rec.extra.get("label", "") if cat is ActionKind.COMPUTE else (
                f"->{rec.dst}" if cat is ActionKind.DISTRIBUTE
                else f"<-{rec.src}" if cat is ActionKind.COLLECT
                else rec.kind.value
            )
            stack[-1][1].append((cat, detail, rec))
    while stack:
        close_frame()
    return graph


def _fold_runs(raw: list[tuple[ActionKind, str, object]]) -> list[Action]:
    """Collapse maximal same-kind runs into single actions."""
    out: list[Action] = []
    i = 0
    while i < len(raw):
        kind, detail, rec = raw[i]
        j = i
        details = []
        t0 = getattr(rec, "t0", 0.0)
        t1 = getattr(rec, "t1", 0.0)
        while j < len(raw) and raw[j][0] is kind and (
            kind is not ActionKind.CALL or raw[j][1] == detail
        ):
            details.append(raw[j][1])
            t1 = getattr(raw[j][2], "t1", t1)
            j += 1
        uniq = sorted(set(d for d in details if d))
        shown = ",".join(uniq[:4]) + ("..." if len(uniq) > 4 else "")
        out.append(Action(kind=kind, detail=shown, count=j - i, t0=t0, t1=t1))
        i = j
    return out
