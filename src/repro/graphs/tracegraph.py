"""The trace graph -- the paper's navigable abstraction of history (§3.2).

    "The trace graph of the execution is a graph whose vertex set
    consists of a node for each function in the program and a node for
    each communication channel (one channel per pair of processes).
    There are two types of arcs in the trace graph.  Each function call
    is represented with an arc from the node of the caller to the callee
    node.  Each message send/receive is represented with an arc from the
    function performing the send/receive to the channel involved."

Size control (§4.3): node count is bounded by (#functions x #procs +
#procs^2); arc count is kept bounded by the *dissemination* technique --
"if the number of arcs incident to a node exceeds a limit, we merge
every other arc with the previous one" -- at the cost of resolution,
recoverable by rescanning the trace window an arc covers.

Arc orientation: call arcs run caller -> callee; send arcs run function
-> channel; receive arcs run channel -> function, so directed paths in
the trace graph follow causality ("The arcs describe causality").
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Optional, Union

import numpy as np

from repro.trace.events import RECV_KINDS, SEND_KINDS, EventKind, TraceRecord
from repro.trace.trace import Trace

if TYPE_CHECKING:  # pragma: no cover
    from repro.trace.columnar import ColumnBlock
    from repro.trace.sinks import TraceSink
    from repro.trace.tracefile import TraceFileReader

#: kinds that change the graph topology; everything else is skipped
#: before materialization on the columnar ingest path
_TOPOLOGY_KINDS = frozenset(
    {EventKind.FUNC_ENTRY, EventKind.FUNC_EXIT} | SEND_KINDS | RECV_KINDS
)


# ----------------------------------------------------------------------
# nodes
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class FunctionNode:
    """One program function on one process."""

    proc: int
    function: str

    def __str__(self) -> str:
        return f"p{self.proc}:{self.function}"


@dataclass(frozen=True)
class ChannelNode:
    """The communication channel between an unordered pair of processes."""

    a: int
    b: int

    def __post_init__(self) -> None:
        if self.a > self.b:
            lo, hi = self.b, self.a
            object.__setattr__(self, "a", lo)
            object.__setattr__(self, "b", hi)

    @classmethod
    def between(cls, p: int, q: int) -> "ChannelNode":
        return cls(min(p, q), max(p, q))

    def __str__(self) -> str:
        return f"ch({self.a},{self.b})"


Node = Union[FunctionNode, ChannelNode]

#: Default name for the per-process root function (the rank's target).
ROOT_FUNCTION = "<main>"


class ArcKind(enum.Enum):
    CALL = "call"
    SEND = "send"
    RECV = "recv"


@dataclass
class Arc:
    """A (possibly merged) arc of the trace graph.

    ``count`` is how many original events the arc stands for after
    dissemination merges; ``first_index``/``last_index`` bound the trace
    records covered, and ``t0``/``t1`` bound their times -- together the
    "image in the execution trace" used to reconstruct detail on zoom.
    """

    kind: ArcKind
    src: Node
    dst: Node
    count: int
    first_index: int
    last_index: int
    t0: float
    t1: float
    tag: int = -1

    def merge_with(self, other: "Arc") -> None:
        """Absorb ``other`` (same endpoints/kind) into this arc."""
        self.count += other.count
        self.first_index = min(self.first_index, other.first_index)
        self.last_index = max(self.last_index, other.last_index)
        self.t0 = min(self.t0, other.t0)
        self.t1 = max(self.t1, other.t1)


#: Edge identity: (kind, src, dst).  Parallel arcs of one edge live in a
#: single list shared by both endpoint nodes, so dissemination merges
#: are applied exactly once however many nodes observe them.
EdgeKey = tuple  # (ArcKind, Node, Node)


class TraceGraph:
    """Function + channel nodes, call + message arcs, with dissemination.

    Parameters
    ----------
    nprocs:
        Communicator size.
    arc_limit:
        Max arcs incident to any node before dissemination merges every
        other arc with its predecessor (None disables merging).
    """

    def __init__(self, nprocs: int, arc_limit: Optional[int] = 64) -> None:
        if arc_limit is not None and arc_limit < 2:
            raise ValueError(f"arc_limit must be >= 2, got {arc_limit}")
        self.nprocs = nprocs
        self.arc_limit = arc_limit
        #: edge key -> parallel arc list (the canonical arc storage)
        self._edges: dict[EdgeKey, list[Arc]] = {}
        #: node -> edge keys incident to it
        self._node_edges: dict[Node, set[EdgeKey]] = {}
        #: per-node dissemination merge counts
        self._merge_counts: dict[Node, int] = {}
        self._call_stacks: list[list[FunctionNode]] = [
            [FunctionNode(p, ROOT_FUNCTION)] for p in range(nprocs)
        ]
        for p in range(nprocs):
            self._touch(FunctionNode(p, ROOT_FUNCTION))
        #: total original events folded into the graph
        self.events_consumed = 0

    # ------------------------------------------------------------------
    # incremental construction ("built as the execution is running")
    # ------------------------------------------------------------------
    def add_record(self, rec: TraceRecord) -> None:
        """Fold one trace record into the graph."""
        if rec.kind is EventKind.FUNC_ENTRY:
            callee = FunctionNode(rec.proc, rec.location.function)
            caller = self._current_function(rec.proc)
            self._add_arc(Arc(
                ArcKind.CALL, caller, callee, 1,
                rec.index, rec.index, rec.t0, rec.t1,
            ))
            self._call_stacks[rec.proc].append(callee)
            self.events_consumed += 1
        elif rec.kind is EventKind.FUNC_EXIT:
            stack = self._call_stacks[rec.proc]
            if len(stack) > 1:
                stack.pop()
            self.events_consumed += 1
        elif rec.is_send:
            fn = self._current_function(rec.proc)
            ch = ChannelNode.between(rec.src, rec.dst)
            self._add_arc(Arc(
                ArcKind.SEND, fn, ch, 1,
                rec.index, rec.index, rec.t0, rec.t1, tag=rec.tag,
            ))
            self.events_consumed += 1
        elif rec.is_recv:
            fn = self._current_function(rec.proc)
            ch = ChannelNode.between(rec.src, rec.dst)
            self._add_arc(Arc(
                ArcKind.RECV, ch, fn, 1,
                rec.index, rec.index, rec.t0, rec.t1, tag=rec.tag,
            ))
            self.events_consumed += 1
        # other kinds (compute, collectives wrappers, lifecycle) do not
        # change the graph topology

    def add_columns(self, block: "ColumnBlock") -> int:
        """Fold one decoded columnar block into the graph.

        The kind column is pre-filtered with a numpy mask so only
        topology-relevant records (function entries/exits, sends,
        receives) are materialized at all -- on typical traces that
        skips the compute/lifecycle majority without touching Python.
        Returns how many records were folded in.
        """
        if not len(block):
            return 0
        codes = [
            code
            for code, kind in enumerate(block.kind_table)
            if kind in _TOPOLOGY_KINDS
        ]
        mask = np.isin(block.columns["kind"], codes)
        if not mask.any():
            return 0
        relevant = block if mask.all() else block.filter(mask)
        for rec in relevant.to_records():
            self.add_record(rec)
        return len(relevant)

    def _current_function(self, proc: int) -> FunctionNode:
        return self._call_stacks[proc][-1]

    def _touch(self, node: Node) -> set:
        edges = self._node_edges.get(node)
        if edges is None:
            edges = self._node_edges[node] = set()
        return edges

    def _add_arc(self, arc: Arc) -> None:
        key = (arc.kind, arc.src, arc.dst)
        arcs = self._edges.get(key)
        if arcs is None:
            arcs = self._edges[key] = []
        arcs.append(arc)
        endpoints = (arc.src,) if arc.src == arc.dst else (arc.src, arc.dst)
        for node in endpoints:
            self._touch(node).add(key)
        for node in endpoints:
            if (
                self.arc_limit is not None
                and self.incident_count(node) > self.arc_limit
            ):
                self._disseminate(node)

    def _disseminate(self, node: Node) -> None:
        """Merge every other arc with the previous one (paper §4.3).

        Applied per edge (parallel-arc list), so merging is exact: only
        arcs with identical (kind, src, dst) combine, and each merge is
        performed once even though both endpoints share the list.
        """
        for key in self._node_edges[node]:
            arcs = self._edges[key]
            if len(arcs) < 2:
                continue
            merged: list[Arc] = []
            for i in range(0, len(arcs) - 1, 2):
                arcs[i].merge_with(arcs[i + 1])
                merged.append(arcs[i])
                self._merge_counts[node] = self._merge_counts.get(node, 0) + 1
            if len(arcs) % 2:
                merged.append(arcs[-1])
            self._edges[key] = merged

    def sink(self) -> "TraceSink":
        """A bus sink feeding this graph -- attach it to a recorder
        (``recorder.subscribe(graph.sink())``) and the graph tracks the
        execution live, no materialized :class:`Trace` required."""
        from repro.trace.sinks import GraphSink

        return GraphSink(graph=self)

    # ------------------------------------------------------------------
    # whole-trace construction
    # ------------------------------------------------------------------
    @classmethod
    def from_trace(
        cls, trace: Trace, arc_limit: Optional[int] = 64
    ) -> "TraceGraph":
        graph = cls(trace.nprocs, arc_limit)
        for rec in trace:
            graph.add_record(rec)
        return graph

    @classmethod
    def from_records(
        cls,
        records: Iterable[TraceRecord],
        nprocs: int,
        arc_limit: Optional[int] = 64,
    ) -> "TraceGraph":
        """Build from any record iterator (a file reader's stream, a
        sink's history) without materializing a :class:`Trace`."""
        graph = cls(nprocs, arc_limit)
        for rec in records:
            graph.add_record(rec)
        return graph

    @classmethod
    def from_columns(
        cls,
        block: "ColumnBlock",
        nprocs: int,
        arc_limit: Optional[int] = 64,
    ) -> "TraceGraph":
        """Build from a decoded columnar block (the
        :meth:`TraceFileReader.read_columns` feed)."""
        graph = cls(nprocs, arc_limit)
        graph.add_columns(block)
        return graph

    @classmethod
    def from_file(
        cls, reader: "TraceFileReader", arc_limit: Optional[int] = 64
    ) -> "TraceGraph":
        """Build from a trace file through the bulk columnar path: v3
        files decode column-wise and irrelevant kinds are masked out
        before any record object exists; v1/v2 bridge transparently."""
        return cls.from_columns(reader.read_columns(), reader.nprocs, arc_limit)

    @classmethod
    def from_index(cls, index, arc_limit: Optional[int] = 64) -> "TraceGraph":
        """Build from a :class:`~repro.analysis.history.HistoryIndex` --
        the graph reads the already-indexed records and the index serves
        as the zoom-rescan source for :meth:`reconstruct_arc`."""
        return cls.from_records(index.records, index.nprocs, arc_limit)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def nodes(self) -> list[Node]:
        return list(self._node_edges)

    def function_nodes(self, proc: Optional[int] = None) -> list[FunctionNode]:
        return [
            n
            for n in self._node_edges
            if isinstance(n, FunctionNode) and (proc is None or n.proc == proc)
        ]

    def channel_nodes(self) -> list[ChannelNode]:
        return [n for n in self._node_edges if isinstance(n, ChannelNode)]

    def arcs(self, node: Optional[Node] = None) -> list[Arc]:
        """All arcs, or those incident to ``node``."""
        if node is not None:
            out: list[Arc] = []
            for key in self._node_edges[node]:
                out.extend(self._edges[key])
            return out
        all_arcs: list[Arc] = []
        for arcs in self._edges.values():
            all_arcs.extend(arcs)
        return all_arcs

    def out_arcs(self, node: Node) -> list[Arc]:
        return [a for a in self.arcs(node) if a.src == node]

    def in_arcs(self, node: Node) -> list[Arc]:
        return [a for a in self.arcs(node) if a.dst == node]

    def incident_count(self, node: Node) -> int:
        return sum(len(self._edges[key]) for key in self._node_edges.get(node, ()))

    def total_merges(self) -> int:
        return sum(self._merge_counts.values())

    # ------------------------------------------------------------------
    # zoom reconstruction (§4.3)
    # ------------------------------------------------------------------
    def reconstruct_arc(self, arc: Arc, trace) -> list[TraceRecord]:
        """Recover the original events a merged arc stands for by
        rescanning the covered portion of the trace.

        ``trace`` may be an in-memory :class:`Trace`, a
        :class:`~repro.analysis.history.HistoryIndex` (both answer
        ``window``), or an (indexed) ``TraceFileReader`` -- with the
        latter, only the byte ranges covering the arc's time window are
        read ("rescanning the appropriate portion of the trace file",
        §4.3).
        """
        if hasattr(trace, "seek_window"):
            window = trace.seek_window(arc.t0, arc.t1)
        else:
            window = trace.window(arc.t0, arc.t1)
        out = []
        for rec in window:
            if arc.first_index <= rec.index <= arc.last_index:
                if arc.kind is ArcKind.CALL and rec.kind is EventKind.FUNC_ENTRY:
                    if rec.proc == getattr(arc.dst, "proc", -1) and rec.location.function == getattr(arc.dst, "function", ""):
                        out.append(rec)
                elif arc.kind is ArcKind.SEND and rec.is_send:
                    if ChannelNode.between(rec.src, rec.dst) == arc.dst:
                        out.append(rec)
                elif arc.kind is ArcKind.RECV and rec.is_recv:
                    if ChannelNode.between(rec.src, rec.dst) == arc.src:
                        out.append(rec)
        return out

    # ------------------------------------------------------------------
    def node_count_bound(self, n_functions: int) -> int:
        """The paper's bound: #functions * #procs + #procs^2."""
        return n_functions * self.nprocs + self.nprocs * self.nprocs


def projection(graph: TraceGraph, proc: int) -> list[Arc]:
    """Project the trace graph onto one process (§3.2): keep only call
    arcs between that process's function nodes.  (This is the dynamic
    call graph; :mod:`repro.graphs.callgraph` offers the richer API.)"""
    out = []
    for arc in graph.arcs():
        if (
            arc.kind is ArcKind.CALL
            and isinstance(arc.src, FunctionNode)
            and isinstance(arc.dst, FunctionNode)
            and arc.src.proc == proc
            and arc.dst.proc == proc
        ):
            out.append(arc)
    return out


def iter_channel_traffic(graph: TraceGraph) -> Iterable[tuple[ChannelNode, int, int]]:
    """(channel, send-arc event count, recv-arc event count) per channel."""
    for ch in graph.channel_nodes():
        sends = sum(a.count for a in graph.in_arcs(ch) if a.kind is ArcKind.SEND)
        recvs = sum(a.count for a in graph.out_arcs(ch) if a.kind is ArcKind.RECV)
        yield ch, sends, recvs
