"""Viewport math for time-space displays.

Both visualizers in the paper position constructs by (time, process):
NTV "provides the user with the entire trace file at one time and allows
selective zooming and panning"; VK "gives the user a window into the
trace file".  A :class:`Viewport` maps virtual time to display columns
with zoom and pan, shared by the ASCII, SVG, and animation renderers.
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class Viewport:
    """A [t0, t1] time window rendered into ``columns`` columns."""

    t0: float
    t1: float
    columns: int = 100

    def __post_init__(self) -> None:
        if self.t1 <= self.t0:
            raise ValueError(f"empty viewport [{self.t0}, {self.t1}]")
        if self.columns < 2:
            raise ValueError("viewport needs at least 2 columns")

    # ------------------------------------------------------------------
    @property
    def width(self) -> float:
        return self.t1 - self.t0

    @property
    def time_per_column(self) -> float:
        return self.width / self.columns

    def column_of(self, t: float) -> int:
        """Display column of time ``t``, clamped to the viewport."""
        frac = (t - self.t0) / self.width
        col = int(frac * (self.columns - 1))
        return max(0, min(self.columns - 1, col))

    def time_of(self, column: int) -> float:
        """Inverse mapping (column centre), for click hit-testing."""
        frac = column / (self.columns - 1)
        return self.t0 + frac * self.width

    def contains(self, t: float) -> bool:
        return self.t0 <= t <= self.t1

    def overlaps(self, a: float, b: float) -> bool:
        """Does the span [a, b] intersect the viewport?"""
        return b >= self.t0 and a <= self.t1

    # ------------------------------------------------------------------
    # zoom & pan (the NTV interactions)
    # ------------------------------------------------------------------
    def zoom(self, factor: float, center: "float | None" = None) -> "Viewport":
        """factor > 1 zooms in around ``center`` (default: midpoint)."""
        if factor <= 0:
            raise ValueError("zoom factor must be positive")
        c = center if center is not None else (self.t0 + self.t1) / 2
        half = self.width / (2 * factor)
        return replace(self, t0=c - half, t1=c + half)

    def pan(self, dt: float) -> "Viewport":
        """Shift the window by ``dt`` time units."""
        return replace(self, t0=self.t0 + dt, t1=self.t1 + dt)

    @classmethod
    def fit(cls, t_lo: float, t_hi: float, columns: int = 100, margin: float = 0.02) -> "Viewport":
        """A viewport covering [t_lo, t_hi] with a small margin."""
        if t_hi <= t_lo:
            t_hi = t_lo + 1.0
        pad = (t_hi - t_lo) * margin
        return cls(t0=t_lo - pad, t1=t_hi + pad, columns=columns)
