"""The VK-style animated window view (paper §3.1).

    "VK, on the other hand, gives the user a window into the trace file
    and provides an animated view of the events of execution.  The user
    can scroll through the history in both directions and change the
    time scale."

:class:`AnimatedView` holds a fixed-width window over the history and
yields successive ASCII frames as the window advances (or rewinds).  It
runs in two modes:

* over an in-memory :class:`TimeSpaceDiagram` (the original form);
* over a trace *file*, via :meth:`AnimatedView.from_file` -- literally
  "a window into the trace file": each frame fetches only the window's
  records through ``TraceFileReader.seek_window``, so scrolling a huge
  indexed (v2) trace never materializes the whole history.
"""

from __future__ import annotations

from typing import Iterator, Optional

from .layout import Viewport
from .timespace import TimeSpaceDiagram, build_diagram, render_ascii


class AnimatedView:
    """A scrollable, rescalable window over a time-space diagram."""

    def __init__(
        self,
        diagram: Optional[TimeSpaceDiagram] = None,
        window: Optional[float] = None,
        columns: int = 80,
        *,
        reader=None,
    ) -> None:
        if (diagram is None) == (reader is None):
            raise ValueError("pass exactly one of diagram or reader")
        self.diagram = diagram
        self.reader = reader
        if reader is not None:
            t_lo, t_hi = reader.span()
        else:
            t_lo, t_hi = diagram.trace.span
        self._t_lo = t_lo
        self._t_hi = max(t_hi, t_lo + 1.0)
        span = self._t_hi - self._t_lo
        self.window = window if window is not None else span / 4
        if self.window <= 0:
            raise ValueError("window must be positive")
        self.columns = columns
        self._start = self._t_lo

    @classmethod
    def from_file(
        cls,
        reader,
        window: Optional[float] = None,
        columns: int = 80,
    ) -> "AnimatedView":
        """A view streaming straight from a ``TraceFileReader`` --
        frames load only their window's byte ranges on indexed files."""
        return cls(window=window, columns=columns, reader=reader)

    # ------------------------------------------------------------------
    @property
    def position(self) -> float:
        return self._start

    def viewport(self) -> Viewport:
        return Viewport(self._start, self._start + self.window, self.columns)

    def _window_diagram(self) -> TimeSpaceDiagram:
        if self.reader is None:
            return self.diagram
        records = self.reader.seek_window(
            self._start, self._start + self.window
        )
        return build_diagram(records, nprocs=self.reader.nprocs)

    def frame(self) -> str:
        """Render the current window."""
        return render_ascii(self._window_diagram(), self.viewport(), self.columns)

    # ------------------------------------------------------------------
    # scrolling "in both directions"
    # ------------------------------------------------------------------
    def forward(self, fraction: float = 0.5) -> str:
        """Advance by a fraction of the window; returns the new frame."""
        self._start = min(
            self._start + self.window * fraction, self._t_hi - self.window
        )
        self._start = max(self._start, self._t_lo)
        return self.frame()

    def backward(self, fraction: float = 0.5) -> str:
        self._start = max(self._start - self.window * fraction, self._t_lo)
        return self.frame()

    def seek(self, t: float) -> str:
        """Jump the window start to ``t`` (clamped)."""
        self._start = max(self._t_lo, min(t, self._t_hi - self.window))
        return self.frame()

    # ------------------------------------------------------------------
    # "change the time scale"
    # ------------------------------------------------------------------
    def rescale(self, factor: float) -> str:
        """Multiply the window width by ``factor`` (>1 = wider/coarser)."""
        if factor <= 0:
            raise ValueError("scale factor must be positive")
        self.window = min(self.window * factor, self._t_hi - self._t_lo)
        return self.frame()

    # ------------------------------------------------------------------
    def animate(self, step_fraction: float = 0.5) -> Iterator[str]:
        """Yield frames from the current position to the end of history."""
        yield self.frame()
        while self._start + self.window < self._t_hi - 1e-12:
            before = self._start
            yield self.forward(step_fraction)
            if self._start == before:  # clamped: no further progress
                break

    def frames(self, step_fraction: float = 0.5) -> list[str]:
        """All frames as a list (convenience for tests/examples)."""
        return list(self.animate(step_fraction))
