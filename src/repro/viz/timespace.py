"""Time-space diagrams -- the paper's §3.1 display, NTV-style.

    "Each construct is represented by a bar positioned according to its
    process number and start/end times.  The bar is colored depending on
    the type of the construct.  Each message is represented by a
    straight line segment connecting (time_sent, source) and
    (time_received, destination) points."

:class:`TimeSpaceDiagram` is the display *model*: bars, message lines,
optional stopline and frontier overlays, and the hit-testing that backs
"clicking on a bar ... can identify the location of the send or receive
in the source code".  :func:`render_ascii` draws it in a terminal; the
SVG renderer lives in :mod:`repro.viz.svg`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence

from repro.trace.events import EventKind, TraceRecord
from repro.trace.trace import Trace

from .layout import Viewport

#: Bar glyph per construct category for the ASCII renderer.
_GLYPHS = {
    "compute": "=",
    "send": "S",
    "recv": "R",
    "collective": "C",
    "func": "-",
    "other": ".",
}


def _category(kind: EventKind) -> str:
    from repro.trace.events import COLLECTIVE_KINDS, RECV_KINDS, SEND_KINDS

    if kind in SEND_KINDS:
        return "send"
    if kind in RECV_KINDS:
        return "recv"
    if kind in COLLECTIVE_KINDS:
        return "collective"
    if kind is EventKind.COMPUTE:
        return "compute"
    if kind in (EventKind.FUNC_ENTRY, EventKind.FUNC_EXIT):
        return "func"
    return "other"


@dataclass(frozen=True)
class Bar:
    """One construct's bar in the diagram."""

    record: TraceRecord
    category: str

    @property
    def proc(self) -> int:
        return self.record.proc

    @property
    def t0(self) -> float:
        return self.record.t0

    @property
    def t1(self) -> float:
        return self.record.t1


@dataclass(frozen=True)
class MessageLine:
    """A message line from (t_sent, src) to (t_received, dst)."""

    send: TraceRecord
    recv: TraceRecord

    @property
    def t_sent(self) -> float:
        return self.send.t1

    @property
    def t_received(self) -> float:
        return self.recv.t1

    @property
    def src(self) -> int:
        return self.send.proc

    @property
    def dst(self) -> int:
        return self.recv.proc


@dataclass
class TimeSpaceDiagram:
    """The display model: rows of bars + message lines + overlays."""

    trace: Trace
    bars: list[Bar] = field(default_factory=list)
    messages: list[MessageLine] = field(default_factory=list)
    #: vertical indicator ("the vertical line near the left side
    #: represents the stopline", Figure 2)
    stopline_time: Optional[float] = None
    #: past/future frontier overlays: proc -> time (Figure 8)
    past_frontier: Optional[dict[int, float]] = None
    future_frontier: Optional[dict[int, float]] = None

    @property
    def nprocs(self) -> int:
        return self.trace.nprocs

    # ------------------------------------------------------------------
    # interaction
    # ------------------------------------------------------------------
    def hit_test(self, proc: int, time: float) -> Optional[TraceRecord]:
        """The construct under a click at (time, proc) -- the record
        whose bar spans the time, preferring the latest-starting one."""
        best: Optional[TraceRecord] = None
        for bar in self.bars:
            if bar.proc == proc and bar.t0 <= time <= bar.t1:
                if best is None or bar.t0 > best.t0:
                    best = bar.record
        return best

    def hit_test_message(self, time: float, tolerance: float = 0.0) -> Optional[MessageLine]:
        """The message line whose lifetime covers ``time`` (earliest
        send first).  Clicking it identifies send/recv source locations."""
        hits = [
            m
            for m in self.messages
            if m.t_sent - tolerance <= time <= m.t_received + tolerance
        ]
        return min(hits, key=lambda m: m.t_sent) if hits else None

    def source_of_click(self, proc: int, time: float) -> Optional[str]:
        """The paper's click-through: the construct's source location."""
        rec = self.hit_test(proc, time)
        return str(rec.location) if rec is not None else None

    def set_stopline(self, time: float) -> None:
        self.stopline_time = time

    def set_frontiers(
        self,
        past: Optional[dict[int, float]],
        future: Optional[dict[int, float]],
    ) -> None:
        self.past_frontier = past
        self.future_frontier = future


def build_diagram(
    trace: "Trace | Iterable[TraceRecord]",
    kinds: Optional[Sequence[EventKind]] = None,
    nprocs: Optional[int] = None,
    index=None,
) -> TimeSpaceDiagram:
    """Construct the display model from a trace or any record stream.

    ``kinds`` restricts which constructs get bars (message lines always
    come from the matched pairs).  Zero-duration records (function
    entries) are skipped as bars -- they have no extent to draw.
    """
    from repro.analysis.history import ensure_index

    idx = ensure_index(trace, nprocs=nprocs, index=index)
    trace = idx.trace
    diagram = TimeSpaceDiagram(trace=trace)
    wanted = set(kinds) if kinds is not None else None
    for rec in trace:
        if rec.kind in (EventKind.PROC_START, EventKind.PROC_EXIT):
            continue
        if wanted is not None and rec.kind not in wanted:
            continue
        if rec.t1 <= rec.t0:
            continue
        diagram.bars.append(Bar(record=rec, category=_category(rec.kind)))
    for pair in idx.message_pairs():
        diagram.messages.append(MessageLine(send=pair.send, recv=pair.recv))
    return diagram


def build_columns_diagram(
    block,
    nprocs: int,
    kinds: Optional[Sequence[EventKind]] = None,
) -> TimeSpaceDiagram:
    """Display model from a decoded columnar block (the
    ``TraceFileReader.read_columns`` feed): the block is bulk-ingested
    into a fresh :class:`~repro.analysis.history.HistoryIndex` without
    per-record parsing, then laid out as usual."""
    from repro.analysis.history import HistoryIndex

    idx = HistoryIndex(nprocs=nprocs)
    idx.extend_columns(block)
    return build_diagram(idx.trace, kinds=kinds, index=idx)


def build_file_diagram(
    reader,
    kinds: Optional[Sequence[EventKind]] = None,
    t_lo: Optional[float] = None,
    t_hi: Optional[float] = None,
    procs: Optional[set[int]] = None,
) -> TimeSpaceDiagram:
    """Display model for a trace *file* through the bulk columnar path.

    ``reader`` is a ``TraceFileReader``; a v3 file is decoded
    column-wise (optionally windowed -- only overlapping blocks are
    read), v1/v2 files bridge through the record path transparently.
    """
    block = reader.read_columns(t_lo=t_lo, t_hi=t_hi, procs=procs)
    return build_columns_diagram(block, reader.nprocs, kinds=kinds)


def build_window_diagram(
    reader,
    t_lo: float,
    t_hi: float,
    procs: Optional[set[int]] = None,
    kinds: Optional[Sequence[EventKind]] = None,
) -> TimeSpaceDiagram:
    """Display model for one window of a trace *file*, loading only the
    relevant byte ranges of an indexed file -- the NTV zoom without the
    full-file reload.  On a v3 file the window arrives as decoded
    columns (``read_columns``); v1/v2 go through ``seek_window``, and
    v1 files work through the linear fallback.
    """
    if getattr(reader, "version", 0) >= 3:
        return build_file_diagram(
            reader, kinds=kinds, t_lo=t_lo, t_hi=t_hi, procs=procs
        )
    records = reader.seek_window(t_lo, t_hi, procs=procs)
    return build_diagram(records, kinds=kinds, nprocs=reader.nprocs)


# ----------------------------------------------------------------------
# ASCII rendering
# ----------------------------------------------------------------------
def render_ascii(
    diagram: TimeSpaceDiagram,
    viewport: Optional[Viewport] = None,
    columns: int = 100,
    show_messages: bool = True,
) -> str:
    """Terminal rendering: one row per process (highest rank on top, as
    in the paper's figures), bars as glyph runs, message endpoints as
    ``s``/``r`` on an interleaved lane, the stopline as ``|``."""
    if viewport is None:
        t_lo, t_hi = diagram.trace.span
        viewport = Viewport.fit(t_lo, t_hi, columns=columns)
    nprocs = diagram.nprocs
    width = viewport.columns
    rows = [[" "] * width for _ in range(nprocs)]

    for bar in diagram.bars:
        if not viewport.overlaps(bar.t0, bar.t1):
            continue
        c0 = viewport.column_of(max(bar.t0, viewport.t0))
        c1 = viewport.column_of(min(bar.t1, viewport.t1))
        glyph = _GLYPHS[bar.category]
        for c in range(c0, c1 + 1):
            rows[bar.proc][c] = glyph

    if show_messages:
        for msg in diagram.messages:
            if viewport.contains(msg.t_sent):
                rows[msg.src][viewport.column_of(msg.t_sent)] = "s"
            if viewport.contains(msg.t_received):
                rows[msg.dst][viewport.column_of(msg.t_received)] = "r"

    overlay_cols: dict[int, str] = {}
    if diagram.stopline_time is not None and viewport.contains(diagram.stopline_time):
        overlay_cols[viewport.column_of(diagram.stopline_time)] = "|"

    lines = []
    header = f"t: {viewport.t0:.2f} .. {viewport.t1:.2f}  ({viewport.time_per_column:.3f}/col)"
    lines.append(header)
    for p in range(nprocs - 1, -1, -1):
        row = rows[p]
        for col, ch in overlay_cols.items():
            row[col] = ch
        frontier_marks = ""
        if diagram.past_frontier and p in diagram.past_frontier:
            t = diagram.past_frontier[p]
            if viewport.contains(t):
                row[viewport.column_of(t)] = "<"
        if diagram.future_frontier and p in diagram.future_frontier:
            t = diagram.future_frontier[p]
            if viewport.contains(t):
                row[viewport.column_of(t)] = ">"
        lines.append(f"p{p:<2}|" + "".join(row) + frontier_marks)
    lines.append("   +" + "-" * width)
    return "\n".join(lines)
