"""``repro.viz`` -- history displays (paper §3).

* :mod:`~repro.viz.timespace` -- the time-space diagram model with
  hit-testing (click-to-source), plus an ASCII renderer (the NTV
  full-view analog).
* :mod:`~repro.viz.svg` -- SVG rendering with bars, message lines,
  stopline, and frontier overlays (Figures 2, 5, 6, 8).
* :mod:`~repro.viz.animate` -- the VK-style scrollable animated window.
* :mod:`~repro.viz.layout` -- viewport zoom/pan math shared by all.
"""

from .animate import AnimatedView
from .layout import Viewport
from .svg import CATEGORY_COLORS, render_svg, save_svg
from .timespace import (
    Bar,
    MessageLine,
    TimeSpaceDiagram,
    build_diagram,
    build_window_diagram,
    render_ascii,
)

__all__ = [
    "AnimatedView",
    "Bar",
    "CATEGORY_COLORS",
    "MessageLine",
    "TimeSpaceDiagram",
    "Viewport",
    "build_diagram",
    "build_window_diagram",
    "render_ascii",
    "render_svg",
    "save_svg",
]
