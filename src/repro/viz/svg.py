"""SVG rendering of time-space diagrams (the graphical NTV analog).

Produces the figures of the paper as standalone SVG files: colored
construct bars per process row, angled message lines, the vertical
stopline indicator (Figure 2), and the slanted past/future frontier
polylines (Figure 8).  Output is deterministic text, so tests can assert
on its structure.
"""

from __future__ import annotations

from typing import Optional

from .layout import Viewport
from .timespace import TimeSpaceDiagram

#: Fill colors per construct category ("the bar is colored depending on
#: the type of the construct").
CATEGORY_COLORS = {
    "compute": "#4e79a7",
    "send": "#f28e2b",
    "recv": "#59a14f",
    "collective": "#b07aa1",
    "func": "#bab0ac",
    "other": "#d3d3d3",
}

ROW_HEIGHT = 24
BAR_HEIGHT = 12
MARGIN_LEFT = 40
MARGIN_TOP = 20


def _esc(s: str) -> str:
    return s.replace("&", "&amp;").replace("<", "&lt;").replace(">", "&gt;")


class SvgCanvas:
    """Minimal deterministic SVG assembly."""

    def __init__(self, width: int, height: int) -> None:
        self.width = width
        self.height = height
        self._parts: list[str] = []

    def rect(self, x: float, y: float, w: float, h: float, fill: str, title: str = "") -> None:
        tooltip = f"<title>{_esc(title)}</title>" if title else ""
        self._parts.append(
            f'<rect x="{x:.1f}" y="{y:.1f}" width="{max(w, 1.0):.1f}" '
            f'height="{h:.1f}" fill="{fill}">{tooltip}</rect>'
        )

    def line(
        self, x1: float, y1: float, x2: float, y2: float,
        stroke: str, width: float = 1.0, dash: Optional[str] = None,
        title: str = "",
    ) -> None:
        dash_attr = f' stroke-dasharray="{dash}"' if dash else ""
        tooltip = f"<title>{_esc(title)}</title>" if title else ""
        self._parts.append(
            f'<line x1="{x1:.1f}" y1="{y1:.1f}" x2="{x2:.1f}" y2="{y2:.1f}" '
            f'stroke="{stroke}" stroke-width="{width}"{dash_attr}>{tooltip}</line>'
        )

    def text(self, x: float, y: float, content: str, size: int = 10) -> None:
        self._parts.append(
            f'<text x="{x:.1f}" y="{y:.1f}" font-size="{size}" '
            f'font-family="monospace">{_esc(content)}</text>'
        )

    def to_string(self) -> str:
        body = "\n".join(self._parts)
        return (
            f'<svg xmlns="http://www.w3.org/2000/svg" width="{self.width}" '
            f'height="{self.height}" viewBox="0 0 {self.width} {self.height}">\n'
            f'<rect width="100%" height="100%" fill="white"/>\n{body}\n</svg>'
        )


def render_svg(
    diagram: TimeSpaceDiagram,
    viewport: Optional[Viewport] = None,
    pixel_width: int = 900,
) -> str:
    """Render the diagram to an SVG string.

    Rows run highest rank at the top, matching the paper's figures
    ("Process 0 (at the bottom) distributes pairs of submatrices...").
    """
    if viewport is None:
        t_lo, t_hi = diagram.trace.span
        viewport = Viewport.fit(t_lo, t_hi, columns=pixel_width)
    nprocs = diagram.nprocs
    height = MARGIN_TOP * 2 + ROW_HEIGHT * nprocs
    canvas = SvgCanvas(pixel_width + MARGIN_LEFT * 2, height)

    def x_of(t: float) -> float:
        frac = (t - viewport.t0) / viewport.width
        return MARGIN_LEFT + max(0.0, min(1.0, frac)) * pixel_width

    def y_of(proc: int) -> float:
        # top row = highest rank
        row = nprocs - 1 - proc
        return MARGIN_TOP + row * ROW_HEIGHT

    # process labels and baselines
    for p in range(nprocs):
        y = y_of(p)
        canvas.text(4, y + BAR_HEIGHT, f"p{p}")
        canvas.line(
            MARGIN_LEFT, y + ROW_HEIGHT / 2,
            MARGIN_LEFT + pixel_width, y + ROW_HEIGHT / 2,
            stroke="#eeeeee",
        )

    # construct bars
    for bar in diagram.bars:
        if not viewport.overlaps(bar.t0, bar.t1):
            continue
        x0 = x_of(bar.t0)
        x1 = x_of(bar.t1)
        canvas.rect(
            x0,
            y_of(bar.proc) + (ROW_HEIGHT - BAR_HEIGHT) / 2,
            x1 - x0,
            BAR_HEIGHT,
            CATEGORY_COLORS[bar.category],
            title=f"{bar.record.kind.value} {bar.record.location}",
        )

    # message lines: (t_sent, src) -> (t_received, dst)
    for msg in diagram.messages:
        canvas.line(
            x_of(msg.t_sent),
            y_of(msg.src) + ROW_HEIGHT / 2,
            x_of(msg.t_received),
            y_of(msg.dst) + ROW_HEIGHT / 2,
            stroke="#333333",
            title=(
                f"msg {msg.src}->{msg.dst} tag={msg.send.tag} "
                f"sent {msg.send.location} recv {msg.recv.location}"
            ),
        )

    # stopline: the Figure 2 vertical indicator
    if diagram.stopline_time is not None and viewport.contains(diagram.stopline_time):
        x = x_of(diagram.stopline_time)
        canvas.line(x, MARGIN_TOP - 6, x, height - MARGIN_TOP + 6,
                    stroke="#cc0000", width=2.0, title="stopline")

    # frontiers: the Figure 8 slanted polylines
    for frontier, color in (
        (diagram.past_frontier, "#000000"),
        (diagram.future_frontier, "#000000"),
    ):
        if not frontier:
            continue
        points = sorted(frontier.items())
        for (p1, t1), (p2, t2) in zip(points, points[1:]):
            canvas.line(
                x_of(t1), y_of(p1) + ROW_HEIGHT / 2,
                x_of(t2), y_of(p2) + ROW_HEIGHT / 2,
                stroke=color, width=1.5, dash="4,3",
                title="frontier",
            )

    canvas.text(MARGIN_LEFT, height - 4,
                f"t = {viewport.t0:.2f} .. {viewport.t1:.2f}")
    return canvas.to_string()


def save_svg(diagram: TimeSpaceDiagram, path, **kwargs) -> None:
    """Render and write to ``path``."""
    from pathlib import Path

    Path(path).write_text(render_svg(diagram, **kwargs))
