"""Trace-driven debugging of message passing programs.

A from-scratch Python reproduction of Frumkin, Hood & Lopez,
"Trace-Driven Debugging of Message Passing Programs" (IPPS 1998): the
p2d2 debugger's replay / stopline / undo machinery, its three trace
instrumentation methods, the trace / call / communication graph
abstractions, frontier-based causality analysis, and text/SVG analogues
of the NTV and VK trace visualizers -- all running on a deterministic
simulated message-passing substrate (:mod:`repro.mp`).

Package map (see DESIGN.md for the full inventory):

* :mod:`repro.mp` -- the simulated MPI-like runtime (the substrate);
* :mod:`repro.instrument` -- AIMS-style source transform, uinst
  function-entry hooks, PMPI wrapper library, UserMonitor;
* :mod:`repro.trace` -- trace records, markers, trace files, recorder;
* :mod:`repro.graphs` -- trace / call / communication / action graphs;
* :mod:`repro.analysis` -- causality, frontiers, matching anomalies,
  deadlock and race detection;
* :mod:`repro.debugger` -- the p2d2 analog: sessions, breakpoints,
  stoplines, controlled replay, parallel undo, checkpoints;
* :mod:`repro.explore` -- schedule-space exploration: race-driven
  steer + replay fuzzing with clean/divergent/deadlock/crash verdicts;
* :mod:`repro.viz` -- time-space diagrams (ASCII/SVG) and animation;
* :mod:`repro.apps` -- the paper's workloads (Strassen, Fibonacci, LU).

Quickstart::

    from repro import mp
    from repro.debugger import DebugSession

    def hello(comm):
        if comm.rank == 0:
            comm.send("hi", dest=1)
        elif comm.rank == 1:
            return comm.recv(source=0)

    session = DebugSession(hello, nprocs=2)
    session.run()
    print(session.trace().message_pairs())

See README.md for the guided tour and ``examples/`` for complete
scenarios, including the paper's worked Figure 5-7 debugging session.
"""

from . import analysis, apps, debugger, explore, graphs, instrument, mp, trace, viz

__version__ = "1.0.0"

__all__ = [
    "analysis",
    "apps",
    "debugger",
    "explore",
    "graphs",
    "instrument",
    "mp",
    "trace",
    "viz",
    "__version__",
]
