"""The streaming trace pipeline: an event bus with pluggable sinks.

The paper's debugger consumes trace history *during* execution ("flush
trace information on demand", Section 2.1), and the tracer-driver line
of work (Langevine & Ducassé) generalizes that into a trace *flow* that
several dynamic analyses observe simultaneously.  This module is that
seam: instrumentation publishes each :class:`TraceRecord` once to a
:class:`TraceBus`, and any number of sinks -- the in-memory
:class:`~repro.trace.trace.Trace` materializer, a trace file, a bounded
ring buffer, an incremental trace-graph builder, arbitrary analysis
callbacks -- consume it live.

Sinks never see a record the filters dropped (the recorder applies the
Section 3 size-control knobs before publishing), and the bus preserves
publication order, so every sink observes the same history prefix.

Thread-safety matches the recorder's: records are published by the
process thread holding the scheduler token and sinks are read by the
controller thread while no process runs, so no locking is required.
"""

from __future__ import annotations

from collections import deque
from pathlib import Path
from typing import TYPE_CHECKING, Callable, Iterable, Optional, Union

from .events import TraceRecord
from .trace import Trace

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (graphs -> trace)
    from repro.graphs.tracegraph import TraceGraph


class TraceSink:
    """Base class for trace-event consumers attached to a bus.

    Subclasses implement :meth:`emit`; :meth:`flush` and :meth:`close`
    are no-ops by default (only buffering sinks need them).
    """

    def emit(self, record: TraceRecord) -> None:  # pragma: no cover
        raise NotImplementedError

    def flush(self) -> int:
        """Propagate buffered records (returns how many moved)."""
        return 0

    def close(self) -> None:
        """Release resources; the sink must not be emitted to after."""


class TraceBus:
    """Ordered fan-out of trace records to attached sinks.

    A sink attached mid-execution observes only records published after
    attachment; use :meth:`replay_into` to back-fill from another sink's
    history (the recorder does this when a file is attached late).
    """

    def __init__(self) -> None:
        self._sinks: list[TraceSink] = []
        #: total records published (the stream position)
        self.published = 0

    # ------------------------------------------------------------------
    @property
    def sinks(self) -> tuple[TraceSink, ...]:
        return tuple(self._sinks)

    def attach(self, sink: TraceSink) -> TraceSink:
        """Subscribe a sink; returns it for chaining."""
        if sink in self._sinks:
            raise ValueError("sink is already attached")
        self._sinks.append(sink)
        return sink

    def detach(self, sink: TraceSink) -> None:
        try:
            self._sinks.remove(sink)
        except ValueError:
            raise ValueError("sink is not attached") from None

    # ------------------------------------------------------------------
    def publish(self, record: TraceRecord) -> None:
        """Deliver one record to every attached sink, in attach order."""
        self.published += 1
        for sink in self._sinks:
            sink.emit(record)

    def flush(self) -> int:
        return sum(sink.flush() for sink in self._sinks)

    def close(self) -> None:
        for sink in self._sinks:
            sink.close()
        self._sinks.clear()


# ----------------------------------------------------------------------
# concrete sinks
# ----------------------------------------------------------------------
class MemorySink(TraceSink):
    """Materializes the full stream in memory (the classic `Trace`)."""

    def __init__(self) -> None:
        self._records: list[TraceRecord] = []

    def emit(self, record: TraceRecord) -> None:
        self._records.append(record)

    def __len__(self) -> int:
        return len(self._records)

    @property
    def records(self) -> tuple[TraceRecord, ...]:
        return tuple(self._records)

    def iter_records(self) -> Iterable[TraceRecord]:
        return iter(self._records)

    def snapshot(self, nprocs: int) -> Trace:
        return Trace(list(self._records), nprocs)


class RingBufferSink(TraceSink):
    """Keeps only the most recent ``capacity`` records (bounded memory).

    The tail of history is exactly what a live debugger needs for "what
    just happened" displays; older records are counted in ``evicted`` so
    consumers can tell the window is partial.
    """

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._ring: deque[TraceRecord] = deque(maxlen=capacity)
        #: records that fell off the front of the ring
        self.evicted = 0

    def emit(self, record: TraceRecord) -> None:
        if len(self._ring) == self.capacity:
            self.evicted += 1
        self._ring.append(record)

    def __len__(self) -> int:
        return len(self._ring)

    @property
    def records(self) -> tuple[TraceRecord, ...]:
        return tuple(self._ring)

    def snapshot(self, nprocs: int) -> Trace:
        return Trace(list(self._ring), nprocs)


class CallbackSink(TraceSink):
    """Invokes ``fn(record)`` per event -- the analysis-subscriber shim."""

    def __init__(
        self,
        fn: Callable[[TraceRecord], None],
        on_flush: Optional[Callable[[], None]] = None,
        on_close: Optional[Callable[[], None]] = None,
    ) -> None:
        self.fn = fn
        self._on_flush = on_flush
        self._on_close = on_close
        #: events delivered through this sink
        self.delivered = 0

    def emit(self, record: TraceRecord) -> None:
        self.delivered += 1
        self.fn(record)

    def flush(self) -> int:
        if self._on_flush is not None:
            self._on_flush()
        return 0

    def close(self) -> None:
        if self._on_close is not None:
            self._on_close()


class FileSink(TraceSink):
    """Streams records into a trace file (see ``repro.trace.tracefile``).

    Accepts either an existing :class:`TraceFileWriter` /
    :class:`~repro.trace.shard.TraceShardWriter` (borrowed: the caller
    owns closing unless ``own=True``) or a path to create one.
    ``version`` selects the on-disk format when a writer is created
    (None = the current default, binary columnar v3); ``compression``
    selects per-block compression; ``shards`` (a count, or ``"proc"``
    for one shard per rank) creates a sharded store with a manifest at
    the given path instead of a single file.
    """

    def __init__(
        self,
        writer_or_path: "Union[str, Path, object]",
        nprocs: Optional[int] = None,
        auto_flush_every: Optional[int] = None,
        durable: bool = False,
        own: bool = True,
        version: Optional[int] = None,
        compression: "Union[None, bool, str]" = None,
        shards: "Union[None, int, str]" = None,
    ) -> None:
        from .tracefile import FORMAT_VERSION, TraceFileWriter

        if isinstance(writer_or_path, (str, Path)):
            if nprocs is None:
                raise ValueError("nprocs is required when creating a writer")
            if shards is not None:
                from .shard import TraceShardWriter

                if version not in (None, FORMAT_VERSION):
                    raise ValueError(
                        "sharded traces are always written in the current "
                        "format version"
                    )
                if shards == "proc":
                    routing: dict = {"by": "proc"}
                else:
                    routing = {"by": "hash", "shards": shards}
                self.writer = TraceShardWriter(
                    writer_or_path,
                    nprocs,
                    auto_flush_every,
                    durable=durable,
                    compression="auto" if compression is None else compression,
                    **routing,
                )
            else:
                self.writer = TraceFileWriter(
                    writer_or_path,
                    nprocs,
                    auto_flush_every,
                    durable=durable,
                    version=FORMAT_VERSION if version is None else version,
                    compression=compression,
                )
        else:
            self.writer = writer_or_path  # type: ignore[assignment]
        self._own = own

    def emit(self, record: TraceRecord) -> None:
        self.writer.write(record)

    def flush(self) -> int:
        return self.writer.flush()

    @property
    def records_written(self) -> int:
        """Records the underlying writer has committed to disk."""
        return getattr(self.writer, "records_written", 0)

    def close(self) -> None:
        if self._own:
            self.writer.close()


class GraphSink(TraceSink):
    """Folds the stream into a trace graph incrementally (§3.2 "built as
    the execution is running") -- no materialized ``Trace`` needed."""

    def __init__(
        self,
        graph: "Optional[TraceGraph]" = None,
        nprocs: Optional[int] = None,
        arc_limit: Optional[int] = 64,
    ) -> None:
        if graph is None:
            if nprocs is None:
                raise ValueError("nprocs is required when creating a graph")
            from repro.graphs.tracegraph import TraceGraph

            graph = TraceGraph(nprocs, arc_limit)
        self.graph = graph

    def emit(self, record: TraceRecord) -> None:
        self.graph.add_record(record)


def pump(records: Iterable[TraceRecord], *sinks: TraceSink) -> int:
    """Feed an existing record stream through sinks (batch -> streaming
    bridge); returns how many records were delivered."""
    n = 0
    for rec in records:
        for sink in sinks:
            sink.emit(rec)
        n += 1
    for sink in sinks:
        sink.flush()
    return n
