"""Execution markers and marker vectors.

An *execution marker* (paper Section 2) is a tag "that allow[s] mapping
from a particular trace record to the point of its generation": here, the
pair (rank, counter) where the counter is the per-process count of
instrumentation points.  A *marker vector* assigns one counter value per
rank; stoplines, undo targets, and checkpoints are all marker vectors.

Semantics used throughout: a threshold of ``m`` stops the process when
its counter *reaches* ``m``, i.e. **before** the construct whose record
carries marker ``m`` executes its body.  (The marker is generated at the
top of the construct, then the threshold test runs -- exactly the
UserMonitor ordering of Section 2.2.)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Mapping, Optional


@dataclass(frozen=True, order=True)
class ExecutionMarker:
    """A single (rank, counter) execution tag."""

    rank: int
    counter: int

    def __str__(self) -> str:
        return f"p{self.rank}@{self.counter}"


class MarkerVector:
    """One counter per rank; the debugger's cross-process stop target.

    Ranks without an entry are unconstrained (they run to completion
    during a replay toward this vector).
    """

    def __init__(self, thresholds: Optional[Mapping[int, int]] = None) -> None:
        self._thresholds: dict[int, int] = dict(thresholds or {})
        for rank, counter in self._thresholds.items():
            if counter < 0:
                raise ValueError(
                    f"marker counter must be >= 0 (rank {rank} got {counter})"
                )

    # ------------------------------------------------------------------
    @classmethod
    def from_markers(cls, markers: Iterable[ExecutionMarker]) -> "MarkerVector":
        return cls({m.rank: m.counter for m in markers})

    def markers(self) -> Iterator[ExecutionMarker]:
        for rank in sorted(self._thresholds):
            yield ExecutionMarker(rank, self._thresholds[rank])

    # ------------------------------------------------------------------
    def __getitem__(self, rank: int) -> int:
        return self._thresholds[rank]

    def get(self, rank: int, default: Optional[int] = None) -> Optional[int]:
        return self._thresholds.get(rank, default)

    def __contains__(self, rank: int) -> bool:
        return rank in self._thresholds

    def __len__(self) -> int:
        return len(self._thresholds)

    def __iter__(self) -> Iterator[int]:
        return iter(sorted(self._thresholds))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, MarkerVector):
            return NotImplemented
        return self._thresholds == other._thresholds

    def __hash__(self) -> int:
        return hash(frozenset(self._thresholds.items()))

    def __repr__(self) -> str:
        inner = ", ".join(f"{r}:{c}" for r, c in sorted(self._thresholds.items()))
        return f"MarkerVector({{{inner}}})"

    # ------------------------------------------------------------------
    def as_dict(self) -> dict[int, int]:
        """Copy as a plain rank->counter dict (runtime threshold form)."""
        return dict(self._thresholds)

    def dominates(self, other: "MarkerVector") -> bool:
        """True if this vector is componentwise >= ``other`` on the
        ranks both constrain (checkpoint usability test: a checkpoint at
        ``other`` can fast-forward a replay targeting ``self``)."""
        for rank in other:
            mine = self.get(rank)
            if mine is not None and mine < other[rank]:
                return False
        return True

    def merged_min(self, other: "MarkerVector") -> "MarkerVector":
        """Componentwise minimum over the union of constrained ranks."""
        out: dict[int, int] = dict(self._thresholds)
        for rank in other:
            val = other[rank]
            out[rank] = min(out[rank], val) if rank in out else val
        return MarkerVector(out)
