"""Trace files: persistent, line-oriented execution histories.

The AIMS toolkit wrote binary trace files for post-mortem analysis; the
paper had to add "a monitor function that flushes trace information on
demand" so p2d2 could read history *during* execution (Section 2.1).
This module reproduces that shape:

* :class:`TraceFileWriter` appends JSON-lines records with explicit
  :meth:`flush` (the on-demand flush) and an optional auto-flush
  threshold;
* :class:`TraceFileReader` reads whole files, streams records, or
  rescans a time window / process subset without loading everything --
  the access pattern the trace-graph zoom reconstruction needs.

Format: a header line ``{"format": ..., "version": ..., "nprocs": ...}``
followed by one record per line (see ``TraceRecord.to_jsonable``).
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Callable, Iterator, Optional, Union

from .events import TraceRecord
from .trace import Trace

FORMAT_NAME = "repro-trace"
FORMAT_VERSION = 1


class TraceFileError(Exception):
    """Malformed or mismatched trace file."""


class TraceFileWriter:
    """Appends trace records to a file, flushing on demand.

    Parameters
    ----------
    path:
        Destination file (created/truncated).
    nprocs:
        Communicator size recorded in the header.
    auto_flush_every:
        Flush after this many buffered records (None = only explicit
        flushes and close).
    """

    def __init__(
        self,
        path: Union[str, Path],
        nprocs: int,
        auto_flush_every: Optional[int] = None,
    ) -> None:
        self.path = Path(path)
        self.nprocs = nprocs
        self.auto_flush_every = auto_flush_every
        self._buffer: list[str] = []
        self._written = 0
        self._closed = False
        header = json.dumps(
            {"format": FORMAT_NAME, "version": FORMAT_VERSION, "nprocs": nprocs}
        )
        self.path.write_text(header + "\n")

    # ------------------------------------------------------------------
    def write(self, record: TraceRecord) -> None:
        """Buffer one record (written at the next flush)."""
        if self._closed:
            raise TraceFileError(f"writer for {self.path} is closed")
        self._buffer.append(json.dumps(record.to_jsonable()))
        if (
            self.auto_flush_every is not None
            and len(self._buffer) >= self.auto_flush_every
        ):
            self.flush()

    def flush(self) -> int:
        """Write buffered records to disk; returns how many were written.

        This is the "flush trace information on demand" hook the paper
        added to the AIMS monitor so the debugger could consume history
        mid-execution.
        """
        if not self._buffer:
            return 0
        with self.path.open("a") as fh:
            fh.write("\n".join(self._buffer) + "\n")
            fh.flush()
            os.fsync(fh.fileno())
        n = len(self._buffer)
        self._written += n
        self._buffer.clear()
        return n

    def close(self) -> None:
        self.flush()
        self._closed = True

    @property
    def records_written(self) -> int:
        return self._written

    def __enter__(self) -> "TraceFileWriter":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


class TraceFileReader:
    """Reads trace files written by :class:`TraceFileWriter`."""

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        with self.path.open() as fh:
            header_line = fh.readline()
        try:
            header = json.loads(header_line)
        except json.JSONDecodeError as exc:
            raise TraceFileError(f"{self.path}: bad header: {exc}") from exc
        if header.get("format") != FORMAT_NAME:
            raise TraceFileError(
                f"{self.path}: not a {FORMAT_NAME} file (got {header.get('format')!r})"
            )
        if header.get("version") != FORMAT_VERSION:
            raise TraceFileError(
                f"{self.path}: unsupported version {header.get('version')!r}"
            )
        self.nprocs: int = header["nprocs"]
        #: malformed lines skipped by the last tolerant read
        self.skipped_lines = 0

    # ------------------------------------------------------------------
    def iter_records(
        self,
        where: Optional[Callable[[TraceRecord], bool]] = None,
        tolerant: bool = False,
    ) -> Iterator[TraceRecord]:
        """Stream records, optionally filtered, without loading the file.

        ``tolerant`` skips malformed lines instead of raising -- the
        right mode for a trace file whose final line was cut off by a
        crash of the traced program (the post-mortem case of §4.1 is
        exactly when that happens).  Skipped lines are counted in
        :attr:`skipped_lines`.
        """
        self.skipped_lines = 0
        with self.path.open() as fh:
            fh.readline()  # header
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    rec = TraceRecord.from_jsonable(json.loads(line))
                except (json.JSONDecodeError, KeyError, ValueError) as exc:
                    if tolerant:
                        self.skipped_lines += 1
                        continue
                    raise TraceFileError(
                        f"{self.path}: malformed record line: {exc}"
                    ) from exc
                if where is None or where(rec):
                    yield rec

    def read(self, tolerant: bool = False) -> Trace:
        """Load the whole file into a :class:`Trace`."""
        return Trace(list(self.iter_records(tolerant=tolerant)), self.nprocs)

    def rescan_window(
        self,
        t_lo: float,
        t_hi: float,
        procs: Optional[set[int]] = None,
    ) -> list[TraceRecord]:
        """Records overlapping [t_lo, t_hi] (optionally only some procs).

        The paper (Section 4.3): "If the user wants to zoom in on a
        particular event, the required arcs are reconstructed by
        rescanning the appropriate portion of the trace file."
        """
        return list(
            self.iter_records(
                lambda r: r.t1 >= t_lo
                and r.t0 <= t_hi
                and (procs is None or r.proc in procs)
            )
        )


def save_trace(trace: Trace, path: Union[str, Path]) -> None:
    """Write an in-memory trace to a file in one shot."""
    with TraceFileWriter(path, trace.nprocs) as writer:
        for rec in trace:
            writer.write(rec)


def load_trace(path: Union[str, Path]) -> Trace:
    """Read a trace file into memory."""
    return TraceFileReader(path).read()
