"""Trace files: persistent execution histories (JSON-lines and binary).

The AIMS toolkit wrote binary trace files for post-mortem analysis; the
paper had to add "a monitor function that flushes trace information on
demand" so p2d2 could read history *during* execution (Section 2.1).
This module reproduces that shape:

* :class:`TraceFileWriter` appends trace records with explicit
  :meth:`flush` (the on-demand flush) and an optional auto-flush
  threshold;
* :class:`TraceFileReader` reads whole files, streams records, loads
  whole columns, or seeks straight to a time window / process subset
  without scanning everything -- the access pattern the trace-graph
  zoom reconstruction (Section 4.3 "rescanning the appropriate portion
  of the trace file") and the VK animated window need.

Format v1: a header line ``{"format": ..., "version": 1, "nprocs": ...}``
followed by one JSON record per line (see ``TraceRecord.to_jsonable``).

Format v2 adds an *index footer* as the final line when the writer is
closed cleanly: ``{"__trace_index__": {"blocks": [...], ...}}``.  Each
block entry is ``[offset, nbytes, count, t_min, t_max, procs]``
describing a contiguous byte range of record lines, so
:meth:`TraceFileReader.seek_window` reads only the blocks overlapping
the requested window instead of the whole file.

Format v3 (current) keeps the JSON header line and the JSON index
footer but stores the records themselves as binary *columnar* blocks
(see :mod:`repro.trace.columnar`): fixed-width little-endian columns
decoded as zero-copy numpy views of an ``mmap``, plus one interned JSON
side table per block for variable-length payloads.  The footer's block
entries grow a seventh element recording the segment encoding
(``"columnar"``); v2 footers are unchanged byte-for-byte.  On top of
the columnar decode the reader offers :meth:`TraceFileReader.read_columns`
(bulk column ingest for ``HistoryIndex``/graph/viz consumers) and a
parallel block loader (``concurrent.futures`` over index-selected
blocks with an ordered merge) engaged automatically by
:meth:`~TraceFileReader.read_all` and
:meth:`~TraceFileReader.seek_window` when enough blocks are selected.

Compatibility: v1 files, v2 files, and *footerless* files of either
(writer crashed before close) keep working through the linear path; v3
files are self-delimiting, so a footerless v3 file is walked block by
block.  ``python -m repro.trace.tracefile`` offers ``info``,
``convert`` (v1/v2 <-> v3) and ``reindex`` (rebuild a missing footer
in place, recovering crashed-writer files from the slow path).
"""

from __future__ import annotations

import argparse
import json
import math
import mmap
import os
import sys
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Iterator, Optional, Sequence, Union

import numpy as np

from .columnar import (
    ColumnBlock,
    ColumnDecodeError,
    decode_block,
    encode_block,
    encode_columns,
    kind_table_from_values,
)
from .compression import (
    CODECS,
    CODECS_BY_CODE,
    CODECS_BY_ENCODING,
    COMPRESSED_HEADER,
    COMPRESSED_MAGIC,
    KNOWN_ENCODINGS,
    Codec,
    compress_frame,
    decompress_frame,
    is_compressed_at,
    resolve_codec,
)
from .events import EventKind, TraceRecord
from .trace import Trace

FORMAT_NAME = "repro-trace"
#: header format tag of a shard manifest (see :mod:`repro.trace.shard`)
MANIFEST_FORMAT_NAME = "repro-trace-manifest"
FORMAT_VERSION = 3
#: versions this reader understands
SUPPORTED_VERSIONS = frozenset({1, 2, 3})
#: key marking the index footer line (v2 and v3)
INDEX_KEY = "__trace_index__"
#: records per index block (granularity of seek_window byte ranges; in
#: v3 also the records-per-columnar-block encoding granularity)
DEFAULT_INDEX_BLOCK = 512
#: minimum index-selected blocks before the parallel loader engages
PARALLEL_BLOCK_THRESHOLD = 4
#: cap on parallel decode workers
MAX_PARALLEL_WORKERS = 8


class TraceFileError(Exception):
    """Malformed or mismatched trace file."""


@dataclass(frozen=True)
class IndexBlock:
    """One contiguous run of records summarized in the footer.

    ``encoding`` records how the byte range is encoded: ``"jsonl"``
    (v1/v2 record lines), ``"columnar"`` (a raw v3 binary block), or
    ``"columnar+<codec>"`` (a v3 block compressed per-block, e.g.
    ``"columnar+zstd"`` / ``"columnar+zlib"``).  For compressed blocks
    ``raw_nbytes`` additionally records the decompressed block size --
    the observability hook behind the CLI's compression-ratio report.
    """

    offset: int
    nbytes: int
    count: int
    t_min: float
    t_max: float
    procs: frozenset[int]
    encoding: str = "jsonl"
    raw_nbytes: Optional[int] = None

    def overlaps(
        self, t_lo: float, t_hi: float, procs: Optional[set[int]]
    ) -> bool:
        if t_lo > t_hi:
            return False  # empty window overlaps nothing
        if procs is not None and not procs:
            return False  # empty proc filter selects nothing
        if self.t_max < t_lo or self.t_min > t_hi:
            return False
        return procs is None or bool(self.procs & procs)

    def to_jsonable(self) -> list:
        out = [
            self.offset,
            self.nbytes,
            self.count,
            self.t_min,
            self.t_max,
            sorted(self.procs),
        ]
        if self.encoding != "jsonl":
            out.append(self.encoding)
            if self.raw_nbytes is not None:
                out.append(self.raw_nbytes)
        return out

    @classmethod
    def from_jsonable(cls, data: list) -> "IndexBlock":
        off, nbytes, count, t_min, t_max, procs, *rest = data
        encoding = rest[0] if rest else "jsonl"
        raw_nbytes = rest[1] if len(rest) > 1 else None
        return cls(
            off, nbytes, count, t_min, t_max, frozenset(procs), encoding,
            raw_nbytes,
        )


@dataclass(frozen=True)
class BlockRef:
    """A pointer to one on-disk block: ``(shard id or None, entry)``.

    The unit the out-of-core index pages on; hashable so it can key a
    block cache."""

    shard: Optional[int]
    entry: IndexBlock


@dataclass(frozen=True)
class TraceIndex:
    """The footer: per-block byte offsets + whole-file aggregates."""

    blocks: tuple[IndexBlock, ...]
    records: int
    t_min: float
    t_max: float

    def select(
        self,
        t_lo: float,
        t_hi: float,
        procs: Optional[set[int]] = None,
    ) -> list[IndexBlock]:
        """Blocks that may hold records overlapping the window."""
        return [b for b in self.blocks if b.overlaps(t_lo, t_hi, procs)]

    def to_jsonable(self) -> dict:
        return {
            INDEX_KEY: {
                "blocks": [b.to_jsonable() for b in self.blocks],
                "records": self.records,
                "span": [self.t_min, self.t_max],
            }
        }

    @classmethod
    def from_jsonable(cls, data: dict) -> "TraceIndex":
        body = data[INDEX_KEY]
        blocks = tuple(IndexBlock.from_jsonable(b) for b in body["blocks"])
        span = body.get("span", [0.0, 0.0])
        return cls(blocks, body.get("records", 0), span[0], span[1])


class TraceFileWriter:
    """Appends trace records to a file, flushing on demand.

    The writer holds one persistent append handle for its lifetime (no
    per-flush reopen); :meth:`flush` pushes buffered records through the
    OS so a concurrent reader sees them.  ``durable=True`` additionally
    ``fsync``\\ s on every flush -- crash-durability at a heavy cost, off
    by default since the on-demand-flush semantics only require reader
    visibility.

    For v3 (the default) records are buffered as objects and encoded
    into columnar blocks of up to ``index_block`` records at each
    flush; each flushed block becomes one index-footer entry.  For
    v1/v2 each record is encoded to a JSON line at :meth:`write` time,
    exactly as before.

    Parameters
    ----------
    path:
        Destination file (created/truncated).
    nprocs:
        Communicator size recorded in the header.
    auto_flush_every:
        Flush after this many buffered records (None = only explicit
        flushes and close).
    durable:
        fsync on every flush (opt-in).
    version:
        On-disk format version; 3 (default) writes binary columnar
        blocks, 2 writes indexed JSON-lines, 1 reproduces the legacy
        footer-less layout.
    index_block:
        Records per index block (v2/v3).
    compression:
        Per-block compression for v3 bodies: ``None``/``"none"`` (the
        default -- bytes identical to pre-compression writers),
        ``"auto"`` (zstd when available, else zlib), or an explicit
        codec name (``"zstd"``/``"zlib"``; raises when unavailable).
        Readers pick the codec per block from the on-disk frame, so
        compressed and raw blocks coexist in one file.
    """

    def __init__(
        self,
        path: Union[str, Path],
        nprocs: int,
        auto_flush_every: Optional[int] = None,
        *,
        durable: bool = False,
        version: int = FORMAT_VERSION,
        index_block: int = DEFAULT_INDEX_BLOCK,
        compression: Union[None, bool, str, Codec] = None,
    ) -> None:
        if version not in SUPPORTED_VERSIONS:
            raise TraceFileError(f"cannot write format version {version!r}")
        if index_block < 1:
            raise ValueError(f"index_block must be >= 1, got {index_block}")
        try:
            self._codec = resolve_codec(compression)
        except LookupError as exc:
            raise TraceFileError(str(exc)) from None
        if self._codec is not None and version < 3:
            raise TraceFileError(
                f"compression requires format v3 blocks, not v{version}"
            )
        self.path = Path(path)
        self.nprocs = nprocs
        self.auto_flush_every = auto_flush_every
        self.durable = durable
        self.version = version
        self.index_block = index_block
        #: v1/v2: buffered (line, t0, t1, proc) tuples awaiting flush
        self._buffer: list[tuple[str, float, float, int]] = []
        #: v3: buffered records awaiting block encoding at flush
        self._record_buffer: list[TraceRecord] = []
        #: v1/v2: per-record (offset, nbytes, t0, t1, proc) for the footer
        self._meta: list[tuple[int, int, float, float, int]] = []
        #: v3: per-block footer entries, built as blocks are flushed
        self._blocks: list[IndexBlock] = []
        self._written = 0
        self._closed = False
        self._binary = version >= 3
        self._fh = self.path.open("wb" if self._binary else "w")
        header_obj: dict = {
            "format": FORMAT_NAME,
            "version": version,
            "nprocs": nprocs,
        }
        if version >= 3:
            # the file's own kind table: block kind codes index into it,
            # so files survive future EventKind reordering
            header_obj["kinds"] = [k.value for k in EventKind]
        header = json.dumps(header_obj)
        if self._binary:
            self._fh.write(header.encode("ascii") + b"\n")
        else:
            self._fh.write(header + "\n")
        self._fh.flush()
        self._offset = self._fh.tell()

    # ------------------------------------------------------------------
    def write(self, record: TraceRecord) -> None:
        """Buffer one record (written at the next flush)."""
        if self._closed:
            raise TraceFileError(f"writer for {self.path} is closed")
        if self.version >= 3:
            self._record_buffer.append(record)
            pending = len(self._record_buffer)
        else:
            self._buffer.append(
                (
                    json.dumps(record.to_jsonable()),
                    record.t0,
                    record.t1,
                    record.proc,
                )
            )
            pending = len(self._buffer)
        if (
            self.auto_flush_every is not None
            and pending >= self.auto_flush_every
        ):
            self.flush()

    def flush(self) -> int:
        """Write buffered records to disk; returns how many were written.

        This is the "flush trace information on demand" hook the paper
        added to the AIMS monitor so the debugger could consume history
        mid-execution.
        """
        if self.version >= 3:
            return self._flush_v3()
        if not self._buffer:
            return 0
        for line, t0, t1, proc in self._buffer:
            nbytes = self._fh.write(line + "\n")
            self._meta.append((self._offset, nbytes, t0, t1, proc))
            self._offset += nbytes
        self._fh.flush()
        if self.durable:
            os.fsync(self._fh.fileno())
        n = len(self._buffer)
        self._written += n
        self._buffer.clear()
        return n

    def _append_block(
        self,
        raw: bytes,
        count: int,
        t_min: float,
        t_max: float,
        procs: frozenset[int],
    ) -> None:
        """Write one encoded raw block (compressing when configured)
        and record its footer entry."""
        if self._codec is not None:
            data = compress_frame(raw, self._codec)
            encoding = self._codec.encoding
            raw_nbytes: Optional[int] = len(raw)
        else:
            data = raw
            encoding = "columnar"
            raw_nbytes = None
        offset = self._offset
        self._fh.write(data)
        self._offset += len(data)
        self._blocks.append(
            IndexBlock(
                offset=offset,
                nbytes=len(data),
                count=count,
                t_min=t_min,
                t_max=t_max,
                procs=procs,
                encoding=encoding,
                raw_nbytes=raw_nbytes,
            )
        )

    def _flush_v3(self) -> int:
        """Encode buffered records into columnar blocks and write them.

        Each flush emits whole blocks of up to ``index_block`` records,
        so a concurrent reader always sees complete, decodable blocks.
        On an encoding error mid-flush the already-written chunks stay
        accounted (and indexed); unwritten records stay buffered.
        """
        buf = self._record_buffer
        if not buf:
            return 0
        flushed = 0
        try:
            for start in range(0, len(buf), self.index_block):
                chunk = buf[start : start + self.index_block]
                self._append_block(
                    encode_block(chunk),
                    count=len(chunk),
                    t_min=min(r.t0 for r in chunk),
                    t_max=max(r.t1 for r in chunk),
                    procs=frozenset(r.proc for r in chunk),
                )
                flushed += len(chunk)
        finally:
            if flushed:
                del buf[:flushed]
                self._written += flushed
            self._fh.flush()
            if self.durable:
                os.fsync(self._fh.fileno())
        return flushed

    def write_columns(self, block: ColumnBlock) -> int:
        """Bulk-append a decoded/synthesized :class:`ColumnBlock`.

        The write-side twin of :meth:`TraceFileReader.read_columns`:
        rows go to disk in ``index_block``-sized blocks encoded
        directly from the column arrays (no record materialization),
        which is what makes writing 10M+-event traces tractable.  Any
        buffered per-record writes are flushed first so on-disk order
        matches emit order.  Record ``index`` values are written as
        carried by the block (bulk sources are expected to supply the
        global recording order).  Returns the number of records
        written; v1/v2 writers bridge through the record path.
        """
        if self._closed:
            raise TraceFileError(f"writer for {self.path} is closed")
        n = len(block)
        if n == 0:
            return 0
        if self.version < 3:
            for rec in block.to_records():
                self.write(rec)
            return n
        self.flush()
        t0s = block.columns["t0"]
        t1s = block.columns["t1"]
        procs_col = block.columns["proc"]
        try:
            for start in range(0, n, self.index_block):
                stop = min(start + self.index_block, n)
                chunk = block.slice(start, stop)
                self._append_block(
                    encode_columns(chunk),
                    count=stop - start,
                    t_min=float(t0s[start:stop].min()),
                    t_max=float(t1s[start:stop].max()),
                    procs=frozenset(
                        np.unique(procs_col[start:stop]).tolist()
                    ),
                )
                self._written += stop - start
        finally:
            self._fh.flush()
            if self.durable:
                os.fsync(self._fh.fileno())
        return n

    # ------------------------------------------------------------------
    def _build_index(self) -> TraceIndex:
        if self.version >= 3:
            blocks = tuple(self._blocks)
            t_min = min((b.t_min for b in blocks), default=0.0)
            t_max = max((b.t_max for b in blocks), default=0.0)
            return TraceIndex(blocks, self._written, t_min, t_max)
        blocks_v2: list[IndexBlock] = []
        for start in range(0, len(self._meta), self.index_block):
            chunk = self._meta[start : start + self.index_block]
            offset = chunk[0][0]
            nbytes = sum(m[1] for m in chunk)
            blocks_v2.append(
                IndexBlock(
                    offset=offset,
                    nbytes=nbytes,
                    count=len(chunk),
                    t_min=min(m[2] for m in chunk),
                    t_max=max(m[3] for m in chunk),
                    procs=frozenset(m[4] for m in chunk),
                )
            )
        t_min = min((m[2] for m in self._meta), default=0.0)
        t_max = max((m[3] for m in self._meta), default=0.0)
        return TraceIndex(tuple(blocks_v2), len(self._meta), t_min, t_max)

    def _write_footer(self) -> None:
        payload = json.dumps(self._build_index().to_jsonable())
        if self._binary:
            # the leading newline separates the footer line from the
            # final binary block, whatever bytes it ends with
            self._fh.write(b"\n" + payload.encode("ascii") + b"\n")
        else:
            self._fh.write(payload + "\n")
        self._fh.flush()
        if self.durable:
            os.fsync(self._fh.fileno())

    def close(self) -> None:
        """Flush and finalize.  The index footer is written even when
        the final flush fails (it then covers the records actually on
        disk), so a file closed through an exception -- e.g. a ``with``
        body that raised -- never loses its index."""
        if self._closed:
            return
        try:
            self.flush()
        finally:
            try:
                if self.version >= 2:
                    self._write_footer()
            finally:
                self._fh.close()
                self._closed = True

    @property
    def records_written(self) -> int:
        return self._written

    def __enter__(self) -> "TraceFileWriter":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


class TraceFileReader:
    """Reads trace files written by :class:`TraceFileWriter`.

    Attributes
    ----------
    skipped_lines:
        Malformed lines (v1/v2) or damaged/truncated block regions (v3)
        skipped by tolerant reads, *cumulative* across every read this
        reader performed (a rising count across polls of a live file
        means flushes are getting truncated).
    last_skipped_lines:
        Damage skipped by the most recent read only.
    bytes_read:
        Record bytes this reader pulled off disk, cumulative -- the
        observable that indexed seeks beat linear scans.
    index:
        The footer index, or None (v1 file, or v2/v3 not closed
        cleanly) -- in which case every access uses the linear path.
    """

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        with self.path.open("rb") as fh:
            header_line = fh.readline()
            self._data_offset = fh.tell()
        try:
            header = json.loads(header_line.decode("utf-8"))
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise TraceFileError(f"{self.path}: bad header: {exc}") from exc
        self.skipped_lines = 0
        self.last_skipped_lines = 0
        self.bytes_read = 0
        #: sharded fan-out state when ``path`` is a shard manifest
        self._shards = None
        if isinstance(header, dict) and header.get("format") == (
            MANIFEST_FORMAT_NAME
        ):
            # manifest-aware mode: this "file" is a shard manifest; all
            # record access fans out across the shard files (opened
            # lazily) with an ordered merge on the global record index.
            from .shard import ShardSet

            self._shards = ShardSet(self.path, header)
            self.version = FORMAT_VERSION
            self.nprocs = self._shards.manifest.nprocs
            self._kind_table = kind_table_from_values(
                self._shards.manifest.kinds
            )
            self.index = None
            return
        if not isinstance(header, dict) or header.get("format") != FORMAT_NAME:
            got = header.get("format") if isinstance(header, dict) else header
            raise TraceFileError(
                f"{self.path}: not a {FORMAT_NAME} file (got {got!r})"
            )
        if header.get("version") not in SUPPORTED_VERSIONS:
            raise TraceFileError(
                f"{self.path}: unsupported version {header.get('version')!r}"
            )
        self.version: int = header["version"]
        self.nprocs: int = header["nprocs"]
        self._kind_table = kind_table_from_values(header.get("kinds"))
        self.index: Optional[TraceIndex] = (
            self._load_index() if self.version >= 2 else None
        )

    @property
    def sharded(self) -> bool:
        """Whether this reader fronts a shard manifest."""
        return self._shards is not None

    @property
    def manifest(self):
        """The :class:`~repro.trace.shard.ShardManifest`, or None."""
        return self._shards.manifest if self._shards is not None else None

    @property
    def shards_opened(self) -> int:
        """How many shard files this reader has actually opened -- the
        observable behind the fan-out short-circuit guarantees (a
        window that excludes a shard must not open it)."""
        return self._shards.opened if self._shards is not None else 0

    def _sync_shard_counters(self) -> None:
        self.bytes_read = self._shards.bytes_read
        self.skipped_lines = self._shards.skipped_lines
        self.last_skipped_lines = self._shards.last_skipped_lines

    # ------------------------------------------------------------------
    # index loading
    # ------------------------------------------------------------------
    def _read_last_line(self) -> Optional[bytes]:
        """The final newline-terminated line, without scanning the file."""
        with self.path.open("rb") as fh:
            fh.seek(0, os.SEEK_END)
            size = fh.tell()
            if size <= self._data_offset:
                return None
            chunk = 4096
            while True:
                span = min(size, chunk)
                fh.seek(size - span)
                tail = fh.read(span)
                body = tail[:-1] if tail.endswith(b"\n") else tail
                nl = body.rfind(b"\n")
                if nl != -1:
                    return body[nl + 1 :]
                if span == size:
                    return body  # single-line body
                chunk *= 2

    def _load_index(self) -> Optional[TraceIndex]:
        last = self._read_last_line()
        if not last or not last.lstrip().startswith(b'{"' + INDEX_KEY.encode()):
            return None
        try:
            data = json.loads(last)
        except json.JSONDecodeError:
            return None
        if not isinstance(data, dict) or INDEX_KEY not in data:
            return None
        try:
            return TraceIndex.from_jsonable(data)
        except (KeyError, IndexError, TypeError, ValueError):
            return None

    @property
    def has_index(self) -> bool:
        return self.index is not None or self._shards is not None

    def span(self) -> tuple[float, float]:
        """(earliest t0, latest t1); indexed files answer without a scan."""
        if self._shards is not None:
            return self._shards.manifest.span
        if self.index is not None:
            return (self.index.t_min, self.index.t_max)
        t_min, t_max, seen = 0.0, 0.0, False
        for rec in self.iter_records(tolerant=True):
            if not seen:
                t_min, t_max, seen = rec.t0, rec.t1, True
            else:
                t_min = min(t_min, rec.t0)
                t_max = max(t_max, rec.t1)
        return (t_min, t_max)

    # ------------------------------------------------------------------
    # v3 block access
    # ------------------------------------------------------------------
    def _map(self) -> Union[bytes, mmap.mmap]:
        """A read-only mapping of the whole file.

        Never explicitly closed: decoded columns are zero-copy views of
        the mapping, which is released by refcounting once the last
        view (or block) is dropped.
        """
        with self.path.open("rb") as fh:
            if os.fstat(fh.fileno()).st_size == 0:
                return b""
            return mmap.mmap(fh.fileno(), 0, access=mmap.ACCESS_READ)

    def _damage(self, tolerant: bool, why: str) -> None:
        if not tolerant:
            raise TraceFileError(f"{self.path}: malformed record data: {why}")
        self.skipped_lines += 1
        self.last_skipped_lines += 1

    def _iter_v3_blocks(
        self, tolerant: bool
    ) -> Iterator[tuple[int, int, ColumnBlock]]:
        """Walk the file's columnar blocks linearly, yielding
        ``(offset, nbytes, block)``.  The footer line is skipped; any
        other undecodable region stops the walk (counted as damage when
        tolerant, raised otherwise) -- the crashed-writer / torn-flush
        path."""
        buf = self._map()
        size = len(buf)
        offset = self._data_offset
        footer_prefix = b'{"' + INDEX_KEY.encode()
        while offset < size:
            if buf[offset : offset + 1] == b"\n":
                end = buf.find(b"\n", offset + 1)
                stop = size if end == -1 else end
                line = bytes(buf[offset + 1 : stop])
                if line.lstrip().startswith(footer_prefix):
                    # the linear walk does read these bytes; count them
                    self.bytes_read += stop + 1 - offset
                    offset = stop + 1
                    continue
                self._damage(tolerant, "unexpected text between blocks")
                return
            try:
                if is_compressed_at(buf, offset):
                    raw, frame_nbytes, _ = decompress_frame(buf, offset)
                    block, _ = decode_block(raw, 0, self._kind_table)
                    nxt = offset + frame_nbytes
                else:
                    block, nxt = decode_block(buf, offset, self._kind_table)
            except ColumnDecodeError as exc:
                self._damage(tolerant, str(exc))
                return
            self.bytes_read += nxt - offset
            yield offset, nxt - offset, block
            offset = nxt

    def _use_parallel(self, n_blocks: int, parallel: Optional[bool]) -> bool:
        if parallel is False or n_blocks < 2:
            return False
        if parallel is True:
            return True
        return (
            n_blocks >= PARALLEL_BLOCK_THRESHOLD
            and (os.cpu_count() or 1) > 1
        )

    def _decode_index_blocks(
        self,
        entries: Sequence[IndexBlock],
        parallel: Optional[bool] = None,
    ) -> list[ColumnBlock]:
        """Decode footer-selected blocks, in file order.

        With enough blocks the decode fans out over a thread pool (the
        parallel block loader); ``executor.map`` preserves submission
        order, so the merge is simply the ordered result list.
        """
        if not entries:
            return []
        buf = self._map()
        kind_table = self._kind_table
        self.bytes_read += sum(b.nbytes for b in entries)

        def job(entry: IndexBlock) -> ColumnBlock:
            if entry.encoding not in KNOWN_ENCODINGS:
                raise TraceFileError(
                    f"{self.path}: block at offset {entry.offset} has "
                    f"unknown encoding {entry.encoding!r}; this file was "
                    "written by a newer version of the format"
                )
            try:
                if entry.encoding in CODECS_BY_ENCODING or is_compressed_at(
                    buf, entry.offset
                ):
                    raw, _, _ = decompress_frame(buf, entry.offset)
                    return decode_block(raw, 0, kind_table)[0]
                return decode_block(buf, entry.offset, kind_table)[0]
            except ColumnDecodeError as exc:
                raise TraceFileError(
                    f"{self.path}: malformed record data in indexed block "
                    f"at offset {entry.offset}: {exc}"
                ) from exc

        if self._use_parallel(len(entries), parallel):
            workers = min(
                MAX_PARALLEL_WORKERS, os.cpu_count() or 1, len(entries)
            )
            with ThreadPoolExecutor(max_workers=workers) as pool:
                return list(pool.map(job, entries))
        return [job(e) for e in entries]

    # ------------------------------------------------------------------
    # block-granular access (the out-of-core paging substrate)
    # ------------------------------------------------------------------
    def block_entries(self) -> list["BlockRef"]:
        """Every indexed block, in global record order, as
        ``(shard, entry)`` references.

        The planning substrate for :class:`~repro.analysis.paged.
        OutOfCoreIndex`: block metadata (span, procs, count) without
        touching any record bytes.  Single files list ``shard=None``;
        manifests list each shard's footer entries.  Requires an index
        (raises for footerless files -- run ``reindex`` first).
        """
        if self._shards is not None:
            return self._shards.block_entries()
        if self.index is None:
            raise TraceFileError(
                f"{self.path}: block-granular access needs an index "
                "footer; run `python -m repro.trace.tracefile reindex` "
                "to rebuild it"
            )
        if self.version < 3:
            raise TraceFileError(
                f"{self.path}: block-granular paging requires format v3; "
                "convert the file first"
            )
        return [BlockRef(None, entry) for entry in self.index.blocks]

    def load_block(self, ref: "BlockRef") -> ColumnBlock:
        """Decode the single block ``ref`` points at (paging in one
        block's columns, nothing else)."""
        if self._shards is not None:
            block = self._shards.load_block(ref)
            self._sync_shard_counters()
            return block
        return self._decode_index_blocks([ref.entry], parallel=False)[0]

    # ------------------------------------------------------------------
    # linear streaming
    # ------------------------------------------------------------------
    def _parse_line(self, line: str, tolerant: bool) -> Optional[TraceRecord]:
        """One line -> record; None for footers and tolerated damage."""
        try:
            data = json.loads(line)
        except json.JSONDecodeError as exc:
            if tolerant:
                self.skipped_lines += 1
                self.last_skipped_lines += 1
                return None
            raise TraceFileError(
                f"{self.path}: malformed record line: {exc}"
            ) from exc
        if isinstance(data, dict) and INDEX_KEY in data:
            return None  # the footer is not a record
        try:
            return TraceRecord.from_jsonable(data)
        except (KeyError, ValueError, TypeError) as exc:
            if tolerant:
                self.skipped_lines += 1
                self.last_skipped_lines += 1
                return None
            raise TraceFileError(
                f"{self.path}: malformed record line: {exc}"
            ) from exc

    def iter_records(
        self,
        where: Optional[Callable[[TraceRecord], bool]] = None,
        tolerant: bool = False,
    ) -> Iterator[TraceRecord]:
        """Stream records, optionally filtered, without loading the file.

        ``tolerant`` skips malformed lines/blocks instead of raising --
        the right mode for a trace file whose tail was cut off by a
        crash of the traced program (the post-mortem case of §4.1 is
        exactly when that happens).  Skipped damage accumulates in
        :attr:`skipped_lines`; :attr:`last_skipped_lines` holds this
        read's count alone.
        """
        self.last_skipped_lines = 0
        if self._shards is not None:
            yield from self._shards.iter_records(where, tolerant)
            self._sync_shard_counters()
            return
        if self.version >= 3:
            for _, _, block in self._iter_v3_blocks(tolerant):
                for rec in block.to_records():
                    if where is None or where(rec):
                        yield rec
            return
        with self.path.open() as fh:
            fh.readline()  # header
            for raw in fh:
                self.bytes_read += len(raw)
                line = raw.strip()
                if not line:
                    continue
                rec = self._parse_line(line, tolerant)
                if rec is not None and (where is None or where(rec)):
                    yield rec

    def read_all(
        self,
        tolerant: bool = False,
        parallel: Optional[bool] = None,
    ) -> list[TraceRecord]:
        """Every record in the file, as a list.

        On an indexed v3 file with at least :data:`PARALLEL_BLOCK_THRESHOLD`
        blocks the columnar blocks are decoded by the parallel loader
        and merged in file order; footerless v3 files and v1/v2 files
        use the linear path.  ``parallel`` forces the choice (None =
        automatic).  On a shard manifest every shard is read and the
        streams are merged in global record order (record-for-record
        identical to the single-file layout).
        """
        if self._shards is not None:
            out = self._shards.read_all(tolerant, parallel)
            self._sync_shard_counters()
            return out
        if self.version < 3:
            return list(self.iter_records(tolerant=tolerant))
        self.last_skipped_lines = 0
        out: list[TraceRecord] = []
        if self.index is not None:
            for block in self._decode_index_blocks(self.index.blocks, parallel):
                out.extend(block.to_records())
            return out
        for _, _, block in self._iter_v3_blocks(tolerant):
            out.extend(block.to_records())
        return out

    def read(self, tolerant: bool = False) -> Trace:
        """Load the whole file into a :class:`Trace`."""
        return Trace(self.read_all(tolerant=tolerant), self.nprocs)

    def read_checked(self, tolerant: bool = True) -> tuple[Trace, int]:
        """Load the file and report damage: (trace, lines skipped by
        *this* read).  A nonzero count on a live file means the last
        flush was torn -- poll again after the next flush."""
        trace = self.read(tolerant=tolerant)
        return trace, self.last_skipped_lines

    # ------------------------------------------------------------------
    # columnar bulk access (v3 fast path; v1/v2 bridged)
    # ------------------------------------------------------------------
    def read_columns(
        self,
        t_lo: Optional[float] = None,
        t_hi: Optional[float] = None,
        procs: Optional[set[int]] = None,
        parallel: Optional[bool] = None,
        tolerant: bool = True,
    ) -> ColumnBlock:
        """Load the file (or one window of it) as a single
        :class:`~repro.trace.columnar.ColumnBlock`.

        This is the bulk-ingest entry point: ``HistoryIndex.extend_columns``,
        ``TraceGraph.from_columns`` and the viz builders consume the
        returned columns without per-record parsing.  On a v3 file the
        columns are concatenated zero-copy decodes (parallel across
        blocks when many are selected); v1/v2 files are bridged through
        the record path so every consumer sees one API.
        """
        windowed = t_lo is not None or t_hi is not None or procs is not None
        lo = -math.inf if t_lo is None else t_lo
        hi = math.inf if t_hi is None else t_hi
        if lo > hi or (procs is not None and not procs):
            return ColumnBlock.empty()
        if self._shards is not None:
            block = self._shards.read_columns(
                lo, hi, procs, windowed, parallel, tolerant
            )
            self._sync_shard_counters()
            return block
        if self.version < 3:
            if windowed:
                records = self.seek_window(lo, hi, procs)
            else:
                records = list(self.iter_records(tolerant=tolerant))
            return ColumnBlock.from_records(records)
        self.last_skipped_lines = 0
        if self.index is not None:
            entries = (
                self.index.select(lo, hi, procs)
                if windowed
                else list(self.index.blocks)
            )
            blocks = self._decode_index_blocks(entries, parallel)
        else:
            blocks = [b for _, _, b in self._iter_v3_blocks(tolerant)]
        if windowed:
            narrowed: list[ColumnBlock] = []
            for block in blocks:
                mask = block.window_mask(lo, hi, procs)
                narrowed.append(block if mask.all() else block.filter(mask))
            blocks = narrowed
        return ColumnBlock.concat(blocks)

    # ------------------------------------------------------------------
    # indexed window access (§4.3 rescan, without the full scan)
    # ------------------------------------------------------------------
    def seek_window(
        self,
        t_lo: float,
        t_hi: float,
        procs: Optional[set[int]] = None,
        use_index: bool = True,
        parallel: Optional[bool] = None,
    ) -> list[TraceRecord]:
        """Records overlapping [t_lo, t_hi] (optionally only some procs).

        Window boundaries are inclusive on both sides: a record with
        ``t1 == t_lo`` or ``t0 == t_hi`` is in the window.  A degenerate
        window (``t_lo > t_hi``) or an empty ``procs`` set returns no
        records immediately, without touching the file.

        On an indexed file only the byte ranges of blocks touching the
        window are read (decoded in parallel on v3 when many blocks are
        selected); v1 / unindexed files fall back to a linear scan with
        the same result.  ``use_index=False`` forces the linear path
        (benchmarks use it to compare the two).

        The paper (Section 4.3): "If the user wants to zoom in on a
        particular event, the required arcs are reconstructed by
        rescanning the appropriate portion of the trace file."
        """
        if t_lo > t_hi or (procs is not None and not procs):
            return []

        if self._shards is not None:
            out = self._shards.seek_window(t_lo, t_hi, procs, parallel)
            self._sync_shard_counters()
            return out

        if self.version >= 3:
            return self._seek_window_v3(t_lo, t_hi, procs, use_index, parallel)

        def wanted(r: TraceRecord) -> bool:
            return (
                r.t1 >= t_lo
                and r.t0 <= t_hi
                and (procs is None or r.proc in procs)
            )

        if self.index is None or not use_index:
            return list(self.iter_records(wanted))

        self.last_skipped_lines = 0
        out: list[TraceRecord] = []
        with self.path.open("rb") as fh:
            for block in self.index.select(t_lo, t_hi, procs):
                fh.seek(block.offset)
                chunk = fh.read(block.nbytes)
                self.bytes_read += len(chunk)
                for raw in chunk.splitlines():
                    line = raw.decode().strip()
                    if not line:
                        continue
                    rec = self._parse_line(line, tolerant=True)
                    if rec is not None and wanted(rec):
                        out.append(rec)
        return out

    def _seek_window_v3(
        self,
        t_lo: float,
        t_hi: float,
        procs: Optional[set[int]],
        use_index: bool,
        parallel: Optional[bool],
    ) -> list[TraceRecord]:
        self.last_skipped_lines = 0
        if self.index is not None and use_index:
            blocks = self._decode_index_blocks(
                self.index.select(t_lo, t_hi, procs), parallel
            )
        else:
            blocks = [b for _, _, b in self._iter_v3_blocks(tolerant=True)]
        out: list[TraceRecord] = []
        for block in blocks:
            mask = block.window_mask(t_lo, t_hi, procs)
            if mask.all():
                out.extend(block.to_records())
            elif mask.any():
                out.extend(block.filter(mask).to_records())
        return out

    def rescan_window(
        self,
        t_lo: float,
        t_hi: float,
        procs: Optional[set[int]] = None,
    ) -> list[TraceRecord]:
        """Alias of :meth:`seek_window` kept for the §4.3 vocabulary."""
        return self.seek_window(t_lo, t_hi, procs)


def save_trace(
    trace: Trace,
    path: Union[str, Path],
    version: int = FORMAT_VERSION,
    *,
    compression: Union[None, bool, str, Codec] = None,
    shards: Union[None, int, str] = None,
) -> None:
    """Write an in-memory trace to a file in one shot.

    ``compression`` selects per-block compression (``"auto"``/codec
    name/None).  ``shards`` writes a sharded store instead of a single
    file: ``"proc"`` for one shard per rank, or a count for hash
    routing; the path then names the manifest.
    """
    if shards is not None:
        from .shard import TraceShardWriter

        if version != FORMAT_VERSION:
            raise TraceFileError(
                "sharded traces are always written in the current version"
            )
        if shards == "proc":
            routing: dict = {"by": "proc"}
        else:
            routing = {"by": "hash", "shards": shards}
        with TraceShardWriter(
            path,
            trace.nprocs,
            compression="auto" if compression is None else compression,
            **routing,
        ) as shard_writer:
            for rec in trace:
                shard_writer.write(rec)
        return
    with TraceFileWriter(
        path, trace.nprocs, version=version, compression=compression
    ) as writer:
        for rec in trace:
            writer.write(rec)


def load_trace(path: Union[str, Path]) -> Trace:
    """Read a trace file into memory."""
    return TraceFileReader(path).read()


# ----------------------------------------------------------------------
# process-parallel bulk decode (the HistoryIndex.from_file(parallel=N)
# substrate)
# ----------------------------------------------------------------------
def _read_columns_job(job: tuple) -> ColumnBlock:
    """One worker's decode task, re-opening the file by path (nothing
    unpicklable crosses the fork): a whole shard file, or a contiguous
    chunk ``[start, stop)`` of a single v3 file's footer blocks.  The
    per-reader *threaded* block loader is reused inside the worker."""
    path, start, stop = job
    reader = TraceFileReader(path)
    if start is None:
        return reader.read_columns(parallel=True)
    entries = reader.index.blocks[start:stop]
    return ColumnBlock.concat(reader._decode_index_blocks(entries, parallel=True))


def read_columns_parallel(
    reader: TraceFileReader,
    parallel: Union[int, bool],
) -> Optional[tuple[ColumnBlock, int, int]]:
    """Decode ``reader``'s whole record data across a process pool.

    Fans one task per shard (manifest readers) or per contiguous block
    chunk (single indexed v3 files) across forked workers; each task
    ships its decoded :class:`ColumnBlock` back and the parent
    re-merges by global record ``index`` -- the same ordered-merge
    contract as the shard fan-out, so the result is row-for-row
    identical to :meth:`TraceFileReader.read_columns`.

    Returns ``(merged_block, n_tasks, n_workers)``, or None when
    process parallelism cannot help (one shard / too few blocks,
    v1/v2 or footerless files, no ``fork`` start method) -- callers
    then take the serial path.
    """
    import multiprocessing
    from concurrent.futures import ProcessPoolExecutor

    workers = (os.cpu_count() or 1) if parallel is True else int(parallel)
    if workers < 2:
        return None
    if "fork" not in multiprocessing.get_all_start_methods():
        return None  # spawn-only platforms: fall back to the threaded path
    jobs: list[tuple] = []
    if reader.sharded:
        shard_set = reader._shards
        shard_set._require_shards("read columns")
        base = shard_set.path.parent
        jobs = [
            (str(base / shard_set.manifest.shards[k].path), None, None)
            for k in shard_set._populated()
        ]
    elif reader.version >= 3 and reader.index is not None:
        nblocks = len(reader.index.blocks)
        if nblocks >= PARALLEL_BLOCK_THRESHOLD:
            ntasks = min(workers, nblocks)
            bounds = np.linspace(0, nblocks, ntasks + 1).astype(int)
            jobs = [
                (str(reader.path), int(bounds[i]), int(bounds[i + 1]))
                for i in range(ntasks)
                if bounds[i] < bounds[i + 1]
            ]
    if len(jobs) < 2:
        return None
    nworkers = min(workers, len(jobs))
    ctx = multiprocessing.get_context("fork")
    with ProcessPoolExecutor(max_workers=nworkers, mp_context=ctx) as pool:
        parts = list(pool.map(_read_columns_job, jobs))
    merged = ColumnBlock.concat(parts)
    index_col = merged.columns["index"]
    if index_col.size and np.any(index_col[1:] < index_col[:-1]):
        merged = merged.filter(np.argsort(index_col, kind="stable"))
    return merged, len(jobs), nworkers


# ----------------------------------------------------------------------
# CLI: python -m repro.trace.tracefile {info,convert,reindex}
# ----------------------------------------------------------------------
def _print_encoding_stats(blocks: Sequence[IndexBlock]) -> None:
    """Per-encoding block/byte breakdown, with compression ratios where
    the footer carried the raw size."""
    by_enc: dict[str, list[IndexBlock]] = {}
    for b in blocks:
        by_enc.setdefault(b.encoding, []).append(b)
    for enc in sorted(by_enc):
        group = by_enc[enc]
        disk = sum(b.nbytes for b in group)
        line = (
            f"  {enc:<14s}: {len(group)} block(s), "
            f"{sum(b.count for b in group)} records, {disk} bytes"
        )
        raw = sum(b.raw_nbytes for b in group if b.raw_nbytes is not None)
        if raw and disk:
            line += f" ({raw} raw, {raw / disk:.2f}x compression)"
        print(line)


def _encoding_breakdown(blocks: Sequence[IndexBlock]) -> dict:
    """The per-encoding block/byte stats as a JSON-ready dict (the
    machine-readable twin of :func:`_print_encoding_stats`)."""
    out: dict[str, dict] = {}
    for b in blocks:
        enc = out.setdefault(
            b.encoding or "unknown",
            {"blocks": 0, "records": 0, "nbytes": 0, "raw_nbytes": 0},
        )
        enc["blocks"] += 1
        enc["records"] += b.count
        enc["nbytes"] += b.nbytes
        enc["raw_nbytes"] += b.raw_nbytes if b.raw_nbytes is not None else 0
    for enc in out.values():
        enc["compression"] = (
            round(enc["raw_nbytes"] / enc["nbytes"], 4)
            if enc["raw_nbytes"] and enc["nbytes"]
            else None
        )
    return out


def _info_payload(reader: TraceFileReader) -> dict:
    """Everything ``info`` knows, as one JSON-serializable dict --
    the machine-readable surface other tooling (the planned debug
    server) consumes instead of scraping the text report."""
    payload: dict = {
        "path": str(reader.path),
        "version": reader.version,
        "nprocs": reader.nprocs,
        "sharded": reader.sharded,
    }
    if reader.sharded:
        m = reader.manifest
        entries = [ref.entry for ref in reader.block_entries()]
        payload.update(
            format=MANIFEST_FORMAT_NAME,
            records=m.records,
            span=[m.t_min, m.t_max],
            by=m.by,
            nbytes=sum(s.nbytes for s in m.shards),
            shards=[s.to_jsonable() for s in m.shards],
            index={"blocks": len(entries), "source": "shard-footers"},
            encodings=_encoding_breakdown(entries),
        )
        return payload
    payload["format"] = FORMAT_NAME
    if reader.index is not None:
        idx = reader.index
        payload.update(
            records=idx.records,
            span=[idx.t_min, idx.t_max],
            index={"blocks": len(idx.blocks), "source": "footer"},
            encodings=_encoding_breakdown(idx.blocks),
        )
        return payload
    # footerless: one tolerant linear scan, mirroring the text report
    if reader.version >= 3:
        count = 0
        t_min, t_max = math.inf, -math.inf
        blocks = 0
        for _, _, block in reader._iter_v3_blocks(tolerant=True):
            blocks += 1
            count += len(block)
            if len(block):
                t_min = min(t_min, block.t_min)
                t_max = max(t_max, block.t_max)
        payload.update(
            records=count,
            span=[t_min, t_max] if count else [0.0, 0.0],
            index=None,
            scanned_blocks=blocks,
        )
    else:
        count = sum(1 for _ in reader.iter_records(tolerant=True))
        t_min, t_max = reader.span()
        payload.update(records=count, span=[t_min, t_max], index=None)
    if reader.skipped_lines:
        payload["damage"] = reader.skipped_lines
    return payload


def _cmd_info(args: argparse.Namespace) -> int:
    reader = TraceFileReader(args.path)
    if getattr(args, "json", False):
        print(json.dumps(_info_payload(reader), indent=2, sort_keys=True))
        return 0
    print(f"path    : {reader.path}")
    if reader.sharded:
        m = reader.manifest
        print(
            f"format  : {MANIFEST_FORMAT_NAME} "
            f"(v{reader.version} shards), nprocs {m.nprocs}"
        )
        print(f"records : {m.records} (from manifest)")
        print(f"span    : {m.t_min:.6g} .. {m.t_max:.6g}")
        print(
            f"shards  : {m.nshards} file(s), routed by {m.by}, "
            f"{sum(s.nbytes for s in m.shards)} bytes on disk"
        )
        for k, s in enumerate(m.shards):
            span = (
                f"span {s.t_min:.6g} .. {s.t_max:.6g}"
                if s.records
                else "empty"
            )
            print(
                f"  [{k:>3d}] {s.path}: {s.records} records, "
                f"{len(s.procs)} proc(s), {span}, {s.nbytes} bytes"
            )
        entries = [ref.entry for ref in reader.block_entries()]
        print(f"index   : {len(entries)} block(s) across shard footers")
        _print_encoding_stats(entries)
        return 0
    print(
        f"format  : {FORMAT_NAME} v{reader.version}, nprocs {reader.nprocs}"
    )
    if reader.index is not None:
        idx = reader.index
        counts = [b.count for b in idx.blocks]
        nbytes = [b.nbytes for b in idx.blocks]
        encodings = sorted({b.encoding for b in idx.blocks}) or ["-"]
        print(f"records : {idx.records} (from footer index)")
        print(f"span    : {idx.t_min:.6g} .. {idx.t_max:.6g}")
        print(
            f"index   : {len(idx.blocks)} block(s), "
            f"encoding {'/'.join(encodings)}"
        )
        if counts:
            print(
                f"  records/block : min {min(counts)}  "
                f"mean {sum(counts) / len(counts):.1f}  max {max(counts)}"
            )
            print(
                f"  bytes/block   : min {min(nbytes)}  "
                f"mean {sum(nbytes) / len(nbytes):.1f}  max {max(nbytes)}"
            )
            _print_encoding_stats(idx.blocks)
        return 0
    # footerless: one linear scan
    if reader.version >= 3:
        count = 0
        blocks = 0
        t_min, t_max = math.inf, -math.inf
        for _, _, block in reader._iter_v3_blocks(tolerant=True):
            blocks += 1
            count += len(block)
            if len(block):
                t_min = min(t_min, block.t_min)
                t_max = max(t_max, block.t_max)
        span = f"{t_min:.6g} .. {t_max:.6g}" if count else "(empty)"
        print(f"records : {count} in {blocks} block(s) (linear scan)")
        print(f"span    : {span}")
    else:
        count = sum(1 for _ in reader.iter_records(tolerant=True))
        t_min, t_max = reader.span()
        print(f"records : {count} (linear scan)")
        print(f"span    : {t_min:.6g} .. {t_max:.6g}")
    print("index   : none (writer not closed cleanly; run `reindex` to repair)")
    if reader.skipped_lines:
        print(f"damage  : {reader.skipped_lines} skipped region(s)/line(s)")
    return 0


def _cmd_convert(args: argparse.Namespace) -> int:
    reader = TraceFileReader(args.src)
    sharded_out = args.shards is not None or args.by is not None
    if sharded_out:
        if args.to != FORMAT_VERSION:
            print(
                "error: sharded output is always written in the current "
                "format version; drop --to",
                file=sys.stderr,
            )
            return 2
        by = args.by or "hash"
        if by == "proc" and args.shards is not None:
            print(
                "error: --shards applies to --by hash only (--by proc "
                "writes one shard per rank)",
                file=sys.stderr,
            )
            return 2
        from .shard import TraceShardWriter

        writer: Union[TraceFileWriter, "TraceShardWriter"] = TraceShardWriter(
            args.dst,
            reader.nprocs,
            by=by,
            shards=args.shards,
            index_block=args.index_block,
            compression=args.compress,
        )
    else:
        writer = TraceFileWriter(
            args.dst,
            reader.nprocs,
            version=args.to,
            index_block=args.index_block,
            compression=args.compress if args.to >= 3 else None,
        )
    count = 0
    with writer:
        if args.to >= 3 and reader.version >= 3 and reader.has_index:
            if reader.sharded:
                # the manifest read returns globally-ordered columns
                count = writer.write_columns(reader.read_columns())
            else:
                # stream block by block: peak memory is one block
                for ref in reader.block_entries():
                    count += writer.write_columns(reader.load_block(ref))
        else:
            for rec in reader.iter_records(tolerant=True):
                writer.write(rec)
                count += 1
    note = (
        f" ({reader.skipped_lines} damaged region(s) dropped)"
        if reader.skipped_lines
        else ""
    )
    shape = (
        f"sharded manifest {args.dst}" if sharded_out else f"v{args.to} {args.dst}"
    )
    print(
        f"converted {count} records: "
        f"v{reader.version} {args.src} -> {shape}{note}"
    )
    return 0


def _scan_v2_meta(
    reader: TraceFileReader,
) -> tuple[list[tuple[int, float, float, int]], int]:
    """Per-record (offset, t0, t1, proc) of every complete, parseable
    v1/v2 record line, plus the byte offset just past the last one."""
    meta: list[tuple[int, float, float, int]] = []
    end = reader._data_offset
    offset = end
    with reader.path.open("rb") as fh:
        fh.seek(offset)
        for raw in fh:
            if not raw.endswith(b"\n"):
                break  # torn final line: the crash point
            line = raw.strip()
            if line:
                try:
                    rec = TraceRecord.from_jsonable(json.loads(line))
                except (
                    json.JSONDecodeError,
                    UnicodeDecodeError,
                    KeyError,
                    ValueError,
                    TypeError,
                ):
                    break
                meta.append((offset, rec.t0, rec.t1, rec.proc))
            offset += len(raw)
            end = offset
    return meta, end


def _cmd_reindex(args: argparse.Namespace) -> int:
    reader = TraceFileReader(args.path)
    if reader.sharded:
        print(
            "error: this is a shard manifest; its shard files carry their "
            "own footers -- run reindex on a damaged shard file directly",
            file=sys.stderr,
        )
        return 2
    if reader.version == 1:
        print("error: v1 files have no index footer; use `convert` instead",
              file=sys.stderr)
        return 2
    if reader.has_index:
        print(f"{reader.path}: already indexed; nothing to do")
        return 0
    size = reader.path.stat().st_size
    if reader.version >= 3:
        blocks: list[IndexBlock] = []
        end = reader._data_offset
        with reader.path.open("rb") as fh:
            for offset, nbytes, block in reader._iter_v3_blocks(tolerant=True):
                fh.seek(offset)
                head = fh.read(COMPRESSED_HEADER.size)
                if head[:4] == COMPRESSED_MAGIC:
                    _, code, raw_nbytes, _ = COMPRESSED_HEADER.unpack(head)
                    encoding = CODECS_BY_CODE[code].encoding
                else:
                    encoding, raw_nbytes = "columnar", None
                blocks.append(
                    IndexBlock(
                        offset=offset,
                        nbytes=nbytes,
                        count=len(block),
                        t_min=block.t_min,
                        t_max=block.t_max,
                        procs=block.procs,
                        encoding=encoding,
                        raw_nbytes=raw_nbytes,
                    )
                )
                end = offset + nbytes
        records = sum(b.count for b in blocks)
        index = TraceIndex(
            tuple(blocks),
            records,
            min((b.t_min for b in blocks), default=0.0),
            max((b.t_max for b in blocks), default=0.0),
        )
        footer = b"\n" + json.dumps(index.to_jsonable()).encode("ascii") + b"\n"
    else:
        meta, end = _scan_v2_meta(reader)
        blocks = []
        for start in range(0, len(meta), args.index_block):
            chunk = meta[start : start + args.index_block]
            next_off = (
                meta[start + args.index_block][0]
                if start + args.index_block < len(meta)
                else end
            )
            blocks.append(
                IndexBlock(
                    offset=chunk[0][0],
                    nbytes=next_off - chunk[0][0],
                    count=len(chunk),
                    t_min=min(m[1] for m in chunk),
                    t_max=max(m[2] for m in chunk),
                    procs=frozenset(m[3] for m in chunk),
                )
            )
        records = len(meta)
        index = TraceIndex(
            tuple(blocks),
            records,
            min((m[1] for m in meta), default=0.0),
            max((m[2] for m in meta), default=0.0),
        )
        footer = json.dumps(index.to_jsonable()).encode("ascii") + b"\n"
    dropped = size - end
    with reader.path.open("rb+") as fh:
        fh.truncate(end)
        fh.seek(end)
        fh.write(footer)
    note = f", dropped {dropped} damaged trailing byte(s)" if dropped else ""
    print(
        f"reindexed {reader.path}: {records} records in "
        f"{len(blocks)} block(s){note}"
    )
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.trace.tracefile",
        description="Inspect, convert and repair repro trace files.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_info = sub.add_parser(
        "info", help="print version, record count, span and per-block stats"
    )
    p_info.add_argument("path", help="trace file to inspect")
    p_info.add_argument(
        "--json", action="store_true",
        help="emit the shard/encoding breakdown as JSON (machine-"
        "readable; stable keys for tooling)",
    )

    p_conv = sub.add_parser(
        "convert",
        help="re-encode a trace file: format version, per-block "
        "compression, sharded manifest <-> single file",
    )
    p_conv.add_argument("src", help="source trace file or manifest")
    p_conv.add_argument("dst", help="destination path")
    p_conv.add_argument(
        "--to", type=int, choices=sorted(SUPPORTED_VERSIONS),
        default=FORMAT_VERSION, help="target format version (default: %(default)s)",
    )
    p_conv.add_argument(
        "--index-block", type=int, default=DEFAULT_INDEX_BLOCK,
        help="records per index block (default: %(default)s)",
    )
    p_conv.add_argument(
        "--compress", default="none",
        choices=["none", "auto", *sorted(CODECS)],
        help="per-block compression of the output (v3 only; "
        "default: %(default)s)",
    )
    p_conv.add_argument(
        "--shards", type=int, default=None, metavar="N",
        help="write a sharded store with N hash-routed shards "
        "(dst names the manifest)",
    )
    p_conv.add_argument(
        "--by", choices=["proc", "hash"], default=None,
        help="shard routing: 'proc' writes one shard per rank, "
        "'hash' buckets ranks into --shards files",
    )

    p_re = sub.add_parser(
        "reindex",
        help="rebuild a missing index footer in place (recovers a "
        "crashed-writer file from the linear slow path)",
    )
    p_re.add_argument("path", help="footerless v2/v3 trace file")
    p_re.add_argument(
        "--index-block", type=int, default=DEFAULT_INDEX_BLOCK,
        help="records per rebuilt index block, v2 only (default: %(default)s)",
    )

    args = parser.parse_args(argv)
    handlers = {
        "info": _cmd_info,
        "convert": _cmd_convert,
        "reindex": _cmd_reindex,
    }
    try:
        return handlers[args.command](args)
    except (TraceFileError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    raise SystemExit(main())
