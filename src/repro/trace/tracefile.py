"""Trace files: persistent, line-oriented execution histories.

The AIMS toolkit wrote binary trace files for post-mortem analysis; the
paper had to add "a monitor function that flushes trace information on
demand" so p2d2 could read history *during* execution (Section 2.1).
This module reproduces that shape:

* :class:`TraceFileWriter` appends JSON-lines records with explicit
  :meth:`flush` (the on-demand flush) and an optional auto-flush
  threshold;
* :class:`TraceFileReader` reads whole files, streams records, or
  seeks straight to a time window / process subset without scanning
  everything -- the access pattern the trace-graph zoom reconstruction
  (Section 4.3 "rescanning the appropriate portion of the trace file")
  and the VK animated window need.

Format v1: a header line ``{"format": ..., "version": 1, "nprocs": ...}``
followed by one record per line (see ``TraceRecord.to_jsonable``).

Format v2 adds an *index footer* as the final line when the writer is
closed cleanly: ``{"__trace_index__": {"blocks": [...], ...}}``.  Each
block entry is ``[offset, nbytes, count, t_min, t_max, procs]``
describing a contiguous byte range of record lines, so
:meth:`TraceFileReader.seek_window` reads only the blocks overlapping
the requested window instead of the whole file.  A v2 file whose footer
is missing (writer crashed before close) and any v1 file degrade to the
linear path unchanged.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Iterator, Optional, Union

from .events import TraceRecord
from .trace import Trace

FORMAT_NAME = "repro-trace"
FORMAT_VERSION = 2
#: versions this reader understands
SUPPORTED_VERSIONS = frozenset({1, 2})
#: key marking the v2 index footer line
INDEX_KEY = "__trace_index__"
#: records per index block (granularity of seek_window byte ranges)
DEFAULT_INDEX_BLOCK = 512


class TraceFileError(Exception):
    """Malformed or mismatched trace file."""


@dataclass(frozen=True)
class IndexBlock:
    """One contiguous run of record lines summarized in the footer."""

    offset: int
    nbytes: int
    count: int
    t_min: float
    t_max: float
    procs: frozenset[int]

    def overlaps(
        self, t_lo: float, t_hi: float, procs: Optional[set[int]]
    ) -> bool:
        if self.t_max < t_lo or self.t_min > t_hi:
            return False
        return procs is None or bool(self.procs & procs)

    def to_jsonable(self) -> list:
        return [
            self.offset,
            self.nbytes,
            self.count,
            self.t_min,
            self.t_max,
            sorted(self.procs),
        ]

    @classmethod
    def from_jsonable(cls, data: list) -> "IndexBlock":
        off, nbytes, count, t_min, t_max, procs = data
        return cls(off, nbytes, count, t_min, t_max, frozenset(procs))


@dataclass(frozen=True)
class TraceIndex:
    """The v2 footer: per-block byte offsets + whole-file aggregates."""

    blocks: tuple[IndexBlock, ...]
    records: int
    t_min: float
    t_max: float

    def select(
        self,
        t_lo: float,
        t_hi: float,
        procs: Optional[set[int]] = None,
    ) -> list[IndexBlock]:
        """Blocks that may hold records overlapping the window."""
        return [b for b in self.blocks if b.overlaps(t_lo, t_hi, procs)]

    def to_jsonable(self) -> dict:
        return {
            INDEX_KEY: {
                "blocks": [b.to_jsonable() for b in self.blocks],
                "records": self.records,
                "span": [self.t_min, self.t_max],
            }
        }

    @classmethod
    def from_jsonable(cls, data: dict) -> "TraceIndex":
        body = data[INDEX_KEY]
        blocks = tuple(IndexBlock.from_jsonable(b) for b in body["blocks"])
        span = body.get("span", [0.0, 0.0])
        return cls(blocks, body.get("records", 0), span[0], span[1])


class TraceFileWriter:
    """Appends trace records to a file, flushing on demand.

    The writer holds one persistent append handle for its lifetime (no
    per-flush reopen); :meth:`flush` pushes buffered lines through the
    OS so a concurrent reader sees them.  ``durable=True`` additionally
    ``fsync``\\ s on every flush -- crash-durability at a heavy cost, off
    by default since the on-demand-flush semantics only require reader
    visibility.

    Parameters
    ----------
    path:
        Destination file (created/truncated).
    nprocs:
        Communicator size recorded in the header.
    auto_flush_every:
        Flush after this many buffered records (None = only explicit
        flushes and close).
    durable:
        fsync on every flush (opt-in).
    version:
        On-disk format version; 2 (default) writes the index footer at
        close, 1 reproduces the legacy footer-less layout.
    index_block:
        Records per index block (v2 only).
    """

    def __init__(
        self,
        path: Union[str, Path],
        nprocs: int,
        auto_flush_every: Optional[int] = None,
        *,
        durable: bool = False,
        version: int = FORMAT_VERSION,
        index_block: int = DEFAULT_INDEX_BLOCK,
    ) -> None:
        if version not in SUPPORTED_VERSIONS:
            raise TraceFileError(f"cannot write format version {version!r}")
        if index_block < 1:
            raise ValueError(f"index_block must be >= 1, got {index_block}")
        self.path = Path(path)
        self.nprocs = nprocs
        self.auto_flush_every = auto_flush_every
        self.durable = durable
        self.version = version
        self.index_block = index_block
        #: buffered (line, t0, t1, proc) tuples awaiting the next flush
        self._buffer: list[tuple[str, float, float, int]] = []
        #: per-record (offset, nbytes, t0, t1, proc) for the index footer
        self._meta: list[tuple[int, int, float, float, int]] = []
        self._written = 0
        self._closed = False
        self._fh = self.path.open("w")
        header = json.dumps(
            {"format": FORMAT_NAME, "version": version, "nprocs": nprocs}
        )
        self._fh.write(header + "\n")
        self._fh.flush()
        self._offset = self._fh.tell()

    # ------------------------------------------------------------------
    def write(self, record: TraceRecord) -> None:
        """Buffer one record (written at the next flush)."""
        if self._closed:
            raise TraceFileError(f"writer for {self.path} is closed")
        self._buffer.append(
            (
                json.dumps(record.to_jsonable()),
                record.t0,
                record.t1,
                record.proc,
            )
        )
        if (
            self.auto_flush_every is not None
            and len(self._buffer) >= self.auto_flush_every
        ):
            self.flush()

    def flush(self) -> int:
        """Write buffered records to disk; returns how many were written.

        This is the "flush trace information on demand" hook the paper
        added to the AIMS monitor so the debugger could consume history
        mid-execution.
        """
        if not self._buffer:
            return 0
        for line, t0, t1, proc in self._buffer:
            nbytes = self._fh.write(line + "\n")
            self._meta.append((self._offset, nbytes, t0, t1, proc))
            self._offset += nbytes
        self._fh.flush()
        if self.durable:
            os.fsync(self._fh.fileno())
        n = len(self._buffer)
        self._written += n
        self._buffer.clear()
        return n

    # ------------------------------------------------------------------
    def _build_index(self) -> TraceIndex:
        blocks: list[IndexBlock] = []
        for start in range(0, len(self._meta), self.index_block):
            chunk = self._meta[start : start + self.index_block]
            offset = chunk[0][0]
            nbytes = sum(m[1] for m in chunk)
            blocks.append(
                IndexBlock(
                    offset=offset,
                    nbytes=nbytes,
                    count=len(chunk),
                    t_min=min(m[2] for m in chunk),
                    t_max=max(m[3] for m in chunk),
                    procs=frozenset(m[4] for m in chunk),
                )
            )
        t_min = min((m[2] for m in self._meta), default=0.0)
        t_max = max((m[3] for m in self._meta), default=0.0)
        return TraceIndex(tuple(blocks), len(self._meta), t_min, t_max)

    def close(self) -> None:
        if self._closed:
            return
        self.flush()
        if self.version >= 2:
            self._fh.write(json.dumps(self._build_index().to_jsonable()) + "\n")
            self._fh.flush()
            if self.durable:
                os.fsync(self._fh.fileno())
        self._fh.close()
        self._closed = True

    @property
    def records_written(self) -> int:
        return self._written

    def __enter__(self) -> "TraceFileWriter":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


class TraceFileReader:
    """Reads trace files written by :class:`TraceFileWriter`.

    Attributes
    ----------
    skipped_lines:
        Malformed lines skipped by tolerant reads, *cumulative* across
        every read this reader performed (a rising count across polls of
        a live file means flushes are getting truncated).
    last_skipped_lines:
        Malformed lines skipped by the most recent read only.
    bytes_read:
        Record bytes this reader pulled off disk, cumulative -- the
        observable that indexed seeks beat linear scans.
    index:
        The v2 footer index, or None (v1 file, or v2 not closed cleanly)
        -- in which case every access uses the linear path.
    """

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        with self.path.open() as fh:
            header_line = fh.readline()
            self._data_offset = fh.tell()
        try:
            header = json.loads(header_line)
        except json.JSONDecodeError as exc:
            raise TraceFileError(f"{self.path}: bad header: {exc}") from exc
        if header.get("format") != FORMAT_NAME:
            raise TraceFileError(
                f"{self.path}: not a {FORMAT_NAME} file (got {header.get('format')!r})"
            )
        if header.get("version") not in SUPPORTED_VERSIONS:
            raise TraceFileError(
                f"{self.path}: unsupported version {header.get('version')!r}"
            )
        self.version: int = header["version"]
        self.nprocs: int = header["nprocs"]
        self.skipped_lines = 0
        self.last_skipped_lines = 0
        self.bytes_read = 0
        self.index: Optional[TraceIndex] = (
            self._load_index() if self.version >= 2 else None
        )

    # ------------------------------------------------------------------
    # index loading
    # ------------------------------------------------------------------
    def _read_last_line(self) -> Optional[bytes]:
        """The final newline-terminated line, without scanning the file."""
        with self.path.open("rb") as fh:
            fh.seek(0, os.SEEK_END)
            size = fh.tell()
            if size <= self._data_offset:
                return None
            chunk = 4096
            while True:
                span = min(size, chunk)
                fh.seek(size - span)
                tail = fh.read(span)
                body = tail[:-1] if tail.endswith(b"\n") else tail
                nl = body.rfind(b"\n")
                if nl != -1:
                    return body[nl + 1 :]
                if span == size:
                    return body  # single-line body
                chunk *= 2

    def _load_index(self) -> Optional[TraceIndex]:
        last = self._read_last_line()
        if not last or not last.lstrip().startswith(b'{"' + INDEX_KEY.encode()):
            return None
        try:
            data = json.loads(last)
        except json.JSONDecodeError:
            return None
        if not isinstance(data, dict) or INDEX_KEY not in data:
            return None
        try:
            return TraceIndex.from_jsonable(data)
        except (KeyError, IndexError, TypeError, ValueError):
            return None

    @property
    def has_index(self) -> bool:
        return self.index is not None

    def span(self) -> tuple[float, float]:
        """(earliest t0, latest t1); indexed files answer without a scan."""
        if self.index is not None:
            return (self.index.t_min, self.index.t_max)
        t_min, t_max, seen = 0.0, 0.0, False
        for rec in self.iter_records(tolerant=True):
            if not seen:
                t_min, t_max, seen = rec.t0, rec.t1, True
            else:
                t_min = min(t_min, rec.t0)
                t_max = max(t_max, rec.t1)
        return (t_min, t_max)

    # ------------------------------------------------------------------
    # linear streaming
    # ------------------------------------------------------------------
    def _parse_line(self, line: str, tolerant: bool) -> Optional[TraceRecord]:
        """One line -> record; None for footers and tolerated damage."""
        try:
            data = json.loads(line)
        except json.JSONDecodeError as exc:
            if tolerant:
                self.skipped_lines += 1
                self.last_skipped_lines += 1
                return None
            raise TraceFileError(
                f"{self.path}: malformed record line: {exc}"
            ) from exc
        if isinstance(data, dict) and INDEX_KEY in data:
            return None  # the footer is not a record
        try:
            return TraceRecord.from_jsonable(data)
        except (KeyError, ValueError, TypeError) as exc:
            if tolerant:
                self.skipped_lines += 1
                self.last_skipped_lines += 1
                return None
            raise TraceFileError(
                f"{self.path}: malformed record line: {exc}"
            ) from exc

    def iter_records(
        self,
        where: Optional[Callable[[TraceRecord], bool]] = None,
        tolerant: bool = False,
    ) -> Iterator[TraceRecord]:
        """Stream records, optionally filtered, without loading the file.

        ``tolerant`` skips malformed lines instead of raising -- the
        right mode for a trace file whose final line was cut off by a
        crash of the traced program (the post-mortem case of §4.1 is
        exactly when that happens).  Skipped lines accumulate in
        :attr:`skipped_lines`; :attr:`last_skipped_lines` holds this
        read's count alone.
        """
        self.last_skipped_lines = 0
        with self.path.open() as fh:
            fh.readline()  # header
            for raw in fh:
                self.bytes_read += len(raw)
                line = raw.strip()
                if not line:
                    continue
                rec = self._parse_line(line, tolerant)
                if rec is not None and (where is None or where(rec)):
                    yield rec

    def read(self, tolerant: bool = False) -> Trace:
        """Load the whole file into a :class:`Trace`."""
        return Trace(list(self.iter_records(tolerant=tolerant)), self.nprocs)

    def read_checked(self, tolerant: bool = True) -> tuple[Trace, int]:
        """Load the file and report damage: (trace, lines skipped by
        *this* read).  A nonzero count on a live file means the last
        flush was torn -- poll again after the next flush."""
        trace = self.read(tolerant=tolerant)
        return trace, self.last_skipped_lines

    # ------------------------------------------------------------------
    # indexed window access (§4.3 rescan, without the full scan)
    # ------------------------------------------------------------------
    def seek_window(
        self,
        t_lo: float,
        t_hi: float,
        procs: Optional[set[int]] = None,
        use_index: bool = True,
    ) -> list[TraceRecord]:
        """Records overlapping [t_lo, t_hi] (optionally only some procs).

        On an indexed (v2) file only the byte ranges of blocks touching
        the window are read; v1 / unindexed files fall back to a linear
        scan with the same result.  ``use_index=False`` forces the
        linear path (benchmarks use it to compare the two).

        The paper (Section 4.3): "If the user wants to zoom in on a
        particular event, the required arcs are reconstructed by
        rescanning the appropriate portion of the trace file."
        """

        def wanted(r: TraceRecord) -> bool:
            return (
                r.t1 >= t_lo
                and r.t0 <= t_hi
                and (procs is None or r.proc in procs)
            )

        if self.index is None or not use_index:
            return list(self.iter_records(wanted))

        self.last_skipped_lines = 0
        out: list[TraceRecord] = []
        with self.path.open("rb") as fh:
            for block in self.index.select(t_lo, t_hi, procs):
                fh.seek(block.offset)
                chunk = fh.read(block.nbytes)
                self.bytes_read += len(chunk)
                for raw in chunk.splitlines():
                    line = raw.decode().strip()
                    if not line:
                        continue
                    rec = self._parse_line(line, tolerant=True)
                    if rec is not None and wanted(rec):
                        out.append(rec)
        return out

    def rescan_window(
        self,
        t_lo: float,
        t_hi: float,
        procs: Optional[set[int]] = None,
    ) -> list[TraceRecord]:
        """Alias of :meth:`seek_window` kept for the §4.3 vocabulary."""
        return self.seek_window(t_lo, t_hi, procs)


def save_trace(
    trace: Trace, path: Union[str, Path], version: int = FORMAT_VERSION
) -> None:
    """Write an in-memory trace to a file in one shot."""
    with TraceFileWriter(path, trace.nprocs, version=version) as writer:
        for rec in trace:
            writer.write(rec)


def load_trace(path: Union[str, Path]) -> Trace:
    """Read a trace file into memory."""
    return TraceFileReader(path).read()
