"""``repro.trace`` -- the execution-history model.

Trace records (:mod:`~repro.trace.events`), execution markers
(:mod:`~repro.trace.markers`), the queryable :class:`Trace` container,
the persistent trace-file format with on-demand flushing
(:mod:`~repro.trace.tracefile`), and the in-memory recorder that
instrumentation layers write into (:mod:`~repro.trace.recorder`).
"""

from .diff import (
    Divergence,
    TraceDiff,
    diff_traces,
    record_signature,
    verify_replay_prefix,
)
from .events import (
    COLLECTIVE_KINDS,
    OP_TO_KIND,
    RECV_KINDS,
    SEND_KINDS,
    EventKind,
    TraceRecord,
)
from .markers import ExecutionMarker, MarkerVector
from .recorder import TraceRecorder
from .trace import MessagePair, Trace, merge_traces
from .tracefile import (
    TraceFileError,
    TraceFileReader,
    TraceFileWriter,
    load_trace,
    save_trace,
)

__all__ = [
    "COLLECTIVE_KINDS",
    "Divergence",
    "TraceDiff",
    "diff_traces",
    "record_signature",
    "verify_replay_prefix",
    "EventKind",
    "ExecutionMarker",
    "MarkerVector",
    "MessagePair",
    "OP_TO_KIND",
    "RECV_KINDS",
    "SEND_KINDS",
    "Trace",
    "TraceFileError",
    "TraceFileReader",
    "TraceFileWriter",
    "TraceRecord",
    "TraceRecorder",
    "load_trace",
    "merge_traces",
    "save_trace",
]
