"""``repro.trace`` -- the execution-history model.

Trace records (:mod:`~repro.trace.events`), execution markers
(:mod:`~repro.trace.markers`), the queryable :class:`Trace` container,
the persistent indexed trace-file format with on-demand flushing
(:mod:`~repro.trace.tracefile`) and its binary columnar block codec
(:mod:`~repro.trace.columnar`), the streaming event bus with pluggable
sinks (:mod:`~repro.trace.sinks`), and the recorder that filters and
publishes what instrumentation layers write
(:mod:`~repro.trace.recorder`).
"""

from .diff import (
    Divergence,
    TraceDiff,
    diff_traces,
    record_signature,
    verify_replay_prefix,
)
from .events import (
    COLLECTIVE_KINDS,
    OP_TO_KIND,
    RECV_KINDS,
    SEND_KINDS,
    EventKind,
    TraceRecord,
)
from .markers import ExecutionMarker, MarkerVector
from .recorder import TraceRecorder
from .sinks import (
    CallbackSink,
    FileSink,
    GraphSink,
    MemorySink,
    RingBufferSink,
    TraceBus,
    TraceSink,
    pump,
)
from .columnar import ColumnBlock, ColumnDecodeError
from .shard import ShardManifest, TraceShardWriter
from .trace import MessagePair, Trace, ensure_trace, merge_traces
from .tracefile import (
    FORMAT_VERSION,
    TraceFileError,
    TraceFileReader,
    TraceFileWriter,
    TraceIndex,
    load_trace,
    save_trace,
)

__all__ = [
    "COLLECTIVE_KINDS",
    "CallbackSink",
    "ColumnBlock",
    "ColumnDecodeError",
    "FORMAT_VERSION",
    "Divergence",
    "FileSink",
    "GraphSink",
    "MemorySink",
    "RingBufferSink",
    "ShardManifest",
    "TraceBus",
    "TraceDiff",
    "TraceSink",
    "diff_traces",
    "ensure_trace",
    "pump",
    "record_signature",
    "verify_replay_prefix",
    "EventKind",
    "ExecutionMarker",
    "MarkerVector",
    "MessagePair",
    "OP_TO_KIND",
    "RECV_KINDS",
    "SEND_KINDS",
    "Trace",
    "TraceFileError",
    "TraceFileReader",
    "TraceFileWriter",
    "TraceIndex",
    "TraceRecord",
    "TraceRecorder",
    "TraceShardWriter",
    "load_trace",
    "merge_traces",
    "save_trace",
]
