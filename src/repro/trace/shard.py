"""Sharded trace stores: many shard files behind one small manifest.

A single v3 trace file already decodes fast, but it is still *one*
file decoded on *one* machine -- the trace-volume wall the MAD line of
work calls out as the limiting factor for trace-based debugging.  This
module splits a recording across shard files so that writing scales
with processes, reading fans out across files (each with its own block
index), and consumers that only want a window of a few processes never
touch the other shards' bytes.

Layout::

    big.trace              <- the manifest (one JSON line)
    big-shard0000.trace    <- ordinary v3 trace files, one per shard
    big-shard0001.trace
    ...

The manifest records the shard list with per-shard record counts,
time spans, process sets and byte sizes -- everything a reader needs to
*plan* a query without opening any shard file.  Each shard file is a
complete, self-describing v3 trace file (header, columnar blocks --
optionally compressed -- and an index footer), so a lone shard remains
readable by any v3 reader and repairable by ``reindex``.

Routing: ``by="proc"`` writes one shard per process rank (the paper's
per-process trace shape); ``by="hash"`` buckets ranks into a fixed
number of shards (``rank % nshards``) for very wide runs.  Either way
a record's global ``index`` (assigned at recording time) rides along,
and the reader's fan-out *merges streams by that index*, so a sharded
read is record-for-record identical to the single-file read.

:class:`TraceFileReader` consumes manifests transparently: pass the
manifest path and ``read_all`` / ``read_columns`` / ``seek_window``
fan out (reusing each shard's parallel block loader) with an ordered
merge.  Shard files are opened lazily -- a degenerate window, an empty
shard, or a proc filter that excludes a shard short-circuits without
opening that file (``reader.shards_opened`` observes this).
"""

from __future__ import annotations

import heapq
import json
import os
import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from operator import attrgetter
from pathlib import Path
from typing import Callable, Iterator, Optional, Sequence, Union

import numpy as np

from .columnar import ColumnBlock
from .events import EventKind, TraceRecord

MANIFEST_VERSION = 1
#: shard-file suffix pattern: ``<manifest stem>-shard0000.trace``
SHARD_TEMPLATE = "{stem}-shard{num:04d}.trace"


def _tracefile():
    """Late import of :mod:`repro.trace.tracefile` (it imports us
    lazily from the reader, so a top-level import would be circular)."""
    from repro.trace import tracefile

    return tracefile


@dataclass(frozen=True)
class ShardInfo:
    """One shard's manifest entry: enough to plan without opening it."""

    path: str  # relative to the manifest's directory
    records: int
    t_min: float
    t_max: float
    procs: frozenset[int]
    nbytes: int

    def overlaps(
        self, t_lo: float, t_hi: float, procs: Optional[set[int]]
    ) -> bool:
        """Whether any record of this shard can fall in the window --
        the fan-out short-circuit (empty shards never overlap)."""
        if self.records == 0:
            return False
        if t_lo > t_hi or (procs is not None and not procs):
            return False
        if self.t_max < t_lo or self.t_min > t_hi:
            return False
        return procs is None or bool(self.procs & procs)

    def to_jsonable(self) -> dict:
        return {
            "path": self.path,
            "records": self.records,
            "span": [self.t_min, self.t_max],
            "procs": sorted(self.procs),
            "nbytes": self.nbytes,
        }

    @classmethod
    def from_jsonable(cls, data: dict) -> "ShardInfo":
        span = data.get("span", [0.0, 0.0])
        return cls(
            path=data["path"],
            records=data.get("records", 0),
            t_min=span[0],
            t_max=span[1],
            procs=frozenset(data.get("procs", [])),
            nbytes=data.get("nbytes", 0),
        )


@dataclass(frozen=True)
class ShardManifest:
    """The parsed manifest line: global aggregates + the shard table."""

    nprocs: int
    kinds: Optional[list[str]]
    by: str
    records: int
    t_min: float
    t_max: float
    shards: tuple[ShardInfo, ...]

    @property
    def span(self) -> tuple[float, float]:
        return (self.t_min, self.t_max)

    @property
    def nshards(self) -> int:
        return len(self.shards)

    def to_jsonable(self) -> dict:
        tracefile = _tracefile()
        return {
            "format": tracefile.MANIFEST_FORMAT_NAME,
            "version": MANIFEST_VERSION,
            "nprocs": self.nprocs,
            "kinds": self.kinds,
            "by": self.by,
            "records": self.records,
            "span": [self.t_min, self.t_max],
            "shards": [s.to_jsonable() for s in self.shards],
        }

    @classmethod
    def from_jsonable(cls, data: dict) -> "ShardManifest":
        tracefile = _tracefile()
        if data.get("version", 1) > MANIFEST_VERSION:
            raise tracefile.TraceFileError(
                f"unsupported manifest version {data.get('version')!r}"
            )
        span = data.get("span", [0.0, 0.0])
        return cls(
            nprocs=data["nprocs"],
            kinds=data.get("kinds"),
            by=data.get("by", "proc"),
            records=data.get("records", 0),
            t_min=span[0],
            t_max=span[1],
            shards=tuple(
                ShardInfo.from_jsonable(s) for s in data.get("shards", [])
            ),
        )


def write_manifest(
    path: Union[str, Path],
    nprocs: int,
    infos: Sequence[ShardInfo],
    *,
    by: str = "proc",
    kinds: Optional[Sequence[str]] = None,
) -> ShardManifest:
    """Aggregate ``infos`` into a :class:`ShardManifest` and write it to
    ``path`` as one JSON line.  Shared by :meth:`TraceShardWriter.close`
    and by writers that produce shard files *without* a central writer
    object (the mproc backend's merge-free per-worker recording, where
    each forked rank streams its own shard and the parent only writes
    this manifest at exit)."""
    path = Path(path)
    populated = [s for s in infos if s.records]
    manifest = ShardManifest(
        nprocs=nprocs,
        kinds=list(kinds) if kinds is not None
        else [k.value for k in EventKind],
        by=by,
        records=sum(s.records for s in infos),
        t_min=min((s.t_min for s in populated), default=0.0),
        t_max=max((s.t_max for s in populated), default=0.0),
        shards=tuple(infos),
    )
    payload = json.dumps(manifest.to_jsonable(), separators=(",", ":"))
    path.write_text(payload + "\n")
    return manifest


def scan_shard_info(path: Union[str, Path]) -> Optional[ShardInfo]:
    """Recover a :class:`ShardInfo` by inspecting a shard file directly.

    Used when the process that wrote the shard died before reporting its
    stats (a killed mproc worker): reads the footer when present, else
    tolerantly scans the decodable block prefix.  Returns None when the
    file is missing or not a readable trace file, so the caller can
    leave it out of the manifest instead of naming an unreadable shard.
    """
    tracefile = _tracefile()
    path = Path(path)
    if not path.is_file():
        return None
    try:
        reader = tracefile.TraceFileReader(path)
        if reader.sharded:
            return None
        index = reader.index
        if index is not None:
            procs: frozenset[int] = frozenset().union(
                *(b.procs for b in index.blocks)
            ) if index.blocks else frozenset()
            return ShardInfo(
                path=path.name,
                records=index.records,
                t_min=index.t_min,
                t_max=index.t_max,
                procs=procs,
                nbytes=path.stat().st_size,
            )
        block = reader.read_columns(tolerant=True)
    except (tracefile.TraceFileError, OSError, ValueError):
        return None
    if len(block) == 0:
        return ShardInfo(path.name, 0, 0.0, 0.0, frozenset(), path.stat().st_size)
    return ShardInfo(
        path=path.name,
        records=len(block),
        t_min=float(block.columns["t0"].min()),
        t_max=float(block.columns["t1"].max()),
        procs=frozenset(np.unique(block.columns["proc"]).tolist()),
        nbytes=path.stat().st_size,
    )


class TraceShardWriter:
    """Writes one recording as shard files plus a manifest.

    Drop-in for :class:`~repro.trace.tracefile.TraceFileWriter` where a
    writer object is accepted (``FileSink``, ``save_trace``): exposes
    ``write`` / ``write_columns`` / ``flush`` / ``close`` /
    ``records_written`` and the context-manager protocol.

    Parameters
    ----------
    path:
        Manifest destination.  Shard files are created next to it as
        ``<stem>-shardNNNN.trace``.
    nprocs:
        Communicator size; also the shard count under ``by="proc"``.
    shards:
        Shard count for ``by="hash"`` (rank % shards routing).  Must be
        left None under ``by="proc"``.
    by:
        ``"proc"`` (one shard per rank, the default) or ``"hash"``.
    compression:
        Per-block compression for every shard, as accepted by
        :class:`TraceFileWriter` -- default ``"auto"`` (zstd when
        available, else zlib): sharding exists for big traces, and big
        traces want compression.  Pass ``None`` for raw blocks.
    """

    def __init__(
        self,
        path: Union[str, Path],
        nprocs: int,
        auto_flush_every: Optional[int] = None,
        *,
        shards: Optional[int] = None,
        by: str = "proc",
        durable: bool = False,
        index_block: Optional[int] = None,
        compression: Union[None, bool, str] = "auto",
    ) -> None:
        tracefile = _tracefile()
        if nprocs < 1:
            raise ValueError(f"nprocs must be >= 1, got {nprocs}")
        if by == "proc":
            if shards is not None:
                raise ValueError(
                    "shards= applies to by='hash' routing only; by='proc' "
                    "always writes one shard per process"
                )
            nshards = nprocs
        elif by == "hash":
            nshards = min(nprocs, 8) if shards is None else shards
            if nshards < 1:
                raise ValueError(f"shards must be >= 1, got {shards}")
        else:
            raise ValueError(f"unknown routing {by!r}; expected 'proc' or 'hash'")
        self.path = Path(path)
        self.nprocs = nprocs
        self.by = by
        self.nshards = nshards
        self.version = tracefile.FORMAT_VERSION
        if index_block is None:
            index_block = tracefile.DEFAULT_INDEX_BLOCK
        self._closed = False
        self._writers = [
            tracefile.TraceFileWriter(
                self._shard_path(k),
                nprocs,
                auto_flush_every,
                durable=durable,
                index_block=index_block,
                compression=compression,
            )
            for k in range(nshards)
        ]

    def _shard_path(self, num: int) -> Path:
        return self.path.with_name(
            SHARD_TEMPLATE.format(stem=self.path.stem, num=num)
        )

    def shard_of(self, proc: int) -> int:
        """Which shard rank ``proc``'s records go to."""
        return proc if self.by == "proc" else proc % self.nshards

    # ------------------------------------------------------------------
    def write(self, record: TraceRecord) -> None:
        """Route one record to its shard (buffered until flush)."""
        if self._closed:
            raise _tracefile().TraceFileError(
                f"shard writer for {self.path} is closed"
            )
        if not 0 <= record.proc < self.nprocs:
            raise ValueError(
                f"record {record.index} has proc {record.proc} outside "
                f"[0, {self.nprocs}); cannot route it to a shard"
            )
        self._writers[self.shard_of(record.proc)].write(record)

    def write_columns(self, block: ColumnBlock) -> int:
        """Bulk-append a :class:`ColumnBlock`, split by shard.

        Rows keep their within-shard order (and their global ``index``
        values), so the reader's index merge reconstructs the original
        stream exactly.
        """
        if self._closed:
            raise _tracefile().TraceFileError(
                f"shard writer for {self.path} is closed"
            )
        n = len(block)
        if n == 0:
            return 0
        proc = block.columns["proc"]
        if proc.size and (int(proc.min()) < 0 or int(proc.max()) >= self.nprocs):
            raise ValueError(
                f"column block contains procs outside [0, {self.nprocs}); "
                "cannot route to shards"
            )
        if self.nshards == 1:
            self._writers[0].write_columns(block)
            return n
        shard_ids = proc if self.by == "proc" else proc % self.nshards
        for k in np.unique(shard_ids).tolist():
            mask = shard_ids == k
            sub = block if mask.all() else block.filter(mask)
            self._writers[int(k)].write_columns(sub)
        return n

    def flush(self) -> int:
        """Flush every shard; returns total records pushed to disk."""
        return sum(w.flush() for w in self._writers)

    def close(self) -> None:
        """Close every shard (writing its footer), then write the
        manifest.  The manifest goes last: a crash mid-close leaves
        individually readable shard files and no manifest, never a
        manifest naming unreadable shards."""
        if self._closed:
            return
        try:
            errors = []
            infos: list[ShardInfo] = []
            for k, w in enumerate(self._writers):
                try:
                    w.close()
                except Exception as exc:  # keep closing the other shards
                    errors.append(exc)
                    continue
                index = w._build_index()
                shard_path = self._shard_path(k)
                infos.append(
                    ShardInfo(
                        path=shard_path.name,
                        records=index.records,
                        t_min=index.t_min,
                        t_max=index.t_max,
                        procs=frozenset().union(
                            *(b.procs for b in index.blocks)
                        ) if index.blocks else frozenset(),
                        nbytes=shard_path.stat().st_size,
                    )
                )
            if errors:
                raise errors[0]
            write_manifest(self.path, self.nprocs, infos, by=self.by)
        finally:
            self._closed = True

    @property
    def records_written(self) -> int:
        return sum(w.records_written for w in self._writers)

    def __enter__(self) -> "TraceShardWriter":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


class ShardSet:
    """Reader-side fan-out over a manifest's shard files.

    Owned by a manifest-mode :class:`~repro.trace.tracefile.
    TraceFileReader`, which delegates every record access here.  Shard
    readers are opened lazily and memoized; all merges are ordered by
    the global record ``index``, making every result record-for-record
    identical to the equivalent single-file read.
    """

    def __init__(self, path: Path, header: dict) -> None:
        self.path = path
        self.manifest = ShardManifest.from_jsonable(header)
        self._readers: dict[int, object] = {}
        # guards the memoization: the paged index's prefetcher thread
        # opens shards concurrently with demand queries
        self._open_lock = threading.Lock()
        #: shard files actually opened (the short-circuit observable)
        self.opened = 0

    # ------------------------------------------------------------------
    def _reader(self, shard: int):
        with self._open_lock:
            reader = self._readers.get(shard)
            if reader is None:
                tracefile = _tracefile()
                shard_path = self.path.parent / self.manifest.shards[shard].path
                try:
                    reader = tracefile.TraceFileReader(shard_path)
                except FileNotFoundError as exc:
                    raise tracefile.TraceFileError(
                        f"{self.path}: manifest names shard file "
                        f"{shard_path.name!r}, which does not exist "
                        "(was it moved or deleted alongside the manifest?)"
                    ) from exc
                if reader.sharded:
                    raise tracefile.TraceFileError(
                        f"{shard_path}: a manifest may not name another "
                        "manifest as a shard"
                    )
                self._readers[shard] = reader
                self.opened += 1
        return reader

    def _require_shards(self, op: str) -> None:
        """Record access over a manifest with an *empty* shard list is a
        malformed-store error, not a silently empty result: every writer
        (TraceShardWriter, the mproc per-worker mode) lists at least one
        shard, so an empty list means the manifest was truncated or
        hand-edited."""
        if not self.manifest.shards:
            tracefile = _tracefile()
            raise tracefile.TraceFileError(
                f"{self.path}: manifest lists no shard files; cannot "
                f"{op} (the store is malformed -- every shard writer "
                "records at least one shard entry)"
            )

    @property
    def bytes_read(self) -> int:
        return sum(r.bytes_read for r in self._readers.values())

    @property
    def skipped_lines(self) -> int:
        return sum(r.skipped_lines for r in self._readers.values())

    @property
    def last_skipped_lines(self) -> int:
        return sum(r.last_skipped_lines for r in self._readers.values())

    # ------------------------------------------------------------------
    def _populated(self) -> list[int]:
        return [
            k for k, s in enumerate(self.manifest.shards) if s.records > 0
        ]

    def _select(
        self, t_lo: float, t_hi: float, procs: Optional[set[int]]
    ) -> list[int]:
        return [
            k
            for k, s in enumerate(self.manifest.shards)
            if s.overlaps(t_lo, t_hi, procs)
        ]

    def _fan_out(
        self,
        shard_ids: Sequence[int],
        job: Callable,
        parallel: Optional[bool],
    ) -> list:
        """Run ``job(reader, inner_parallel)`` per shard, threaded when
        it pays; results come back in ``shard_ids`` order."""
        tracefile = _tracefile()
        readers = [self._reader(k) for k in shard_ids]
        use_pool = len(readers) >= 2 and (
            parallel is True
            or (parallel is None and (os.cpu_count() or 1) > 1)
        )
        if use_pool:
            # the pool parallelizes across shards; inner per-shard reads
            # stay serial so workers do not multiply
            workers = min(tracefile.MAX_PARALLEL_WORKERS, len(readers))
            with ThreadPoolExecutor(max_workers=workers) as pool:
                return list(pool.map(lambda r: job(r, False), readers))
        return [job(r, parallel) for r in readers]

    # ------------------------------------------------------------------
    def iter_records(
        self,
        where: Optional[Callable[[TraceRecord], bool]],
        tolerant: bool,
    ) -> Iterator[TraceRecord]:
        self._require_shards("iterate records")
        streams = [
            self._reader(k).iter_records(where, tolerant)
            for k in self._populated()
        ]
        return heapq.merge(*streams, key=attrgetter("index"))

    def read_all(
        self, tolerant: bool, parallel: Optional[bool]
    ) -> list[TraceRecord]:
        self._require_shards("read records")
        parts = self._fan_out(
            self._populated(),
            lambda r, inner: r.read_all(tolerant=tolerant, parallel=inner),
            parallel,
        )
        return list(heapq.merge(*parts, key=attrgetter("index")))

    def seek_window(
        self,
        t_lo: float,
        t_hi: float,
        procs: Optional[set[int]],
        parallel: Optional[bool],
    ) -> list[TraceRecord]:
        self._require_shards("seek a window")
        shard_ids = self._select(t_lo, t_hi, procs)
        if not shard_ids:
            return []
        parts = self._fan_out(
            shard_ids,
            lambda r, inner: r.seek_window(t_lo, t_hi, procs, parallel=inner),
            parallel,
        )
        return list(heapq.merge(*parts, key=attrgetter("index")))

    def read_columns(
        self,
        t_lo: float,
        t_hi: float,
        procs: Optional[set[int]],
        windowed: bool,
        parallel: Optional[bool],
        tolerant: bool,
    ) -> ColumnBlock:
        self._require_shards("read columns")
        if windowed:
            shard_ids = self._select(t_lo, t_hi, procs)
        else:
            shard_ids = self._populated()
        if not shard_ids:
            return ColumnBlock.empty()
        lo = None if not windowed else t_lo
        hi = None if not windowed else t_hi
        parts = self._fan_out(
            shard_ids,
            lambda r, inner: r.read_columns(
                t_lo=lo, t_hi=hi, procs=procs, parallel=inner,
                tolerant=tolerant,
            ),
            parallel,
        )
        merged = ColumnBlock.concat(parts)
        index_col = merged.columns["index"]
        if index_col.size and np.any(index_col[1:] < index_col[:-1]):
            merged = merged.filter(np.argsort(index_col, kind="stable"))
        return merged

    # ------------------------------------------------------------------
    def block_entries(self) -> list:
        """Every shard's footer entries as BlockRefs (grouped by shard;
        the paged index orders query *results* by record index)."""
        self._require_shards("enumerate blocks")
        tracefile = _tracefile()
        refs = []
        for k in self._populated():
            reader = self._reader(k)
            if reader.index is None:
                raise tracefile.TraceFileError(
                    f"{reader.path}: shard has no index footer; run "
                    "`python -m repro.trace.tracefile reindex` on it"
                )
            refs.extend(
                tracefile.BlockRef(k, entry) for entry in reader.index.blocks
            )
        return refs

    def load_block(self, ref) -> ColumnBlock:
        tracefile = _tracefile()
        return self._reader(ref.shard).load_block(
            tracefile.BlockRef(None, ref.entry)
        )


__all__ = [
    "MANIFEST_VERSION",
    "SHARD_TEMPLATE",
    "ShardInfo",
    "ShardManifest",
    "ShardSet",
    "TraceShardWriter",
    "scan_shard_info",
    "write_manifest",
]
