"""Trace comparison: did two executions have the same history?

The §4.2 replay guarantee -- "the replay has identical event causality
with the original program execution" -- is a checkable property.  This
module checks it: compare two traces process by process and report the
first divergence, if any.  Uses:

* validating that a controlled replay really reproduced the prefix up to
  its stopline;
* regression debugging: run a program before and after a change and see
  exactly where their communication behaviour first differs;
* verifying that two scheduling policies are observationally equivalent
  for a deterministic program.

Comparison is over each record's *behavioural signature* -- construct
kind, marker, and message endpoints/tag/seq -- not over virtual times
(which differ legitimately when cost models or policies differ) unless
``compare_times`` is set.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from .events import TraceRecord
from .trace import Trace


def record_signature(rec: TraceRecord, with_times: bool = False) -> tuple:
    """The behaviour-defining fields of a record."""
    sig = (rec.kind, rec.marker, rec.src, rec.dst, rec.tag, rec.seq)
    if with_times:
        sig = sig + (rec.t0, rec.t1)
    return sig


@dataclass(frozen=True)
class Divergence:
    """The first point where one process's histories disagree."""

    proc: int
    position: int  # index into the per-process sequence
    left: Optional[TraceRecord]  # None = left ended early
    right: Optional[TraceRecord]

    def describe(self) -> str:
        def show(rec: Optional[TraceRecord]) -> str:
            return str(rec) if rec is not None else "<end of trace>"

        return (
            f"p{self.proc} diverges at event #{self.position}:\n"
            f"  left : {show(self.left)}\n"
            f"  right: {show(self.right)}"
        )


@dataclass
class TraceDiff:
    """Result of comparing two traces."""

    identical: bool
    divergences: list[Divergence] = field(default_factory=list)
    #: per-process count of leading events that agree
    common_prefix: dict[int, int] = field(default_factory=dict)

    def first(self) -> Optional[Divergence]:
        return self.divergences[0] if self.divergences else None

    def as_text(self) -> str:
        if self.identical:
            return "traces identical"
        lines = [f"{len(self.divergences)} process(es) diverge:"]
        for d in self.divergences:
            lines.append(d.describe())
        return "\n".join(lines)


def diff_traces(
    left: Trace,
    right: Trace,
    compare_times: bool = False,
    markers_below: Optional[dict[int, int]] = None,
) -> TraceDiff:
    """Compare per-process histories; report the first divergence of each
    process.

    ``markers_below`` restricts the comparison per process to records
    with marker < the given threshold -- exactly the prefix a stopline
    replay promises to reproduce (omitted ranks compare fully).
    """
    if left.nprocs != right.nprocs:
        raise ValueError(
            f"traces have different widths: {left.nprocs} vs {right.nprocs}"
        )
    out = TraceDiff(identical=True)
    for p in range(left.nprocs):
        limit = (markers_below or {}).get(p)

        def rows(trace: Trace) -> list[TraceRecord]:
            rs = list(trace.by_proc(p))
            if limit is not None:
                rs = [r for r in rs if r.marker < limit]
            return rs

        lrows, rrows = rows(left), rows(right)
        agree = 0
        div: Optional[Divergence] = None
        for i in range(max(len(lrows), len(rrows))):
            lrec = lrows[i] if i < len(lrows) else None
            rrec = rrows[i] if i < len(rrows) else None
            if (
                lrec is not None
                and rrec is not None
                and record_signature(lrec, compare_times)
                == record_signature(rrec, compare_times)
            ):
                agree += 1
                continue
            div = Divergence(proc=p, position=i, left=lrec, right=rrec)
            break
        out.common_prefix[p] = agree
        if div is not None:
            out.identical = False
            out.divergences.append(div)
    return out


def first_divergence_locations(diff: TraceDiff) -> list[dict]:
    """Compact, JSON-able location of each process's first divergence.

    The schedule-space explorer ships these across process boundaries,
    so every field is a plain scalar/string: process, per-process event
    position, and the marker/kind/location of the two records (``None``
    for a side that ended early).
    """

    def side(rec: Optional[TraceRecord]) -> Optional[dict]:
        if rec is None:
            return None
        return {
            "marker": rec.marker,
            "kind": rec.kind.value,
            "location": str(rec.location),
            "src": rec.src,
            "dst": rec.dst,
            "tag": rec.tag,
            "seq": rec.seq,
        }

    return [
        {
            "proc": d.proc,
            "position": d.position,
            "left": side(d.left),
            "right": side(d.right),
        }
        for d in diff.divergences
    ]


def results_equal(
    left: object,
    right: object,
    rtol: float = 1e-9,
    atol: float = 1e-12,
) -> bool:
    """Tolerant structural equality of two program results.

    Schedule exploration classifies a replayed schedule as *numerically
    divergent* when the per-rank return values differ from the base
    run's beyond floating-point noise.  Results are arbitrary user
    values, so the comparison recurses through lists/tuples/dicts and
    compares leaves numerically when both sides are numbers or numpy
    arrays, exactly otherwise.
    """
    import numpy as np

    if left is None or right is None:
        return left is None and right is None
    if isinstance(left, (list, tuple)) and isinstance(right, (list, tuple)):
        if len(left) != len(right):
            return False
        return all(results_equal(a, b, rtol, atol) for a, b in zip(left, right))
    if isinstance(left, dict) and isinstance(right, dict):
        if set(left) != set(right):
            return False
        return all(results_equal(left[k], right[k], rtol, atol) for k in left)
    left_num = isinstance(left, (int, float, complex, np.number, np.ndarray))
    right_num = isinstance(right, (int, float, complex, np.number, np.ndarray))
    if left_num and right_num:
        if isinstance(left, bool) != isinstance(right, bool):
            return False
        try:
            return bool(np.allclose(left, right, rtol=rtol, atol=atol))
        except ValueError:  # shape mismatch
            return False
    return bool(left == right)


def verify_replay_prefix(
    original: Trace,
    replayed: Trace,
    thresholds: dict[int, int],
) -> TraceDiff:
    """Check the replay guarantee: up to each process's stopline marker,
    the replayed history equals the original (behavioural signatures)."""
    return diff_traces(original, replayed, markers_below=thresholds)
