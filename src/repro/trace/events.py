"""Trace records: the unit of execution history.

"The trace contains a record for each execution of each instrumented
program construct, such as a communication event.  A record identifies
the construct by giving its program location, the id of the process that
executed the construct, and the start and end time of the construct
execution.  In addition, if the construct is a message passing operation,
the record contains the message tag together with the source and
destination of the message." -- paper, Section 3.

Every record additionally carries the *execution marker* in force when
the construct began (Section 2: "tags in the execution trace that allow
mapping from a particular trace record to the point of its generation"),
which is what lets a stopline selected in the display be translated into
replay thresholds.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Optional

from repro.mp.datatypes import SourceLocation


class EventKind(enum.Enum):
    """Construct kinds a trace record can describe."""

    # --- function-level constructs (uinst / AIMS function instrumentation)
    FUNC_ENTRY = "func_entry"
    FUNC_EXIT = "func_exit"
    # --- finer source constructs (AIMS selective instrumentation)
    LOOP_ENTRY = "loop_entry"
    LOOP_EXIT = "loop_exit"
    STATEMENT = "statement"
    # --- point-to-point communication
    SEND = "send"
    SSEND = "ssend"
    RSEND = "rsend"
    ISEND = "isend"
    ISSEND = "issend"
    RECV = "recv"
    IRECV = "irecv"
    PROBE = "probe"
    IPROBE = "iprobe"
    SENDRECV = "sendrecv"
    WAIT = "wait"
    TEST = "test"
    WAITALL = "waitall"
    WAITANY = "waitany"
    CANCEL = "cancel"
    # --- collectives
    BARRIER = "barrier"
    BCAST = "bcast"
    SCATTER = "scatter"
    GATHER = "gather"
    ALLGATHER = "allgather"
    REDUCE = "reduce"
    ALLREDUCE = "allreduce"
    ALLTOALL = "alltoall"
    SCAN = "scan"
    SPLIT = "split"
    # --- local activity & lifecycle
    COMPUTE = "compute"
    PROC_START = "proc_start"
    PROC_EXIT = "proc_exit"


#: Kinds that put a message into flight.
SEND_KINDS = frozenset(
    {EventKind.SEND, EventKind.SSEND, EventKind.RSEND, EventKind.ISEND, EventKind.ISSEND}
)

#: Kinds that consume a message.  Wrappers normalize completed
#: wait/test/waitany receive completions into ``RECV`` records, so RECV
#: is the single receive-side kind the matching analysis needs.
RECV_KINDS = frozenset({EventKind.RECV})

#: Collective kinds (their constituent traffic appears as SEND/RECV too).
COLLECTIVE_KINDS = frozenset(
    {
        EventKind.BARRIER,
        EventKind.BCAST,
        EventKind.SCATTER,
        EventKind.GATHER,
        EventKind.ALLGATHER,
        EventKind.REDUCE,
        EventKind.ALLREDUCE,
        EventKind.ALLTOALL,
        EventKind.SCAN,
        EventKind.SPLIT,
    }
)


@dataclass
class TraceRecord:
    """One executed construct.

    Attributes
    ----------
    index:
        Global position in the trace (recording order; deterministic).
    proc:
        Rank that executed the construct.
    kind:
        The construct kind.
    t0 / t1:
        Virtual start / end times of the construct execution.
    marker:
        The process's execution-marker value identifying this construct
        instance (replay threshold ``marker`` stops *before* it runs).
    location:
        Program source of the construct.
    src / dst / tag / size / seq:
        Message fields (message operations only; -1/-1/-1/0/-1 otherwise).
        ``seq`` is the per-(src,dst,tag) sequence number whose uniqueness
        under non-overtaking gives the send<->recv pairing.
    peer_location / peer_marker / peer_time:
        For receives: where/when the matched message was sent.
    construct_id:
        AIMS-style id into a construct table (source instrumentation);
        -1 when the record did not come from source instrumentation.
    extra:
        Open dictionary for instrumentation-specific fields.
    """

    index: int
    proc: int
    kind: EventKind
    t0: float
    t1: float
    marker: int
    location: SourceLocation = field(default_factory=SourceLocation.unknown)
    src: int = -1
    dst: int = -1
    tag: int = -1
    size: int = 0
    seq: int = -1
    peer_location: Optional[SourceLocation] = None
    peer_marker: int = -1
    peer_time: float = -1.0
    construct_id: int = -1
    extra: dict[str, Any] = field(default_factory=dict)

    # ------------------------------------------------------------------
    @property
    def is_send(self) -> bool:
        return self.kind in SEND_KINDS

    @property
    def is_recv(self) -> bool:
        return self.kind in RECV_KINDS

    @property
    def is_message(self) -> bool:
        return self.is_send or self.is_recv

    @property
    def is_collective(self) -> bool:
        return self.kind in COLLECTIVE_KINDS

    @property
    def duration(self) -> float:
        return self.t1 - self.t0

    def message_key(self) -> tuple[int, int, int, int]:
        """The (src, dst, tag, seq) join key pairing sends with receives."""
        return (self.src, self.dst, self.tag, self.seq)

    def __str__(self) -> str:  # pragma: no cover - display convenience
        core = (
            f"[{self.index}] p{self.proc} {self.kind.value} "
            f"t={self.t0:.2f}..{self.t1:.2f} m={self.marker}"
        )
        if self.is_message:
            core += f" {self.src}->{self.dst} tag={self.tag} #{self.seq}"
        return core

    # ------------------------------------------------------------------
    # serialization (line-oriented trace files)
    # ------------------------------------------------------------------
    def to_jsonable(self) -> dict[str, Any]:
        out: dict[str, Any] = {
            "i": self.index,
            "p": self.proc,
            "k": self.kind.value,
            "t0": self.t0,
            "t1": self.t1,
            "m": self.marker,
            "loc": [self.location.filename, self.location.lineno, self.location.function],
        }
        if (
            self.src != -1
            or self.dst != -1
            or self.tag != -1
            or self.seq != -1
            or self.size != 0
        ):
            out.update(src=self.src, dst=self.dst, tag=self.tag,
                       size=self.size, seq=self.seq)
        if self.peer_location is not None:
            out["ploc"] = [
                self.peer_location.filename,
                self.peer_location.lineno,
                self.peer_location.function,
            ]
            out["pm"] = self.peer_marker
            out["pt"] = self.peer_time
        if self.construct_id != -1:
            out["cid"] = self.construct_id
        if self.extra:
            out["x"] = self.extra
        return out

    @classmethod
    def from_jsonable(cls, data: dict[str, Any]) -> "TraceRecord":
        loc = data.get("loc") or ["<unknown>", 0, "<unknown>"]
        ploc = data.get("ploc")
        return cls(
            index=data["i"],
            proc=data["p"],
            kind=EventKind(data["k"]),
            t0=data["t0"],
            t1=data["t1"],
            marker=data["m"],
            location=SourceLocation(loc[0], loc[1], loc[2]),
            src=data.get("src", -1),
            dst=data.get("dst", -1),
            tag=data.get("tag", -1),
            size=data.get("size", 0),
            seq=data.get("seq", -1),
            peer_location=SourceLocation(ploc[0], ploc[1], ploc[2]) if ploc else None,
            peer_marker=data.get("pm", -1),
            peer_time=data.get("pt", -1.0),
            construct_id=data.get("cid", -1),
            extra=data.get("x", {}),
        )


#: Mapping from runtime operation names to trace kinds, used by the
#: wrapper instrumentation library.
OP_TO_KIND: dict[str, EventKind] = {
    "send": EventKind.SEND,
    "ssend": EventKind.SSEND,
    "rsend": EventKind.RSEND,
    "isend": EventKind.ISEND,
    "issend": EventKind.ISSEND,
    "recv": EventKind.RECV,
    "irecv": EventKind.IRECV,
    "probe": EventKind.PROBE,
    "iprobe": EventKind.IPROBE,
    "sendrecv": EventKind.SENDRECV,
    "wait": EventKind.WAIT,
    "test": EventKind.TEST,
    "waitall": EventKind.WAITALL,
    "waitany": EventKind.WAITANY,
    "cancel": EventKind.CANCEL,
    "barrier": EventKind.BARRIER,
    "bcast": EventKind.BCAST,
    "scatter": EventKind.SCATTER,
    "gather": EventKind.GATHER,
    "allgather": EventKind.ALLGATHER,
    "reduce": EventKind.REDUCE,
    "allreduce": EventKind.ALLREDUCE,
    "alltoall": EventKind.ALLTOALL,
    "scan": EventKind.SCAN,
    "split": EventKind.SPLIT,
    "compute": EventKind.COMPUTE,
}
