"""Per-block compression for trace-file format v3.

The paper's premise -- post-mortem trace analysis beats interactive
debugging *at scale* -- runs into the wall every trace-based tool hits
(MAD, the tracer-driver work): trace volume.  A v3 block is already
compact (fixed-width columns + an interned side table), but columns of
a message-passing trace are extremely regular -- monotone times, small
integer ranges, repeating proc/kind cycles -- which makes them very
compressible.  This module puts a general-purpose codec *behind* the
existing per-block ``encoding`` tag so compression composes with every
other v3 mechanism (index footer, parallel loader, footerless linear
walk) and never changes the decoded bytes:

* ``"columnar"``        -- a raw ``RTB3`` block, byte-identical to what
  pre-compression writers produced (the default; old readers keep
  working on files written without compression);
* ``"columnar+zlib"``   -- the block bytes deflated with stdlib zlib,
  always available;
* ``"columnar+zstd"``   -- zstandard when the ``zstandard`` package is
  importable (preferred by ``codec="auto"``), with zlib as the
  documented fallback when it is not.

On disk a compressed block is framed so the footerless linear walk
stays self-delimiting::

    +----------------------------------------------------------+
    | "RTBZ" | codec u8 | raw_nbytes u64 | comp_nbytes u64     |
    +----------------------------------------------------------+
    | comp_nbytes bytes that decompress to one raw RTB3 block  |
    +----------------------------------------------------------+

``codec`` is a registry code (1 = zlib, 2 = zstd); an unknown code
raises a clear :class:`~repro.trace.columnar.ColumnDecodeError` instead
of feeding garbage to the column decoder.  Decompression yields a plain
``bytes`` buffer that the zero-copy numpy decode path consumes exactly
as it consumes the mmap, so everything downstream of
:func:`~repro.trace.columnar.decode_block` is unchanged.

Setting the environment variable ``REPRO_NO_ZSTD`` (to any non-empty
value) makes zstd report unavailable even when the package is
installed -- the CI lever proving the zlib fallback path.
"""

from __future__ import annotations

import os
import struct
import zlib
from dataclasses import dataclass
from typing import Callable, Optional, Union

from .columnar import ColumnDecodeError

#: magic prefix of a compressed-block frame (vs ``RTB3`` raw blocks)
COMPRESSED_MAGIC = b"RTBZ"
#: frame header: magic, codec code, raw nbytes, compressed nbytes
COMPRESSED_HEADER = struct.Struct("<4sBQQ")

#: env var forcing the zstd codec to report unavailable (CI fallback leg)
NO_ZSTD_ENV = "REPRO_NO_ZSTD"

#: zlib level used by the writer: level 1 keeps compression >2x on
#: columnar trace data while staying ~3x faster than the default level,
#: which matters when a flush sits on the recording path.
ZLIB_LEVEL = 1


@dataclass(frozen=True)
class Codec:
    """One registered block codec."""

    name: str
    code: int
    compress: Callable[[bytes], bytes]
    decompress: Callable[[bytes, int], bytes]  # (payload, raw_nbytes)
    available: Callable[[], bool]

    @property
    def encoding(self) -> str:
        """The footer ``encoding`` tag for blocks this codec wrote."""
        return f"columnar+{self.name}"


def _zstd_module():
    if os.environ.get(NO_ZSTD_ENV):
        return None
    try:
        import zstandard
    except ImportError:
        return None
    return zstandard


def _zstd_compress(data: bytes) -> bytes:
    zstandard = _zstd_module()
    if zstandard is None:  # pragma: no cover - guarded by resolve_codec
        raise RuntimeError("zstandard is not available")
    return zstandard.ZstdCompressor().compress(data)


def _zstd_decompress(payload: bytes, raw_nbytes: int) -> bytes:
    zstandard = _zstd_module()
    if zstandard is None:
        raise ColumnDecodeError(
            "block is zstd-compressed but the 'zstandard' package is not "
            "importable (or REPRO_NO_ZSTD is set); install zstandard or "
            "convert the file with --compress zlib on a machine that has it"
        )
    return zstandard.ZstdDecompressor().decompress(
        payload, max_output_size=raw_nbytes
    )


ZLIB_CODEC = Codec(
    name="zlib",
    code=1,
    compress=lambda data: zlib.compress(data, ZLIB_LEVEL),
    decompress=lambda payload, raw_nbytes: zlib.decompress(payload),
    available=lambda: True,
)

ZSTD_CODEC = Codec(
    name="zstd",
    code=2,
    compress=_zstd_compress,
    decompress=_zstd_decompress,
    available=lambda: _zstd_module() is not None,
)

#: name -> codec, the writer-side registry
CODECS: dict[str, Codec] = {c.name: c for c in (ZLIB_CODEC, ZSTD_CODEC)}
#: frame code -> codec, the reader-side registry
CODECS_BY_CODE: dict[int, Codec] = {c.code: c for c in CODECS.values()}
#: footer encoding tag -> codec
CODECS_BY_ENCODING: dict[str, Codec] = {
    c.encoding: c for c in CODECS.values()
}

#: every encoding tag a current reader understands
KNOWN_ENCODINGS = frozenset(
    {"jsonl", "columnar"} | set(CODECS_BY_ENCODING)
)


def default_codec() -> Codec:
    """The best available codec: zstd when importable, else zlib."""
    return ZSTD_CODEC if ZSTD_CODEC.available() else ZLIB_CODEC


def resolve_codec(
    spec: Union[None, bool, str, Codec],
) -> Optional[Codec]:
    """Writer-side codec selection.

    ``None``/``False``/``"none"`` -> no compression; ``True``/``"auto"``
    -> :func:`default_codec` (zstd with zlib fallback); a codec name
    selects it explicitly and raises :class:`LookupError` when the
    backing library is missing (an explicit ask must not silently
    degrade).
    """
    if spec is None or spec is False or spec == "none":
        return None
    if spec is True or spec == "auto":
        return default_codec()
    if isinstance(spec, Codec):
        codec = spec
    else:
        try:
            codec = CODECS[spec]
        except (KeyError, TypeError):
            raise LookupError(
                f"unknown compression {spec!r}; expected one of "
                f"{sorted(CODECS)} (or 'auto'/'none')"
            ) from None
    if not codec.available():
        raise LookupError(
            f"compression {codec.name!r} is not available in this "
            "environment (package not installed, or disabled via "
            f"{NO_ZSTD_ENV}); use 'zlib' or 'auto'"
        )
    return codec


def compress_frame(raw: bytes, codec: Codec) -> bytes:
    """One raw RTB3 block -> one self-delimiting compressed frame."""
    payload = codec.compress(raw)
    header = COMPRESSED_HEADER.pack(
        COMPRESSED_MAGIC, codec.code, len(raw), len(payload)
    )
    return header + payload


def is_compressed_at(buf, offset: int) -> bool:
    """Whether ``buf[offset:]`` starts a compressed-block frame."""
    return bytes(buf[offset : offset + 4]) == COMPRESSED_MAGIC


def decompress_frame(buf, offset: int) -> tuple[bytes, int, int]:
    """Decode the compressed frame at ``offset``.

    Returns ``(raw block bytes, frame nbytes, raw nbytes)``.  Raises
    :class:`ColumnDecodeError` on truncation, an unknown codec code, or
    payload damage -- the same error family as the raw block decoder,
    so tolerant readers treat a torn compressed flush exactly like a
    torn raw one (the block-aligned prefix stays readable).
    """
    if offset + COMPRESSED_HEADER.size > len(buf):
        raise ColumnDecodeError("truncated compressed-block header")
    magic, code, raw_nbytes, comp_nbytes = COMPRESSED_HEADER.unpack_from(
        buf, offset
    )
    if magic != COMPRESSED_MAGIC:  # pragma: no cover - caller checks magic
        raise ColumnDecodeError(f"bad compressed-block magic {magic!r}")
    codec = CODECS_BY_CODE.get(code)
    if codec is None:
        raise ColumnDecodeError(
            f"unknown block-compression codec code {code}; this file was "
            "written by a newer version of the format"
        )
    start = offset + COMPRESSED_HEADER.size
    if start + comp_nbytes > len(buf):
        raise ColumnDecodeError("truncated compressed-block payload")
    payload = bytes(buf[start : start + comp_nbytes])
    try:
        raw = codec.decompress(payload, raw_nbytes)
    except ColumnDecodeError:
        raise
    except Exception as exc:
        raise ColumnDecodeError(
            f"damaged {codec.name}-compressed block: {exc}"
        ) from exc
    if len(raw) != raw_nbytes:
        raise ColumnDecodeError(
            f"compressed block decompressed to {len(raw)} bytes, "
            f"header promised {raw_nbytes}"
        )
    return raw, COMPRESSED_HEADER.size + comp_nbytes, raw_nbytes


__all__ = [
    "CODECS",
    "CODECS_BY_CODE",
    "CODECS_BY_ENCODING",
    "COMPRESSED_HEADER",
    "COMPRESSED_MAGIC",
    "Codec",
    "KNOWN_ENCODINGS",
    "NO_ZSTD_ENV",
    "ZLIB_CODEC",
    "ZLIB_LEVEL",
    "ZSTD_CODEC",
    "compress_frame",
    "decompress_frame",
    "default_codec",
    "is_compressed_at",
    "resolve_codec",
]
