"""The trace recorder: filters, stamps, and publishes every record.

One recorder serves a whole runtime.  Instrumentation (wrapper library,
UserMonitor, AIMS-style source monitors) appends records; the recorder
applies the paper's Section 3 size-control knobs ("The size of trace
file can be controlled by selectively instrumenting constructs and by
toggling the collection on and off in the monitor" -- see
:meth:`set_enabled` and :meth:`set_kind_filter`), stamps the global
index, and publishes each surviving record once to a
:class:`~repro.trace.sinks.TraceBus`.

Consumers are bus sinks (see :mod:`repro.trace.sinks`): by default a
:class:`~repro.trace.sinks.MemorySink` materializes the classic
:class:`Trace` snapshot; a trace file, a bounded ring buffer, an
incremental trace graph, or arbitrary analysis callbacks can be attached
at any time and observe the same live stream.

Thread-safety: records are only appended by the process thread holding
the scheduler token, and read by the controller thread while no process
runs, so no locking is required -- a property of the cooperative runtime.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Callable, Iterable, Optional, Union

from repro.mp.datatypes import SourceLocation

from .events import EventKind, TraceRecord
from .sinks import (
    CallbackSink,
    FileSink,
    MemorySink,
    RingBufferSink,
    TraceBus,
    TraceSink,
)
from .trace import Trace
from .tracefile import TraceFileWriter


class TraceRecorder:
    """Collects trace records for one execution.

    Parameters
    ----------
    nprocs:
        Communicator size (rows of the eventual time-space diagram).
    kinds:
        If given, only these event kinds are recorded (selective
        construct instrumentation).
    memory_limit:
        If given, in-memory retention is a ring buffer of this many
        records (bounded memory for long runs); :meth:`snapshot` then
        covers only the retained tail.  None keeps the full history.
    index_start / index_step:
        The arithmetic progression of global indices this recorder
        stamps (default ``0, 1, 2, ...``).  A per-worker recorder in a
        multi-process run uses ``index_start=rank, index_step=nprocs``
        so every rank mints a disjoint, globally ordered slice of the
        index space with no coordination: merging the per-rank streams
        by index yields one strictly increasing sequence.
    """

    def __init__(
        self,
        nprocs: int,
        kinds: Optional[Iterable[EventKind]] = None,
        memory_limit: Optional[int] = None,
        index_start: int = 0,
        index_step: int = 1,
    ) -> None:
        if index_step < 1:
            raise ValueError(f"index_step must be >= 1, got {index_step}")
        self.nprocs = nprocs
        self.bus = TraceBus()
        self._memory: "MemorySink | RingBufferSink" = (
            RingBufferSink(memory_limit) if memory_limit is not None else MemorySink()
        )
        self.bus.attach(self._memory)
        self._next_index = index_start
        self._index_step = index_step
        self._recorded = 0
        self._enabled_global = True
        self._enabled_proc = [True] * nprocs
        self._kind_filter: Optional[frozenset[EventKind]] = (
            frozenset(kinds) if kinds is not None else None
        )
        self._file_sink: Optional[FileSink] = None
        #: records dropped by toggles/filters (observability of gaps)
        self.dropped = 0

    # ------------------------------------------------------------------
    # collection control (paper Section 3 size-control knobs)
    # ------------------------------------------------------------------
    def set_enabled(self, on: bool, proc: Optional[int] = None) -> None:
        """Toggle collection globally (``proc=None``) or for one rank."""
        if proc is None:
            self._enabled_global = on
        else:
            self._enabled_proc[proc] = on

    def is_enabled(self, proc: int) -> bool:
        return self._enabled_global and self._enabled_proc[proc]

    def set_kind_filter(self, kinds: Optional[Iterable[EventKind]]) -> None:
        """Restrict recording to the given kinds (None = everything)."""
        self._kind_filter = frozenset(kinds) if kinds is not None else None

    # ------------------------------------------------------------------
    # writing
    # ------------------------------------------------------------------
    def record(
        self,
        proc: int,
        kind: EventKind,
        t0: float,
        t1: float,
        marker: int,
        location: Optional[SourceLocation] = None,
        **fields: Any,
    ) -> Optional[TraceRecord]:
        """Append a record; returns it, or None when filtered out."""
        if not self.is_enabled(proc) or (
            self._kind_filter is not None and kind not in self._kind_filter
        ):
            self.dropped += 1
            return None
        rec = TraceRecord(
            index=self._next_index,
            proc=proc,
            kind=kind,
            t0=t0,
            t1=t1,
            marker=marker,
            location=location or SourceLocation.unknown(),
            **fields,
        )
        self._next_index += self._index_step
        self._recorded += 1
        self.bus.publish(rec)
        return rec

    # ------------------------------------------------------------------
    # reading
    # ------------------------------------------------------------------
    def snapshot(self) -> Trace:
        """A consistent Trace over the retained history (everything, or
        the ring-buffer tail under a ``memory_limit``)."""
        return self._memory.snapshot(self.nprocs)

    def __len__(self) -> int:
        return len(self._memory)

    @property
    def records(self) -> tuple[TraceRecord, ...]:
        return self._memory.records

    @property
    def total_recorded(self) -> int:
        """Records published over the recorder's lifetime (>= retained)."""
        return self._recorded

    # ------------------------------------------------------------------
    # pluggable sinks (the streaming pipeline surface)
    # ------------------------------------------------------------------
    def subscribe(self, sink: TraceSink, backfill: bool = False) -> TraceSink:
        """Attach a sink to the live stream; ``backfill`` first replays
        the retained in-memory history into it so a late subscriber
        still sees the full prefix."""
        if backfill:
            for rec in self._memory.records:
                sink.emit(rec)
        return self.bus.attach(sink)

    def unsubscribe(self, sink: TraceSink) -> None:
        self.bus.detach(sink)

    def add_callback(
        self, fn: Callable[[TraceRecord], None], backfill: bool = False
    ) -> CallbackSink:
        """Attach a per-record callback (analysis subscriber shim)."""
        sink = CallbackSink(fn)
        self.subscribe(sink, backfill=backfill)
        return sink

    # ------------------------------------------------------------------
    # file backing (flush-on-demand, Section 2.1)
    # ------------------------------------------------------------------
    def attach_file(
        self,
        path: Union[str, Path],
        auto_flush_every: Optional[int] = None,
        durable: bool = False,
        version: Optional[int] = None,
    ) -> TraceFileWriter:
        """Mirror all future records into a trace file (back-filling
        anything already retained in memory).  ``version`` selects the
        on-disk format (None = the current default)."""
        if self._file_sink is not None:
            raise RuntimeError("a trace file is already attached")
        sink = FileSink(
            path, self.nprocs, auto_flush_every, durable=durable,
            version=version,
        )
        self.subscribe(sink, backfill=True)
        self._file_sink = sink
        return sink.writer

    def flush(self) -> int:
        """Flush every attached sink; returns records moved to disk."""
        return self.bus.flush()

    def close(self) -> None:
        if self._file_sink is not None:
            self.bus.detach(self._file_sink)
            self._file_sink.close()
            self._file_sink = None
