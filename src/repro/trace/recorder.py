"""The in-memory trace recorder instrumentation layers write into.

One recorder serves a whole runtime.  Instrumentation (wrapper library,
UserMonitor, AIMS-style source monitors) appends records; the debugger
and analyses read a consistent :class:`Trace` snapshot at any stop.

Size control reproduces the paper's Section 3 knobs: "The size of trace
file can be controlled by selectively instrumenting constructs and by
toggling the collection on and off in the monitor" -- see
:meth:`set_enabled` (per process or globally) and :meth:`set_kind_filter`.

Thread-safety: records are only appended by the process thread holding
the scheduler token, and read by the controller thread while no process
runs, so no locking is required -- a property of the cooperative runtime.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Iterable, Optional, Union

from repro.mp.datatypes import SourceLocation

from .events import EventKind, TraceRecord
from .trace import Trace
from .tracefile import TraceFileWriter


class TraceRecorder:
    """Collects trace records for one execution.

    Parameters
    ----------
    nprocs:
        Communicator size (rows of the eventual time-space diagram).
    kinds:
        If given, only these event kinds are recorded (selective
        construct instrumentation).
    """

    def __init__(
        self,
        nprocs: int,
        kinds: Optional[Iterable[EventKind]] = None,
    ) -> None:
        self.nprocs = nprocs
        self._records: list[TraceRecord] = []
        self._enabled_global = True
        self._enabled_proc = [True] * nprocs
        self._kind_filter: Optional[frozenset[EventKind]] = (
            frozenset(kinds) if kinds is not None else None
        )
        self._writer: Optional[TraceFileWriter] = None
        #: records dropped by toggles/filters (observability of gaps)
        self.dropped = 0

    # ------------------------------------------------------------------
    # collection control (paper Section 3 size-control knobs)
    # ------------------------------------------------------------------
    def set_enabled(self, on: bool, proc: Optional[int] = None) -> None:
        """Toggle collection globally (``proc=None``) or for one rank."""
        if proc is None:
            self._enabled_global = on
        else:
            self._enabled_proc[proc] = on

    def is_enabled(self, proc: int) -> bool:
        return self._enabled_global and self._enabled_proc[proc]

    def set_kind_filter(self, kinds: Optional[Iterable[EventKind]]) -> None:
        """Restrict recording to the given kinds (None = everything)."""
        self._kind_filter = frozenset(kinds) if kinds is not None else None

    # ------------------------------------------------------------------
    # writing
    # ------------------------------------------------------------------
    def record(
        self,
        proc: int,
        kind: EventKind,
        t0: float,
        t1: float,
        marker: int,
        location: Optional[SourceLocation] = None,
        **fields: Any,
    ) -> Optional[TraceRecord]:
        """Append a record; returns it, or None when filtered out."""
        if not self.is_enabled(proc) or (
            self._kind_filter is not None and kind not in self._kind_filter
        ):
            self.dropped += 1
            return None
        rec = TraceRecord(
            index=len(self._records),
            proc=proc,
            kind=kind,
            t0=t0,
            t1=t1,
            marker=marker,
            location=location or SourceLocation.unknown(),
            **fields,
        )
        self._records.append(rec)
        if self._writer is not None:
            self._writer.write(rec)
        return rec

    # ------------------------------------------------------------------
    # reading
    # ------------------------------------------------------------------
    def snapshot(self) -> Trace:
        """A consistent Trace over everything recorded so far."""
        return Trace(list(self._records), self.nprocs)

    def __len__(self) -> int:
        return len(self._records)

    @property
    def records(self) -> tuple[TraceRecord, ...]:
        return tuple(self._records)

    # ------------------------------------------------------------------
    # file backing (flush-on-demand, Section 2.1)
    # ------------------------------------------------------------------
    def attach_file(
        self,
        path: Union[str, Path],
        auto_flush_every: Optional[int] = None,
    ) -> TraceFileWriter:
        """Mirror all future records into a trace file."""
        if self._writer is not None:
            raise RuntimeError("a trace file is already attached")
        self._writer = TraceFileWriter(path, self.nprocs, auto_flush_every)
        # Back-fill anything recorded before attachment.
        for rec in self._records:
            self._writer.write(rec)
        return self._writer

    def flush(self) -> int:
        """Flush the attached file (no-op without one); returns count."""
        if self._writer is None:
            return 0
        return self._writer.flush()

    def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
            self._writer = None
