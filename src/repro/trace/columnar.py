"""Binary columnar block codec for trace-file format v3.

AIMS wrote *binary* trace files because the debugger's whole workflow --
history display, trace-graph zoom ("rescanning the appropriate portion
of the trace file", §4.3), stopline derivation -- is gated on how fast
trace history can be re-read (§2.1).  Format v3 adopts that choice: a
trace file is a sequence of self-delimiting binary *blocks*, each
holding the fixed-width record fields as contiguous little-endian
columns (decoded with ``np.frombuffer`` straight off an ``mmap``, no
per-record parsing) plus one compact JSON side table for the
variable-length payloads (source locations, ``extra`` dicts), which are
heavily repeated and therefore interned per block.

The unit of this module is the :class:`ColumnBlock`: the in-memory form
of one block, usable three ways --

* as *columns* (``block.columns["t0"]`` is a numpy array) for vectorized
  consumers: window masks, span computation, per-proc grouping;
* as *records* via :meth:`ColumnBlock.to_records`, a batch
  materializer that bypasses ``TraceRecord.__init__`` and shares
  interned :class:`SourceLocation` objects -- the fast path behind the
  v3 decode-throughput benchmark;
* as *bytes* via :func:`encode_block` / :func:`decode_block`, the
  on-disk form (header struct + columns + payload).

Block layout::

    +--------------------------------------------------+
    | header: "RTB3", count u32, col_nbytes u64,       |
    |         payload_nbytes u64          (24 bytes)   |
    +--------------------------------------------------+
    | columns, in COLUMN_SPEC order, each count wide:  |
    |   index i8 | proc i4 | kind u1 | t0 f8 | t1 f8   |
    |   marker i8 | src i4 | dst i4 | tag i4 | size i8 |
    |   seq i8 | peer_marker i8 | peer_time f8         |
    |   construct_id i4 | loc i4 | ploc i4 | extra i4  |
    +--------------------------------------------------+
    | payload: UTF-8 JSON {"locs", "plocs", "extras"}  |
    +--------------------------------------------------+

``kind`` stores a code into the *file's own* kind table (written in the
v3 header line), so files survive future ``EventKind`` reordering;
``loc``/``ploc``/``extra`` store indexes into the payload side tables
(-1 = absent for the latter two).
"""

from __future__ import annotations

import json
import struct
from dataclasses import dataclass
from typing import Iterable, Optional, Sequence

import numpy as np

from repro.mp.datatypes import SourceLocation

from .events import EventKind, TraceRecord

#: magic prefix of every v3 block header
BLOCK_MAGIC = b"RTB3"
#: block header: magic, record count, columns nbytes, payload nbytes
BLOCK_HEADER = struct.Struct("<4sIQQ")

#: fixed-width columns, in on-disk order
COLUMN_SPEC: tuple[tuple[str, str], ...] = (
    ("index", "<i8"),
    ("proc", "<i4"),
    ("kind", "u1"),
    ("t0", "<f8"),
    ("t1", "<f8"),
    ("marker", "<i8"),
    ("src", "<i4"),
    ("dst", "<i4"),
    ("tag", "<i4"),
    ("size", "<i8"),
    ("seq", "<i8"),
    ("peer_marker", "<i8"),
    ("peer_time", "<f8"),
    ("construct_id", "<i4"),
    ("loc", "<i4"),
    ("ploc", "<i4"),
    ("extra", "<i4"),
)

#: the writer's kind table: EventKind -> code, in enum definition order.
#: Readers use the table recorded in the file header, never this one.
KIND_CODES: dict[EventKind, int] = {k: i for i, k in enumerate(EventKind)}
DEFAULT_KIND_TABLE: tuple[EventKind, ...] = tuple(EventKind)


class ColumnDecodeError(ValueError):
    """A block's bytes could not be decoded (bad magic, truncation,
    damaged payload)."""


def kind_table_from_values(values: Optional[Sequence[str]]) -> tuple[EventKind, ...]:
    """The code -> EventKind table recorded in a v3 header line."""
    if not values:
        return DEFAULT_KIND_TABLE
    return tuple(EventKind(v) for v in values)


def kind_code_lut(kind_table: Sequence[EventKind]) -> "np.ndarray":
    """A uint8 LUT mapping a block's local kind codes to the canonical
    :data:`KIND_CODES`; ``lut[block_codes]`` re-encodes a kind column.

    Columnar consumers (e.g. the analysis index's bulk-ingest path) use
    this when a decoded block carries a file's own kind table rather
    than the writer default.
    """
    return np.array([KIND_CODES[k] for k in kind_table], dtype=np.uint8)


@dataclass
class ColumnBlock:
    """One decoded columnar block: numpy columns + payload side tables."""

    columns: dict[str, np.ndarray]
    locations: list[SourceLocation]
    peer_locations: list[SourceLocation]
    extras: list[dict]
    kind_table: tuple[EventKind, ...] = DEFAULT_KIND_TABLE

    def __len__(self) -> int:
        return int(self.columns["index"].shape[0])

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def empty(cls) -> "ColumnBlock":
        return cls(
            columns={name: np.empty(0, dtype=dt) for name, dt in COLUMN_SPEC},
            locations=[],
            peer_locations=[],
            extras=[],
        )

    @classmethod
    def from_records(cls, records: Sequence[TraceRecord]) -> "ColumnBlock":
        """Encode a record batch into columns (the writer-side half,
        also the bridge that lets v1/v2 files feed columnar consumers)."""
        kind_codes = KIND_CODES
        loc_ids: dict[tuple[str, int, str], int] = {}
        ploc_ids: dict[tuple[str, int, str], int] = {}
        locations: list[SourceLocation] = []
        peer_locations: list[SourceLocation] = []
        extras: list[dict] = []
        rows: dict[str, list] = {name: [] for name, _ in COLUMN_SPEC}
        for rec in records:
            loc = rec.location
            lkey = (loc.filename, loc.lineno, loc.function)
            lid = loc_ids.get(lkey)
            if lid is None:
                lid = loc_ids[lkey] = len(locations)
                locations.append(loc)
            ploc = rec.peer_location
            if ploc is None:
                pid = -1
            else:
                pkey = (ploc.filename, ploc.lineno, ploc.function)
                pid = ploc_ids.get(pkey)
                if pid is None:
                    pid = ploc_ids[pkey] = len(peer_locations)
                    peer_locations.append(ploc)
            if rec.extra:
                xid = len(extras)
                extras.append(rec.extra)
            else:
                xid = -1
            rows["index"].append(rec.index)
            rows["proc"].append(rec.proc)
            rows["kind"].append(kind_codes[rec.kind])
            rows["t0"].append(rec.t0)
            rows["t1"].append(rec.t1)
            rows["marker"].append(rec.marker)
            rows["src"].append(rec.src)
            rows["dst"].append(rec.dst)
            rows["tag"].append(rec.tag)
            rows["size"].append(rec.size)
            rows["seq"].append(rec.seq)
            rows["peer_marker"].append(rec.peer_marker)
            rows["peer_time"].append(rec.peer_time)
            rows["construct_id"].append(rec.construct_id)
            rows["loc"].append(lid)
            rows["ploc"].append(pid)
            rows["extra"].append(xid)
        columns = {
            name: np.asarray(rows[name], dtype=dt) for name, dt in COLUMN_SPEC
        }
        return cls(columns, locations, peer_locations, extras)

    # ------------------------------------------------------------------
    # record materialization (the decode-throughput fast path)
    # ------------------------------------------------------------------
    def to_records(self) -> list[TraceRecord]:
        """Materialize :class:`TraceRecord` objects in batch.

        ``ndarray.tolist`` converts every column in one C pass, rows are
        walked with one ``zip`` (no per-field list indexing), records
        are created through ``__new__`` + a ``__dict__`` literal (no
        dataclass ``__init__`` per record), and location objects are the
        interned per-block instances -- together this is where the >=5x
        over per-line ``json.loads`` comes from.

        Message/peer fields that hold their default are *omitted* from
        the instance ``__dict__``: a plain dataclass stores simple
        defaults as class attributes, so attribute lookup, ``__eq__``,
        ``repr`` and ``dataclasses.replace`` all see the same values
        while compute-heavy traces skip most of the dict inserts.
        """
        cols = self.columns
        kinds = self.kind_table
        locations = self.locations
        peer_locations = self.peer_locations
        extras = self.extras
        new = TraceRecord.__new__
        out: list[TraceRecord] = []
        append = out.append
        for (idx, proc, kind, t0, t1, marker, src, dst, tag, size, seq,
             pm, pt, cid, loc, ploc, extra) in zip(
                cols["index"].tolist(), cols["proc"].tolist(),
                cols["kind"].tolist(), cols["t0"].tolist(),
                cols["t1"].tolist(), cols["marker"].tolist(),
                cols["src"].tolist(), cols["dst"].tolist(),
                cols["tag"].tolist(), cols["size"].tolist(),
                cols["seq"].tolist(), cols["peer_marker"].tolist(),
                cols["peer_time"].tolist(), cols["construct_id"].tolist(),
                cols["loc"].tolist(), cols["ploc"].tolist(),
                cols["extra"].tolist()):
            rec = new(TraceRecord)
            d = {
                "index": idx,
                "proc": proc,
                "kind": kinds[kind],
                "t0": t0,
                "t1": t1,
                "marker": marker,
                "location": locations[loc],
                "extra": extras[extra] if extra >= 0 else {},
            }
            if src != -1:
                d["src"] = src
            if dst != -1:
                d["dst"] = dst
            if tag != -1:
                d["tag"] = tag
            if size != 0:
                d["size"] = size
            if seq != -1:
                d["seq"] = seq
            if ploc >= 0:
                d["peer_location"] = peer_locations[ploc]
            if pm != -1:
                d["peer_marker"] = pm
            if pt != -1.0:
                d["peer_time"] = pt
            if cid != -1:
                d["construct_id"] = cid
            rec.__dict__ = d
            append(rec)
        return out

    # ------------------------------------------------------------------
    # columnar operations
    # ------------------------------------------------------------------
    def filter(self, mask: np.ndarray) -> "ColumnBlock":
        """A sub-block of the rows where ``mask`` is True (also accepts
        an integer gather/reorder array).  Side tables are shared (ids
        stay valid); columns are copied by the fancy index."""
        return ColumnBlock(
            columns={name: arr[mask] for name, arr in self.columns.items()},
            locations=self.locations,
            peer_locations=self.peer_locations,
            extras=self.extras,
            kind_table=self.kind_table,
        )

    def slice(self, start: int, stop: int) -> "ColumnBlock":
        """A zero-copy sub-block of rows ``[start, stop)``: columns are
        views, side tables shared.  The chunking primitive behind bulk
        column writes (``TraceFileWriter.write_columns``)."""
        return ColumnBlock(
            columns={name: arr[start:stop] for name, arr in self.columns.items()},
            locations=self.locations,
            peer_locations=self.peer_locations,
            extras=self.extras,
            kind_table=self.kind_table,
        )

    def window_mask(
        self,
        t_lo: float,
        t_hi: float,
        procs: Optional[set[int]] = None,
    ) -> np.ndarray:
        """Boolean mask of records overlapping [t_lo, t_hi] (and procs),
        with the same inclusive-boundary semantics as ``seek_window``."""
        cols = self.columns
        mask = (cols["t1"] >= t_lo) & (cols["t0"] <= t_hi)
        if procs is not None:
            mask &= np.isin(cols["proc"], np.fromiter(procs, dtype=np.int64, count=len(procs)))
        return mask

    @classmethod
    def concat(cls, blocks: "Iterable[ColumnBlock]") -> "ColumnBlock":
        """One block holding every row of ``blocks``, in order.  Side-
        table id columns are rebased onto the merged tables."""
        blocks = [b for b in blocks if len(b) > 0]
        if not blocks:
            return cls.empty()
        if len(blocks) == 1:
            return blocks[0]
        locations: list[SourceLocation] = []
        peer_locations: list[SourceLocation] = []
        extras: list[dict] = []
        parts: dict[str, list[np.ndarray]] = {name: [] for name, _ in COLUMN_SPEC}
        for b in blocks:
            for name, _ in COLUMN_SPEC:
                if name == "loc":
                    parts[name].append(b.columns[name] + len(locations))
                elif name == "ploc":
                    col = b.columns[name].copy()
                    col[col >= 0] += len(peer_locations)
                    parts[name].append(col)
                elif name == "extra":
                    col = b.columns[name].copy()
                    col[col >= 0] += len(extras)
                    parts[name].append(col)
                else:
                    parts[name].append(b.columns[name])
            locations.extend(b.locations)
            peer_locations.extend(b.peer_locations)
            extras.extend(b.extras)
        columns = {name: np.concatenate(parts[name]) for name, _ in COLUMN_SPEC}
        return cls(columns, locations, peer_locations, extras, blocks[0].kind_table)

    # ------------------------------------------------------------------
    # block summaries (index building, CLI info)
    # ------------------------------------------------------------------
    @property
    def t_min(self) -> float:
        return float(self.columns["t0"].min()) if len(self) else 0.0

    @property
    def t_max(self) -> float:
        return float(self.columns["t1"].max()) if len(self) else 0.0

    @property
    def procs(self) -> frozenset[int]:
        return frozenset(np.unique(self.columns["proc"]).tolist())


# ----------------------------------------------------------------------
# on-disk form
# ----------------------------------------------------------------------
def encode_block(records: Sequence[TraceRecord]) -> bytes:
    """Records -> one self-delimiting binary block."""
    return encode_columns(ColumnBlock.from_records(records))


def _compact_side_column(
    col: np.ndarray, table: Sequence
) -> tuple[np.ndarray, list]:
    """Rebase a side-table id column onto a table holding only the
    entries the column references (-1 ids pass through).

    A sliced/filtered block shares its parent's side tables, so its id
    columns may reference entries no row of the slice uses; serializing
    the full parent table per chunk would duplicate it across every
    block of a bulk write.
    """
    if col.size == 0 or not table:
        return col, []
    used = np.unique(col)
    used = used[used >= 0]
    if used.size == len(table) and (
        used.size == 0 or int(used[-1]) == len(table) - 1
    ):
        return col, list(table)  # already dense and fully referenced
    remap = np.full(len(table), -1, dtype=col.dtype)
    remap[used] = np.arange(used.size, dtype=col.dtype)
    out = np.where(col >= 0, remap[np.minimum(np.maximum(col, 0), len(table) - 1)], col)
    return out.astype(col.dtype, copy=False), [table[int(i)] for i in used.tolist()]


def encode_columns(block: ColumnBlock) -> bytes:
    """One :class:`ColumnBlock` -> one self-delimiting binary block.

    The column-side twin of :func:`encode_block`: bulk writers
    (``TraceFileWriter.write_columns``, shard re-encoding, format
    conversion) feed decoded or synthesized blocks straight back to
    disk without materializing record objects.  Kind codes carried
    under a foreign (file) kind table are re-encoded to the writer
    table; side tables are compacted to the entries the block's rows
    actually reference, so sliced blocks don't serialize their parent's
    whole table.
    """
    count = len(block)
    cols = dict(block.columns)
    if block.kind_table != DEFAULT_KIND_TABLE:
        cols["kind"] = kind_code_lut(block.kind_table)[cols["kind"]]
    loc_col, locations = _compact_side_column(cols["loc"], block.locations)
    ploc_col, peer_locations = _compact_side_column(
        cols["ploc"], block.peer_locations
    )
    extra_col, extras = _compact_side_column(cols["extra"], block.extras)
    cols["loc"], cols["ploc"], cols["extra"] = loc_col, ploc_col, extra_col
    col_bytes = b"".join(
        np.ascontiguousarray(cols[name], dtype=dt).tobytes()
        for name, dt in COLUMN_SPEC
    )
    payload = json.dumps(
        {
            "locs": [[l.filename, l.lineno, l.function] for l in locations],
            "plocs": [
                [l.filename, l.lineno, l.function] for l in peer_locations
            ],
            "extras": extras,
        },
        ensure_ascii=False,
        separators=(",", ":"),
    ).encode("utf-8")
    header = BLOCK_HEADER.pack(BLOCK_MAGIC, count, len(col_bytes), len(payload))
    return header + col_bytes + payload


def peek_block(buf, offset: int) -> tuple[int, int]:
    """(record count, total block nbytes) of the block at ``offset``,
    reading only its header.  Raises :class:`ColumnDecodeError` on bad
    magic or a header extending past the buffer."""
    if offset + BLOCK_HEADER.size > len(buf):
        raise ColumnDecodeError("truncated block header")
    magic, count, col_nbytes, payload_nbytes = BLOCK_HEADER.unpack_from(buf, offset)
    if magic != BLOCK_MAGIC:
        raise ColumnDecodeError(f"bad block magic {magic!r}")
    return count, BLOCK_HEADER.size + col_nbytes + payload_nbytes


def decode_block(
    buf,
    offset: int,
    kind_table: tuple[EventKind, ...] = DEFAULT_KIND_TABLE,
) -> tuple[ColumnBlock, int]:
    """Decode the block at ``offset`` of ``buf`` (bytes or mmap).

    Fixed-width columns become zero-copy ``np.frombuffer`` views of
    ``buf``; only the payload side table goes through ``json.loads``
    (once per block, not per record).  Returns (block, end offset).
    """
    count, total = peek_block(buf, offset)
    if offset + total > len(buf):
        raise ColumnDecodeError("truncated block body")
    _, _, col_nbytes, payload_nbytes = BLOCK_HEADER.unpack_from(buf, offset)
    pos = offset + BLOCK_HEADER.size
    columns: dict[str, np.ndarray] = {}
    for name, dt in COLUMN_SPEC:
        arr = np.frombuffer(buf, dtype=dt, count=count, offset=pos)
        columns[name] = arr
        pos += arr.nbytes
    if pos != offset + BLOCK_HEADER.size + col_nbytes:
        raise ColumnDecodeError("column section length mismatch")
    payload_raw = bytes(buf[pos : pos + payload_nbytes])
    try:
        payload = json.loads(payload_raw)
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise ColumnDecodeError(f"damaged block payload: {exc}") from exc
    block = ColumnBlock(
        columns=columns,
        locations=[SourceLocation(f, n, fn) for f, n, fn in payload["locs"]],
        peer_locations=[SourceLocation(f, n, fn) for f, n, fn in payload["plocs"]],
        extras=payload["extras"],
        kind_table=kind_table,
    )
    return block, offset + total


def records_to_columns(records: Iterable[TraceRecord]) -> ColumnBlock:
    """Alias of :meth:`ColumnBlock.from_records` for callers holding an
    arbitrary iterable."""
    records = records if isinstance(records, Sequence) else list(records)
    return ColumnBlock.from_records(records)


def columns_to_records(block: ColumnBlock) -> list[TraceRecord]:
    """Alias of :meth:`ColumnBlock.to_records`."""
    return block.to_records()


__all__: list[str] = [
    "BLOCK_HEADER",
    "BLOCK_MAGIC",
    "COLUMN_SPEC",
    "ColumnBlock",
    "ColumnDecodeError",
    "DEFAULT_KIND_TABLE",
    "KIND_CODES",
    "columns_to_records",
    "decode_block",
    "encode_block",
    "encode_columns",
    "kind_code_lut",
    "kind_table_from_values",
    "peek_block",
    "records_to_columns",
]
