"""The :class:`Trace` container: an execution history plus query indexes.

Downstream layers query a trace in a few stereotyped ways:

* per-process event sequences in program order (time-space rows);
* send/receive pairing by the (src, dst, tag, seq) key -- unique under
  MPI non-overtaking, the paper's Section 3.2 observation;
* marker <-> record translation (stopline placement and replay);
* time-window slices (zoom rescan for the disseminated trace graph).

All indexes are built lazily and cached; a Trace is immutable once
constructed (the recorder builds a new one per flush).
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, replace
from typing import Iterable, Iterator, Optional, Sequence

from .events import EventKind, TraceRecord


@dataclass(frozen=True)
class MessagePair:
    """A matched (send record, receive record) pair."""

    send: TraceRecord
    recv: TraceRecord

    @property
    def key(self) -> tuple[int, int, int, int]:
        return self.send.message_key()

    @property
    def latency(self) -> float:
        """Virtual time from send completion to receive completion."""
        return self.recv.t1 - self.send.t1


class Trace:
    """An immutable sequence of trace records with query indexes."""

    def __init__(self, records: Sequence[TraceRecord], nprocs: int) -> None:
        self._records = list(records)
        self.nprocs = nprocs
        self._by_proc: Optional[list[list[TraceRecord]]] = None
        self._pairs: Optional[list[MessagePair]] = None
        self._unmatched_sends: Optional[list[TraceRecord]] = None
        self._unmatched_recvs: Optional[list[TraceRecord]] = None
        self._span: Optional[tuple[float, float]] = None
        #: shared analysis substrate memoized on this trace (see
        #: :mod:`repro.analysis.history`); populated on first demand
        self._history_index = None

    # ------------------------------------------------------------------
    # basics
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self._records)

    def __getitem__(self, index: int) -> TraceRecord:
        return self._records[index]

    @property
    def records(self) -> Sequence[TraceRecord]:
        return tuple(self._records)

    def by_proc(self, proc: int) -> Sequence[TraceRecord]:
        """This process's records in program order."""
        if self._by_proc is None:
            rows: list[list[TraceRecord]] = [[] for _ in range(self.nprocs)]
            for rec in self._records:
                rows[rec.proc].append(rec)
            self._by_proc = rows
        return self._by_proc[proc]

    def of_kind(self, *kinds: EventKind) -> list[TraceRecord]:
        wanted = set(kinds)
        return [r for r in self._records if r.kind in wanted]

    @property
    def span(self) -> tuple[float, float]:
        """(earliest t0, latest t1) over the whole trace; (0, 0) if empty.

        Computed once: a Trace is immutable once constructed, so the two
        full scans happen on first access only.
        """
        if self._span is None:
            if not self._records:
                return (0.0, 0.0)
            self._span = (
                min(r.t0 for r in self._records),
                max(r.t1 for r in self._records),
            )
        return self._span

    def history_index(self):
        """The shared analysis substrate for this trace, built on first
        demand and memoized (see :class:`repro.analysis.history.HistoryIndex`).

        All analyses routed through :func:`repro.analysis.history.ensure_index`
        on the same trace object share this one index -- vector clocks
        and message matching are derived exactly once per history.
        """
        from repro.analysis.history import ensure_index

        return ensure_index(self)

    # ------------------------------------------------------------------
    # message matching (Section 3.2: unique under non-overtaking)
    # ------------------------------------------------------------------
    def _match_messages(self) -> None:
        # A bound history index (repro.analysis.history) already holds
        # the matching for this exact history -- adopt it instead of
        # re-deriving.
        index = self._history_index
        if (
            index is not None
            and not getattr(index, "stale", False)
            and len(index) == len(self._records)
        ):
            self._pairs = index.message_pairs()
            self._unmatched_sends = index.unmatched_sends()
            self._unmatched_recvs = index.unmatched_recvs()
            return
        sends: dict[tuple[int, int, int, int], TraceRecord] = {}
        pairs: list[MessagePair] = []
        matched_send_keys: set[tuple[int, int, int, int]] = set()
        unmatched_recvs: list[TraceRecord] = []
        for rec in self._records:
            if rec.is_send:
                sends[rec.message_key()] = rec
        for rec in self._records:
            if rec.is_recv:
                key = rec.message_key()
                send = sends.get(key)
                if send is None:
                    unmatched_recvs.append(rec)
                else:
                    pairs.append(MessagePair(send, rec))
                    matched_send_keys.add(key)
        self._pairs = pairs
        self._unmatched_sends = [
            rec
            for rec in self._records
            if rec.is_send and rec.message_key() not in matched_send_keys
        ]
        self._unmatched_recvs = unmatched_recvs

    def message_pairs(self) -> list[MessagePair]:
        """All matched (send, recv) record pairs."""
        if self._pairs is None:
            self._match_messages()
        assert self._pairs is not None
        return self._pairs

    def unmatched_sends(self) -> list[TraceRecord]:
        """Send records whose message was never received -- the "missed
        messages" the paper's Figure 6 analysis surfaces."""
        if self._unmatched_sends is None:
            self._match_messages()
        assert self._unmatched_sends is not None
        return self._unmatched_sends

    def unmatched_recvs(self) -> list[TraceRecord]:
        """Receive records with no matching send in the trace (possible
        when instrumentation was toggled off around the send)."""
        if self._unmatched_recvs is None:
            self._match_messages()
        assert self._unmatched_recvs is not None
        return self._unmatched_recvs

    # ------------------------------------------------------------------
    # marker and time translation
    # ------------------------------------------------------------------
    def record_at_marker(self, proc: int, marker: int) -> Optional[TraceRecord]:
        """The first record of ``proc`` carrying ``marker`` (None if the
        marker fell between instrumented constructs)."""
        for rec in self.by_proc(proc):
            if rec.marker == marker:
                return rec
            if rec.marker > marker:
                break
        return None

    def first_at_or_after(self, proc: int, t: float) -> Optional[TraceRecord]:
        """Earliest record of ``proc`` starting at or after time ``t``."""
        rows = self.by_proc(proc)
        starts = [r.t0 for r in rows]
        i = bisect.bisect_left(starts, t)
        return rows[i] if i < len(rows) else None

    def first_ending_after(self, proc: int, t: float) -> Optional[TraceRecord]:
        """Earliest record of ``proc`` completing strictly after ``t``.

        Completion times are monotone in program order (a construct
        cannot start before its predecessor ends), so this is the first
        construct not yet finished at time ``t`` -- the vertical-stopline
        threshold construct.
        """
        rows = self.by_proc(proc)
        ends = [r.t1 for r in rows]
        i = bisect.bisect_right(ends, t)
        return rows[i] if i < len(rows) else None

    def last_before(self, proc: int, t: float) -> Optional[TraceRecord]:
        """Latest record of ``proc`` starting strictly before ``t``."""
        rows = self.by_proc(proc)
        starts = [r.t0 for r in rows]
        i = bisect.bisect_left(starts, t)
        return rows[i - 1] if i > 0 else None

    def window(self, t_lo: float, t_hi: float) -> list[TraceRecord]:
        """Records overlapping [t_lo, t_hi] -- the zoom-rescan primitive
        the disseminated trace graph uses to reconstruct merged arcs."""
        return [r for r in self._records if r.t1 >= t_lo and r.t0 <= t_hi]

    # ------------------------------------------------------------------
    def final_markers(self) -> dict[int, int]:
        """Rank -> highest marker seen (end-of-trace marker vector)."""
        out: dict[int, int] = {}
        for rec in self._records:
            if rec.marker > out.get(rec.proc, -1):
                out[rec.proc] = rec.marker
        return out

    def counts_by_kind(self) -> dict[EventKind, int]:
        out: dict[EventKind, int] = {}
        for rec in self._records:
            out[rec.kind] = out.get(rec.kind, 0) + 1
        return out

    def recv_counts(self) -> dict[int, int]:
        """Rank -> number of completed receives (the Figure 6 diagnostic:
        "processes 1-6 each receive 2 messages and process 7 only
        receives 1")."""
        out = {p: 0 for p in range(self.nprocs)}
        for rec in self._records:
            if rec.is_recv:
                out[rec.proc] += 1
        return out

    def send_counts(self) -> dict[int, int]:
        out = {p: 0 for p in range(self.nprocs)}
        for rec in self._records:
            if rec.is_send:
                out[rec.proc] += 1
        return out


def ensure_trace(
    source: "Trace | Iterable[TraceRecord]",
    nprocs: Optional[int] = None,
) -> Trace:
    """Coerce a record stream into a :class:`Trace` (pass-through for an
    existing one).

    This is the batch <-> streaming bridge: every analysis entry point
    accepts either a materialized trace or any iterator of records (a
    file reader's ``iter_records``/``seek_window``, a sink's retained
    history, a generator).  ``nprocs`` is inferred from the records when
    not given (highest rank + 1, including message endpoints).

    Analyses assume ``record.index == position`` (vector clocks, path
    DP); a stream cut from the middle of a trace (seek_window, ring
    buffer) has sparse global indexes, so such records are re-indexed on
    positional *copies* -- the originals, and their global indexes, are
    left untouched.
    """
    if isinstance(source, Trace):
        return source
    records = list(source)
    if any(rec.index != k for k, rec in enumerate(records)):
        records = [replace(rec, index=k) for k, rec in enumerate(records)]
    if nprocs is None:
        nprocs = 0
        for rec in records:
            nprocs = max(nprocs, rec.proc + 1, rec.src + 1, rec.dst + 1)
    return Trace(records, nprocs)


def merge_traces(traces: Iterable[Trace]) -> Trace:
    """Concatenate traces (e.g. per-segment flushes) re-indexed globally."""
    records: list[TraceRecord] = []
    nprocs = 0
    for tr in traces:
        nprocs = max(nprocs, tr.nprocs)
        records.extend(tr.records)
    records.sort(key=lambda r: r.index)
    return Trace(records, nprocs)
