"""Recursive Fibonacci -- the paper's instrumentation worst case.

Table 1 instruments a "recursive Fibonacci function" (citing the
software-instruction-counter paper [11]) as the call-dominated extreme:
tens of millions of function calls doing almost no work each, so
per-call monitoring overhead dominates (5.17s -> 20.98s on the paper's
hardware).  The same shape holds here: a Python profile-hook monitor
multiplies the runtime of ``fib`` by a small integer factor while
leaving array-bound workloads untouched.
"""

from __future__ import annotations

from repro.mp.comm import Comm

TAG_FIB = 21


def fib(n: int) -> int:
    """The classic doubly-recursive Fibonacci (deliberately naive)."""
    if n < 2:
        return n
    return fib(n - 1) + fib(n - 2)


def fib_call_count(n: int) -> int:
    """Number of ``fib`` invocations the recursion makes for ``n``.

    Satisfies calls(n) = calls(n-1) + calls(n-2) + 1 = 2*fib(n+1) - 1,
    the "number of calls" column of Table 1.
    """
    if n < 2:
        return 1
    return fib_call_count(n - 1) + fib_call_count(n - 2) + 1


def fib_program(n: int):
    """Single-rank program computing fib(n) (the Table 1 workload)."""

    def prog(comm: Comm) -> int:
        return fib(n)

    return prog


def distributed_fib_program(n: int):
    """A 3-rank split: rank 0 delegates fib(n-1) and fib(n-2).

    Not in the paper's table; used by tests and examples to mix heavy
    recursion with message traffic in one trace.
    """

    def prog(comm: Comm):
        if comm.rank == 0:
            comm.send(n - 1, dest=1, tag=TAG_FIB)
            comm.send(n - 2, dest=2, tag=TAG_FIB)
            return comm.recv(source=1, tag=TAG_FIB) + comm.recv(source=2, tag=TAG_FIB)
        k = comm.recv(source=0, tag=TAG_FIB)
        comm.send(fib(k), dest=0, tag=TAG_FIB)
        return None

    return prog
