"""Distributed Strassen matrix multiplication -- the paper's workhorse.

The paper's Figures 3-7 and Table 1 all use "an implementation of
Strassen's matrix multiplication algorithm": process 0 forms the seven
Strassen operand pairs, distributes them among the workers ("each send
is shown as a separate message", so every worker receives **two**
matrices per product), receives the partial results, and combines them
into the final product.

The buggy variant reproduces the Figure 5-7 debugging scenario: inside
``matr_send`` the destination of the second operand is computed as
``jres`` where it should be ``jres + 1`` (the paper: "the user will find
that jres should be replaced by jres+1 in line 161").  Consequences on 8
processes, exactly as in the figures:

* workers 1-6 still receive two messages each (with mismatched operand
  pairs), compute, and reply;
* worker 7 receives only **one** message and blocks in its second
  receive;
* process 0's stray self-addressed message sits unreceived (the "missed
  message");
* after collecting six partial results, process 0 blocks receiving from
  worker 7 -- "processes 0 and 7 are blocked in receives waiting for
  data from each other" (Figure 5).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.mp.comm import Comm

#: Message tags: first operand, second operand, partial result.
TAG_OPERAND_A = 11
TAG_OPERAND_B = 12
TAG_RESULT = 13

#: Number of Strassen products (M1..M7).
N_PRODUCTS = 7


# ----------------------------------------------------------------------
# the Strassen decomposition (local math, no communication)
# ----------------------------------------------------------------------
def split_quadrants(m: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """(M11, M12, M21, M22) views of an even-sized square matrix."""
    n = m.shape[0]
    if m.shape[0] != m.shape[1] or n % 2:
        raise ValueError(f"need an even square matrix, got shape {m.shape}")
    h = n // 2
    return m[:h, :h], m[:h, h:], m[h:, :h], m[h:, h:]


def strassen_operands(a: np.ndarray, b: np.ndarray) -> list[tuple[np.ndarray, np.ndarray]]:
    """The seven (X_i, Y_i) pairs with M_i = X_i @ Y_i."""
    a11, a12, a21, a22 = split_quadrants(a)
    b11, b12, b21, b22 = split_quadrants(b)
    return [
        (a11 + a22, b11 + b22),  # M1
        (a21 + a22, b11),        # M2
        (a11, b12 - b22),        # M3
        (a22, b21 - b11),        # M4
        (a11 + a12, b22),        # M5
        (a21 - a11, b11 + b12),  # M6
        (a12 - a22, b21 + b22),  # M7
    ]


def combine_products(ms: list[np.ndarray]) -> np.ndarray:
    """Assemble C from M1..M7."""
    m1, m2, m3, m4, m5, m6, m7 = ms
    c11 = m1 + m4 - m5 + m7
    c12 = m3 + m5
    c21 = m2 + m4
    c22 = m1 - m2 + m3 + m6
    top = np.hstack([c11, c12])
    bottom = np.hstack([c21, c22])
    return np.vstack([top, bottom])


def multiply_block(x: np.ndarray, y: np.ndarray) -> np.ndarray:
    """The worker's local product (one Strassen submatrix multiply)."""
    return x @ y


def make_inputs(n: int, seed: int = 0) -> tuple[np.ndarray, np.ndarray]:
    """Deterministic test matrices."""
    rng = np.random.default_rng(seed)
    a = rng.standard_normal((n, n))
    b = rng.standard_normal((n, n))
    return a, b


# ----------------------------------------------------------------------
# the distributed program
# ----------------------------------------------------------------------
@dataclass
class StrassenConfig:
    """Parameters of one distributed Strassen run.

    ``n`` is the full matrix size (must be even).  With ``nprocs`` = 8
    each of the 7 products gets its own worker (the paper's Figure 3
    setup); with fewer processes products are dealt round-robin to the
    ``nprocs - 1`` workers (the paper's 4-process Table 1 setup).
    ``buggy`` enables the wrong-destination bug.  ``compute_scale``
    converts block FLOPs into virtual compute time.
    """

    n: int = 32
    nprocs: int = 8
    buggy: bool = False
    seed: int = 0
    compute_scale: float = 1e-4

    def __post_init__(self) -> None:
        if self.nprocs < 2:
            raise ValueError("strassen needs at least one worker (nprocs >= 2)")
        if self.n % 2:
            raise ValueError(f"matrix size must be even, got {self.n}")

    @property
    def n_workers(self) -> int:
        return self.nprocs - 1

    def worker_of_product(self, jres: int) -> int:
        """Which rank computes product ``jres`` (correct assignment)."""
        return 1 + (jres % self.n_workers)

    def products_of_worker(self, rank: int) -> list[int]:
        return [j for j in range(N_PRODUCTS) if self.worker_of_product(j) == rank]


def matr_send(comm: Comm, cfg: StrassenConfig, operands) -> None:
    """Distribute the seven operand pairs (two sends per product).

    This is the paper's ``MatrSend``.  In the buggy variant the second
    send computes its destination as ``jres % n_workers`` -- the analog
    of writing ``jres`` for ``jres + 1`` at the paper's line 161 -- so
    the second operand of each product goes one worker too low, and the
    last worker never gets its second matrix.
    """
    for jres in range(N_PRODUCTS):
        x, y = operands[jres]
        dest_a = 1 + (jres % cfg.n_workers)
        if cfg.buggy:
            dest_b = jres % cfg.n_workers  # BUG: should be 1 + (jres % n_workers)
        else:
            dest_b = 1 + (jres % cfg.n_workers)
        comm.send(x, dest=dest_a, tag=TAG_OPERAND_A)
        comm.send(y, dest=dest_b, tag=TAG_OPERAND_B)


def matr_combine(comm: Comm, cfg: StrassenConfig) -> np.ndarray:
    """Collect the seven partial results (in product order) and combine."""
    ms: list[Optional[np.ndarray]] = [None] * N_PRODUCTS
    for jres in range(N_PRODUCTS):
        worker = cfg.worker_of_product(jres)
        jres_got, m = comm.recv(source=worker, tag=TAG_RESULT)
        ms[jres_got] = m
    assert all(m is not None for m in ms)
    return combine_products(ms)  # type: ignore[arg-type]


def strassen_master(comm: Comm, cfg: StrassenConfig) -> np.ndarray:
    """Rank 0: decompose, distribute, collect, combine."""
    a, b = make_inputs(cfg.n, cfg.seed)
    operands = strassen_operands(a, b)
    h = cfg.n // 2
    comm.compute(cfg.compute_scale * 7 * h * h, label="form-operands")
    matr_send(comm, cfg, operands)
    c = matr_combine(comm, cfg)
    comm.compute(cfg.compute_scale * 4 * h * h, label="combine")
    return c


def strassen_worker(comm: Comm, cfg: StrassenConfig) -> int:
    """Ranks 1..n_workers: receive operand pairs, multiply, reply.

    The short "unpack" compute right after the operand receives is the
    "small vertical tick before a longer computation bar" of Figure 6:
    workers that got both operands show it; the starved worker blocks in
    its second receive and never does ("process 7 is missing that tick").
    """
    h = cfg.n // 2
    done = 0
    for jres in cfg.products_of_worker(comm.rank):
        x = comm.recv(source=0, tag=TAG_OPERAND_A)
        y = comm.recv(source=0, tag=TAG_OPERAND_B)
        comm.compute(cfg.compute_scale * h, label="unpack")  # the tick
        comm.compute(cfg.compute_scale * 2 * h**3, label="multiply")
        m = multiply_block(x, y)
        comm.send((jres, m), dest=0, tag=TAG_RESULT)
        done += 1
    return done


def strassen_program(cfg: StrassenConfig):
    """The SPMD entry point for :func:`repro.mp.run_program`."""

    def prog(comm: Comm):
        if comm.rank == 0:
            return strassen_master(comm, cfg)
        if comm.rank <= cfg.n_workers:
            return strassen_worker(comm, cfg)
        return None

    return prog


def reference_product(cfg: StrassenConfig) -> np.ndarray:
    """The answer the distributed run must reproduce."""
    a, b = make_inputs(cfg.n, cfg.seed)
    return a @ b
