"""``repro.apps`` -- the workload programs the paper evaluates on.

* :mod:`~repro.apps.strassen` -- distributed Strassen multiply (Figures
  3-7, Table 1), including the wrong-destination buggy variant.
* :mod:`~repro.apps.fibonacci` -- recursive Fibonacci (Table 1 worst case).
* :mod:`~repro.apps.lu` -- NAS-LU-like pipelined SSOR solver (Figure 8).
* :mod:`~repro.apps.ring` -- ring / pingpong / halo / master-worker
  microworkloads for tests and examples.
* :mod:`~repro.apps.halo2d` -- 2-D halo-exchange Jacobi stencil on a
  process torus (isend/irecv/waitall; the 64-1024-rank scaling workload).
* :mod:`~repro.apps.dptrain` -- allreduce-heavy data-parallel training
  loop (collective-dominated scaling workload).

Application code deliberately lives *outside* the runtime packages so
the instrumentation layers treat it as user code (source locations in
traces point here).

:data:`CONFORMANCE_PROGRAMS` is the shared registry the backend
conformance suite iterates: one small, rank-count-agnostic
configuration of every app, each entry a ``factory(nprocs, seed)``
returning a launchable target.  ``WILDCARD_PROGRAMS`` names the subset
whose message matching involves wildcards -- the only apps whose traces
may legitimately differ on backends that do not implement the
cooperative scheduling contract (the multiprocessing backend).
"""

from .dptrain import dptrain_program, make_shard
from .fibonacci import distributed_fib_program, fib, fib_call_count, fib_program
from .halo2d import halo2d_program, initial_tile, process_grid, reference_halo2d
from .lu import LUConfig, local_residual, lu_program, make_rhs
from .ring import halo_program, master_worker_program, pingpong_program, ring_program
from .schedbug import (
    SCHEDBUG_MODES,
    reference_result,
    schedbug_program,
    task_value,
)
from .strassen import (
    N_PRODUCTS,
    TAG_OPERAND_A,
    TAG_OPERAND_B,
    TAG_RESULT,
    StrassenConfig,
    combine_products,
    make_inputs,
    reference_product,
    split_quadrants,
    strassen_operands,
    strassen_program,
)

def _fib_padded(n):
    """distributed_fib uses ranks 0-2; let extra ranks exit cleanly."""
    inner = distributed_fib_program(n)

    def prog(comm):
        return inner(comm) if comm.rank < 3 else None

    return prog


#: name -> factory(nprocs, seed) -> program target, sized for quick runs.
CONFORMANCE_PROGRAMS = {
    "ring": lambda nprocs, seed: ring_program(rounds=2, payload=2),
    "pingpong": lambda nprocs, seed: pingpong_program(rounds=3, size=4),
    "halo1d": lambda nprocs, seed: halo_program(steps=2, width=3),
    "master_worker": lambda nprocs, seed: master_worker_program(
        n_tasks=2 * nprocs, task_cost=1.0
    ),
    "strassen": lambda nprocs, seed: strassen_program(
        StrassenConfig(n=8, nprocs=nprocs)
    ),
    "fib": lambda nprocs, seed: _fib_padded(7),
    "lu": lambda nprocs, seed: lu_program(
        LUConfig(grid=max(8, nprocs), nprocs=nprocs, panels=2, sweeps=2)
    ),
    "halo2d": lambda nprocs, seed: halo2d_program(tile=3, steps=2, seed=seed),
    "dptrain": lambda nprocs, seed: dptrain_program(
        steps=3, dim=4, n_samples=8, seed=seed
    ),
    "schedbug": lambda nprocs, seed: schedbug_program(
        n_tasks=2 * nprocs, mode="safe", task_cost=1.0
    ),
}

#: conformance programs whose receives use ANY_SOURCE / ANY_TAG.
WILDCARD_PROGRAMS = frozenset({"master_worker", "schedbug"})

__all__ = [
    "CONFORMANCE_PROGRAMS",
    "LUConfig",
    "N_PRODUCTS",
    "StrassenConfig",
    "TAG_OPERAND_A",
    "TAG_OPERAND_B",
    "TAG_RESULT",
    "WILDCARD_PROGRAMS",
    "combine_products",
    "distributed_fib_program",
    "dptrain_program",
    "fib",
    "fib_call_count",
    "fib_program",
    "halo2d_program",
    "halo_program",
    "initial_tile",
    "local_residual",
    "lu_program",
    "make_inputs",
    "make_rhs",
    "make_shard",
    "SCHEDBUG_MODES",
    "master_worker_program",
    "pingpong_program",
    "process_grid",
    "reference_halo2d",
    "reference_product",
    "reference_result",
    "ring_program",
    "schedbug_program",
    "task_value",
    "split_quadrants",
    "strassen_operands",
    "strassen_program",
]
