"""``repro.apps`` -- the workload programs the paper evaluates on.

* :mod:`~repro.apps.strassen` -- distributed Strassen multiply (Figures
  3-7, Table 1), including the wrong-destination buggy variant.
* :mod:`~repro.apps.fibonacci` -- recursive Fibonacci (Table 1 worst case).
* :mod:`~repro.apps.lu` -- NAS-LU-like pipelined SSOR solver (Figure 8).
* :mod:`~repro.apps.ring` -- ring / pingpong / halo / master-worker
  microworkloads for tests and examples.

Application code deliberately lives *outside* the runtime packages so
the instrumentation layers treat it as user code (source locations in
traces point here).
"""

from .fibonacci import distributed_fib_program, fib, fib_call_count, fib_program
from .lu import LUConfig, local_residual, lu_program, make_rhs
from .ring import halo_program, master_worker_program, pingpong_program, ring_program
from .strassen import (
    N_PRODUCTS,
    TAG_OPERAND_A,
    TAG_OPERAND_B,
    TAG_RESULT,
    StrassenConfig,
    combine_products,
    make_inputs,
    reference_product,
    split_quadrants,
    strassen_operands,
    strassen_program,
)

__all__ = [
    "LUConfig",
    "N_PRODUCTS",
    "StrassenConfig",
    "TAG_OPERAND_A",
    "TAG_OPERAND_B",
    "TAG_RESULT",
    "combine_products",
    "distributed_fib_program",
    "fib",
    "fib_call_count",
    "fib_program",
    "halo_program",
    "local_residual",
    "lu_program",
    "make_inputs",
    "make_rhs",
    "master_worker_program",
    "pingpong_program",
    "reference_product",
    "ring_program",
    "split_quadrants",
    "strassen_operands",
    "strassen_program",
]
