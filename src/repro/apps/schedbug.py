"""Schedule-sensitive master/worker pool with seeded ordering bugs.

The demo workload for the schedule-space explorer
(:mod:`repro.explore`): a self-scheduling master hands tasks to workers
and collects results with ``ANY_SOURCE`` -- the canonical message race
-- and folds them in **arrival order**.  Under the recorded schedule the
program behaves; under some alternative matching of the racing receives
the seeded bug fires.  ``mode`` selects which bug:

* ``"unsafe"`` (default) -- the master folds results with the
  non-commutative update ``acc = 0.5 * acc + value``, so any arrival
  reordering changes the answer: **numeric divergence**.
* ``"crash"`` -- the master assumes the *first* result to arrive is
  task 0 (true under the recorded schedule: task 0 is primed first and
  is the cheapest) and raises when another task overtakes it: **crash**.
* ``"deadlock"`` -- on that same overtaking arrival the master waits
  for a message its workers will never send: **deadlock**.
* ``"safe"`` -- plain commutative accumulation; every schedule returns
  :func:`reference_result`, which is what a clean exploration report
  certifies.

Workers receive with ``ANY_TAG`` (task vs stop), so the trace also
carries tag-only wildcard receives -- the race detector's other
wildcard family.
"""

from __future__ import annotations

from repro.mp.comm import Comm
from repro.mp.datatypes import ANY_SOURCE, ANY_TAG
from repro.mp.status import Status

TAG_TASK = 61
TAG_RESULT = 62
TAG_STOP = 63

#: the seeded failure modes (see module docstring)
SCHEDBUG_MODES = ("unsafe", "crash", "deadlock", "safe")


def task_value(task: int) -> float:
    """Distinct per-task payload so reordered folds visibly diverge."""
    return float(task + 1)


def reference_result(n_tasks: int) -> float:
    """The order-insensitive (``mode="safe"``) master result."""
    return sum(task_value(t) for t in range(n_tasks))


def schedbug_program(
    n_tasks: int = 6,
    mode: str = "unsafe",
    task_cost: float = 2.0,
):
    """Build the master/worker target; rank 0 returns the folded result."""
    if mode not in SCHEDBUG_MODES:
        raise ValueError(
            f"unknown schedbug mode {mode!r}; expected one of {SCHEDBUG_MODES}"
        )

    def master(comm: Comm) -> float:
        acc = 0.0
        completed = 0
        next_task = 0
        outstanding = 0
        for w in range(1, comm.size):
            if next_task < n_tasks:
                comm.send(next_task, dest=w, tag=TAG_TASK)
                next_task += 1
                outstanding += 1
            else:
                comm.send(None, dest=w, tag=TAG_STOP)
        while outstanding:
            st = Status()
            task, value = comm.recv(source=ANY_SOURCE, tag=TAG_RESULT, status=st)
            if completed == 0 and task != 0:
                # Task 0 is primed first and is the cheapest, so under
                # the recorded schedule it always finishes first; only
                # an alternative matching gets here -- the seeded bug.
                if mode == "crash":
                    raise RuntimeError(
                        f"task {task} finished before task 0"
                    )
                if mode == "deadlock":
                    # Waits for a task-channel message from the worker;
                    # workers only ever *receive* on that tag.
                    comm.recv(source=st.source, tag=TAG_TASK)
            completed += 1
            if mode == "unsafe":
                acc = 0.5 * acc + value
            else:
                acc += value
            outstanding -= 1
            if next_task < n_tasks:
                comm.send(next_task, dest=st.source, tag=TAG_TASK)
                next_task += 1
                outstanding += 1
            else:
                comm.send(None, dest=st.source, tag=TAG_STOP)
        return acc

    def worker(comm: Comm) -> None:
        while True:
            st = Status()
            task = comm.recv(source=0, tag=ANY_TAG, status=st)
            if st.tag == TAG_STOP:
                return None
            comm.compute(task_cost * (1 + task % 3))
            comm.send((task, task_value(task)), dest=0, tag=TAG_RESULT)

    def prog(comm: Comm):
        if comm.size < 3:
            raise ValueError("schedbug needs >= 3 ranks (1 master, 2 workers)")
        return master(comm) if comm.rank == 0 else worker(comm)

    return prog
