"""A NAS-LU-like pipelined SSOR solver (the Figure 8 workload).

The paper's Figure 8 shows past/future frontiers in "a trace of the NAS
Parallel Benchmark LU".  What matters for the frontier geometry is LU's
communication *shape*: the lower/upper-triangular solves sweep a
wavefront across a partitioned grid.  With the rows block-distributed,
rank r's update of a column panel depends on rank r-1's freshly updated
boundary row *for that panel* and on its own previous panel -- so rank r
works panel j while rank r-1 is already on panel j+1.  That pipelining
is what gives an event a wide concurrency region whose boundaries slant
across the time-space diagram (the black lines of Figure 8).

This module implements that shape as a *real* solver: symmetric
Gauss-Seidel (SSOR) relaxation of the 2-D Poisson equation
``-laplace(u) = f``, row-block partitioned, column-panel pipelined.
The residual is checkable, so tests verify convergence, not just that
messages flow.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.mp.comm import Comm

TAG_DOWN = 31  # panel boundary rows travelling to higher ranks (forward)
TAG_UP = 32  # panel boundary rows travelling to lower ranks (backward)
TAG_RESID = 33


@dataclass
class LUConfig:
    """Problem setup.

    ``grid`` interior points per side; ``nprocs`` row blocks; ``panels``
    column panels per sweep (the pipelining grain -- 1 disables the
    wavefront); ``sweeps`` SSOR iterations; ``omega`` relaxation factor;
    ``compute_scale`` converts point updates into virtual compute time.
    """

    grid: int = 32
    nprocs: int = 8
    panels: int = 4
    sweeps: int = 4
    omega: float = 1.5
    seed: int = 0
    compute_scale: float = 5e-3
    #: compute the global residual every k sweeps (0 = only after the
    #: final sweep).  The residual reduction is a global synchronization
    #: that flattens the pipeline's concurrency structure; the Figure 8
    #: reproduction runs with 0 to keep the wavefronts pure.
    residual_every: int = 1

    def __post_init__(self) -> None:
        if self.grid < self.nprocs:
            raise ValueError(f"grid ({self.grid}) must be >= nprocs ({self.nprocs})")
        if not 1 <= self.panels <= self.grid:
            raise ValueError(
                f"panels ({self.panels}) must be in [1, grid={self.grid}]"
            )

    def block_rows(self, rank: int) -> tuple[int, int]:
        """Half-open row range [lo, hi) owned by ``rank``."""
        base, extra = divmod(self.grid, self.nprocs)
        lo = rank * base + min(rank, extra)
        hi = lo + base + (1 if rank < extra else 0)
        return lo, hi

    def panel_cols(self, panel: int) -> tuple[int, int]:
        """Half-open column range [lo, hi) of one panel."""
        base, extra = divmod(self.grid, self.panels)
        lo = panel * base + min(panel, extra)
        hi = lo + base + (1 if panel < extra else 0)
        return lo, hi


def make_rhs(cfg: LUConfig) -> np.ndarray:
    """Deterministic right-hand side."""
    rng = np.random.default_rng(cfg.seed)
    return rng.standard_normal((cfg.grid, cfg.grid))


def _sweep_panel(
    u: np.ndarray,
    f: np.ndarray,
    top: np.ndarray,
    bottom: np.ndarray,
    cols: tuple[int, int],
    omega: float,
    reverse: bool,
) -> None:
    """One Gauss-Seidel pass over the column panel ``cols`` of a row
    block, in place.

    ``top``/``bottom`` are the full-width boundary rows owned by the
    neighbouring blocks (zeros at the physical boundary).  West/east
    neighbours come from ``u`` itself (columns outside the panel hold
    their current values: updated for the trailing side of the sweep,
    old for the leading side -- the Gauss-Seidel pattern).  ``reverse``
    sweeps rows bottom-up (the upper-triangular half of SSOR).
    """
    rows, width = u.shape
    c0, c1 = cols
    order = range(rows - 1, -1, -1) if reverse else range(rows)
    for i in order:
        above = u[i - 1] if i > 0 else top
        below = u[i + 1] if i < rows - 1 else bottom
        col_iter = range(c1 - 1, c0 - 1, -1) if reverse else range(c0, c1)
        for j in col_iter:
            west = u[i, j - 1] if j > 0 else 0.0
            east = u[i, j + 1] if j < width - 1 else 0.0
            gs = 0.25 * (above[j] + below[j] + west + east + f[i, j])
            u[i, j] = (1.0 - omega) * u[i, j] + omega * gs


def local_residual(
    u: np.ndarray, f: np.ndarray, top: np.ndarray, bottom: np.ndarray
) -> float:
    """Sum of squared residuals of ``-laplace(u) = f`` over the block."""
    rows, cols = u.shape
    padded = np.zeros((rows + 2, cols + 2))
    padded[1:-1, 1:-1] = u
    padded[0, 1:-1] = top
    padded[-1, 1:-1] = bottom
    lap = (
        padded[:-2, 1:-1]
        + padded[2:, 1:-1]
        + padded[1:-1, :-2]
        + padded[1:-1, 2:]
        - 4.0 * u
    )
    r = lap + f
    return float(np.sum(r * r))


def lu_program(cfg: LUConfig):
    """The SPMD pipelined SSOR program.

    Per sweep: a forward (top-down, left-right) panel-pipelined pass,
    then a backward (bottom-up, right-left) one.  Rank r's work on panel
    j waits only for rank r-1's updated boundary segment *of panel j* --
    the 2-D wavefront that produces the Figure 8 geometry.  Returns the
    global residual history at rank 0 (the block elsewhere).
    """
    f_full = make_rhs(cfg)

    def prog(comm: Comm):
        lo, hi = cfg.block_rows(comm.rank)
        u = np.zeros((hi - lo, cfg.grid))
        top_halo = np.zeros(cfg.grid)
        bottom_halo = np.zeros(cfg.grid)
        f = f_full[lo:hi]
        zeros = np.zeros(cfg.grid)
        up = comm.rank - 1 if comm.rank > 0 else None
        down = comm.rank + 1 if comm.rank < cfg.nprocs - 1 else None
        residuals = []

        def panel_pass(reverse: bool) -> None:
            """One triangular solve: pipeline panels across ranks."""
            recv_from, send_to = (down, up) if reverse else (up, down)
            tag = TAG_UP if reverse else TAG_DOWN
            halo = bottom_halo if reverse else top_halo
            panel_order = (
                range(cfg.panels - 1, -1, -1) if reverse else range(cfg.panels)
            )
            for panel in panel_order:
                c0, c1 = cfg.panel_cols(panel)
                if recv_from is not None:
                    halo[c0:c1] = comm.recv(source=recv_from, tag=tag)
                n_points = (hi - lo) * (c1 - c0)
                comm.compute(
                    cfg.compute_scale * n_points,
                    label="buts" if reverse else "blts",
                )
                _sweep_panel(
                    u, f, top_halo, bottom_halo, (c0, c1), cfg.omega, reverse
                )
                if send_to is not None:
                    boundary = u[0, c0:c1] if reverse else u[-1, c0:c1]
                    comm.send(boundary.copy(), dest=send_to, tag=tag)

        for sweep in range(cfg.sweeps):
            panel_pass(reverse=False)  # lower-triangular (blts)
            panel_pass(reverse=True)  # upper-triangular (buts)

            last_sweep = sweep == cfg.sweeps - 1
            if cfg.residual_every > 0:
                want = (sweep + 1) % cfg.residual_every == 0 or last_sweep
            else:
                want = last_sweep
            if not want:
                continue
            # Fresh full-width halo, then a global residual reduction.
            if down is not None:
                comm.send(u[-1].copy(), dest=down, tag=TAG_RESID)
            if up is not None:
                comm.send(u[0].copy(), dest=up, tag=TAG_RESID)
            top_now = comm.recv(source=up, tag=TAG_RESID) if up is not None else zeros
            bottom_now = (
                comm.recv(source=down, tag=TAG_RESID) if down is not None else zeros
            )
            local = local_residual(u, f, top_now, bottom_now)
            total = comm.reduce(local, root=0)
            residuals.append(total)
        return residuals if comm.rank == 0 else u

    return prog
