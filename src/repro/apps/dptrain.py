"""Allreduce-heavy data-parallel training loop.

A miniature synchronous-SGD workload: rank 0 broadcasts the initial
model, every rank computes a gradient on its private data shard, and
each step runs **two** allreduces -- one to average gradients, one to
average the loss -- before the local SGD update.  Collective traffic
therefore dominates, the complementary stress profile to the
point-to-point :mod:`~repro.apps.halo2d` stencil: the ring/tree
collectives inside the runtime generate O(size) messages per step, so
at 256-1024 ranks this workload measures how cheaply an execution
backend schedules long dependency chains.

The model is linear least-squares on synthetic shards drawn around a
shared ground-truth weight vector, so the averaged loss is guaranteed
to decrease monotonically under a small enough step size -- a property
the tests assert, and one that only holds if every backend delivers
the collectives correctly.

Deterministic end to end (no wildcards, seeded shards): every backend
must return the identical loss history on every rank.
"""

from __future__ import annotations

import numpy as np

from repro.mp.comm import Comm


def make_shard(rank: int, seed: int, n_samples: int, dim: int):
    """Deterministic per-rank (X, y) regression shard."""
    # NOT hash(): string hashing is salted per interpreter, which would
    # silently break cross-run trace identity.
    rng = np.random.default_rng(1_000_003 * seed + rank + 17)
    w_true = _true_weights(seed, dim)
    x = rng.standard_normal((n_samples, dim))
    noise = 0.01 * rng.standard_normal(n_samples)
    return x, x @ w_true + noise


def _true_weights(seed: int, dim: int) -> np.ndarray:
    rng = np.random.default_rng(999_331 * (seed + 1))
    return rng.standard_normal(dim)


def dptrain_program(steps: int = 4, dim: int = 8, n_samples: int = 16,
                    lr: float = 0.05, seed: int = 0,
                    compute_cost: float = 0.0):
    """Build the training target; every rank returns the loss history.

    The returned list has one (identical across ranks) averaged loss
    per step, measured *before* that step's update, so with a sane
    ``lr`` it decreases monotonically.
    """

    def prog(comm: Comm):
        x, y = make_shard(comm.rank, seed, n_samples, dim)
        # Rank 0 owns the initial model; everyone starts identical.
        w0 = np.zeros(dim) if comm.rank == 0 else None
        w = comm.bcast(w0, root=0)
        losses = []
        for _ in range(steps):
            resid = x @ w - y
            loss = float(resid @ resid) / n_samples
            grad = 2.0 * (x.T @ resid) / n_samples
            if compute_cost:
                comm.compute(compute_cost, label="grad")
            grad_sum = comm.allreduce(grad)
            loss_sum = comm.allreduce(loss)
            losses.append(loss_sum / comm.size)
            w = w - lr * (grad_sum / comm.size)
        return losses

    return prog
