"""2-D halo-exchange Jacobi stencil on a periodic process torus.

The canonical bulk-synchronous SPMD workload at scale: each rank owns a
``tile x tile`` block of a global periodic grid, exchanges one-cell-deep
edge halos with its four torus neighbours using nonblocking
``isend``/``irecv`` + ``waitall``, and applies a 4-point Jacobi
averaging update.  Unlike the 1-D :func:`repro.apps.ring.halo_program`
smoke workload this exercises a genuine 2-D neighbourhood (the paper's
target programs are grid codes of exactly this shape) and is the
scaling workload for the 64-1024-rank backend benchmarks: per-rank work
is constant, so wall-clock is dominated by the execution backend's
scheduling cost.

Communication is fully deterministic (no wildcards), so every backend
-- including the multiprocessing one -- must reproduce the same
numerics, and the pure-numpy :func:`reference_halo2d` gives the
ground-truth global evolution to check tiles against.
"""

from __future__ import annotations

import numpy as np

from repro.mp.comm import Comm

#: direction tags; "to-north" arrives at the north neighbour as its
#: *south* halo.  Distinct per direction so the Py==2 / Px==2 torus
#: (where the north and south neighbour are the same rank) stays
#: unambiguous.
TAG_TO_NORTH = 61
TAG_TO_SOUTH = 62
TAG_TO_WEST = 63
TAG_TO_EAST = 64


def process_grid(nprocs: int) -> tuple[int, int]:
    """Factor ``nprocs`` into the squarest ``(Py, Px)`` torus."""
    px = int(np.sqrt(nprocs))
    while nprocs % px:
        px -= 1
    return nprocs // px, px


def initial_tile(rank: int, nprocs: int, tile: int, seed: int = 0) -> np.ndarray:
    """Deterministic initial block for ``rank`` (slice of the global grid)."""
    py, px = process_grid(nprocs)
    gy, gx = divmod(rank, px)
    rows = np.arange(gy * tile, (gy + 1) * tile)[:, None]
    cols = np.arange(gx * tile, (gx + 1) * tile)[None, :]
    # Smooth-but-nontrivial field; seed shifts the phase so distinct
    # seeds give distinct (still deterministic) executions.
    return np.sin(0.7 * rows + seed) * np.cos(0.3 * cols - seed) + 0.01 * rows * cols


def reference_halo2d(nprocs: int, tile: int, steps: int, seed: int = 0) -> np.ndarray:
    """Pure-numpy ground truth: the full global grid after ``steps``."""
    py, px = process_grid(nprocs)
    grid = np.empty((py * tile, px * tile))
    for rank in range(nprocs):
        gy, gx = divmod(rank, px)
        grid[gy * tile:(gy + 1) * tile, gx * tile:(gx + 1) * tile] = initial_tile(
            rank, nprocs, tile, seed
        )
    for _ in range(steps):
        grid = 0.25 * (
            np.roll(grid, 1, axis=0)
            + np.roll(grid, -1, axis=0)
            + np.roll(grid, 1, axis=1)
            + np.roll(grid, -1, axis=1)
        )
    return grid


def halo2d_program(tile: int = 4, steps: int = 2, seed: int = 0,
                   compute_cost: float = 0.0):
    """Build the stencil target; each rank returns ``float(tile.sum())``.

    ``compute_cost`` adds virtual compute time per step (for time-space
    diagrams); it does not affect the numerics.
    """

    def prog(comm: Comm):
        py, px = process_grid(comm.size)
        gy, gx = divmod(comm.rank, px)
        north = ((gy - 1) % py) * px + gx
        south = ((gy + 1) % py) * px + gx
        west = gy * px + (gx - 1) % px
        east = gy * px + (gx + 1) % px
        local = initial_tile(comm.rank, comm.size, tile, seed)

        for _ in range(steps):
            recvs = [
                comm.irecv(source=south, tag=TAG_TO_NORTH),  # south's top-bound row
                comm.irecv(source=north, tag=TAG_TO_SOUTH),
                comm.irecv(source=east, tag=TAG_TO_WEST),
                comm.irecv(source=west, tag=TAG_TO_EAST),
            ]
            sends = [
                comm.isend(local[0, :].copy(), dest=north, tag=TAG_TO_NORTH),
                comm.isend(local[-1, :].copy(), dest=south, tag=TAG_TO_SOUTH),
                comm.isend(local[:, 0].copy(), dest=west, tag=TAG_TO_WEST),
                comm.isend(local[:, -1].copy(), dest=east, tag=TAG_TO_EAST),
            ]
            halo_s, halo_n, halo_e, halo_w = comm.waitall(recvs)
            comm.waitall(sends)
            padded = np.empty((tile + 2, tile + 2))
            padded[1:-1, 1:-1] = local
            padded[0, 1:-1] = halo_n
            padded[-1, 1:-1] = halo_s
            padded[1:-1, 0] = halo_w
            padded[1:-1, -1] = halo_e
            local = 0.25 * (
                padded[:-2, 1:-1]
                + padded[2:, 1:-1]
                + padded[1:-1, :-2]
                + padded[1:-1, 2:]
            )
            if compute_cost:
                comm.compute(compute_cost, label="stencil")
        return float(local.sum())

    return prog
