"""Small message-passing microworkloads used by tests and examples."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.mp.comm import Comm
from repro.mp.datatypes import ANY_SOURCE, ANY_TAG
from repro.mp.status import Status

TAG_RING = 41
TAG_PING = 42
TAG_HALO = 43
TAG_WORK = 44
TAG_DONE = 45


def ring_program(rounds: int = 1, payload: int = 1):
    """A token circulates the ring ``rounds`` times, accumulating ranks.

    Returns (at rank 0) the accumulated sum -- checkable as
    ``rounds * sum(range(size))``.
    """

    def prog(comm: Comm):
        right = (comm.rank + 1) % comm.size
        left = (comm.rank - 1) % comm.size
        if comm.rank == 0:
            token = np.zeros(payload)
            for _ in range(rounds):
                comm.send(token, dest=right, tag=TAG_RING)
                token = comm.recv(source=left, tag=TAG_RING)
            return float(token[0])
        for _ in range(rounds):
            token = comm.recv(source=left, tag=TAG_RING)
            token[0] += comm.rank
            comm.send(token, dest=right, tag=TAG_RING)
        return None

    return prog


def pingpong_program(rounds: int = 4, size: int = 8):
    """Two ranks exchange a buffer ``rounds`` times (latency probe)."""

    def prog(comm: Comm):
        if comm.size < 2:
            raise ValueError("pingpong needs 2 ranks")
        buf = np.arange(size, dtype=float)
        if comm.rank == 0:
            for _ in range(rounds):
                comm.send(buf, dest=1, tag=TAG_PING)
                buf = comm.recv(source=1, tag=TAG_PING)
            return float(buf.sum())
        if comm.rank == 1:
            for _ in range(rounds):
                buf = comm.recv(source=0, tag=TAG_PING)
                comm.send(buf + 1.0, dest=0, tag=TAG_PING)
        return None

    return prog


def halo_program(steps: int = 3, width: int = 4):
    """1-D halo exchange: each rank averages with its neighbours.

    A smoothing iteration whose fixed point is uniform, so tests can
    check the spread shrinks monotonically.
    """

    def prog(comm: Comm):
        value = np.full(width, float(comm.rank))
        left = comm.rank - 1 if comm.rank > 0 else None
        right = comm.rank + 1 if comm.rank < comm.size - 1 else None
        for _ in range(steps):
            if left is not None:
                comm.send(value.copy(), dest=left, tag=TAG_HALO)
            if right is not None:
                comm.send(value.copy(), dest=right, tag=TAG_HALO)
            lval = comm.recv(source=left, tag=TAG_HALO) if left is not None else value
            rval = comm.recv(source=right, tag=TAG_HALO) if right is not None else value
            value = (lval + value + rval) / 3.0
            comm.compute(float(width))
        return float(value.mean())

    return prog


def master_worker_program(n_tasks: int = 8, task_cost: float = 3.0,
                          chunk: Optional[int] = None):
    """Self-scheduling master/worker pool using ``ANY_SOURCE``.

    The canonical wildcard-receive workload: results arrive in a
    nondeterministic order, which is what the controlled-replay and
    race-analysis machinery exists to tame.
    """
    del chunk  # reserved for a future chunked variant

    def prog(comm: Comm):
        if comm.size < 2:
            raise ValueError("master/worker needs at least 2 ranks")
        if comm.rank == 0:
            results = {}
            next_task = 0
            outstanding = 0
            # Prime one task per worker.
            for w in range(1, comm.size):
                if next_task < n_tasks:
                    comm.send(next_task, dest=w, tag=TAG_WORK)
                    next_task += 1
                    outstanding += 1
                else:
                    comm.send(None, dest=w, tag=TAG_DONE)
            while outstanding:
                st = Status()
                task_id, value = comm.recv(source=ANY_SOURCE, tag=TAG_WORK, status=st)
                results[task_id] = value
                outstanding -= 1
                if next_task < n_tasks:
                    comm.send(next_task, dest=st.source, tag=TAG_WORK)
                    next_task += 1
                    outstanding += 1
                else:
                    comm.send(None, dest=st.source, tag=TAG_DONE)
            return [results[i] for i in sorted(results)]
        while True:
            st = Status()
            task = comm.recv(source=0, tag=ANY_TAG, status=st)
            if st.tag == TAG_DONE:
                return None
            comm.compute(task_cost * (1 + task % 3))
            comm.send((task, task * task), dest=0, tag=TAG_WORK)

    return prog
