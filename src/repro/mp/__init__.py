"""``repro.mp`` -- the simulated message-passing substrate.

A deterministic, single-machine stand-in for the MPI/PVM layer the paper
runs on (see DESIGN.md, "Substitutions").  Public surface:

* :class:`Runtime` / :func:`run_program` / :func:`create_runtime` --
  build and execute programs on a named execution backend
  (``threaded`` / ``simtime`` / ``mproc``; see :mod:`repro.mp.backends`);
* :class:`Comm` -- the per-rank communicator (mpi4py-flavoured API);
* wildcards and constants (:data:`ANY_SOURCE`, :data:`ANY_TAG`, ...);
* :class:`CostModel` -- virtual-time tuning;
* :class:`CommLog` -- recorded nondeterminism for controlled replay;
* the error types, most importantly :class:`DeadlockError`.
"""

from .backends import (
    BACKEND_ENV_VAR,
    CooperativeBackend,
    ExecutionBackend,
    MprocBackend,
    SimtimeBackend,
    ThreadedBackend,
    available_backends,
    default_backend,
    make_backend,
    register_backend,
)
from .channel import Mailbox, PendingRecv
from .clock import CostModel, VirtualClock
from .comm import Comm, OpDetail
from .datatypes import (
    ANY_SOURCE,
    ANY_TAG,
    PROC_NULL,
    TAG_UB,
    CollectiveTag,
    SendMode,
    SourceLocation,
)
from .errors import (
    DeadlockError,
    InvalidRankError,
    InvalidTagError,
    MPError,
    MPIError,
    ReplayDivergenceError,
    RequestError,
    TruncationError,
)
from .message import Envelope, Message, payload_size
from .pmpi import INTERPOSABLE_OPS, PMPILayer
from .process import ProcState, Process, StopReason, WaitInfo, WaitKind
from .record import CommLog
from .requests import RecvRequest, Request, SendRequest
from .runtime import ProgramSpec, Runtime, Target, create_runtime, run_program
from .scheduler import (
    RandomPolicy,
    RoundRobinPolicy,
    RunOutcome,
    RunReport,
    RunToBlockPolicy,
    Scheduler,
    SchedulingPolicy,
    VirtualTimePolicy,
    make_policy,
)
from .status import Status

__all__ = [
    "ANY_SOURCE",
    "ANY_TAG",
    "BACKEND_ENV_VAR",
    "PROC_NULL",
    "TAG_UB",
    "CollectiveTag",
    "Comm",
    "CooperativeBackend",
    "ExecutionBackend",
    "MprocBackend",
    "SimtimeBackend",
    "ThreadedBackend",
    "CommLog",
    "CostModel",
    "DeadlockError",
    "Envelope",
    "INTERPOSABLE_OPS",
    "InvalidRankError",
    "InvalidTagError",
    "MPError",
    "MPIError",
    "Mailbox",
    "Message",
    "OpDetail",
    "PMPILayer",
    "PendingRecv",
    "ProcState",
    "Process",
    "ProgramSpec",
    "RandomPolicy",
    "RecvRequest",
    "ReplayDivergenceError",
    "Request",
    "RequestError",
    "RoundRobinPolicy",
    "RunOutcome",
    "RunReport",
    "RunToBlockPolicy",
    "Runtime",
    "Scheduler",
    "SchedulingPolicy",
    "SendMode",
    "SendRequest",
    "SourceLocation",
    "Status",
    "StopReason",
    "Target",
    "TruncationError",
    "VirtualClock",
    "VirtualTimePolicy",
    "WaitInfo",
    "WaitKind",
    "available_backends",
    "create_runtime",
    "default_backend",
    "make_backend",
    "make_policy",
    "payload_size",
    "register_backend",
    "run_program",
]
