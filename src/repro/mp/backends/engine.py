"""The shared cooperative token engine behind the in-process backends.

Both the ``threaded`` and ``simtime`` backends execute ranks
cooperatively: at most one rank runs at any instant, every interleaving
decision flows through a deterministic
:class:`~repro.mp.scheduler.SchedulingPolicy`, and a given (program,
policy, seed) triple always produces the same execution.  What differs
between them is purely *how the token changes hands* -- the handoff
primitives at the bottom of this class:

* :meth:`_handoff` -- controller side: transfer the token to a process
  and wait until it is handed back;
* :meth:`_await` -- worker side: suspend until the token arrives;
* :meth:`_handback` -- worker side: return the token to the controller;
* :meth:`start_proc` / :meth:`join_proc` -- carrier lifecycle.

State transitions and ready-set accounting happen in *this* class, on
the token holder's side of the handoff, so the primitives move only the
token and never interpret process state.

Everything above those primitives -- ready-set accounting, outcome
classification, the debugger's resume/step surface, grant budgets and
hooks -- is engine logic shared verbatim by both backends, which is what
keeps their schedules (and therefore traces, CommLogs, and markers)
bit-for-bit identical for the same policy and seed.

Ready-set accounting is incremental: the old scheduler re-scanned every
process on every grant (O(nprocs) per grant, quadratic per run), which
dominated at hundreds of ranks.  Policies that declare a ``ready_key``
(pick == min over the ready set of ``(ready_key(p), p.rank)``) are
served from a lazy-invalidation heap -- O(log n) per transition; other
policies get the rank-ordered candidate list the old scan produced, so
their decisions (and RNG consumption) are unchanged.
"""

from __future__ import annotations

import heapq
import threading
from typing import Any, Callable, Optional, Sequence

from ..comm import Comm
from ..process import ProcState, Process, WaitInfo
from ..scheduler import (
    RunOutcome,
    RunReport,
    SchedulingPolicy,
    make_policy,
)
from .base import ExecutionBackend


class CooperativeBackend(ExecutionBackend):
    """Deterministic token-passing engine; subclasses supply the handoff."""

    supports_debugger = True
    supports_wrappers = True
    supports_ready_send = True
    deterministic = True

    def __init__(
        self,
        policy: "str | SchedulingPolicy" = "run_to_block",
        seed: int = 0,
        max_grants: Optional[int] = None,
    ) -> None:
        super().__init__()
        self.policy = make_policy(policy, seed)
        self.procs: list[Process] = []
        self.max_grants = max_grants
        self.total_grants = 0
        #: observers notified after every grant (runtime statistics)
        self.grant_hooks: list[Callable[[Process], None]] = []

        # -- incremental ready set -------------------------------------
        #: rank -> proc for every READY process (the exact ready set)
        self._ready: dict[int, Process] = {}
        #: lazy-invalidation heap of ((key, rank), stamp) entries;
        #: populated only for keyed policies
        self._heap: list[tuple[Any, int, int]] = []
        #: rank -> stamp of its live heap entry (stale entries skipped)
        self._stamp: dict[int, int] = {}
        self._stamp_counter = 0
        key_fn = getattr(self.policy, "ready_key", None)
        self._key_fn = key_fn if callable(key_fn) else None
        # A policy that never preempts skips candidate-list construction
        # at every marker point (the default run_to_block fast path).
        self._preemptive = (
            type(self.policy).should_preempt is not SchedulingPolicy.should_preempt
        )
        #: worker-context (thread ident) -> proc, registered eagerly when
        #: a carrier starts; ``current_proc`` is a plain dict lookup.
        self._ident_to_proc: dict[int, Process] = {}
        #: rank -> carrier thread (subclasses populate; simtime lazily)
        self._threads: dict[int, threading.Thread] = {}

    # ------------------------------------------------------------------
    # setup
    # ------------------------------------------------------------------
    def launch(
        self,
        targets: Sequence[Callable[[Comm], Any]],
        *,
        stop_on_entry: bool = False,
    ) -> None:
        rt = self.runtime
        assert rt is not None
        for rank, target in enumerate(targets):
            proc = Process(rank, self, target)
            proc.stop.stop_on_entry = stop_on_entry
            comm = Comm(rt, rank)
            proc.comm = comm
            rt.procs.append(proc)
            rt.comms.append(comm)
            self.register(proc)
        for proc in self.procs:
            self.start_proc(proc)

    def register(self, proc: Process) -> None:
        """Add a process; must happen before it is started."""
        self.procs.append(proc)

    def _enter_worker_context(self, proc: Process) -> None:
        """Carrier entry hook: attribute this execution context to
        ``proc`` (both in-process backends carry ranks on threads)."""
        self._ident_to_proc[threading.get_ident()] = proc

    def current_proc(self) -> Process:
        try:
            return self._ident_to_proc[threading.get_ident()]
        except KeyError:
            raise RuntimeError(
                "current_proc() called from a thread that is not a "
                "simulated process"
            ) from None

    def carrier_ident(self, proc: Process) -> Optional[int]:
        """Thread ident of ``proc``'s carrier, if one has started.

        The debugger reads a parked process's live user frames through
        ``sys._current_frames()`` keyed by this ident.
        """
        thread = self._threads.get(proc.rank)
        return thread.ident if thread is not None else None

    def join_proc(self, proc: Process) -> None:
        thread = self._threads.get(proc.rank)
        if thread is not None:
            thread.join(timeout=5.0)

    # ------------------------------------------------------------------
    # ready-set accounting (token holder only; no extra locking needed)
    # ------------------------------------------------------------------
    def _ready_add(self, proc: Process) -> None:
        """Enqueue a process that just became READY."""
        self._ready[proc.rank] = proc
        if self._key_fn is not None:
            self._stamp_counter += 1
            self._stamp[proc.rank] = self._stamp_counter
            heapq.heappush(
                self._heap,
                ((self._key_fn(proc), proc.rank), proc.rank, self._stamp_counter),
            )

    def _ready_discard(self, proc: Process) -> None:
        self._ready.pop(proc.rank, None)

    def _ready_candidates(self, exclude: Optional[Process] = None) -> list[Process]:
        """The ready set as the policy wants to see it: rank order (the
        candidate order a full registration-order scan used to produce,
        so order-sensitive policies make identical decisions)."""
        ready = self._ready
        return [
            ready[r]
            for r in sorted(ready)
            if exclude is None or ready[r] is not exclude
        ]

    def _pick_next(self) -> Optional[Process]:
        """Choose and claim the next grantee; equals ``policy.pick`` by
        contract.

        For keyed policies, popping live heap entries yields the minimum
        of (ready_key, rank) over the ready set -- the documented
        equivalence in :class:`~repro.mp.scheduler.SchedulingPolicy`.
        """
        if not self._ready:
            return None
        if self._key_fn is not None:
            heap = self._heap
            while heap:
                _, rank, stamp = heapq.heappop(heap)
                if self._stamp.get(rank) == stamp and rank in self._ready:
                    self._stamp.pop(rank, None)
                    return self._ready.pop(rank)
            raise AssertionError("ready set and ready heap diverged")
        chosen = self.policy.pick(self._ready_candidates())
        self._ready.pop(chosen.rank, None)
        return chosen

    # ------------------------------------------------------------------
    # controller-thread side
    # ------------------------------------------------------------------
    def run_until_idle(self) -> RunReport:
        """Grant the token until no process is READY, then classify.

        STOPPED takes priority over DEADLOCK: processes blocked on
        messages that a *stopped* peer would send are not deadlocked,
        merely waiting for the debugger.
        """
        grants = 0
        while True:
            if not self._ready:
                return self._classify(grants)
            if self.max_grants is not None and self.total_grants >= self.max_grants:
                return RunReport(outcome=RunOutcome.LIMIT, grants=grants)
            proc = self._pick_next()
            assert proc is not None
            self._grant(proc)
            grants += 1
            self.total_grants += 1
            for hook in self.grant_hooks:
                hook(proc)

    def _classify(self, grants: int) -> RunReport:
        stopped = [p for p in self.procs if p.state is ProcState.STOPPED]
        blocked = [p for p in self.procs if p.state is ProcState.BLOCKED]
        errored = [p for p in self.procs if p.state is ProcState.ERRORED]
        report = RunReport(
            outcome=RunOutcome.FINISHED,
            stopped=stopped,
            blocked=blocked,
            errored=errored,
            waiting=[p.wait_info for p in blocked if p.wait_info is not None],
            grants=grants,
        )
        # Priority: a debugger stop owns the situation; then a user error
        # (processes blocked on an errored peer are a consequence, not a
        # deadlock); a true deadlock only when everyone left is blocked.
        if stopped:
            report.outcome = RunOutcome.STOPPED
        elif errored:
            report.outcome = RunOutcome.ERROR
        elif blocked:
            report.outcome = RunOutcome.DEADLOCK
        return report

    def resume_stopped(self, procs: Optional[Sequence[Process]] = None) -> None:
        """Flip STOPPED processes back to READY (debugger continue)."""
        for proc in procs if procs is not None else self.procs:
            if proc.state is ProcState.STOPPED:
                proc.state = ProcState.READY
                self._ready_add(proc)

    def shutdown(self) -> None:
        """Terminate all live processes (used on teardown / abandon).

        Each live process is marked for kill and granted once; its next
        scheduling point raises ``ProcessKilled``, unwinding the user
        stack.
        """
        for proc in self.procs:
            if proc.live:
                proc.request_kill()
        # Granting order doesn't matter for teardown; use rank order.
        for proc in sorted(self.procs, key=lambda p: p.rank):
            if proc.live:
                self._kill_grant(proc)
        for proc in self.procs:
            self.join_proc(proc)

    def _kill_grant(self, proc: Process) -> None:
        """Grant a kill-marked process so it can unwind; backends whose
        carriers start lazily override this to retire never-started
        processes without a grant."""
        if proc.terminated:
            return
        self._ready_discard(proc)
        self._grant(proc)

    # ------------------------------------------------------------------
    # worker-side yields (token holder)
    # ------------------------------------------------------------------
    def yield_blocked(self, proc: Process, wait: WaitInfo) -> None:
        """Worker: release the token in BLOCKED state; return on re-grant.

        The caller must re-check its wait condition in a loop -- a grant
        does not guarantee the condition holds (spurious wakeups are
        possible when the debugger resumes everything).
        """
        proc.wait_info = wait
        self._release(proc, ProcState.BLOCKED)
        self.await_grant(proc)
        proc.wait_info = None

    def yield_stopped(self, proc: Process) -> None:
        """Worker: park in STOPPED (debugger stop); return on re-grant."""
        self._release(proc, ProcState.STOPPED)
        self.await_grant(proc)

    def yield_ready(self, proc: Process) -> None:
        """Worker: voluntary preemption; return when re-picked."""
        self._ready_add(proc)
        self._release(proc, ProcState.READY)
        self.await_grant(proc)

    def maybe_preempt(self, proc: Process) -> None:
        """Worker: consult the policy at an instrumentation point."""
        if not self._preemptive or not self._ready:
            return
        others = self._ready_candidates(exclude=proc)
        if others and self.policy.should_preempt(proc, others):
            self.yield_ready(proc)

    def poll_yield(self, proc: Process) -> None:
        """Worker: yield after an unsuccessful nonblocking poll.

        In a cooperative runtime the poller must voluntarily yield or a
        ``while not test()`` loop would starve the very process it is
        waiting on, regardless of scheduling policy.
        """
        if self._ready:
            self.yield_ready(proc)

    def unblock(self, proc: Process) -> None:
        """Any token holder: make a BLOCKED process READY again."""
        if proc.state is ProcState.BLOCKED:
            proc.state = ProcState.READY
            self._ready_add(proc)

    def proc_finished(
        self, proc: Process, final_state: ProcState, killed: bool = False
    ) -> None:
        """Worker: final release; the worker context exits after this."""
        del killed  # recorded implicitly: killed procs have no result
        self._release(proc, final_state)

    # ------------------------------------------------------------------
    # token transfer (state transitions here; raw handoff in subclasses)
    # ------------------------------------------------------------------
    def _grant(self, proc: Process) -> None:
        """Controller: hand the token to ``proc``, wait for its release."""
        proc.state = ProcState.RUNNING
        self._handoff(proc)

    def await_grant(self, proc: Process) -> None:
        """Worker: suspend until the token is handed to ``proc``.

        Raises ``ProcessKilled`` on a teardown grant, unwinding the user
        stack from whatever yield point the process was parked at.
        """
        self._await(proc)
        proc.check_killed()

    def _release(self, proc: Process, new_state: ProcState) -> None:
        """Worker: give the token back, leaving ``proc`` in ``new_state``."""
        proc.state = new_state
        self._handback(proc)

    # ------------------------------------------------------------------
    # handoff primitives (backend-specific)
    # ------------------------------------------------------------------
    def start_proc(self, proc: Process) -> None:
        """Make ``proc`` READY and schedulable; carriers may start lazily."""
        raise NotImplementedError

    def _handoff(self, proc: Process) -> None:
        """Controller: transfer the token to ``proc``; return once it is
        handed back."""
        raise NotImplementedError

    def _await(self, proc: Process) -> None:
        """Worker: suspend until the token is transferred to ``proc``."""
        raise NotImplementedError

    def _handback(self, proc: Process) -> None:
        """Worker: return the token to the controller."""
        raise NotImplementedError
