"""Thread-per-rank cooperative backend (the original execution model).

Every rank gets a daemon OS thread at launch, but at most one thread
executes at any instant: a single condition variable serializes every
token handoff, exactly as the pre-backend scheduler did.  The thread is
only a *carrier* for the rank's Python stack -- scheduling decisions all
come from the shared :class:`~repro.mp.backends.engine.CooperativeBackend`
engine.

This is the reference backend: threads make the suspension story
trivially correct (a blocked rank is just a thread waiting on the
condition variable mid-stack), at the cost of ``notify_all`` waking
every parked thread on each handoff -- an O(nprocs) thundering herd per
grant that caps practical rank counts at a few dozen.  The ``simtime``
backend exists to remove exactly that cost.
"""

from __future__ import annotations

import threading
from typing import Optional

from ..process import ProcState, Process
from .engine import CooperativeBackend


class ThreadedBackend(CooperativeBackend):
    """One daemon thread per rank; condition-variable token handoffs."""

    name = "threaded"

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._cv = threading.Condition()
        #: the process currently holding the token (None between grants)
        self._current: Optional[Process] = None

    # ------------------------------------------------------------------
    # carrier lifecycle
    # ------------------------------------------------------------------
    def start_proc(self, proc: Process) -> None:
        if proc.rank in self._threads:
            raise RuntimeError(f"{proc!r} already started")
        proc.state = ProcState.READY
        self._ready_add(proc)
        thread = threading.Thread(
            target=self._carrier_body, args=(proc,), name=proc.name, daemon=True
        )
        self._threads[proc.rank] = thread
        thread.start()

    def _carrier_body(self, proc: Process) -> None:
        self._enter_worker_context(proc)
        proc.run_target()

    # ------------------------------------------------------------------
    # handoff primitives
    # ------------------------------------------------------------------
    def _handoff(self, proc: Process) -> None:
        with self._cv:
            self._current = proc
            self._cv.notify_all()
            while self._current is not None:
                self._cv.wait()

    def _await(self, proc: Process) -> None:
        with self._cv:
            while self._current is not proc:
                self._cv.wait()

    def _handback(self, proc: Process) -> None:
        with self._cv:
            self._current = None
            self._cv.notify_all()
