"""Multiprocessing backend: one forked worker process per rank.

The only backend with *true parallelism*: ranks run concurrently on real
CPUs, so CPU-bound targets actually overlap.  What it trades away is
recorded in its capability flags -- the debugger control surface, target
wrappers, ready-send validation, and schedule determinism all require
the cooperative in-process engine.  What it keeps is the paper's
*protocol* layer: per-rank mailboxes with arrival-order matching, the
CommLog (recorded locally, merged at exit), replay forcing of wildcard
receives and ``waitany`` (each worker inherits the replay log across the
fork), and deadlock detection with per-rank wait descriptions.

Architecture
------------
* **Workers.**  Forked with the ``fork`` start method, so rank targets
  need not pickle and inherit the replay log / cost model for free.
  Each worker builds a :class:`_WorkerRuntime` -- a rank-local stand-in
  for :class:`~repro.mp.runtime.Runtime` that owns this rank's mailbox,
  clock, CommLog, and PMPI layer -- and runs the unmodified
  :class:`~repro.mp.comm.Comm` protocol code against it.

* **Transport.**  One inbound ``multiprocessing`` queue per rank.
  Message payloads are pickled eagerly at the send site so an
  unpicklable payload fails *there* with a clear error, not later in a
  queue feeder thread.  Sequence numbers keep their global meaning
  because they are keyed by (comm, src, dst, tag) and only rank ``src``
  ever sends under a given key; arrival order is receiver-assigned.
  Synchronous sends rendezvous via an ack routed back to the sender's
  queue.  Communicator context ids are namespaced by allocating world
  rank (id = rank + 1, stepping by nprocs) so concurrent splits rooted
  at different ranks never collide.

* **Merge-free trace recording.**  With ``trace_path`` set, each forked
  rank carries its own :class:`~repro.trace.recorder.TraceRecorder`
  stamping disjoint global indices (``index_start=rank,
  index_step=nprocs``) through the instrumented wrapper library.  In
  ``trace_mode="shard"`` (the default) every worker streams its records
  straight into its own shard file -- compression-aware, bounded
  memory -- and the parent's only job at exit is writing the one-line
  manifest from the workers' reported shard stats (falling back to
  :func:`~repro.trace.shard.scan_shard_info` for a worker that died
  without reporting).  ``trace_mode="merge"`` keeps the legacy shape:
  records come back pickled in the exit report and the parent merges
  them by global index into a single trace file.

* **Deadlock detection.**  Counting-based with confirmation: a blocked
  worker reports its wait description plus (puts, gots) transfer
  counters.  When every live worker is blocked and the global counters
  balance (no message in flight), the parent *suspects* deadlock and
  issues a ping wave; each still-blocked worker answers from inside its
  wait loop with its current counters.  Only if every pong confirms
  "still blocked, counters unchanged" is the deadlock real -- any
  progress report, counter drift, or timeout cancels the suspicion.
  Confirmed deadlocks (and errors) abort the remaining workers; the
  blocked stubs keep their wait info so post-mortem introspection
  (``blocked_waits``, Figure 5 analysis) still works in the parent.
"""

from __future__ import annotations

import heapq
import multiprocessing
import os
import pickle
import queue as queue_mod
import time
import traceback
from itertools import count
from operator import attrgetter
from pathlib import Path
from typing import Any, Callable, Optional, Sequence, Union

from ..channel import Mailbox, PendingRecv
from ..comm import Comm
from ..errors import MPError, ProcessKilled
from ..message import Envelope, Message
from ..pmpi import PMPILayer
from ..process import ProcState, Process, WaitInfo
from ..record import CommLog
from ..scheduler import RunOutcome, RunReport
from .base import ExecutionBackend

#: parent -> worker control frames (besides ("msg", bytes) transport)
_PING = "ping"
_ACK = "ack"
_MSG = "msg"
_ABORT = "abort"


def _safe_pickle(obj: Any, what: str) -> bytes:
    try:
        return pickle.dumps(obj)
    except Exception as exc:
        raise MPError(f"{what} is not picklable under the mproc backend: {exc!r}")


class _WorkerRuntime:
    """Rank-local Runtime stand-in: everything ``Comm`` calls, scoped to
    one rank, with remote access routed through the queues.

    Doubles as its own scheduler shim (``self.scheduler is self``): the
    worker is preemptively scheduled by the OS, so "yielding" means
    draining the inbound queue, and "blocking" means waiting on it.
    """

    def __init__(
        self,
        rank: int,
        nprocs: int,
        inqs: Sequence[Any],
        report_q: Any,
        replay_log: Optional[CommLog],
        cost_model: Any,
    ) -> None:
        self.rank = rank
        self.nprocs = nprocs
        self.cost_model = cost_model
        self.replay_log = replay_log
        self.comm_log = CommLog()
        self.pmpi_layer = PMPILayer()
        self.messages_sent = 0
        self._inqs = inqs
        self._inq = inqs[rank]
        self._report_q = report_q

        self.mailbox = Mailbox(rank)
        self.mailbox.on_message_matched = self._on_match
        self.mailboxes = _SelfOnly(rank, self.mailbox, "the mailbox")
        self.proc = Process(rank, self, _noop_target)
        self.procs = _SelfOnly(rank, self.proc, "the process")

        self._seq_counters: dict[tuple[int, int, int, int], Any] = {}
        # Context ids namespaced by allocating rank: rank+1, rank+1+nprocs, ...
        self._comm_id_counter = count(rank + 1, nprocs)
        self._arrival_counter = count()
        self._ssend_pending: set[int] = set()
        #: transfer counters for the parent's deadlock accounting
        self.puts = 0
        self.gots = 0

    # -- scheduler-shim surface ----------------------------------------
    @property
    def scheduler(self) -> "_WorkerRuntime":
        return self

    def await_grant(self, proc: Process) -> None:
        proc.check_killed()

    def maybe_preempt(self, proc: Process) -> None:
        pass  # the OS preempts; there is no token

    def poll_yield(self, proc: Process) -> None:
        # Between nonblocking polls, give arrivals a brief chance so a
        # ``while not test()`` loop doesn't spin dry.
        self._drain(block=True, timeout=0.001)

    def yield_ready(self, proc: Process) -> None:
        self._drain(block=False)

    def yield_blocked(self, proc: Process, wait: WaitInfo) -> None:
        proc.wait_info = wait
        self._report(("blocked", self.rank, wait, self.puts, self.gots))
        self._drain(block=True, blocked=True)
        self._report(("running", self.rank))
        proc.wait_info = None

    def yield_stopped(self, proc: Process) -> None:
        raise MPError(
            "debugger stops are not supported under the mproc backend"
        )

    def unblock(self, proc: Process) -> None:
        pass  # the blocked wait loop rechecks right after the drain

    def proc_finished(
        self, proc: Process, final_state: ProcState, killed: bool = False
    ) -> None:
        proc.state = final_state

    # -- transport ------------------------------------------------------
    def _put(self, dst: int, item: tuple) -> None:
        self.puts += 1
        self._inqs[dst].put(item)

    def _report(self, item: tuple) -> None:
        self._report_q.put(item)

    def _drain(
        self,
        *,
        block: bool,
        blocked: bool = False,
        timeout: Optional[float] = None,
    ) -> bool:
        """Move queued arrivals into the local mailbox.

        With ``block`` true, waits until at least one *progress-making*
        item (message or ack) arrives -- pings are answered in place and
        do not count as progress.  Returns whether progress was made.
        """
        progressed = False
        while True:
            try:
                if block and not progressed:
                    item = self._inq.get(timeout=timeout)
                else:
                    item = self._inq.get_nowait()
            except queue_mod.Empty:
                return progressed
            kind = item[0]
            if kind == _MSG:
                self.gots += 1
                msg = pickle.loads(item[1])
                msg.arrival_order = next(self._arrival_counter)
                self.mailbox.deposit(msg)
                progressed = True
            elif kind == _ACK:
                self.gots += 1
                self._ssend_pending.discard(item[1])
                progressed = True
            elif kind == _PING:
                self._report(
                    ("pong", self.rank, item[1], blocked, self.puts, self.gots)
                )
            elif kind == _ABORT:
                raise ProcessKilled()

    # -- Runtime protocol surface ---------------------------------------
    def next_seq(self, src: int, dst: int, tag: int, comm_id: int = 0) -> int:
        key = (comm_id, src, dst, tag)
        counter = self._seq_counters.get(key)
        if counter is None:
            counter = self._seq_counters[key] = count()
        return next(counter)

    def deposit(self, msg: Message) -> None:
        self.messages_sent += 1
        if msg.synchronous:
            self._ssend_pending.add(msg.msg_id)
        dst = msg.envelope.dst
        if dst == self.rank:
            msg.arrival_order = next(self._arrival_counter)
            self.mailbox.deposit(msg)
        else:
            data = _safe_pickle(msg, f"message payload for send to rank {dst}")
            self._put(dst, (_MSG, data))

    def alloc_comm_id(self) -> int:
        return next(self._comm_id_counter)

    def ssend_outstanding(self, msg_id: int) -> bool:
        return msg_id in self._ssend_pending

    def replay_forced_recv(
        self, rank: int, post_index: int, source: int, tag: int
    ) -> Optional[Envelope]:
        if self.replay_log is None:
            return None
        self.replay_log.check_recv_signature(rank, post_index, source, tag)
        return self.replay_log.forced_recv(rank, post_index)

    def replay_forced_waitany(self, rank: int, call_index: int) -> Optional[int]:
        if self.replay_log is None:
            return None
        return self.replay_log.forced_waitany(rank, call_index)

    def record_waitany(self, rank: int, call_index: int, choice: int) -> None:
        self.comm_log.record_waitany(rank, call_index, choice)

    def current_proc(self) -> Process:
        return self.proc

    # -- mailbox hooks ---------------------------------------------------
    def _on_match(self, msg: Message, pending: PendingRecv) -> None:
        self.comm_log.record_recv(self.rank, pending.post_order, msg.envelope)
        if msg.synchronous:
            src = msg.envelope.src
            if src == self.rank:
                self._ssend_pending.discard(msg.msg_id)
            else:
                self._put(src, (_ACK, msg.msg_id))


class _SelfOnly:
    """Sequence facade exposing only this rank's own entry; indexing a
    remote rank fails with a clear capability error."""

    def __init__(self, rank: int, item: Any, what: str) -> None:
        self._rank = rank
        self._item = item
        self._what = what

    def __getitem__(self, idx: int) -> Any:
        if idx == self._rank:
            return self._item
        raise MPError(
            f"{self._what} of a remote rank is not accessible under the "
            "mproc backend (ranks run in separate OS processes)"
        )


def _noop_target(comm: "Comm") -> None:  # placeholder; real target runs below
    return None


def _worker_main(
    rank: int,
    target: Callable[[Comm], Any],
    nprocs: int,
    inqs: Sequence[Any],
    report_q: Any,
    replay_log: Optional[CommLog],
    cost_model: Any,
    trace_cfg: Optional[tuple] = None,
) -> None:
    """Worker-process entry: run one rank against a local runtime."""
    wrt = _WorkerRuntime(rank, nprocs, inqs, report_q, replay_log, cost_model)
    proc = wrt.proc

    recorder = None
    writer = None
    shard_path: Optional[str] = None
    if trace_cfg is not None:
        # Imported here, post-fork: keeps the backend module free of a
        # trace-package dependency cycle and costs nothing in the parent.
        from repro.instrument.wrappers import WrapperLibrary, lifecycle_wrapper
        from repro.trace.recorder import TraceRecorder
        from repro.trace.sinks import FileSink
        from repro.trace.tracefile import TraceFileWriter

        mode, shard_path, compression, flush_every = trace_cfg
        # index_start=rank / index_step=nprocs mints this rank's disjoint
        # slice of the global index space with zero coordination, so the
        # per-rank streams merge back into one strictly increasing order.
        recorder = TraceRecorder(
            nprocs,
            memory_limit=1 if mode == "shard" else None,
            index_start=rank,
            index_step=nprocs,
        )
        WrapperLibrary(wrt, recorder)
        target = lifecycle_wrapper(recorder)(target, rank)
        if mode == "shard":
            writer = TraceFileWriter(
                shard_path, nprocs, flush_every, compression=compression
            )
            recorder.subscribe(FileSink(writer, own=False))

    proc.target = target
    comm = Comm(wrt, rank)
    proc.comm = comm
    proc.state = ProcState.RUNNING
    proc.run_target()

    trace_stats: Optional[dict] = None
    trace_records_data: Optional[bytes] = None
    if recorder is not None:
        try:
            recorder.flush()
            if writer is not None:
                writer.close()
                index = writer._build_index()
                procs: frozenset[int] = (
                    frozenset().union(*(b.procs for b in index.blocks))
                    if index.blocks
                    else frozenset()
                )
                trace_stats = {
                    "records": index.records,
                    "t_min": index.t_min,
                    "t_max": index.t_max,
                    "procs": sorted(procs),
                    "nbytes": os.stat(shard_path).st_size,
                }
            else:
                trace_records_data = pickle.dumps(recorder.records)
        except Exception:
            # A broken trace must not eat the rank's exit report; the
            # parent falls back to scanning the shard file directly.
            trace_stats = None
            trace_records_data = None

    result_data: Optional[bytes] = None
    result_repr: Optional[str] = None
    if proc.result is not None:
        try:
            result_data = pickle.dumps(proc.result)
        except Exception:
            result_repr = repr(proc.result)
    exc_data: Optional[bytes] = None
    exc_repr: Optional[str] = None
    if proc.exception is not None:
        try:
            exc_data = pickle.dumps(proc.exception)
        except Exception:
            exc_repr = repr(proc.exception)
    unmatched: list[bytes] = []
    for msg in wrt.mailbox.queued_messages:
        try:
            unmatched.append(pickle.dumps(msg))
        except Exception:
            pass
    report_q.put(
        (
            "exit",
            rank,
            {
                "state": proc.state.value,
                "result": result_data,
                "result_repr": result_repr,
                "exception": exc_data,
                "exception_repr": exc_repr,
                "traceback": proc.traceback_text,
                "marker": proc.marker,
                "clock": proc.clock.now,
                "waitany_calls": proc.waitany_calls,
                "comm_log": wrt.comm_log.to_jsonable(),
                "messages_sent": wrt.messages_sent,
                "unmatched": unmatched,
                "puts": wrt.puts,
                "gots": wrt.gots,
                "trace": trace_stats,
                "trace_records": trace_records_data,
            },
        )
    )


class MprocBackend(ExecutionBackend):
    """Forked worker per rank; queue transport; counting deadlock detection."""

    name = "mproc"
    supports_debugger = False
    supports_wrappers = False
    supports_ready_send = False
    deterministic = False

    def __init__(
        self,
        policy: Any = "run_to_block",
        seed: int = 0,
        max_grants: Optional[int] = None,
        *,
        trace_path: Optional[Union[str, Path]] = None,
        trace_mode: str = "shard",
        trace_compression: Union[None, bool, str] = "auto",
        trace_flush_every: Optional[int] = 4096,
    ) -> None:
        super().__init__()
        # The OS schedules workers preemptively: scheduling policies and
        # grant budgets have no token to act on and are ignored.
        del policy, seed, max_grants
        if trace_mode not in ("shard", "merge"):
            raise ValueError(
                f"trace_mode must be 'shard' or 'merge', got {trace_mode!r}"
            )
        #: manifest (shard mode) / trace file (merge mode) destination
        self.trace_path = Path(trace_path) if trace_path is not None else None
        self.trace_mode = trace_mode
        self._trace_compression = trace_compression
        self._trace_flush_every = trace_flush_every
        #: rank -> shard stats reported in the worker's exit payload
        self._trace_reports: dict[int, dict] = {}
        #: rank -> materialized records (merge mode only)
        self._trace_records: dict[int, tuple] = {}
        self._shard_paths: list[Path] = []
        self._trace_finalized = False
        try:
            self._ctx = multiprocessing.get_context("fork")
        except ValueError:
            raise MPError(
                "the mproc backend requires the 'fork' start method "
                "(unavailable on this platform)"
            ) from None
        self._inqs: list[Any] = []
        self._report_q: Any = None
        self._workers: list[Any] = []
        self._exited: set[int] = set()
        self._blocked: dict[int, tuple[WaitInfo, int, int]] = {}
        self._parent_gots = 0
        self._ping_token = 0
        self._unmatched: list[Message] = []
        #: rank -> (puts, gots) reported at exit (counter balancing)
        self._exit_counters: dict[int, tuple[int, int]] = {}
        self._shut_down = False

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def launch(
        self,
        targets: Sequence[Callable[[Comm], Any]],
        *,
        stop_on_entry: bool = False,
    ) -> None:
        if stop_on_entry:
            raise self._debugger_unsupported("stop-on-entry")
        rt = self.runtime
        assert rt is not None
        nprocs = len(targets)
        self._inqs = [self._ctx.Queue() for _ in range(nprocs)]
        self._report_q = self._ctx.Queue()
        for rank, target in enumerate(targets):
            proc = Process(rank, self, target)  # parent-side stub
            proc.state = ProcState.READY
            comm = Comm(rt, rank)
            proc.comm = comm
            rt.procs.append(proc)
            rt.comms.append(comm)
        trace_cfgs: list[Optional[tuple]] = [None] * nprocs
        if self.trace_path is not None:
            if self.trace_mode == "shard":
                from repro.trace.shard import SHARD_TEMPLATE

                self._shard_paths = [
                    self.trace_path.parent
                    / SHARD_TEMPLATE.format(stem=self.trace_path.stem, num=rank)
                    for rank in range(nprocs)
                ]
                trace_cfgs = [
                    (
                        "shard",
                        str(path),
                        self._trace_compression,
                        self._trace_flush_every,
                    )
                    for path in self._shard_paths
                ]
            else:
                trace_cfgs = [("merge", None, None, None)] * nprocs
        for rank, target in enumerate(targets):
            worker = self._ctx.Process(
                target=_worker_main,
                args=(
                    rank,
                    target,
                    nprocs,
                    self._inqs,
                    self._report_q,
                    rt.replay_log,
                    rt.cost_model,
                    trace_cfgs[rank],
                ),
                name=f"rank{rank}",
                daemon=True,
            )
            self._workers.append(worker)
            worker.start()

    def current_proc(self) -> Process:
        raise MPError(
            "current_proc() is not available in the parent under the "
            "mproc backend; ranks run in separate OS processes"
        )

    # ------------------------------------------------------------------
    # event loop
    # ------------------------------------------------------------------
    def run_until_idle(self) -> RunReport:
        rt = self.runtime
        assert rt is not None
        nprocs = len(rt.procs)
        while len(self._exited) < nprocs:
            self._drain_exited_queues()
            live = [r for r in range(nprocs) if r not in self._exited]
            suspicious = live and all(r in self._blocked for r in live)
            if suspicious and self._counters_balanced():
                if self._confirm_deadlock(live):
                    self._abort_remaining()
                    self._drain_trace_reports()
                    self._finalize_trace()
                    return self._classify()
            try:
                item = self._report_q.get(timeout=0.1)
            except queue_mod.Empty:
                self._reap_dead_workers()
                continue
            self._handle(item)
        # Every rank exited on its own: reap workers and classify.
        self._join_workers()
        self._finalize_trace()
        return self._classify()

    def _handle(self, item: tuple) -> None:
        rt = self.runtime
        assert rt is not None
        kind, rank = item[0], item[1]
        proc = rt.procs[rank]
        if kind == "blocked":
            _, _, wait, puts, gots = item
            self._blocked[rank] = (wait, puts, gots)
            proc.state = ProcState.BLOCKED
            proc.wait_info = wait
        elif kind == "running":
            self._blocked.pop(rank, None)
            proc.state = ProcState.RUNNING
            proc.wait_info = None
        elif kind == "exit":
            self._blocked.pop(rank, None)
            self._exited.add(rank)
            self._merge_exit(rank, item[2])
        # stray pongs from a cancelled suspicion are ignored

    def _merge_exit(self, rank: int, payload: dict) -> None:
        rt = self.runtime
        assert rt is not None
        proc = rt.procs[rank]
        proc.state = ProcState(payload["state"])
        proc.wait_info = None
        if payload["result"] is not None:
            proc.result = pickle.loads(payload["result"])
        elif payload["result_repr"] is not None:
            proc.result = payload["result_repr"]
        if payload["exception"] is not None:
            try:
                proc.exception = pickle.loads(payload["exception"])
            except Exception:
                proc.exception = MPError(
                    f"rank {rank} raised (unpicklable): {payload['traceback']}"
                )
        elif payload["exception_repr"] is not None:
            proc.exception = MPError(
                f"rank {rank} raised {payload['exception_repr']}"
            )
        proc.traceback_text = payload["traceback"]
        proc.marker = payload["marker"]
        proc.clock.advance_to(payload["clock"])
        proc.waitany_calls = payload["waitany_calls"]
        self._exit_counters[rank] = (payload["puts"], payload["gots"])
        rt.messages_sent += payload["messages_sent"]
        merged = CommLog.from_jsonable(payload["comm_log"])
        rt.comm_log.recv_matches.update(merged.recv_matches)
        rt.comm_log.waitany_choices.update(merged.waitany_choices)
        for data in payload["unmatched"]:
            try:
                self._unmatched.append(pickle.loads(data))
            except Exception:
                pass
        self._capture_trace_payload(rank, payload)

    def _capture_trace_payload(self, rank: int, payload: dict) -> None:
        """Keep the rank's trace contribution for :meth:`_finalize_trace`."""
        stats = payload.get("trace")
        if stats is not None:
            self._trace_reports[rank] = stats
        data = payload.get("trace_records")
        if data is not None:
            try:
                self._trace_records[rank] = pickle.loads(data)
            except Exception:
                pass

    def _drain_exited_queues(self) -> None:
        """Consume traffic addressed to ranks that already exited, so the
        global put/got counters can balance; keep it as missed messages."""
        for rank in self._exited:
            inq = self._inqs[rank]
            while True:
                try:
                    item = inq.get_nowait()
                except queue_mod.Empty:
                    break
                if item[0] in (_MSG, _ACK):
                    self._parent_gots += 1
                    if item[0] == _MSG:
                        try:
                            self._unmatched.append(pickle.loads(item[1]))
                        except Exception:
                            pass

    def _counters_balanced(self) -> bool:
        puts = sum(p for (_, p, _) in self._blocked.values())
        gots = sum(g for (_, _, g) in self._blocked.values())
        for exit_puts, exit_gots in self._exit_counters.values():
            puts += exit_puts
            gots += exit_gots
        return puts == gots + self._parent_gots

    def _confirm_deadlock(self, live: list[int]) -> bool:
        """Ping wave: true only if every live worker is *still* blocked
        with unchanged counters when it answers."""
        self._ping_token += 1
        token = self._ping_token
        snapshot = dict(self._blocked)
        for rank in live:
            self._inqs[rank].put((_PING, token))
        pongs: dict[int, tuple[bool, int, int]] = {}
        deadline = time.monotonic() + 2.0
        while len(pongs) < len(live):
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                return False
            try:
                item = self._report_q.get(timeout=remaining)
            except queue_mod.Empty:
                return False
            if item[0] == "pong" and item[2] == token:
                pongs[item[1]] = (item[3], item[4], item[5])
            else:
                # Any other report is progress: requeue-equivalent is to
                # handle it now and cancel the suspicion.
                self._handle(item)
                return False
        for rank in live:
            still_blocked, puts, gots = pongs[rank]
            old = snapshot.get(rank)
            if not still_blocked or old is None:
                return False
            if (puts, gots) != (old[1], old[2]):
                return False
        return True

    def _reap_dead_workers(self) -> None:
        """A worker that died without an exit report (crash, kill -9)
        would otherwise hang the loop; surface it as an error."""
        rt = self.runtime
        assert rt is not None
        for rank, worker in enumerate(self._workers):
            if rank in self._exited or worker.is_alive():
                continue
            # Give a just-exited worker a moment to flush its report.
            try:
                item = self._report_q.get(timeout=0.2)
            except queue_mod.Empty:
                item = None
            if item is not None:
                self._handle(item)
                if rank in self._exited:
                    continue
            proc = rt.procs[rank]
            proc.state = ProcState.ERRORED
            proc.exception = MPError(
                f"rank {rank} worker died with exit code {worker.exitcode} "
                "without reporting"
            )
            proc.wait_info = None
            self._blocked.pop(rank, None)
            self._exited.add(rank)

    def _classify(self) -> RunReport:
        rt = self.runtime
        assert rt is not None
        stopped: list[Process] = []
        blocked = [p for p in rt.procs if p.state is ProcState.BLOCKED]
        errored = [p for p in rt.procs if p.state is ProcState.ERRORED]
        report = RunReport(
            outcome=RunOutcome.FINISHED,
            stopped=stopped,
            blocked=blocked,
            errored=errored,
            waiting=[p.wait_info for p in blocked if p.wait_info is not None],
            grants=0,
        )
        if errored:
            report.outcome = RunOutcome.ERROR
        elif blocked:
            report.outcome = RunOutcome.DEADLOCK
        return report

    # ------------------------------------------------------------------
    # trace finalization (merge-free recording)
    # ------------------------------------------------------------------
    def _drain_trace_reports(self) -> None:
        """Harvest trace payloads from exit reports after an abort.

        An aborted worker still finishes its shard file and sends an
        exit report, but feeding that report through :meth:`_handle`
        would flip a BLOCKED proc to KILLED and destroy the deadlock
        snapshot the parent just confirmed.  So this drain extracts
        ONLY the trace contribution and leaves proc states untouched.
        """
        if self.trace_path is None or self._report_q is None:
            return
        while True:
            try:
                item = self._report_q.get(timeout=0.2)
            except (queue_mod.Empty, OSError, ValueError):
                return
            if item[0] == "exit":
                self._capture_trace_payload(item[1], item[2])

    def _finalize_trace(self) -> None:
        """Write the manifest (shard mode) or the merged file (merge
        mode) exactly once, after the workers are done."""
        if self.trace_path is None or self._trace_finalized:
            return
        self._trace_finalized = True
        rt = self.runtime
        nprocs = len(rt.procs) if rt is not None else len(self._workers)
        if self.trace_mode == "shard":
            from repro.trace.shard import (
                ShardInfo,
                scan_shard_info,
                write_manifest,
            )

            infos = []
            for rank, shard_path in enumerate(self._shard_paths):
                stats = self._trace_reports.get(rank)
                if stats is not None:
                    infos.append(
                        ShardInfo(
                            path=shard_path.name,
                            records=stats["records"],
                            t_min=stats["t_min"],
                            t_max=stats["t_max"],
                            procs=frozenset(stats["procs"]),
                            nbytes=stats["nbytes"],
                        )
                    )
                    continue
                # The worker died before reporting (or its report was
                # lost): recover what its shard file actually holds.
                info = scan_shard_info(shard_path)
                if info is not None:
                    infos.append(info)
            write_manifest(self.trace_path, nprocs, infos, by="proc")
        else:
            from repro.trace.tracefile import TraceFileWriter

            streams = [
                self._trace_records.get(rank, ()) for rank in range(nprocs)
            ]
            merged = heapq.merge(*streams, key=attrgetter("index"))
            with TraceFileWriter(
                self.trace_path,
                nprocs,
                self._trace_flush_every,
                compression=self._trace_compression,
            ) as writer:
                for rec in merged:
                    writer.write(rec)

    # ------------------------------------------------------------------
    # teardown
    # ------------------------------------------------------------------
    def _abort_remaining(self) -> None:
        """Stop live workers, keeping the parent's blocked/wait snapshot."""
        for rank, worker in enumerate(self._workers):
            if rank not in self._exited and worker.is_alive():
                try:
                    self._inqs[rank].put((_ABORT,))
                except Exception:
                    pass
        deadline = time.monotonic() + 2.0
        for worker in self._workers:
            worker.join(timeout=max(0.0, deadline - time.monotonic()))
        for worker in self._workers:
            if worker.is_alive():
                worker.terminate()
                worker.join(timeout=1.0)

    def _join_workers(self) -> None:
        for worker in self._workers:
            worker.join(timeout=2.0)
            if worker.is_alive():
                worker.terminate()
                worker.join(timeout=1.0)

    def shutdown(self) -> None:
        if self._shut_down:
            return
        self._shut_down = True
        self._abort_remaining()
        if not self._trace_finalized:
            self._drain_trace_reports()
            self._finalize_trace()
        for q in self._inqs:
            q.cancel_join_thread()
            q.close()
        if self._report_q is not None:
            self._report_q.cancel_join_thread()
            self._report_q.close()

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def unmatched_sends(self) -> list[Message]:
        return list(self._unmatched)
