"""Execution backends and the named-backend registry.

Backends are selected by name, chainermn-``create_communicator`` style::

    from repro.mp import Runtime, create_runtime

    rt = Runtime(8, backend="simtime")
    rt = create_runtime("simtime", 8, policy="random", seed=3)

Built-in backends:

``threaded``
    One OS thread per rank, cooperative token scheduling (the reference
    model; default).
``simtime``
    Same deterministic engine with lazy carriers and O(1) handoffs --
    the cheap way to 1000+-rank traces.
``mproc``
    One forked worker process per rank -- true parallelism, reduced
    capability set (no debugger surface, no determinism).

The default comes from the ``REPRO_BACKEND`` environment variable so an
entire test/benchmark run can be switched without touching call sites.
"""

from __future__ import annotations

import os
from typing import Callable, Optional, Union

from ..errors import MPError
from .base import ExecutionBackend
from .engine import CooperativeBackend
from .mproc import MprocBackend
from .simtime import SimtimeBackend
from .threaded import ThreadedBackend

#: value accepted wherever a backend is selected
BackendSpec = Union[str, ExecutionBackend]

_REGISTRY: dict[str, Callable[..., ExecutionBackend]] = {}

#: convenience spellings -> canonical names
_ALIASES = {
    "thread": "threaded",
    "threads": "threaded",
    "sim": "simtime",
    "simulated": "simtime",
    "mp": "mproc",
    "multiprocessing": "mproc",
}

#: environment variable naming the default backend
BACKEND_ENV_VAR = "REPRO_BACKEND"


def register_backend(name: str, factory: Callable[..., ExecutionBackend]) -> None:
    """Register a backend factory under ``name`` (extension point)."""
    _REGISTRY[name] = factory


def available_backends() -> list[str]:
    """Canonical names of all registered backends, sorted."""
    return sorted(_REGISTRY)


def default_backend() -> str:
    """The session-wide default: ``$REPRO_BACKEND``, else ``threaded``."""
    return os.environ.get(BACKEND_ENV_VAR, "threaded")


def make_backend(
    spec: Optional[BackendSpec] = None,
    *,
    policy: object = "run_to_block",
    seed: int = 0,
    max_grants: Optional[int] = None,
) -> ExecutionBackend:
    """Resolve a backend name (or pass an instance through).

    ``None`` means "the session default" (:func:`default_backend`).
    Unknown names raise :class:`~repro.mp.errors.MPError` listing the
    registered backends.
    """
    if isinstance(spec, ExecutionBackend):
        return spec
    name = default_backend() if spec is None else spec
    name = _ALIASES.get(name, name)
    try:
        factory = _REGISTRY[name]
    except KeyError:
        raise MPError(
            f"unknown execution backend {spec!r}; "
            f"choose from {available_backends()}"
        ) from None
    return factory(policy=policy, seed=seed, max_grants=max_grants)


register_backend("threaded", ThreadedBackend)
register_backend("simtime", SimtimeBackend)
register_backend("mproc", MprocBackend)


__all__ = [
    "ExecutionBackend",
    "CooperativeBackend",
    "ThreadedBackend",
    "SimtimeBackend",
    "MprocBackend",
    "BackendSpec",
    "BACKEND_ENV_VAR",
    "register_backend",
    "available_backends",
    "default_backend",
    "make_backend",
]
