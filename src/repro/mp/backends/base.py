"""The execution-backend contract.

The runtime layer is split in two (DESIGN.md, "Execution backends"):

* **backend-neutral protocol** -- mailboxes and matching, the CommLog and
  replay forcing, marker thresholds, and the debugger control surface.
  This lives in :class:`~repro.mp.runtime.Runtime` and is identical no
  matter how ranks execute.
* **backend-owned execution** -- how rank code actually runs (OS threads,
  a simulated-time engine, real worker processes), who holds the
  execution token, how a blocked rank is suspended and resumed, and how
  ``current_proc`` attribution works.

:class:`ExecutionBackend` is the seam between the two.  A backend owns
process creation (:meth:`launch`), the scheduling loop
(:meth:`run_until_idle`), teardown (:meth:`shutdown`), and the
worker-side suspension points that :mod:`repro.mp.comm` calls
(``yield_blocked`` / ``yield_ready`` / ``poll_yield``).  Backends
advertise what they support through capability flags so the runtime can
fail fast instead of misbehaving: the debugger surface (marker
thresholds, interrupts, single-step) needs cooperative in-process
execution, which the ``mproc`` backend deliberately trades away for real
parallelism.

Backends are selected by name through the registry in
:mod:`repro.mp.backends` (``Runtime(nprocs, backend="simtime")``).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, Any, Callable, Optional, Sequence

from ..channel import iter_unmatched_sends
from ..errors import MPError

if TYPE_CHECKING:  # pragma: no cover
    from ..comm import Comm
    from ..message import Message
    from ..process import Process
    from ..runtime import Runtime
    from ..scheduler import RunReport


class ExecutionBackend(ABC):
    """How rank code executes; one instance drives one :class:`Runtime`.

    Capability flags
    ----------------
    supports_debugger:
        Marker thresholds, interrupts, single-step, ``resume`` -- the
        whole stopline/replay surface.  Requires cooperative in-process
        execution.
    supports_wrappers:
        Per-target wrapper installation and PMPI instrumentation whose
        records must be observable from the launching process.
    supports_ready_send:
        Destination-mailbox introspection (``MPI_Rsend`` validation).
    deterministic:
        The same (program, policy, seed, replay log) always produces the
        same execution -- the paper's replay precondition.
    """

    name: str = "abstract"
    supports_debugger: bool = False
    supports_wrappers: bool = False
    supports_ready_send: bool = False
    deterministic: bool = False

    def __init__(self) -> None:
        self.runtime: Optional["Runtime"] = None

    def bind(self, runtime: "Runtime") -> None:
        """Attach the owning runtime; called once, before launch."""
        if self.runtime is not None:
            raise MPError(f"backend {self.name!r} is already bound to a runtime")
        self.runtime = runtime

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @abstractmethod
    def launch(
        self,
        targets: Sequence[Callable[["Comm"], Any]],
        *,
        stop_on_entry: bool = False,
    ) -> None:
        """Create the per-rank processes (and comms) on the bound runtime.

        After this returns, ``runtime.procs`` / ``runtime.comms`` hold
        one entry per rank and every rank is ready to execute on the
        first :meth:`run_until_idle`.
        """

    @abstractmethod
    def run_until_idle(self) -> "RunReport":
        """Execute until completion / debugger stop / deadlock."""

    @abstractmethod
    def shutdown(self) -> None:
        """Terminate all remaining rank executions (idempotent)."""

    # ------------------------------------------------------------------
    # execution-context attribution
    # ------------------------------------------------------------------
    @abstractmethod
    def current_proc(self) -> "Process":
        """The process whose execution context is the calling one.

        Backends register their worker contexts eagerly at start (thread
        ident or worker process), so this is a plain lookup -- never a
        scan over live threads.
        """

    # ------------------------------------------------------------------
    # communication-event hooks (called with the token held)
    # ------------------------------------------------------------------
    def unblock(self, proc: "Process") -> None:
        """A communication event made ``proc``'s wait condition worth
        re-checking (the runtime's deposit/match hooks call this)."""

    def poll_yield(self, proc: "Process") -> None:
        """Give other runnable ranks a turn after an unsuccessful
        nonblocking poll (``test``/``iprobe`` spin loops)."""

    # ------------------------------------------------------------------
    # history introspection (overridable: mproc collects remotely)
    # ------------------------------------------------------------------
    def unmatched_sends(self) -> list["Message"]:
        """Messages deposited but never received (missed messages)."""
        assert self.runtime is not None
        return iter_unmatched_sends(self.runtime.mailboxes)

    def carrier_ident(self, proc: "Process") -> Optional[int]:
        """Thread ident carrying ``proc``'s stack, when the backend runs
        ranks on in-process threads (stack inspection); else None."""
        return None

    # ------------------------------------------------------------------
    # debugger surface (cooperative backends override)
    # ------------------------------------------------------------------
    def _debugger_unsupported(self, what: str) -> "MPError":
        return MPError(
            f"{what} requires a cooperative execution backend "
            f"(threaded/simtime); backend {self.name!r} does not support "
            "the debugger control surface"
        )

    def resume_stopped(self, procs: Optional[Sequence["Process"]] = None) -> None:
        raise self._debugger_unsupported("resume")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} name={self.name!r}>"
