"""Simulated-time backend: lazy carriers, O(1) direct token handoffs.

Scales the cooperative engine to 1000+-rank traces.  The schedule it
produces is *identical* to the threaded backend's -- both run the shared
:class:`~repro.mp.backends.engine.CooperativeBackend` engine and the
same :class:`~repro.mp.scheduler.SchedulingPolicy` -- so traces,
CommLogs, and markers are bit-for-bit the same for a given (program,
policy, seed).  Only the cost of a context switch changes:

* **Direct handoff.**  Each rank owns a private binary semaphore and the
  controller owns one more.  A grant is one ``release`` on the grantee's
  semaphore plus one ``acquire`` on the controller's -- O(1), touching
  exactly the two parties involved.  The threaded backend's shared
  condition variable wakes *every* parked rank per grant
  (``notify_all``), an O(nprocs) thundering herd that dominates
  wall-clock from a few hundred ranks up.

* **Lazy carriers.**  A rank's carrier thread is created on its *first*
  grant, not at launch.  Launching 1024 ranks allocates 1024 semaphores
  and no threads; ranks that never run (e.g. a trace truncated by
  ``max_grants`` or an early stop) never pay thread creation, and
  teardown retires them without unwinding a stack that was never built.

Why carrier threads at all?  Plain-callable rank targets (required so
the same program runs unmodified on every backend, debugger included)
cannot be suspended mid-stack on a single CPython thread without a
stack-switching extension (greenlet), which this environment does not
ship.  Threads here are purely suspension vehicles: at most one is ever
runnable, none contend, and the scheduler -- not the OS -- decides every
interleaving.  "Simulated time" refers to what the backend preserves:
virtual clocks and the deterministic schedule, with no real-time
component influencing anything.
"""

from __future__ import annotations

import threading

from ..process import ProcState, Process
from .engine import CooperativeBackend


class SimtimeBackend(CooperativeBackend):
    """Lazy thread carriers with per-rank semaphore handoffs."""

    name = "simtime"

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        #: controller's token-return semaphore (binary in practice)
        self._controller = threading.Semaphore(0)
        #: rank -> that rank's token-arrival semaphore
        self._sems: dict[int, threading.Semaphore] = {}

    # ------------------------------------------------------------------
    # carrier lifecycle
    # ------------------------------------------------------------------
    def start_proc(self, proc: Process) -> None:
        if proc.rank in self._sems:
            raise RuntimeError(f"{proc!r} already started")
        proc.state = ProcState.READY
        self._ready_add(proc)
        self._sems[proc.rank] = threading.Semaphore(0)
        # Carrier thread deferred to the first grant.

    def _ensure_carrier(self, proc: Process) -> None:
        if proc.rank in self._threads:
            return
        thread = threading.Thread(
            target=self._carrier_body, args=(proc,), name=proc.name, daemon=True
        )
        self._threads[proc.rank] = thread
        thread.start()

    def _carrier_body(self, proc: Process) -> None:
        self._enter_worker_context(proc)
        proc.run_target()

    def _kill_grant(self, proc: Process) -> None:
        if proc.terminated:
            return
        self._ready_discard(proc)
        if proc.rank not in self._threads:
            # The carrier never started, so no user code ever ran and
            # there is no stack to unwind; retire the rank directly.
            proc.state = ProcState.EXITED
            return
        self._grant(proc)

    # ------------------------------------------------------------------
    # handoff primitives
    # ------------------------------------------------------------------
    def _handoff(self, proc: Process) -> None:
        self._ensure_carrier(proc)
        self._sems[proc.rank].release()
        self._controller.acquire()

    def _await(self, proc: Process) -> None:
        self._sems[proc.rank].acquire()

    def _handback(self, proc: Process) -> None:
        self._controller.release()
