"""Mailboxes and receive matching.

Every process owns one :class:`Mailbox`.  Sends deposit a
:class:`~repro.mp.message.Message` into the destination mailbox; receives
post a :class:`PendingRecv` and either match an already-queued message or
block until a deposit satisfies them.

Matching implements the MPI rules the paper's trace-graph construction
depends on (Section 3.2):

* **Non-overtaking** -- among queued messages from the same (src, tag),
  the one with the smallest ``seq`` matches first.  Because the simulator
  deposits messages in send order, "smallest arrival order" implies
  "smallest seq" per (src, tag), so a single arrival-ordered scan is
  enough.
* **Posted-receive order** -- a deposited message matches the *earliest
  posted* pending receive it satisfies.
* **Wildcard determinism** -- an ``ANY_SOURCE``/``ANY_TAG`` receive takes
  the matching message with the smallest arrival order.  A replay
  director can *force* the match instead (Section 4.2 nondeterminism
  control) by pinning the pending receive to one envelope.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Optional

from .datatypes import SourceLocation
from .envelopeutil import envelope_key_str  # noqa: F401  (re-export for tools)
from .errors import MPIError
from .message import Envelope, Message


@dataclass
class PendingRecv:
    """A posted receive waiting to be matched.

    Attributes
    ----------
    source, tag:
        The receive's matching pattern (may be wildcards).
    forced:
        When set by the replay director, only a message whose envelope
        equals this (src, tag, seq) triple may match -- even if other
        messages that satisfy (source, tag) are available.  This is how a
        replay reproduces the original wildcard matching.
    matched:
        Filled in with the message once matched.
    post_order:
        Position in the process's posted-receive queue; earlier posts
        match first.
    location:
        Source construct that posted the receive (for trace records and
        for the who-waits-for-whom deadlock report).
    on_match:
        Optional callback run (by the depositing thread) at match time;
        used by nonblocking receives to complete their request.
    """

    source: int
    tag: int
    post_order: int
    #: communicator context: only same-comm messages may match
    comm_id: int = 0
    forced: Optional[Envelope] = None
    matched: Optional[Message] = None
    location: SourceLocation = field(default_factory=SourceLocation.unknown)
    on_match: Optional[Callable[[Message], None]] = None
    cancelled: bool = False

    def accepts(self, msg: Message) -> bool:
        """Would this pending receive match ``msg``?"""
        if self.cancelled or self.matched is not None:
            return False
        if msg.envelope.comm_id != self.comm_id:
            return False
        if self.forced is not None:
            env = msg.envelope
            return (env.src, env.tag, env.seq) == (
                self.forced.src,
                self.forced.tag,
                self.forced.seq,
            )
        return msg.matches(self.source, self.tag)

    def complete(self, msg: Message) -> None:
        """Record ``msg`` as the match and fire the completion callback."""
        self.matched = msg
        if self.on_match is not None:
            self.on_match(msg)


class Mailbox:
    """Arrived-but-unreceived messages plus posted receives for one rank.

    The mailbox is manipulated only by threads holding the scheduler
    token, so it needs no locking of its own -- a deliberate property of
    the cooperative runtime that keeps matching deterministic.
    """

    def __init__(self, owner_rank: int) -> None:
        self.owner_rank = owner_rank
        self._queued: list[Message] = []
        self._posted: list[PendingRecv] = []
        self._post_counter = 0
        #: count of messages ever deposited (tests & flow stats)
        self.total_deposited = 0
        #: count of messages ever matched to a receive
        self.total_matched = 0
        #: runtime-installed observer fired at every (message, receive)
        #: match -- the single point where the replay log records wildcard
        #: resolutions and synchronous senders learn they may proceed.
        self.on_message_matched: Optional[
            Callable[[Message, PendingRecv], None]
        ] = None
        #: runtime-installed observer fired at every deposit (wakes
        #: blocked probes at the destination).
        self.on_deposit: Optional[Callable[[Message], None]] = None

    def _notify_match(self, msg: Message, pending: PendingRecv) -> None:
        if self.on_message_matched is not None:
            self.on_message_matched(msg, pending)

    # ------------------------------------------------------------------
    # send side
    # ------------------------------------------------------------------
    def deposit(self, msg: Message) -> Optional[PendingRecv]:
        """Deliver ``msg``; return the pending receive it matched, if any.

        If an already-posted receive accepts the message, the message
        bypasses the queue and completes that receive (the earliest
        posted one, per MPI matching).  Otherwise it is queued for a
        future receive.
        """
        self.total_deposited += 1
        if self.on_deposit is not None:
            self.on_deposit(msg)
        for pending in self._posted:
            if pending.accepts(msg):
                self._posted.remove(pending)
                pending.complete(msg)
                self.total_matched += 1
                self._notify_match(msg, pending)
                return pending
        self._queued.append(msg)
        return None

    # ------------------------------------------------------------------
    # receive side
    # ------------------------------------------------------------------
    def post(
        self,
        source: int,
        tag: int,
        *,
        comm_id: int = 0,
        forced: Optional[Envelope] = None,
        location: Optional[SourceLocation] = None,
        on_match: Optional[Callable[[Message], None]] = None,
    ) -> PendingRecv:
        """Post a receive; match immediately against the queue if possible.

        Returns the :class:`PendingRecv`, whose ``matched`` field is
        already set when a queued message satisfied it.
        """
        pending = PendingRecv(
            source=source,
            tag=tag,
            post_order=self._post_counter,
            comm_id=comm_id,
            forced=forced,
            location=location or SourceLocation.unknown(),
            on_match=on_match,
        )
        self._post_counter += 1
        msg = self._take_queued(pending)
        if msg is not None:
            pending.complete(msg)
            self.total_matched += 1
            self._notify_match(msg, pending)
        else:
            self._posted.append(pending)
        return pending

    def _take_queued(self, pending: PendingRecv) -> Optional[Message]:
        """Remove and return the queued message ``pending`` should match.

        Queued messages are kept in arrival order, so the first match in
        a scan is both the smallest arrival order (wildcard determinism)
        and the smallest seq per (src, tag) (non-overtaking).
        """
        for i, msg in enumerate(self._queued):
            if pending.accepts(msg):
                return self._queued.pop(i)
        return None

    @property
    def next_post_order(self) -> int:
        """Post order the *next* receive will get (replay forcing key)."""
        return self._post_counter

    def cancel(self, pending: PendingRecv) -> bool:
        """Cancel a posted receive; returns False if it already matched."""
        if pending.matched is not None:
            return False
        pending.cancelled = True
        if pending in self._posted:
            self._posted.remove(pending)
        return True

    # ------------------------------------------------------------------
    # probes and introspection
    # ------------------------------------------------------------------
    def probe(self, source: int, tag: int, comm_id: int = 0) -> Optional[Message]:
        """Return (without removing) the message a (source, tag) receive
        would match right now, or None."""
        probe_recv = PendingRecv(source=source, tag=tag, post_order=-1,
                                 comm_id=comm_id)
        for msg in self._queued:
            if probe_recv.accepts(msg):
                return msg
        return None

    def has_posted_matching(self, src: int, tag: int, comm_id: int = 0) -> bool:
        """Is any posted receive able to accept a (src, tag) message?

        Used by ready-mode sends, which are erroneous unless the
        matching receive is already posted.
        """
        trial = Message(
            envelope=Envelope(src, self.owner_rank, tag, -1, comm_id),
            payload=None,
        )
        # seq -1 never equals a forced seq, so forced receives correctly
        # report "not matching" here; ready sends against a replay-forced
        # receive are rejected conservatively.
        return any(p.accepts(trial) for p in self._posted)

    @property
    def queued_messages(self) -> tuple[Message, ...]:
        """Snapshot of undelivered messages (unmatched sends so far)."""
        return tuple(self._queued)

    @property
    def posted_receives(self) -> tuple[PendingRecv, ...]:
        """Snapshot of unmatched posted receives."""
        return tuple(self._posted)

    def unmatched_counts(self) -> tuple[int, int]:
        """(queued message count, posted receive count) for analysis."""
        return len(self._queued), len(self._posted)


def iter_unmatched_sends(mailboxes: Iterable[Mailbox]) -> list[Message]:
    """All queued-but-unreceived messages across mailboxes.

    This is the runtime half of the paper's Section 4.4 "list of
    unmatched sends and receives" that the debugger maintains.
    """
    out: list[Message] = []
    for box in mailboxes:
        out.extend(box.queued_messages)
    return out


def validate_ready_send(mailbox: Mailbox, src: int, tag: int, comm_id: int = 0) -> None:
    """Raise unless a matching receive is already posted (``MPI_Rsend``)."""
    if not mailbox.has_posted_matching(src, tag, comm_id):
        raise MPIError(
            f"ready-mode send {src}->{mailbox.owner_rank} tag={tag}: "
            "no matching receive posted"
        )
