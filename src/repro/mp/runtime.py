"""The runtime: program launch, message transport, and debugger control.

A :class:`Runtime` wires together an execution backend, one process +
mailbox + communicator per rank, the PMPI interposition layer, and the
communication log used for controlled replay.  It is the object the
debugger (:mod:`repro.debugger`) drives:

* ``launch`` + ``run_until_idle`` execute the program until everything
  exits, stops at a debugger condition, or deadlocks;
* per-rank marker thresholds (:meth:`set_threshold`) implement the
  stopline/replay/undo machinery of the paper's Section 4;
* :meth:`unmatched_sends` / :meth:`blocked_waits` feed the Section 4.4
  history analysis.

The runtime owns the *backend-neutral protocol* (mailboxes, matching,
sequence numbers, the CommLog, replay forcing); *how ranks execute* is
delegated to a pluggable :class:`~repro.mp.backends.ExecutionBackend`
selected by name -- ``Runtime(n, backend="simtime")`` -- with the
default taken from the ``REPRO_BACKEND`` environment variable.  See
DESIGN.md, "Execution backends".
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Mapping, Optional, Sequence, Union

from .backends import BackendSpec, ExecutionBackend, make_backend
from .channel import Mailbox, PendingRecv
from .clock import CostModel
from .comm import Comm
from .errors import MPError
from .message import Envelope, Message
from .pmpi import PMPILayer
from .process import ProcState, Process, WaitInfo
from .record import CommLog
from .scheduler import RunOutcome, RunReport, SchedulingPolicy

#: A program is one SPMD callable, or one callable per rank.
Target = Callable[[Comm], Any]
ProgramSpec = Union[Target, Sequence[Target], Mapping[int, Target]]


class Runtime:
    """A complete simulated message-passing machine for one execution.

    Parameters
    ----------
    nprocs:
        Number of ranks.
    backend:
        Execution backend -- a registered name (``"threaded"``,
        ``"simtime"``, ``"mproc"``), an :class:`ExecutionBackend`
        instance, or None for the session default
        (``$REPRO_BACKEND``, else ``"threaded"``).
    policy, seed:
        Scheduling policy name/instance and seed (see
        :mod:`repro.mp.scheduler`).  Everything downstream -- traces,
        matching, markers -- is a deterministic function of (program,
        policy, seed, replay log) on deterministic backends.
    cost_model:
        Virtual-time costs; default :class:`CostModel`.
    replay_log:
        A :class:`CommLog` from a previous run.  When given, wildcard
        receives and ``waitany`` choices are *forced* to the recorded
        outcomes (Section 4.2 nondeterminism control).
    max_grants:
        Optional scheduler-grant budget (runaway-loop guard for tests).
    """

    def __init__(
        self,
        nprocs: int,
        *,
        backend: Optional[BackendSpec] = None,
        policy: "str | SchedulingPolicy" = "run_to_block",
        seed: int = 0,
        cost_model: Optional[CostModel] = None,
        replay_log: Optional[CommLog] = None,
        max_grants: Optional[int] = None,
    ) -> None:
        if nprocs < 1:
            raise ValueError(f"nprocs must be >= 1, got {nprocs}")
        self.nprocs = nprocs
        self.cost_model = cost_model or CostModel()
        self.backend: ExecutionBackend = make_backend(
            backend, policy=policy, seed=seed, max_grants=max_grants
        )
        self.backend.bind(self)
        self.pmpi_layer = PMPILayer()
        self.replay_log = replay_log
        #: matching decisions recorded during THIS run (always on; cheap)
        self.comm_log = CommLog()

        self.procs: list[Process] = []
        self.comms: list[Comm] = []
        self.mailboxes: list[Mailbox] = []
        for rank in range(nprocs):
            mailbox = Mailbox(rank)
            mailbox.on_message_matched = self._make_match_hook(rank)
            mailbox.on_deposit = self._make_deposit_hook(rank)
            self.mailboxes.append(mailbox)

        self._seq_counters: dict[tuple[int, int, int, int], itertools.count] = {}
        self._comm_id_counter = itertools.count(1)
        self._arrival_counter = itertools.count()
        self._ssend_pending: dict[int, int] = {}  # msg_id -> sender rank
        self._launched = False
        self._shut_down = False
        #: total messages deposited (statistics / tests)
        self.messages_sent = 0

    @property
    def scheduler(self) -> ExecutionBackend:
        """The execution backend (kept under the historical name: tests
        and the comm layer address grant hooks and yields through it)."""
        return self.backend

    def _require_debugger(self, what: str) -> None:
        if not self.backend.supports_debugger:
            raise self.backend._debugger_unsupported(what)

    # ------------------------------------------------------------------
    # launch / run / teardown
    # ------------------------------------------------------------------
    def launch(
        self,
        program: ProgramSpec,
        *,
        stop_on_entry: bool = False,
        target_wrappers: Sequence[Callable[[Target, int], Target]] = (),
    ) -> None:
        """Create the per-rank executions; they wait for the first grant.

        ``program`` may be a single SPMD callable (every rank runs it), a
        sequence of ``nprocs`` callables, or a rank->callable mapping
        (missing ranks run an empty body).

        ``target_wrappers`` are applied to each rank's target in order
        (``wrapper(target, rank) -> target``); instrumentation layers use
        them to install per-thread hooks (uinst's profile function) and
        lifecycle trace records.  They require a backend with in-process
        execution (``supports_wrappers``).
        """
        if self._launched:
            raise RuntimeError("runtime already launched")
        if target_wrappers and not self.backend.supports_wrappers:
            raise MPError(
                "target_wrappers require an in-process execution backend; "
                f"backend {self.backend.name!r} runs ranks out of process"
            )
        if stop_on_entry:
            self._require_debugger("stop-on-entry")
        self._launched = True
        targets = self._resolve_targets(program)
        for wrapper in target_wrappers:
            targets = [wrapper(t, rank) for rank, t in enumerate(targets)]
        self.backend.launch(targets, stop_on_entry=stop_on_entry)

    def _resolve_targets(self, program: ProgramSpec) -> list[Target]:
        if callable(program):
            return [program] * self.nprocs
        if isinstance(program, Mapping):
            def _idle(comm: Comm) -> None:
                return None

            return [program.get(rank, _idle) for rank in range(self.nprocs)]
        targets = list(program)
        if len(targets) != self.nprocs:
            raise ValueError(
                f"program sequence has {len(targets)} entries "
                f"for {self.nprocs} ranks"
            )
        return targets

    def current_proc(self) -> Process:
        """The process whose execution context is the calling one.

        Used by monitors shared across ranks (the AIMS monitor object of
        the source instrumentation) to attribute an event to a rank.
        """
        return self.backend.current_proc()

    def run_until_idle(self) -> RunReport:
        """Schedule until completion / debugger stop / deadlock."""
        if not self._launched:
            raise RuntimeError("launch() a program first")
        return self.backend.run_until_idle()

    def run(
        self,
        program: ProgramSpec,
        *,
        raise_errors: bool = True,
        target_wrappers: Sequence[Callable[[Target, int], Target]] = (),
    ) -> RunReport:
        """Convenience: launch + run to completion.

        With ``raise_errors`` (the default) a user exception or deadlock
        is torn down and re-raised.  With ``raise_errors=False`` the
        runtime is left *live* so the caller can inspect blocked waits,
        unmatched sends, and process states -- the post-mortem analysis
        of the paper's Figures 5-6 -- and must call :meth:`shutdown`
        (or use the runtime as a context manager).
        """
        self.launch(program, target_wrappers=target_wrappers)
        report = self.run_until_idle()
        if report.outcome is not RunOutcome.FINISHED and raise_errors:
            self.shutdown()
            report.raise_on_error()
        return report

    def shutdown(self) -> None:
        """Terminate all remaining processes (idempotent)."""
        if self._shut_down:
            return
        self._shut_down = True
        if self._launched:
            self.backend.shutdown()

    def __enter__(self) -> "Runtime":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.shutdown()

    # ------------------------------------------------------------------
    # transport internals (called by Comm base implementations)
    # ------------------------------------------------------------------
    def next_seq(self, src: int, dst: int, tag: int, comm_id: int = 0) -> int:
        """Next per-(comm, src, dst, tag) sequence number (the
        non-overtaking key; communicators have independent orders)."""
        key = (comm_id, src, dst, tag)
        counter = self._seq_counters.get(key)
        if counter is None:
            counter = self._seq_counters[key] = itertools.count()
        return next(counter)

    def deposit(self, msg: Message) -> None:
        """Deliver a message to its destination mailbox."""
        msg.arrival_order = next(self._arrival_counter)
        self.messages_sent += 1
        if msg.synchronous:
            # Registered before deposit so an immediate match pops it.
            self._ssend_pending[msg.msg_id] = msg.envelope.src
        self.mailboxes[msg.envelope.dst].deposit(msg)

    def alloc_comm_id(self) -> int:
        """A fresh communicator context id (allocated by split's root;
        deterministic because execution is)."""
        return next(self._comm_id_counter)

    def ssend_outstanding(self, msg_id: int) -> bool:
        """Is a synchronous send still waiting for its match?"""
        return msg_id in self._ssend_pending

    def _make_match_hook(self, rank: int):
        def _on_match(msg: Message, pending: PendingRecv) -> None:
            # 1. Record the matching decision for future replays.
            self.comm_log.record_recv(rank, pending.post_order, msg.envelope)
            # 2. Release a rendezvous sender, if any.
            sender_rank = self._ssend_pending.pop(msg.msg_id, None)
            if sender_rank is not None:
                self.backend.unblock(self.procs[sender_rank])
            # 3. Wake the receiving process if it is blocked.
            self.backend.unblock(self.procs[rank])

        return _on_match

    def _make_deposit_hook(self, rank: int):
        def _on_deposit(msg: Message) -> None:
            # Wake the destination even when nothing matched: blocked
            # probes and replay-forced receives re-check their condition.
            self.backend.unblock(self.procs[rank])

        return _on_deposit

    # ------------------------------------------------------------------
    # replay forcing
    # ------------------------------------------------------------------
    def replay_forced_recv(
        self, rank: int, post_index: int, source: int, tag: int
    ) -> Optional[Envelope]:
        """Envelope this receive must match under replay, or None."""
        if self.replay_log is None:
            return None
        self.replay_log.check_recv_signature(rank, post_index, source, tag)
        return self.replay_log.forced_recv(rank, post_index)

    def replay_forced_waitany(self, rank: int, call_index: int) -> Optional[int]:
        if self.replay_log is None:
            return None
        return self.replay_log.forced_waitany(rank, call_index)

    def record_waitany(self, rank: int, call_index: int, choice: int) -> None:
        self.comm_log.record_waitany(rank, call_index, choice)

    # ------------------------------------------------------------------
    # debugger-facing control surface (needs a cooperative backend)
    # ------------------------------------------------------------------
    def set_threshold(self, rank: int, marker: Optional[int]) -> None:
        """Store a UserMonitor threshold: the process parks when its
        execution-marker counter reaches ``marker`` (Section 2.2)."""
        self._require_debugger("marker thresholds")
        self.procs[rank].set_threshold(marker)

    def set_thresholds(self, thresholds: Mapping[int, int]) -> None:
        """Set thresholds for several ranks at once (stopline replay)."""
        for rank, marker in thresholds.items():
            self.set_threshold(rank, marker)

    def interrupt_all(self) -> None:
        """Ask every live process to park at its next marker."""
        self._require_debugger("interrupts")
        for proc in self.procs:
            if proc.live:
                proc.request_interrupt()

    def clear_interrupts(self) -> None:
        self._require_debugger("interrupts")
        for proc in self.procs:
            proc.clear_interrupt()

    def resume(self, ranks: Optional[Sequence[int]] = None) -> RunReport:
        """Resume STOPPED processes (all, or the given ranks) and run on."""
        self._require_debugger("resume")
        procs = None if ranks is None else [self.procs[r] for r in ranks]
        self.backend.resume_stopped(procs)
        return self.run_until_idle()

    def step(self, rank: int) -> RunReport:
        """Single-step one process: run it to its next marker point."""
        self._require_debugger("single-step")
        proc = self.procs[rank]
        proc.request_step()
        return self.resume([rank])

    # ------------------------------------------------------------------
    # introspection for history analysis (paper Section 4.4)
    # ------------------------------------------------------------------
    def unmatched_sends(self) -> list[Message]:
        """Messages deposited but never received (missed messages)."""
        return self.backend.unmatched_sends()

    def unmatched_recvs(self) -> list[PendingRecv]:
        """Posted receives never matched."""
        out: list[PendingRecv] = []
        for box in self.mailboxes:
            out.extend(box.posted_receives)
        return out

    def blocked_waits(self) -> list[WaitInfo]:
        """Wait descriptions for all currently-blocked processes."""
        return [
            proc.wait_info
            for proc in self.procs
            if proc.state is ProcState.BLOCKED and proc.wait_info is not None
        ]

    def states(self) -> dict[int, ProcState]:
        """Rank -> process state snapshot."""
        return {proc.rank: proc.state for proc in self.procs}

    def markers(self) -> dict[int, int]:
        """Rank -> current execution-marker value."""
        return {proc.rank: proc.marker for proc in self.procs}

    def clocks(self) -> dict[int, float]:
        """Rank -> virtual time."""
        return {proc.rank: proc.clock.now for proc in self.procs}

    def results(self) -> list[Any]:
        """Per-rank return values (None for non-exited processes)."""
        return [proc.result for proc in self.procs]

    def first_exception(self) -> Optional[BaseException]:
        for proc in self.procs:
            if proc.exception is not None:
                return proc.exception
        return None


def create_runtime(
    backend: Optional[BackendSpec],
    nprocs: int,
    *,
    policy: "str | SchedulingPolicy" = "run_to_block",
    seed: int = 0,
    cost_model: Optional[CostModel] = None,
    replay_log: Optional[CommLog] = None,
    max_grants: Optional[int] = None,
) -> Runtime:
    """Named-backend factory: ``create_runtime("simtime", 1024)``.

    Equivalent to ``Runtime(nprocs, backend=backend, ...)`` with the
    backend name up front; ``None`` selects the session default.
    """
    return Runtime(
        nprocs,
        backend=backend,
        policy=policy,
        seed=seed,
        cost_model=cost_model,
        replay_log=replay_log,
        max_grants=max_grants,
    )


def run_program(
    program: ProgramSpec,
    nprocs: int,
    *,
    backend: Optional[BackendSpec] = None,
    policy: "str | SchedulingPolicy" = "run_to_block",
    seed: int = 0,
    cost_model: Optional[CostModel] = None,
    replay_log: Optional[CommLog] = None,
    raise_errors: bool = True,
) -> Runtime:
    """One-shot helper: build a runtime, run ``program``, return the runtime.

    Most tests and examples use this; the debugger builds runtimes
    directly because it needs to interleave control with execution.
    """
    rt = Runtime(
        nprocs,
        backend=backend,
        policy=policy,
        seed=seed,
        cost_model=cost_model,
        replay_log=replay_log,
    )
    report = rt.run(program, raise_errors=raise_errors)
    if report.outcome is RunOutcome.FINISHED:
        rt.shutdown()
    return rt


__all__ = [
    "Runtime",
    "create_runtime",
    "run_program",
    "ProgramSpec",
    "Target",
    "MPError",
]
