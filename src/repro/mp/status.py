"""The :class:`Status` object returned by receives and probes.

Mirrors ``MPI_Status``: the actual source and tag of the matched message
(important when the receive used wildcards) plus the element count.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class Status:
    """Completion information for a receive or probe.

    Attributes
    ----------
    source:
        Rank that sent the matched message.
    tag:
        Tag of the matched message.
    count:
        Payload size as reported by :func:`repro.mp.message.payload_size`.
    cancelled:
        True if the operation was completed by cancellation rather than by
        a match (see ``Request.cancel``).
    error:
        0 on success; nonzero reserved for future per-status error codes.
    """

    source: int = -1
    tag: int = -1
    count: int = 0
    cancelled: bool = False
    error: int = 0

    def get_source(self) -> int:
        """MPI-style accessor for :attr:`source`."""
        return self.source

    def get_tag(self) -> int:
        """MPI-style accessor for :attr:`tag`."""
        return self.tag

    def get_count(self) -> int:
        """MPI-style accessor for :attr:`count`."""
        return self.count

    def is_cancelled(self) -> bool:
        """MPI-style accessor for :attr:`cancelled`."""
        return self.cancelled

    def set_from(self, other: "Status") -> None:
        """Copy all fields from ``other`` (used to fill caller-provided
        status objects in place, the idiom mpi4py and MPI C share)."""
        self.source = other.source
        self.tag = other.tag
        self.count = other.count
        self.cancelled = other.cancelled
        self.error = other.error


@dataclass
class StatusList:
    """A fixed-size list of statuses for ``waitall``-style operations."""

    statuses: list[Status] = field(default_factory=list)

    def __getitem__(self, index: int) -> Status:
        return self.statuses[index]

    def __len__(self) -> int:
        return len(self.statuses)
