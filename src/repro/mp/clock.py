"""Virtual time for the simulated runtime.

The paper's displays position every construct by its start and end time
(Section 3.1).  On real hardware those are wall-clock stamps from the AIMS
monitor; in the simulator each process carries a *virtual clock* advanced
deterministically by a cost model, so that a given program always yields a
byte-identical trace (the scheduler-determinism invariant in DESIGN.md).

Causality is preserved by construction: a receive cannot complete before
``send_time + latency`` of the message it matched, so message lines in the
time-space diagram always point forward in time -- the property that makes
a vertical stopline a consistent cut (Section 4.1 of the paper).
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class CostModel:
    """Per-construct virtual-time costs, in abstract time units.

    The defaults are loosely scaled to the microsecond-era costs of the
    paper's SGI platform: function-call overhead is tiny, message overhead
    larger, and per-element transfer cost larger still for big payloads.

    Attributes
    ----------
    send_overhead / recv_overhead:
        Fixed local cost of initiating a send / completing a receive.
    latency:
        Time between a send completing locally and the message becoming
        receivable at the destination.
    byte_cost:
        Additional transfer time per payload element (bandwidth term).
    call_overhead:
        Cost charged by the function-entry instrumentation point, so that
        heavily-called programs (the paper's Fibonacci worst case) show
        visible dilation when instrumented.
    probe_overhead:
        Cost of a probe/iprobe or a failed test.
    collective_overhead:
        Extra synchronization cost charged once per collective call on
        top of its constituent point-to-point traffic.
    """

    send_overhead: float = 1.0
    recv_overhead: float = 1.0
    latency: float = 5.0
    byte_cost: float = 0.01
    call_overhead: float = 0.05
    probe_overhead: float = 0.2
    collective_overhead: float = 2.0

    def transfer_time(self, size: int) -> float:
        """Latency + bandwidth term for a payload of ``size`` elements."""
        return self.latency + self.byte_cost * size


@dataclass
class VirtualClock:
    """A single process's virtual clock.

    ``now`` only moves forward.  :meth:`advance` adds a duration;
    :meth:`advance_to` implements the "wait until" jumps used when a
    receive completes at the message's arrival time.
    """

    now: float = 0.0
    _history: list[float] = field(default_factory=list, repr=False)

    def advance(self, dt: float) -> float:
        """Move the clock forward by ``dt`` (must be >= 0); returns new now."""
        if dt < 0:
            raise ValueError(f"cannot advance clock by negative dt={dt}")
        self.now += dt
        return self.now

    def advance_to(self, t: float) -> float:
        """Move the clock to ``max(now, t)``; returns the new now."""
        if t > self.now:
            self.now = t
        return self.now

    def checkpoint(self) -> None:
        """Push the current time onto the (test-visible) history stack."""
        self._history.append(self.now)

    @property
    def history(self) -> tuple[float, ...]:
        return tuple(self._history)
