"""The per-rank process abstraction.

How a rank's code physically executes (an OS thread per rank, a lazy
simulated-time carrier, a real worker process) is owned by the
execution backend (:mod:`repro.mp.backends`); this class is the
backend-independent state of one rank.  Under the cooperative backends
at most one process executes at any instant, so the program behaves
like the single-threaded message-passing processes the paper targets,
with fully deterministic interleaving.

A process carries the state the paper's debugging machinery needs:

* a **virtual clock** (time-space diagram coordinates, Section 3.1);
* an **execution-marker counter**, incremented at every instrumentation
  point.  This is the `UserMonitor` counter of Section 2.2: "increments a
  single global counter ... and tests to see if the global counter has
  reached a threshold value which can be set by the debugger";
* **stop control** -- marker thresholds, single-step flags, and debugger
  interrupts all park the process in the ``STOPPED`` state at the next
  instrumentation point, returning control to the debugger.
"""

from __future__ import annotations

import enum
import traceback
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Optional

from .clock import VirtualClock
from .datatypes import SourceLocation
from .errors import ProcessKilled

if TYPE_CHECKING:  # pragma: no cover
    from .backends.engine import CooperativeBackend
    from .comm import Comm


class ProcState(enum.Enum):
    """Lifecycle states of a simulated process."""

    CREATED = "created"  # not yet started by the backend
    READY = "ready"  # runnable, waiting for the scheduler token
    RUNNING = "running"  # currently holds the token
    BLOCKED = "blocked"  # waiting on a communication condition
    STOPPED = "stopped"  # parked by the debugger at an instrumentation point
    EXITED = "exited"  # target function returned
    ERRORED = "errored"  # target function raised


#: States in which a process will never run again.
TERMINAL_STATES = frozenset({ProcState.EXITED, ProcState.ERRORED})


class WaitKind(enum.Enum):
    """What a blocked process is waiting for (deadlock reporting)."""

    RECV = "recv"
    SSEND = "ssend"
    BARRIER = "barrier"
    COLLECTIVE = "collective"
    REQUEST = "request"


@dataclass(frozen=True)
class WaitInfo:
    """Human- and analysis-readable description of a blocked condition.

    ``peer`` is the rank being waited on (or ``ANY_SOURCE``); together
    with ``kind`` this is the edge set of the wait-for graph the deadlock
    detector walks (paper Section 4.4: "detect deadlocks due to circular
    dependency in sends or receives").
    """

    rank: int
    kind: WaitKind
    peer: int
    tag: int
    location: SourceLocation = field(default_factory=SourceLocation.unknown)

    def __str__(self) -> str:
        return (
            f"proc {self.rank} blocked in {self.kind.value} "
            f"(peer={self.peer}, tag={self.tag}) at {self.location}"
        )


class StopReason(enum.Enum):
    """Why a process parked in ``STOPPED``."""

    THRESHOLD = "marker-threshold"  # UserMonitor counter hit its threshold
    BREAKPOINT = "breakpoint"  # location breakpoint
    STEP = "single-step"  # one-marker step completed
    INTERRUPT = "interrupt"  # debugger asked everyone to stop
    ENTRY = "entry"  # stop-on-entry before the first construct


@dataclass
class StopState:
    """Mutable debugger-facing stop control for one process.

    ``threshold`` is exactly the paper's UserMonitor threshold variable:
    during replay the debugger stores the stopline's execution marker
    here and the process parks when its counter reaches it.
    """

    threshold: Optional[int] = None
    stepping: bool = False
    interrupt: bool = False
    stop_on_entry: bool = False
    #: set by a location-breakpoint hook just before the stop evaluation
    breakpoint_hit: bool = False
    #: set when parked; cleared on resume
    reason: Optional[StopReason] = None

    def should_stop(self, marker: int) -> Optional[StopReason]:
        """Evaluate stop conditions for the marker value just generated."""
        if self.interrupt:
            return StopReason.INTERRUPT
        if self.breakpoint_hit:
            self.breakpoint_hit = False
            return StopReason.BREAKPOINT
        if self.threshold is not None and marker >= self.threshold:
            return StopReason.THRESHOLD
        if self.stepping:
            return StopReason.STEP
        return None


class Process:
    """One rank: clock, marker counter, and stop control.

    The execution backend (``self.scheduler``, a
    :class:`~repro.mp.backends.engine.CooperativeBackend`) drives the
    process through :meth:`run_target` and the grant handshakes.  User
    code never sees this class directly -- it receives a
    :class:`~repro.mp.comm.Comm` bound to it.
    """

    def __init__(
        self,
        rank: int,
        scheduler: "CooperativeBackend",
        target: Callable[["Comm"], Any],
        name: Optional[str] = None,
    ) -> None:
        self.rank = rank
        self.scheduler = scheduler
        self.target = target
        self.name = name or f"rank{rank}"
        self.state = ProcState.CREATED
        self.clock = VirtualClock()
        self.comm: Optional["Comm"] = None  # bound by the runtime

        # --- execution markers (paper Section 2.2) -------------------
        #: count of instrumentation points executed so far
        self.marker = 0
        #: marker value at each past STOP, newest last (undo uses these)
        self.stop_markers: list[int] = []
        #: waitany call counter (replay key; per process, not per comm)
        self.waitany_calls = 0

        # --- stop control ---------------------------------------------
        self.stop = StopState()
        #: current blocked-wait description, None unless BLOCKED
        self.wait_info: Optional[WaitInfo] = None

        # --- completion -------------------------------------------------
        self.result: Any = None
        self.exception: Optional[BaseException] = None
        self.traceback_text: Optional[str] = None

        # --- monitors: callables invoked at every marker point ----------
        #: ``fn(process, location, args) -> None``; installed by the
        #: instrumentation layers (UserMonitor lives here).
        self.marker_hooks: list[Callable[["Process", SourceLocation, tuple], None]] = []

        # --- teardown plumbing -------------------------------------------
        self._kill = False
        #: most recent user-frame location, maintained by instrumentation
        self.current_location: SourceLocation = SourceLocation.unknown()

    # ------------------------------------------------------------------
    # identity & predicates
    # ------------------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Process {self.name} rank={self.rank} state={self.state.value}>"

    @property
    def terminated(self) -> bool:
        return self.state in TERMINAL_STATES

    @property
    def live(self) -> bool:
        return self.state not in TERMINAL_STATES and self.state != ProcState.CREATED

    # ------------------------------------------------------------------
    # worker-context entry (called by the backend's carrier)
    # ------------------------------------------------------------------
    def run_target(self) -> None:
        """Wait for the first grant, run the target, report completion.

        The backend invokes this from whatever execution context carries
        the rank; it returns only when the rank is terminal.
        """
        try:
            self.scheduler.await_grant(self)
            if self.stop.stop_on_entry:
                self.park(StopReason.ENTRY)
            self.result = self.target(self.comm)
            self.scheduler.proc_finished(self, ProcState.EXITED)
        except ProcessKilled:
            self.scheduler.proc_finished(self, ProcState.EXITED, killed=True)
        except BaseException as exc:  # noqa: BLE001 - report, don't swallow
            self.exception = exc
            self.traceback_text = traceback.format_exc()
            self.scheduler.proc_finished(self, ProcState.ERRORED)

    # ------------------------------------------------------------------
    # instrumentation points (called from the worker thread, token held)
    # ------------------------------------------------------------------
    def bump_marker(
        self,
        location: Optional[SourceLocation] = None,
        args: tuple = (),
    ) -> int:
        """Generate the next execution marker and evaluate stop control.

        This is the runtime half of the paper's ``UserMonitor``: it
        increments the per-process counter, lets installed monitor hooks
        record the event, then parks the process if a stop condition
        (threshold / step / interrupt) is met.

        Returns the new marker value.
        """
        self.check_killed()
        self.marker += 1
        loc = location or self.current_location
        for hook in self.marker_hooks:
            hook(self, loc, args)
        reason = self.stop.should_stop(self.marker)
        if reason is not None:
            self.park(reason)
        else:
            self.scheduler.maybe_preempt(self)
        return self.marker

    def park(self, reason: StopReason) -> None:
        """Park in STOPPED until the debugger resumes this process."""
        self.stop.reason = reason
        # A one-shot step or entry-stop is consumed by parking.
        self.stop.stepping = False
        self.stop.stop_on_entry = False
        self.stop_markers.append(self.marker)
        self.scheduler.yield_stopped(self)
        self.stop.reason = None

    def check_killed(self) -> None:
        """Raise :class:`ProcessKilled` if teardown was requested."""
        if self._kill:
            raise ProcessKilled()

    # ------------------------------------------------------------------
    # debugger-facing controls (called from the controller thread while
    # this process is parked/blocked, i.e. not running)
    # ------------------------------------------------------------------
    def set_threshold(self, marker: Optional[int]) -> None:
        """Set (or clear) the UserMonitor marker threshold."""
        self.stop.threshold = marker

    def request_step(self) -> None:
        """Arrange for the process to park after its next marker."""
        self.stop.stepping = True

    def request_interrupt(self) -> None:
        """Arrange for the process to park at its next marker."""
        self.stop.interrupt = True

    def clear_interrupt(self) -> None:
        self.stop.interrupt = False

    def request_kill(self) -> None:
        """Mark the process for termination at its next scheduling point."""
        self._kill = True

    def last_stop_marker(self) -> Optional[int]:
        """Marker recorded at the most recent stop (undo target)."""
        return self.stop_markers[-1] if self.stop_markers else None
