"""Constants and small value types shared across the runtime.

These mirror the MPI constants the paper's instrumentation layer cares
about (``MPI_ANY_SOURCE``, ``MPI_ANY_TAG``, reserved tags for collectives)
without pretending to be a full ABI.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

#: Wildcard source rank for :meth:`Comm.recv` (``MPI_ANY_SOURCE``).
ANY_SOURCE: int = -1

#: Wildcard tag for :meth:`Comm.recv` (``MPI_ANY_TAG``).
ANY_TAG: int = -2

#: Null process: sends/recvs to it complete immediately and carry nothing,
#: matching ``MPI_PROC_NULL`` semantics used by boundary exchanges.
PROC_NULL: int = -3

#: Tags >= this value are reserved for internal collective plumbing.  User
#: tags must stay below it, as enforced by :func:`check_tag`.
COLLECTIVE_TAG_BASE: int = 1 << 28

#: The upper bound on user tags (mirrors ``MPI_TAG_UB``).
TAG_UB: int = COLLECTIVE_TAG_BASE - 1


class CollectiveTag(enum.IntEnum):
    """Reserved tag space carved out above :data:`COLLECTIVE_TAG_BASE`.

    Collectives in this runtime are implemented on top of point-to-point
    sends so that they show up in traces as message events (the paper's
    time-space diagrams render collective traffic the same way).  Each
    collective kind gets a disjoint tag block so concurrent collectives on
    the same communicator never cross-match.
    """

    BARRIER = COLLECTIVE_TAG_BASE + 0x0000
    BCAST = COLLECTIVE_TAG_BASE + 0x1000
    SCATTER = COLLECTIVE_TAG_BASE + 0x2000
    GATHER = COLLECTIVE_TAG_BASE + 0x3000
    REDUCE = COLLECTIVE_TAG_BASE + 0x4000
    ALLREDUCE = COLLECTIVE_TAG_BASE + 0x5000
    ALLGATHER = COLLECTIVE_TAG_BASE + 0x6000
    ALLTOALL = COLLECTIVE_TAG_BASE + 0x7000
    SCAN = COLLECTIVE_TAG_BASE + 0x8000


class SendMode(enum.Enum):
    """Point-to-point send modes, as in MPI chapter 3.

    * ``STANDARD`` -- buffered by the runtime; the sender never blocks.
      (Real MPI may choose either; the simulator picks buffered so that the
      deadlock scenarios reproduced from the paper are *receive* deadlocks,
      as in Figure 5.)
    * ``SYNCHRONOUS`` -- rendezvous; the send completes only once a
      matching receive is posted (``MPI_Ssend``).
    * ``READY`` -- erroneous unless a matching receive is already posted
      (``MPI_Rsend``); the simulator raises on misuse, which is a message
      error the paper's Section 6 excludes from replayable programs.
    """

    STANDARD = "standard"
    SYNCHRONOUS = "synchronous"
    READY = "ready"


@dataclass(frozen=True)
class SourceLocation:
    """A (file, line, function) triple identifying a program construct.

    Trace records carry one of these so displays can map a bar or message
    line back to the program source, the "click on a bar" feature of both
    NTV and VK described in Section 3.1 of the paper.
    """

    filename: str
    lineno: int
    function: str

    def __str__(self) -> str:  # pragma: no cover - repr convenience
        return f"{self.filename}:{self.lineno}:{self.function}"

    @staticmethod
    def unknown() -> "SourceLocation":
        """A placeholder location for constructs without source info."""
        return SourceLocation("<unknown>", 0, "<unknown>")


def is_wildcard_source(source: int) -> bool:
    """Return True if ``source`` is the ``ANY_SOURCE`` wildcard."""
    return source == ANY_SOURCE


def is_wildcard_tag(tag: int) -> bool:
    """Return True if ``tag`` is the ``ANY_TAG`` wildcard."""
    return tag == ANY_TAG


def check_rank(rank: int, size: int, *, wildcard_ok: bool = False) -> None:
    """Validate a rank argument against a communicator of ``size``.

    ``PROC_NULL`` is always accepted; ``ANY_SOURCE`` only when
    ``wildcard_ok`` (i.e. for receive-side arguments).
    """
    from .errors import InvalidRankError

    if rank == PROC_NULL:
        return
    if wildcard_ok and rank == ANY_SOURCE:
        return
    if not 0 <= rank < size:
        raise InvalidRankError(rank, size)


def is_reserved_tag(tag: int) -> bool:
    """True for tags in the collective-plumbing space."""
    return tag >= COLLECTIVE_TAG_BASE


def check_tag(tag: int, *, wildcard_ok: bool = False, reserved_ok: bool = False) -> None:
    """Validate a tag argument (user tags must be in ``[0, TAG_UB]``).

    ``reserved_ok`` is set only by point-to-point calls issued from
    inside a collective implementation, which are allowed to use the
    reserved tag space above :data:`COLLECTIVE_TAG_BASE`.
    """
    from .errors import InvalidTagError

    if wildcard_ok and tag == ANY_TAG:
        return
    if reserved_ok and is_reserved_tag(tag):
        return
    if not 0 <= tag <= TAG_UB:
        raise InvalidTagError(tag)
