"""The communicator: the public message-passing API of the substrate.

:class:`Comm` exposes an mpi4py-flavoured API (``send``/``recv``/
``isend``/``irecv``/collectives) whose every entry point is routed
through the PMPI interposition layer (:mod:`repro.mp.pmpi`): the public
method ``send`` is the ``MPI_Send`` name a profiling library may wrap;
``pmpi_send`` is the ``PMPI_Send`` base implementation.

Collectives are implemented *on top of* the public point-to-point calls
so that an installed wrapper library observes their constituent messages
-- exactly how the paper's time-space diagrams render collective traffic
as individual message lines.

All methods must be called from the owning process's worker thread while
it holds the scheduler token (which is automatic for code invoked by the
runtime).
"""

from __future__ import annotations

import functools
import operator
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Optional, Sequence

from .channel import validate_ready_send
from .datatypes import (
    ANY_SOURCE,
    ANY_TAG,
    PROC_NULL,
    CollectiveTag,
    SendMode,
    SourceLocation,
    check_rank,
    check_tag,
)
from .errors import RequestError
from .locutil import caller_location
from .message import Envelope, Message, copy_payload, payload_size
from .process import WaitInfo, WaitKind
from .requests import (
    RecvRequest,
    Request,
    SendRequest,
    first_complete_index,
)
from .status import Status

if TYPE_CHECKING:  # pragma: no cover
    from .runtime import Runtime


@dataclass
class OpDetail:
    """Introspection record of the most recent completed operation.

    The base (PMPI) implementations fill this in; wrapper libraries read
    it right after the inner call returns to build their trace records
    (source/destination/tag/size and the virtual start/end times that
    position the construct's bar in the time-space diagram).
    """

    op: str
    t0: float
    t1: float
    location: SourceLocation
    src: int = -1
    dst: int = -1
    tag: int = -1
    size: int = 0
    seq: int = -1
    root: int = -1
    #: for receives: marker & location captured at the matching send
    peer_location: Optional[SourceLocation] = None
    peer_marker: int = -1
    peer_send_time: float = -1.0
    extra: dict = field(default_factory=dict)


def _collective_impl(fn):
    """Decorator for collective PMPI implementations.

    Marks the dynamic extent of the collective so its internal
    point-to-point traffic is allowed to use the reserved tag space
    above ``COLLECTIVE_TAG_BASE`` (user calls outside collectives are
    still rejected).  Nesting-safe: ``allreduce`` -> ``reduce`` ->
    sends keeps the depth positive throughout.
    """

    @functools.wraps(fn)
    def wrapper(self: "Comm", *args, **kwargs):
        self._collective_depth += 1
        try:
            return fn(self, *args, **kwargs)
        finally:
            self._collective_depth -= 1

    return wrapper


class Comm:
    """A communicator bound to one simulated process.

    The initial (world) communicator spans all ranks with
    ``comm_id == 0``; :meth:`split` derives sub-communicators whose
    traffic lives in its own matching context, exactly like
    ``MPI_Comm_split``.  Public ``rank``/``size`` and all rank arguments
    are *communicator-relative*; envelopes, trace records, and wait
    info carry world ranks.

    Attributes
    ----------
    rank / size:
        This process's rank in this communicator, and its size.
    world_rank:
        The process's rank in the world communicator.
    comm_id:
        The communicator's matching context (0 for the world).
    runtime:
        The owning :class:`~repro.mp.runtime.Runtime`.
    last_op:
        :class:`OpDetail` of the most recent completed base operation.
    """

    def __init__(
        self,
        runtime: "Runtime",
        world_rank: int,
        group: Optional[Sequence[int]] = None,
        comm_id: int = 0,
    ) -> None:
        self.runtime = runtime
        self.world_rank = world_rank
        self.group: tuple[int, ...] = (
            tuple(group) if group is not None else tuple(range(runtime.nprocs))
        )
        if world_rank not in self.group:
            raise ValueError(
                f"world rank {world_rank} is not in group {self.group}"
            )
        self.comm_id = comm_id
        self._group_rank = self.group.index(world_rank)
        self.last_op: Optional[OpDetail] = None
        # >0 while executing inside a collective body; point-to-point
        # calls then accept reserved tags (collective plumbing).
        self._collective_depth = 0

    # ------------------------------------------------------------------
    # conveniences
    # ------------------------------------------------------------------
    @property
    def rank(self) -> int:
        """This process's rank in THIS communicator."""
        return self._group_rank

    @property
    def size(self) -> int:
        return len(self.group)

    @property
    def proc(self):
        return self.runtime.procs[self.world_rank]

    # -- rank translation ----------------------------------------------
    def _to_world(self, rank: int, *, wildcard_ok: bool = False) -> int:
        """Map a communicator-relative rank argument to a world rank."""
        if rank in (PROC_NULL,) or (wildcard_ok and rank == ANY_SOURCE):
            return rank
        check_rank(rank, self.size, wildcard_ok=wildcard_ok)
        return self.group[rank]

    def _to_group(self, world_rank: int) -> int:
        """Map a world rank back to this communicator (for statuses)."""
        try:
            return self.group.index(world_rank)
        except ValueError:
            return world_rank

    @property
    def _cost(self):
        return self.runtime.cost_model

    @property
    def _clock(self):
        return self.proc.clock

    def __repr__(self) -> str:  # pragma: no cover
        extra = f" comm={self.comm_id}" if self.comm_id else ""
        return f"<Comm rank={self.rank}/{self.size}{extra}>"

    def _poll_yield(self) -> None:
        """Give other READY processes a turn after an unsuccessful poll
        (``test``/``iprobe`` spin loops); see the backend's
        ``poll_yield`` for why a cooperative runtime requires this."""
        self.runtime.scheduler.poll_yield(self.proc)


    # ==================================================================
    # PUBLIC (MPI_) ENTRY POINTS -- all routed through the PMPI layer
    # ==================================================================
    def send(self, obj: Any, dest: int, tag: int = 0) -> None:
        """Standard-mode blocking send (buffered; never blocks here)."""
        return self.runtime.pmpi_layer.call("send", self, obj, dest, tag)

    def ssend(self, obj: Any, dest: int, tag: int = 0) -> None:
        """Synchronous-mode send: completes only when matched."""
        return self.runtime.pmpi_layer.call("ssend", self, obj, dest, tag)

    def rsend(self, obj: Any, dest: int, tag: int = 0) -> None:
        """Ready-mode send: erroneous unless a matching receive is posted."""
        return self.runtime.pmpi_layer.call("rsend", self, obj, dest, tag)

    def recv(
        self,
        source: int = ANY_SOURCE,
        tag: int = ANY_TAG,
        status: Optional[Status] = None,
        max_count: Optional[int] = None,
    ) -> Any:
        """Blocking receive; returns the payload.

        ``max_count`` mirrors MPI's receive-buffer capacity: a matched
        message whose element count exceeds it raises
        :class:`~repro.mp.errors.TruncationError` (after consuming the
        message, as MPI_ERR_TRUNCATE does).
        """
        return self.runtime.pmpi_layer.call(
            "recv", self, source, tag, status, max_count
        )

    def isend(self, obj: Any, dest: int, tag: int = 0) -> Request:
        """Nonblocking standard send; returns a request."""
        return self.runtime.pmpi_layer.call("isend", self, obj, dest, tag)

    def issend(self, obj: Any, dest: int, tag: int = 0) -> Request:
        """Nonblocking synchronous send."""
        return self.runtime.pmpi_layer.call("issend", self, obj, dest, tag)

    def irecv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> Request:
        """Nonblocking receive; returns a request."""
        return self.runtime.pmpi_layer.call("irecv", self, source, tag)

    def probe(
        self,
        source: int = ANY_SOURCE,
        tag: int = ANY_TAG,
        status: Optional[Status] = None,
    ) -> Status:
        """Block until a matching message is available; don't receive it."""
        return self.runtime.pmpi_layer.call("probe", self, source, tag, status)

    def iprobe(
        self,
        source: int = ANY_SOURCE,
        tag: int = ANY_TAG,
        status: Optional[Status] = None,
    ) -> bool:
        """Nonblocking probe: is a matching message available now?"""
        return self.runtime.pmpi_layer.call("iprobe", self, source, tag, status)

    def sendrecv(
        self,
        sendobj: Any,
        dest: int,
        sendtag: int = 0,
        source: int = ANY_SOURCE,
        recvtag: int = ANY_TAG,
        status: Optional[Status] = None,
    ) -> Any:
        """Combined send-then-receive (deadlock-safe: sends are buffered)."""
        return self.runtime.pmpi_layer.call(
            "sendrecv", self, sendobj, dest, sendtag, source, recvtag, status
        )

    def wait(self, request: Request, status: Optional[Status] = None) -> Any:
        """Block until ``request`` completes; return its payload."""
        return self.runtime.pmpi_layer.call("wait", self, request, status)

    def test(
        self, request: Request, status: Optional[Status] = None
    ) -> tuple[bool, Any]:
        """(complete?, payload) without blocking.  A successful test
        finalizes the request (it may not be waited on afterwards)."""
        return self.runtime.pmpi_layer.call("test", self, request, status)

    def waitall(
        self, requests: Sequence[Request], statuses: Optional[list[Status]] = None
    ) -> list[Any]:
        """Wait for every request; payloads in request order."""
        return self.runtime.pmpi_layer.call("waitall", self, requests, statuses)

    def waitany(
        self, requests: Sequence[Request], status: Optional[Status] = None
    ) -> tuple[int, Any]:
        """Wait until some request completes; (index, payload).

        The index chosen is recorded in the runtime's communication log
        so a controlled replay reproduces it (DESIGN.md Section 6).
        """
        return self.runtime.pmpi_layer.call("waitany", self, requests, status)

    def cancel(self, request: Request) -> bool:
        """Try to cancel a request; True if cancellation took effect."""
        return self.runtime.pmpi_layer.call("cancel", self, request)

    def barrier(self) -> None:
        """Synchronize all ranks."""
        return self.runtime.pmpi_layer.call("barrier", self)

    def bcast(self, obj: Any = None, root: int = 0) -> Any:
        """Broadcast ``obj`` from ``root``; every rank returns it."""
        return self.runtime.pmpi_layer.call("bcast", self, obj, root)

    def scatter(self, sendobjs: Optional[Sequence[Any]] = None, root: int = 0) -> Any:
        """Scatter one element of ``sendobjs`` (length ``size``) per rank."""
        return self.runtime.pmpi_layer.call("scatter", self, sendobjs, root)

    def gather(self, obj: Any, root: int = 0) -> Optional[list[Any]]:
        """Gather one object per rank to ``root`` (rank order)."""
        return self.runtime.pmpi_layer.call("gather", self, obj, root)

    def allgather(self, obj: Any) -> list[Any]:
        """Gather to all ranks."""
        return self.runtime.pmpi_layer.call("allgather", self, obj)

    def reduce(
        self, obj: Any, op: Optional[Callable[[Any, Any], Any]] = None, root: int = 0
    ) -> Any:
        """Reduce with ``op`` (default ``operator.add``) onto ``root``."""
        return self.runtime.pmpi_layer.call("reduce", self, obj, op, root)

    def allreduce(self, obj: Any, op: Optional[Callable[[Any, Any], Any]] = None) -> Any:
        """Reduce and broadcast the result to all ranks."""
        return self.runtime.pmpi_layer.call("allreduce", self, obj, op)

    def alltoall(self, objs: Sequence[Any]) -> list[Any]:
        """Personalized all-to-all: rank i's ``objs[j]`` goes to rank j."""
        return self.runtime.pmpi_layer.call("alltoall", self, objs)

    def scan(self, obj: Any, op: Optional[Callable[[Any, Any], Any]] = None) -> Any:
        """Inclusive prefix reduction across ranks."""
        return self.runtime.pmpi_layer.call("scan", self, obj, op)

    def compute(self, duration: float, label: str = "compute") -> None:
        """Advance this process's virtual clock by ``duration``.

        Workloads call this to model local computation; the time-space
        diagram renders it as a computation bar.
        """
        return self.runtime.pmpi_layer.call("compute", self, duration, label)

    def split(self, color: Optional[int], key: int = 0) -> "Optional[Comm]":
        """Partition this communicator (``MPI_Comm_split``).

        Every member calls with a ``color``; members sharing a color form
        a new communicator, ranked by ``(key, old rank)``.  ``color=None``
        opts out (``MPI_UNDEFINED``) and returns None.  Collective: all
        members of this communicator must call.
        """
        return self.runtime.pmpi_layer.call("split", self, color, key)

    # ==================================================================
    # PMPI_ BASE IMPLEMENTATIONS
    # ==================================================================
    # -- point-to-point -------------------------------------------------
    def pmpi_send(self, obj: Any, dest: int, tag: int = 0) -> None:
        self._send_impl(obj, dest, tag, SendMode.STANDARD)

    def pmpi_ssend(self, obj: Any, dest: int, tag: int = 0) -> None:
        self._send_impl(obj, dest, tag, SendMode.SYNCHRONOUS)

    def pmpi_rsend(self, obj: Any, dest: int, tag: int = 0) -> None:
        self._send_impl(obj, dest, tag, SendMode.READY)

    def _send_impl(self, obj: Any, dest: int, tag: int, mode: SendMode) -> None:
        proc = self.proc
        proc.check_killed()
        check_tag(tag, reserved_ok=self._collective_depth > 0)
        dest = self._to_world(dest)
        loc = caller_location()
        t0 = self._clock.now
        if dest == PROC_NULL:
            self._clock.advance(self._cost.send_overhead)
            self.last_op = OpDetail(
                op=mode.value + "_send" if mode is not SendMode.STANDARD else "send",
                t0=t0,
                t1=self._clock.now,
                location=loc,
                src=self.world_rank,
                dst=PROC_NULL,
                tag=tag,
            )
            return
        seq = self.runtime.next_seq(self.world_rank, dest, tag, self.comm_id)
        msg = Message(
            envelope=Envelope(self.world_rank, dest, tag, seq, self.comm_id),
            payload=copy_payload(obj),
            send_location=loc,
            send_marker=proc.marker,
            synchronous=(mode is SendMode.SYNCHRONOUS),
        )
        self._clock.advance(self._cost.send_overhead)
        msg.send_time = self._clock.now
        if mode is SendMode.READY:
            validate_ready_send(
                self.runtime.mailboxes[dest], self.world_rank, tag, self.comm_id
            )
        self.runtime.deposit(msg)
        if mode is SendMode.SYNCHRONOUS:
            wait = WaitInfo(self.world_rank, WaitKind.SSEND, dest, tag, loc)
            while self.runtime.ssend_outstanding(msg.msg_id):
                self.runtime.scheduler.yield_blocked(proc, wait)
                proc.check_killed()
            # Rendezvous completed: the sender cannot be ahead of the
            # message's earliest possible delivery.
            self._clock.advance_to(msg.send_time + self._cost.latency)
        opname = {
            SendMode.STANDARD: "send",
            SendMode.SYNCHRONOUS: "ssend",
            SendMode.READY: "rsend",
        }[mode]
        self.last_op = OpDetail(
            op=opname,
            t0=t0,
            t1=self._clock.now,
            location=loc,
            src=self.world_rank,
            dst=dest,
            tag=tag,
            size=msg.size,
            seq=seq,
            extra={"comm": self.comm_id} if self.comm_id else {},
        )

    def pmpi_recv(
        self,
        source: int = ANY_SOURCE,
        tag: int = ANY_TAG,
        status: Optional[Status] = None,
        max_count: Optional[int] = None,
    ) -> Any:
        proc = self.proc
        proc.check_killed()
        check_tag(tag, wildcard_ok=True, reserved_ok=self._collective_depth > 0)
        source = self._to_world(source, wildcard_ok=True)
        loc = caller_location()
        t0 = self._clock.now
        if source == PROC_NULL:
            self._clock.advance(self._cost.recv_overhead)
            if status is not None:
                status.set_from(Status(source=PROC_NULL, tag=tag, count=0))
            self.last_op = OpDetail(
                op="recv", t0=t0, t1=self._clock.now, location=loc,
                src=PROC_NULL, dst=self.world_rank, tag=tag,
            )
            return None
        pending = self._post_recv(source, tag, loc)
        wait = WaitInfo(self.world_rank, WaitKind.RECV, source, tag, loc)
        while pending.matched is None:
            self.runtime.scheduler.yield_blocked(proc, wait)
            proc.check_killed()
        msg = pending.matched
        self._finish_recv_clock(msg)
        st = Status(
            source=self._to_group(msg.envelope.src),
            tag=msg.envelope.tag,
            count=payload_size(msg.payload),
        )
        if max_count is not None and st.count > max_count:
            from .errors import TruncationError

            if status is not None:
                status.set_from(st)
            raise TruncationError(expected=max_count, actual=st.count)
        if status is not None:
            status.set_from(st)
        self.last_op = OpDetail(
            op="recv",
            t0=t0,
            t1=self._clock.now,
            location=loc,
            src=msg.envelope.src,
            dst=self.world_rank,
            tag=msg.envelope.tag,
            size=st.count,
            seq=msg.envelope.seq,
            peer_location=msg.send_location,
            peer_marker=msg.send_marker,
            peer_send_time=msg.send_time,
        )
        return msg.payload

    def _post_recv(self, source: int, tag: int, loc: SourceLocation):
        """Post a receive, consulting the replay director for forcing.

        ``source`` is already a world rank (or a wildcard); post indexes
        are per world mailbox, shared across communicators, so replay
        keys stay stable however the program splits communicators.
        """
        mailbox = self.runtime.mailboxes[self.world_rank]
        post_index = mailbox.next_post_order
        forced = self.runtime.replay_forced_recv(
            self.world_rank, post_index, source, tag
        )
        return mailbox.post(
            source, tag, comm_id=self.comm_id, forced=forced, location=loc
        )

    def _finish_recv_clock(self, msg: Message) -> None:
        self._clock.advance(self._cost.recv_overhead)
        self._clock.advance_to(msg.send_time + self._cost.transfer_time(msg.size))

    # -- nonblocking ------------------------------------------------------
    def pmpi_isend(self, obj: Any, dest: int, tag: int = 0) -> Request:
        return self._isend_impl(obj, dest, tag, synchronous=False)

    def pmpi_issend(self, obj: Any, dest: int, tag: int = 0) -> Request:
        return self._isend_impl(obj, dest, tag, synchronous=True)

    def _isend_impl(self, obj: Any, dest: int, tag: int, synchronous: bool) -> Request:
        proc = self.proc
        proc.check_killed()
        check_tag(tag, reserved_ok=self._collective_depth > 0)
        dest = self._to_world(dest)
        loc = caller_location()
        t0 = self._clock.now
        seq = self.runtime.next_seq(self.world_rank, dest, tag, self.comm_id)
        msg = Message(
            envelope=Envelope(self.world_rank, dest, tag, seq, self.comm_id),
            payload=copy_payload(obj),
            send_location=loc,
            send_marker=proc.marker,
            synchronous=synchronous,
        )
        self._clock.advance(self._cost.send_overhead)
        msg.send_time = self._clock.now
        self.runtime.deposit(msg)
        self.last_op = OpDetail(
            op="issend" if synchronous else "isend",
            t0=t0,
            t1=self._clock.now,
            location=loc,
            src=self.world_rank,
            dst=dest,
            tag=tag,
            size=msg.size,
            seq=seq,
        )
        return SendRequest(self, msg, synchronous)

    def pmpi_irecv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> Request:
        proc = self.proc
        proc.check_killed()
        check_tag(tag, wildcard_ok=True, reserved_ok=self._collective_depth > 0)
        source = self._to_world(source, wildcard_ok=True)
        loc = caller_location()
        t0 = self._clock.now
        pending = self._post_recv(source, tag, loc)
        self._clock.advance(self._cost.call_overhead)
        self.last_op = OpDetail(
            op="irecv", t0=t0, t1=self._clock.now, location=loc,
            src=source, dst=self.world_rank, tag=tag,
        )
        return RecvRequest(self, pending)

    def pmpi_wait(self, request: Request, status: Optional[Status] = None) -> Any:
        proc = self.proc
        proc.check_killed()
        request._check_reusable()
        loc = caller_location()
        t0 = self._clock.now
        wait = WaitInfo(self.world_rank, WaitKind.REQUEST, ANY_SOURCE, ANY_TAG, loc)
        while not request.complete:
            self.runtime.scheduler.yield_blocked(proc, wait)
            proc.check_killed()
        payload = self._finalize_request(request, status)
        self.last_op = OpDetail(
            op="wait", t0=t0, t1=self._clock.now, location=loc,
            **self._request_detail(request),
        )
        return payload

    def pmpi_test(
        self, request: Request, status: Optional[Status] = None
    ) -> tuple[bool, Any]:
        proc = self.proc
        proc.check_killed()
        request._check_reusable()
        loc = caller_location()
        t0 = self._clock.now
        self._clock.advance(self._cost.probe_overhead)
        if not request.complete:
            self.last_op = OpDetail(
                op="test", t0=t0, t1=self._clock.now, location=loc,
                extra={"flag": False},
            )
            self._poll_yield()
            return (False, None)
        payload = self._finalize_request(request, status)
        self.last_op = OpDetail(
            op="test", t0=t0, t1=self._clock.now, location=loc,
            extra={"flag": True}, **self._request_detail(request),
        )
        return (True, payload)

    def pmpi_waitall(
        self,
        requests: Sequence[Request],
        statuses: Optional[list[Status]] = None,
    ) -> list[Any]:
        loc = caller_location()
        t0 = self._clock.now
        out: list[Any] = []
        for i, req in enumerate(requests):
            st = Status()
            out.append(self.pmpi_wait(req, st))
            if statuses is not None:
                if i < len(statuses):
                    statuses[i].set_from(st)
                else:
                    statuses.append(st)
        self.last_op = OpDetail(
            op="waitall", t0=t0, t1=self._clock.now, location=loc,
            extra={"count": len(requests)},
        )
        return out

    def pmpi_waitany(
        self, requests: Sequence[Request], status: Optional[Status] = None
    ) -> tuple[int, Any]:
        proc = self.proc
        proc.check_killed()
        if not requests:
            raise RequestError("waitany on an empty request list")
        loc = caller_location()
        t0 = self._clock.now
        # waitany call indexes are per PROCESS (not per communicator), so
        # replay keys are stable across comm splits.
        call_index = proc.waitany_calls
        proc.waitany_calls += 1
        forced = self.runtime.replay_forced_waitany(self.world_rank, call_index)
        wait = WaitInfo(self.world_rank, WaitKind.REQUEST, ANY_SOURCE, ANY_TAG, loc)
        if forced is not None:
            if not 0 <= forced < len(requests):
                raise RequestError(
                    f"replayed waitany choice {forced} out of range "
                    f"for {len(requests)} requests"
                )
            while not requests[forced].complete:
                self.runtime.scheduler.yield_blocked(proc, wait)
                proc.check_killed()
            index = forced
        else:
            while (idx := first_complete_index(requests)) is None:
                self.runtime.scheduler.yield_blocked(proc, wait)
                proc.check_killed()
            index = idx
        self.runtime.record_waitany(self.world_rank, call_index, index)
        payload = self._finalize_request(requests[index], status)
        self.last_op = OpDetail(
            op="waitany", t0=t0, t1=self._clock.now, location=loc,
            extra={"index": index}, **self._request_detail(requests[index]),
        )
        return (index, payload)

    def pmpi_cancel(self, request: Request) -> bool:
        proc = self.proc
        proc.check_killed()
        loc = caller_location()
        t0 = self._clock.now
        self._clock.advance(self._cost.probe_overhead)
        ok = False
        if isinstance(request, RecvRequest):
            ok = self.runtime.mailboxes[self.world_rank].cancel(request.pending)
            if ok:
                request.cancelled = True
        self.last_op = OpDetail(
            op="cancel", t0=t0, t1=self._clock.now, location=loc,
            extra={"cancelled": ok},
        )
        return ok

    def _finalize_request(self, request: Request, status: Optional[Status]) -> Any:
        """Apply completion clock effects and statuses; single-shot."""
        if isinstance(request, RecvRequest) and not request.cancelled:
            msg = request.pending.matched
            assert msg is not None
            self._finish_recv_clock(msg)
        st = request._status()
        if status is not None:
            status.set_from(st)
        request._finalize()
        return request._payload()

    @staticmethod
    def _request_detail(request: Request) -> dict:
        """OpDetail keyword fields describing a completed request."""
        if isinstance(request, RecvRequest) and request.pending.matched is not None:
            msg = request.pending.matched
            return {
                "src": msg.envelope.src,
                "dst": msg.envelope.dst,
                "tag": msg.envelope.tag,
                "size": msg.size,
                "seq": msg.envelope.seq,
                "peer_location": msg.send_location,
                "peer_marker": msg.send_marker,
                "peer_send_time": msg.send_time,
            }
        if isinstance(request, SendRequest):
            env = request.msg.envelope
            return {
                "src": env.src,
                "dst": env.dst,
                "tag": env.tag,
                "size": request.msg.size,
                "seq": env.seq,
            }
        return {}

    # -- probes ------------------------------------------------------------
    def pmpi_probe(
        self,
        source: int = ANY_SOURCE,
        tag: int = ANY_TAG,
        status: Optional[Status] = None,
    ) -> Status:
        proc = self.proc
        proc.check_killed()
        check_tag(tag, wildcard_ok=True)
        source = self._to_world(source, wildcard_ok=True)
        loc = caller_location()
        t0 = self._clock.now
        mailbox = self.runtime.mailboxes[self.world_rank]
        wait = WaitInfo(self.world_rank, WaitKind.RECV, source, tag, loc)
        while (msg := mailbox.probe(source, tag, self.comm_id)) is None:
            self.runtime.scheduler.yield_blocked(proc, wait)
            proc.check_killed()
        self._clock.advance(self._cost.probe_overhead)
        st = Status(
            source=self._to_group(msg.envelope.src),
            tag=msg.envelope.tag,
            count=payload_size(msg.payload),
        )
        if status is not None:
            status.set_from(st)
        self.last_op = OpDetail(
            op="probe", t0=t0, t1=self._clock.now, location=loc,
            src=msg.envelope.src, dst=self.world_rank, tag=msg.envelope.tag,
            size=st.count,
        )
        return st

    def pmpi_iprobe(
        self,
        source: int = ANY_SOURCE,
        tag: int = ANY_TAG,
        status: Optional[Status] = None,
    ) -> bool:
        proc = self.proc
        proc.check_killed()
        check_tag(tag, wildcard_ok=True)
        source = self._to_world(source, wildcard_ok=True)
        loc = caller_location()
        t0 = self._clock.now
        self._clock.advance(self._cost.probe_overhead)
        msg = self.runtime.mailboxes[self.world_rank].probe(source, tag, self.comm_id)
        flag = msg is not None
        if not flag:
            self._poll_yield()
        if flag and status is not None:
            assert msg is not None
            status.set_from(
                Status(
                    source=self._to_group(msg.envelope.src),
                    tag=msg.envelope.tag,
                    count=payload_size(msg.payload),
                )
            )
        self.last_op = OpDetail(
            op="iprobe", t0=t0, t1=self._clock.now, location=loc,
            extra={"flag": flag},
        )
        return flag

    def pmpi_sendrecv(
        self,
        sendobj: Any,
        dest: int,
        sendtag: int = 0,
        source: int = ANY_SOURCE,
        recvtag: int = ANY_TAG,
        status: Optional[Status] = None,
    ) -> Any:
        loc = caller_location()
        t0 = self._clock.now
        self.send(sendobj, dest, sendtag)
        out = self.recv(source, recvtag, status)
        self.last_op = OpDetail(
            op="sendrecv", t0=t0, t1=self._clock.now, location=loc,
            src=source, dst=dest, tag=sendtag,
        )
        return out

    # -- collectives ---------------------------------------------------------
    @_collective_impl
    def pmpi_barrier(self) -> None:
        loc = caller_location()
        t0 = self._clock.now
        self._clock.advance(self._cost.collective_overhead)
        tag = int(CollectiveTag.BARRIER)
        if self.size > 1:
            if self.rank == 0:
                for r in range(1, self.size):
                    self.recv(r, tag)
                for r in range(1, self.size):
                    self.send(None, r, tag)
            else:
                self.send(None, 0, tag)
                self.recv(0, tag)
        self.last_op = OpDetail(
            op="barrier", t0=t0, t1=self._clock.now, location=loc, root=0
        )

    @_collective_impl
    def pmpi_bcast(self, obj: Any = None, root: int = 0) -> Any:
        check_rank(root, self.size)
        loc = caller_location()
        t0 = self._clock.now
        self._clock.advance(self._cost.collective_overhead)
        tag = int(CollectiveTag.BCAST)
        if self.rank == root:
            for r in range(self.size):
                if r != root:
                    self.send(obj, r, tag)
            out = obj
        else:
            out = self.recv(root, tag)
        self.last_op = OpDetail(
            op="bcast", t0=t0, t1=self._clock.now, location=loc, root=root,
            size=payload_size(out),
        )
        return out

    @_collective_impl
    def pmpi_scatter(
        self, sendobjs: Optional[Sequence[Any]] = None, root: int = 0
    ) -> Any:
        check_rank(root, self.size)
        loc = caller_location()
        t0 = self._clock.now
        self._clock.advance(self._cost.collective_overhead)
        tag = int(CollectiveTag.SCATTER)
        if self.rank == root:
            if sendobjs is None or len(sendobjs) != self.size:
                raise ValueError(
                    f"scatter at root needs exactly {self.size} objects, "
                    f"got {0 if sendobjs is None else len(sendobjs)}"
                )
            for r in range(self.size):
                if r != root:
                    self.send(sendobjs[r], r, tag)
            out = sendobjs[root]
        else:
            out = self.recv(root, tag)
        self.last_op = OpDetail(
            op="scatter", t0=t0, t1=self._clock.now, location=loc, root=root
        )
        return out

    @_collective_impl
    def pmpi_gather(self, obj: Any, root: int = 0) -> Optional[list[Any]]:
        check_rank(root, self.size)
        loc = caller_location()
        t0 = self._clock.now
        self._clock.advance(self._cost.collective_overhead)
        tag = int(CollectiveTag.GATHER)
        out: Optional[list[Any]] = None
        if self.rank == root:
            out = [None] * self.size
            out[root] = obj
            for r in range(self.size):
                if r != root:
                    out[r] = self.recv(r, tag)
        else:
            self.send(obj, root, tag)
        self.last_op = OpDetail(
            op="gather", t0=t0, t1=self._clock.now, location=loc, root=root
        )
        return out

    @_collective_impl
    def pmpi_allgather(self, obj: Any) -> list[Any]:
        loc = caller_location()
        t0 = self._clock.now
        gathered = self.gather(obj, root=0)
        out = self.bcast(gathered, root=0)
        self.last_op = OpDetail(
            op="allgather", t0=t0, t1=self._clock.now, location=loc
        )
        return out

    @_collective_impl
    def pmpi_reduce(
        self,
        obj: Any,
        op: Optional[Callable[[Any, Any], Any]] = None,
        root: int = 0,
    ) -> Any:
        check_rank(root, self.size)
        loc = caller_location()
        t0 = self._clock.now
        fold = op or operator.add
        tag = int(CollectiveTag.REDUCE)
        out = None
        if self.rank == root:
            acc = obj
            # Fold in rank order with root's own value in place, so the
            # result is deterministic and op need not be commutative.
            parts: list[Any] = []
            for r in range(self.size):
                if r != root:
                    parts.append((r, self.recv(r, tag)))
            merged: list[Any] = []
            ri = 0
            for r in range(self.size):
                if r == root:
                    merged.append(obj)
                else:
                    merged.append(parts[ri][1])
                    ri += 1
            acc = merged[0]
            for val in merged[1:]:
                acc = fold(acc, val)
            out = acc
        else:
            self.send(obj, root, tag)
        self.last_op = OpDetail(
            op="reduce", t0=t0, t1=self._clock.now, location=loc, root=root
        )
        return out

    @_collective_impl
    def pmpi_allreduce(
        self, obj: Any, op: Optional[Callable[[Any, Any], Any]] = None
    ) -> Any:
        loc = caller_location()
        t0 = self._clock.now
        reduced = self.reduce(obj, op, root=0)
        out = self.bcast(reduced, root=0)
        self.last_op = OpDetail(
            op="allreduce", t0=t0, t1=self._clock.now, location=loc
        )
        return out

    @_collective_impl
    def pmpi_alltoall(self, objs: Sequence[Any]) -> list[Any]:
        if len(objs) != self.size:
            raise ValueError(
                f"alltoall needs exactly {self.size} objects, got {len(objs)}"
            )
        loc = caller_location()
        t0 = self._clock.now
        self._clock.advance(self._cost.collective_overhead)
        tag = int(CollectiveTag.ALLTOALL)
        for r in range(self.size):
            if r != self.rank:
                self.send(objs[r], r, tag)
        out: list[Any] = [None] * self.size
        out[self.rank] = objs[self.rank]
        for r in range(self.size):
            if r != self.rank:
                out[r] = self.recv(r, tag)
        self.last_op = OpDetail(
            op="alltoall", t0=t0, t1=self._clock.now, location=loc
        )
        return out

    @_collective_impl
    def pmpi_scan(
        self, obj: Any, op: Optional[Callable[[Any, Any], Any]] = None
    ) -> Any:
        loc = caller_location()
        t0 = self._clock.now
        self._clock.advance(self._cost.collective_overhead)
        fold = op or operator.add
        tag = int(CollectiveTag.SCAN)
        if self.rank > 0:
            acc = self.recv(self.rank - 1, tag)
            mine = fold(acc, obj)
        else:
            mine = obj
        if self.rank < self.size - 1:
            self.send(mine, self.rank + 1, tag)
        self.last_op = OpDetail(
            op="scan", t0=t0, t1=self._clock.now, location=loc
        )
        return mine

    # -- communicator management ------------------------------------------
    @_collective_impl
    def pmpi_split(self, color: Optional[int], key: int = 0) -> "Optional[Comm]":
        loc = caller_location()
        t0 = self._clock.now
        self._clock.advance(self._cost.collective_overhead)
        entries = self.gather((color, key, self.rank), root=0)
        assignment: Optional[tuple[int, tuple[int, ...]]]
        if self.rank == 0:
            assert entries is not None
            by_color: dict[int, list[tuple[int, int]]] = {}
            for c, k, r in entries:
                if c is not None:
                    by_color.setdefault(c, []).append((k, r))
            plans: dict[int, tuple[int, tuple[int, ...]]] = {}
            for c in sorted(by_color):
                members = [r for (_, r) in sorted(by_color[c])]
                new_id = self.runtime.alloc_comm_id()
                world_group = tuple(self.group[r] for r in members)
                for r in members:
                    plans[r] = (new_id, world_group)
            assignments = [plans.get(r) for r in range(self.size)]
            assignment = self.scatter(assignments, root=0)
        else:
            assignment = self.scatter(None, root=0)
        self.last_op = OpDetail(
            op="split", t0=t0, t1=self._clock.now, location=loc,
            extra={"color": color, "key": key},
        )
        if assignment is None:
            return None
        new_id, world_group = assignment
        return Comm(self.runtime, self.world_rank, group=world_group,
                    comm_id=new_id)

    # -- virtual computation ----------------------------------------------
    def pmpi_compute(self, duration: float, label: str = "compute") -> None:
        proc = self.proc
        proc.check_killed()
        if duration < 0:
            raise ValueError(f"compute duration must be >= 0, got {duration}")
        loc = caller_location()
        t0 = self._clock.now
        self._clock.advance(duration)
        self.last_op = OpDetail(
            op="compute", t0=t0, t1=self._clock.now, location=loc,
            extra={"label": label},
        )
