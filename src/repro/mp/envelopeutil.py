"""Small helpers shared by channel, trace, and analysis layers."""

from __future__ import annotations

from .message import Envelope


def envelope_key_str(env: Envelope) -> str:
    """Stable string key for an envelope: ``src->dst/tag#seq``.

    Used as a join key between send and receive trace records when
    rebuilding message arcs from a trace file.
    """
    return f"{env.src}->{env.dst}/{env.tag}#{env.seq}"


def parse_envelope_key(key: str) -> Envelope:
    """Inverse of :func:`envelope_key_str`."""
    route, _, seq = key.partition("#")
    endpoints, _, tag = route.partition("/")
    src, _, dst = endpoints.partition("->")
    return Envelope(src=int(src), dst=int(dst), tag=int(tag), seq=int(seq))
