"""Caller-location discovery.

Trace records must point at the *user* construct that issued an operation
(the "click on a message line to see the send in the source" feature of
Section 3.1), so runtime frames have to be skipped when walking the
stack.  A frame belongs to the runtime if its file lives in one of the
infrastructure packages below; everything else -- applications, examples,
tests -- counts as user code.
"""

from __future__ import annotations

import os
import sys

from .datatypes import SourceLocation

#: Path fragments identifying infrastructure frames to skip.
_INFRA_FRAGMENTS = (
    os.sep + os.path.join("repro", "mp") + os.sep,
    os.sep + os.path.join("repro", "instrument") + os.sep,
    os.sep + os.path.join("repro", "debugger") + os.sep,
    os.sep + os.path.join("repro", "trace") + os.sep,
)


def is_infrastructure_file(filename: str) -> bool:
    """True for files inside the runtime/instrumentation packages."""
    return any(frag in filename for frag in _INFRA_FRAGMENTS)


def caller_location(skip: int = 1, max_depth: int = 30) -> SourceLocation:
    """The nearest non-infrastructure frame above the caller.

    ``skip`` frames are unconditionally discarded first (the helper's own
    caller chain).  Returns :meth:`SourceLocation.unknown` when the whole
    stack is infrastructure (e.g. runtime-internal self-tests).
    """
    try:
        frame = sys._getframe(skip + 1)
    except ValueError:  # pragma: no cover - stack shallower than skip
        return SourceLocation.unknown()
    depth = 0
    while frame is not None and depth < max_depth:
        filename = frame.f_code.co_filename
        if not is_infrastructure_file(filename):
            return SourceLocation(
                filename=filename,
                lineno=frame.f_lineno,
                function=frame.f_code.co_name,
            )
        frame = frame.f_back
        depth += 1
    return SourceLocation.unknown()
