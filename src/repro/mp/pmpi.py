"""The PMPI-style profiling interposition layer.

The MPI standard's profiling interface (paper Section 2.3) makes every
library function callable under two names: ``MPI_name`` -- which a tool
may replace -- and ``PMPI_name`` -- the real implementation.  A tool's
``MPI_Send`` records whatever it wants and then calls ``PMPI_Send``.

This module reproduces that name-shift for the simulated runtime:

* every communication entry point of :class:`~repro.mp.comm.Comm` has a
  base implementation named ``pmpi_<op>`` (the ``PMPI_`` name);
* the public method ``<op>`` routes through a per-runtime
  :class:`PMPILayer`, which threads the call through a stack of
  *wrappers* installed by instrumentation libraries;
* a wrapper is ``fn(next_call, comm, *args, **kwargs)`` and must invoke
  ``next_call(comm, *args, **kwargs)`` exactly once (or raise), exactly
  like an ``MPI_Send`` that calls ``PMPI_Send``.

Installing no wrappers leaves the program running directly on the PMPI
implementations -- "link without the debugging library" in the paper's
terms.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Iterable

if TYPE_CHECKING:  # pragma: no cover
    from .comm import Comm

#: Every interposable operation name.  ``compute`` is included so the
#: virtual-time "computation bars" of the time-space diagrams can be
#: traced through the same mechanism.
INTERPOSABLE_OPS: tuple[str, ...] = (
    "send",
    "ssend",
    "rsend",
    "recv",
    "isend",
    "issend",
    "irecv",
    "probe",
    "iprobe",
    "sendrecv",
    "wait",
    "test",
    "waitall",
    "waitany",
    "cancel",
    "barrier",
    "bcast",
    "scatter",
    "gather",
    "allgather",
    "reduce",
    "allreduce",
    "alltoall",
    "scan",
    "split",
    "compute",
)

Wrapper = Callable[..., Any]


class PMPILayer:
    """Per-runtime registry of wrapper stacks, one per operation name.

    Wrappers are applied outermost-last-installed: installing A then B
    yields call order ``B -> A -> pmpi``.  That matches linking a second
    profiling library "in front of" the first.
    """

    def __init__(self) -> None:
        self._wrappers: dict[str, list[Wrapper]] = {op: [] for op in INTERPOSABLE_OPS}

    # ------------------------------------------------------------------
    def check_op(self, op: str) -> None:
        if op not in self._wrappers:
            raise ValueError(
                f"unknown interposable operation {op!r}; "
                f"valid ops: {', '.join(INTERPOSABLE_OPS)}"
            )

    def install(self, op: str, wrapper: Wrapper) -> None:
        """Push ``wrapper`` onto the stack for ``op``."""
        self.check_op(op)
        self._wrappers[op].append(wrapper)

    def install_all(self, ops: Iterable[str], wrapper_factory: Callable[[str], Wrapper]) -> None:
        """Install ``wrapper_factory(op)`` for each op in ``ops``."""
        for op in ops:
            self.install(op, wrapper_factory(op))

    def uninstall(self, op: str, wrapper: Wrapper) -> bool:
        """Remove a previously-installed wrapper; returns success."""
        self.check_op(op)
        try:
            self._wrappers[op].remove(wrapper)
            return True
        except ValueError:
            return False

    def clear(self) -> None:
        """Remove every wrapper (unlink all profiling libraries)."""
        for stack in self._wrappers.values():
            stack.clear()

    def wrapper_count(self, op: str) -> int:
        self.check_op(op)
        return len(self._wrappers[op])

    # ------------------------------------------------------------------
    def call(self, op: str, comm: "Comm", *args: Any, **kwargs: Any) -> Any:
        """Invoke ``op`` on ``comm`` through the wrapper chain."""
        base = getattr(comm, f"pmpi_{op}")
        stack = self._wrappers.get(op)
        if stack is None:
            raise ValueError(f"unknown interposable operation {op!r}")
        call: Callable[..., Any] = lambda c, *a, **kw: base(*a, **kw)  # noqa: E731
        # Build the chain inner-to-outer so the last-installed wrapper
        # runs first.
        for wrapper in stack:
            call = _bind(wrapper, call)
        return call(comm, *args, **kwargs)


def _bind(wrapper: Wrapper, next_call: Callable[..., Any]) -> Callable[..., Any]:
    def bound(comm: "Comm", *args: Any, **kwargs: Any) -> Any:
        return wrapper(next_call, comm, *args, **kwargs)

    return bound
