"""Nonblocking operation requests (``MPI_Request`` analog).

Requests are created by ``isend``/``irecv`` and completed through
``wait``/``test``/``waitall``/``waitany``.  The paper's Section 6 notes
that its replay excludes programs using ``MPI_WAITANY`` and
``MPI_CANCEL``; this reproduction implements the *extension* the authors
point to (instant-replay-style recording) by logging the completion index
a ``waitany`` returned, so those programs replay too (see
``repro.mp.record`` and DESIGN.md Section 6).
"""

from __future__ import annotations

import enum
import itertools
from typing import TYPE_CHECKING, Any, Optional, Sequence

from .channel import PendingRecv
from .errors import RequestError
from .message import Message, payload_size
from .status import Status

if TYPE_CHECKING:  # pragma: no cover
    from .comm import Comm

_request_ids = itertools.count()


class RequestKind(enum.Enum):
    SEND = "send"
    SSEND = "ssend"
    RECV = "recv"


class Request:
    """A handle on an in-flight nonblocking operation.

    The runtime completes requests eagerly (at deposit/match time); the
    user-visible ``wait``/``test`` only observe and finalize.  Completed
    requests are single-shot: a second ``wait`` raises, matching the
    "request freed" discipline of MPI.
    """

    def __init__(self, comm: "Comm", kind: RequestKind) -> None:
        self.req_id = next(_request_ids)
        self.comm = comm
        self.kind = kind
        self.cancelled = False
        self._finalized = False

    # -- completion state, specialized below ----------------------------
    @property
    def complete(self) -> bool:
        raise NotImplementedError

    def _payload(self) -> Any:
        raise NotImplementedError

    def _status(self) -> Status:
        raise NotImplementedError

    # -- public API ------------------------------------------------------
    def wait(self, status: Optional[Status] = None) -> Any:
        """Block until complete; return the payload (None for sends)."""
        return self.comm.wait(self, status)

    def test(self, status: Optional[Status] = None) -> tuple[bool, Any]:
        """(done, payload) without blocking."""
        return self.comm.test(self, status)

    def cancel(self) -> bool:
        """Attempt to cancel; returns True if cancellation took effect."""
        return self.comm.cancel(self)

    def _check_reusable(self) -> None:
        if self._finalized:
            raise RequestError(f"request {self.req_id} already completed")

    def _finalize(self) -> None:
        self._finalized = True


class SendRequest(Request):
    """Nonblocking send.  Standard mode is complete at creation (the
    runtime buffers); synchronous mode completes when the message is
    matched by a receive."""

    def __init__(self, comm: "Comm", msg: Message, synchronous: bool) -> None:
        super().__init__(
            comm, RequestKind.SSEND if synchronous else RequestKind.SEND
        )
        self.msg = msg
        self.synchronous = synchronous

    @property
    def complete(self) -> bool:
        if self.cancelled:
            return True
        if not self.synchronous:
            return True
        return not self.comm.runtime.ssend_outstanding(self.msg.msg_id)

    def _payload(self) -> Any:
        return None

    def _status(self) -> Status:
        env = self.msg.envelope
        return Status(
            source=env.src,
            tag=env.tag,
            count=self.msg.size,
            cancelled=self.cancelled,
        )


class RecvRequest(Request):
    """Nonblocking receive, wrapping the posted :class:`PendingRecv`."""

    def __init__(self, comm: "Comm", pending: PendingRecv) -> None:
        super().__init__(comm, RequestKind.RECV)
        self.pending = pending

    @property
    def complete(self) -> bool:
        return self.cancelled or self.pending.matched is not None

    def _payload(self) -> Any:
        msg = self.pending.matched
        return None if msg is None else msg.payload

    def _status(self) -> Status:
        if self.cancelled and self.pending.matched is None:
            return Status(cancelled=True)
        msg = self.pending.matched
        assert msg is not None
        return Status(
            source=msg.envelope.src,
            tag=msg.envelope.tag,
            count=payload_size(msg.payload),
        )


def first_complete_index(requests: Sequence[Request]) -> Optional[int]:
    """Lowest index of a complete request, or None.

    The deterministic default for ``waitany``; a replay overrides it with
    the recorded choice.
    """
    for i, req in enumerate(requests):
        if req.complete:
            return i
    return None
