"""Message envelopes carried by the simulated runtime.

A message records everything the paper's trace layer needs: endpoints,
tag, a per-(src,dst,tag) sequence number (the key to unique send/receive
matching under MPI's non-overtaking rule, Section 3.2 of the paper), and
virtual-time stamps for the time-space diagram.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from .datatypes import SourceLocation

_global_msg_ids = itertools.count()


def payload_size(payload: Any) -> int:
    """Best-effort element count of a payload, for ``Status.count``.

    NumPy arrays report their ``size``; sized containers their ``len``;
    scalars and opaque objects count as 1.  The size also feeds the
    cost model (per-element transfer cost) and trace records.
    """
    if payload is None:
        return 0
    if isinstance(payload, np.ndarray):
        return int(payload.size)
    if isinstance(payload, (bytes, bytearray, memoryview, str)):
        return len(payload)
    try:
        return len(payload)  # type: ignore[arg-type]
    except TypeError:
        return 1


@dataclass
class Envelope:
    """The matching-relevant header of a message.

    ``src``/``dst`` are *world* ranks.  ``seq`` numbers messages per
    ordered (comm_id, src, dst, tag) quadruple, starting at 0; under the
    MPI non-overtaking guarantee this makes the pairing of send events
    with receive events unique, which the paper relies on to build the
    trace graph's message arcs.  ``comm_id`` isolates communicators
    created by ``Comm.split``: a receive on one communicator never
    matches another's traffic (MPI's communication-context guarantee).
    """

    src: int
    dst: int
    tag: int
    seq: int
    comm_id: int = 0

    def key(self) -> tuple[int, int, int, int]:
        """The FIFO-order key (comm_id, src, dst, tag)."""
        return (self.comm_id, self.src, self.dst, self.tag)

    def __str__(self) -> str:  # pragma: no cover - repr convenience
        return f"{self.src}->{self.dst} tag={self.tag} #{self.seq}"


@dataclass
class Message:
    """A payload plus envelope plus the trace-relevant metadata.

    Attributes
    ----------
    envelope:
        Matching header; see :class:`Envelope`.
    payload:
        The user object being communicated.  The runtime deep-copies
        array payloads at send time so later mutation by the sender does
        not alter the message (value semantics, as in real MPI).
    msg_id:
        Globally unique id, used by the replay log and tests.
    send_time:
        Virtual time at which the send *completed locally* (the message
        left the sender).
    arrival_order:
        Global monotonically increasing stamp assigned when the message
        is deposited in the destination mailbox.  Wildcard receives match
        the available message with the smallest arrival order, making
        matching deterministic for a deterministic schedule; the replay
        director overrides this choice (Section 4.2 nondeterminism
        control).
    send_location / send_marker:
        Source construct and execution-marker value at the send, copied
        into the receive-side trace record so message lines can be tied
        back to the sending statement.
    synchronous:
        True for rendezvous-mode sends; the sender stays blocked until
        this message is matched.
    """

    envelope: Envelope
    payload: Any
    msg_id: int = field(default_factory=lambda: next(_global_msg_ids))
    send_time: float = 0.0
    arrival_order: int = -1
    send_location: SourceLocation = field(default_factory=SourceLocation.unknown)
    send_marker: int = -1
    synchronous: bool = False

    @property
    def size(self) -> int:
        """Element count of the payload (cached lazily is not worth it)."""
        return payload_size(self.payload)

    def matches(self, source: int, tag: int) -> bool:
        """Does this message satisfy a receive posted with (source, tag)?

        ``source``/``tag`` may be the ``ANY_SOURCE``/``ANY_TAG`` wildcards.
        """
        from .datatypes import ANY_SOURCE, ANY_TAG

        if source != ANY_SOURCE and self.envelope.src != source:
            return False
        if tag != ANY_TAG and self.envelope.tag != tag:
            return False
        return True


def copy_payload(payload: Any) -> Any:
    """Copy a payload at send time to give value semantics.

    NumPy arrays are copied; immutable scalars/strings/bytes/tuples pass
    through; other containers are deep-copied.  This mirrors MPI's
    semantics where the send buffer may be reused after the send returns.
    """
    import copy

    if payload is None or isinstance(
        payload, (int, float, complex, bool, str, bytes, frozenset)
    ):
        return payload
    if isinstance(payload, np.ndarray):
        return payload.copy()
    if isinstance(payload, tuple):
        return tuple(copy_payload(item) for item in payload)
    return copy.deepcopy(payload)
