"""Exception hierarchy for the simulated message-passing runtime.

The runtime mirrors the error classes an MPI implementation reports
(invalid rank, truncation, ...) plus simulator-level conditions the paper's
debugger cares about: deadlock (Figures 5-6 of the paper show two processes
blocked in receives on each other) and controlled-replay divergence.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from .process import WaitInfo


class MPError(Exception):
    """Base class for all errors raised by the :mod:`repro.mp` runtime."""


class MPIError(MPError):
    """An error corresponding to a failed MPI call (bad arguments etc.)."""


class InvalidRankError(MPIError):
    """A ``dest``/``source`` argument named a rank outside the communicator."""

    def __init__(self, rank: int, size: int) -> None:
        super().__init__(f"rank {rank} outside communicator of size {size}")
        self.rank = rank
        self.size = size


class InvalidTagError(MPIError):
    """A tag was negative (and not one of the wildcard constants)."""

    def __init__(self, tag: int) -> None:
        super().__init__(f"invalid tag {tag}: user tags must be >= 0")
        self.tag = tag


class TruncationError(MPIError):
    """A receive posted with a max count smaller than the matched message."""

    def __init__(self, expected: int, actual: int) -> None:
        super().__init__(
            f"message truncated: receive buffer holds {expected} "
            f"elements, message carries {actual}"
        )
        self.expected = expected
        self.actual = actual


class RequestError(MPIError):
    """Misuse of a nonblocking request (double wait, freed request, ...)."""


class CancelledError(MPIError):
    """An operation completed against a cancelled request."""


class DeadlockError(MPError):
    """All live processes are blocked and none can make progress.

    The scheduler raises (or, in ``report`` mode, records) this when its
    ready queue empties while blocked processes remain.  ``waiting``
    carries one :class:`~repro.mp.process.WaitInfo` per blocked process so
    the debugger can show *who waits for whom*, which is exactly the
    analysis behind the paper's Figure 5.
    """

    def __init__(self, waiting: Sequence["WaitInfo"]) -> None:
        lines = ", ".join(str(w) for w in waiting)
        super().__init__(f"deadlock: all live processes blocked [{lines}]")
        self.waiting = list(waiting)


class ReplayDivergenceError(MPError):
    """A controlled replay observed an event the recorded log cannot match.

    Raised when the program under replay issues a communication operation
    whose (process, operation, peer, tag) signature differs from the
    recorded history -- i.e. the program is not deterministic relative to
    the trace, violating the applicability conditions in Section 6 of the
    paper.
    """


class ProcessKilled(BaseException):
    """Injected into a process thread to terminate it during teardown.

    Derives from :class:`BaseException` so user-level ``except Exception``
    blocks do not swallow it.
    """
