"""Scheduling policies and run-outcome reporting.

At most one simulated process executes at any instant under the
cooperative backends; the engine
(:class:`~repro.mp.backends.engine.CooperativeBackend`) grants an
execution *token* to one READY process, waits for it to yield (block,
stop, finish, or volunteer preemption), and picks the next.  All
interleaving decisions flow through a pluggable
:class:`SchedulingPolicy`, so a given (program, policy, seed) triple
always produces the same execution -- the determinism that underpins the
paper's marker-threshold replay (Section 4.1: "This information is
sufficient for p2d2 to perform a replay").

This module owns the *decisions* (policies) and the *verdicts*
(:class:`RunOutcome` / :class:`RunReport`); the token machinery itself
lives in :mod:`repro.mp.backends`.  The historical ``Scheduler`` name
still resolves -- to the threaded backend, which is the same engine the
old class implemented.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass, field
from typing import Callable, Sequence

from .errors import DeadlockError
from .process import Process, WaitInfo


class RunOutcome(enum.Enum):
    """Why a ``run_until_idle`` call returned."""

    FINISHED = "finished"  # every process exited normally
    STOPPED = "stopped"  # >= 1 process parked by the debugger
    DEADLOCK = "deadlock"  # live processes remain, all blocked
    ERROR = "error"  # >= 1 process raised; none ready/stopped
    LIMIT = "limit"  # grant budget exhausted (runaway guard)


@dataclass
class RunReport:
    """Outcome of one scheduling episode plus the evidence behind it."""

    outcome: RunOutcome
    stopped: list[Process] = field(default_factory=list)
    blocked: list[Process] = field(default_factory=list)
    errored: list[Process] = field(default_factory=list)
    waiting: list[WaitInfo] = field(default_factory=list)
    grants: int = 0

    def raise_on_error(self) -> "RunReport":
        """Re-raise the first user exception / deadlock, else return self."""
        if self.outcome is RunOutcome.ERROR and self.errored:
            exc = self.errored[0].exception
            assert exc is not None
            raise exc
        if self.outcome is RunOutcome.DEADLOCK:
            raise DeadlockError(self.waiting)
        return self


# ----------------------------------------------------------------------
# scheduling policies
# ----------------------------------------------------------------------
class SchedulingPolicy:
    """Strategy hooks: which READY process runs next, and whether the
    current process should voluntarily yield at an instrumentation point.

    Policies must be deterministic functions of their inputs (plus an
    explicit seed) so the whole simulation replays bit-identically.

    A policy whose choice is a pure minimum over the ready set may
    additionally define ``ready_key(proc)`` with the contract::

        pick(ready) == min(ready, key=lambda p: (ready_key(p), p.rank))

    and the key stable for as long as ``proc`` stays READY.  The engine
    then serves it from an incremental heap -- O(log n) per scheduling
    transition instead of an O(n) scan per grant -- without changing a
    single decision.  Stateful policies simply omit ``ready_key`` and
    receive the full rank-ordered candidate list, exactly as before.
    """

    name = "abstract"

    def pick(self, ready: Sequence[Process]) -> Process:
        raise NotImplementedError

    def should_preempt(self, current: Process, ready: Sequence[Process]) -> bool:
        """Called at marker points; ``ready`` excludes ``current``."""
        return False


class RunToBlockPolicy(SchedulingPolicy):
    """Run each process until it blocks/stops; pick the lowest rank next.

    The simplest deterministic policy and the default: context switches
    happen only at blocking communication, which matches how the paper's
    single-threaded processes interleave on distinct CPUs as far as
    message matching is concerned.
    """

    name = "run_to_block"

    def pick(self, ready: Sequence[Process]) -> Process:
        return min(ready, key=lambda p: p.rank)

    def ready_key(self, proc: Process) -> int:
        return 0  # ties broken by rank == lowest rank first


class RoundRobinPolicy(SchedulingPolicy):
    """Yield at every instrumentation point, cycling through ranks."""

    name = "round_robin"

    def __init__(self) -> None:
        self._last_rank = -1

    def pick(self, ready: Sequence[Process]) -> Process:
        after = [p for p in ready if p.rank > self._last_rank]
        chosen = min(after or ready, key=lambda p: p.rank)
        self._last_rank = chosen.rank
        return chosen

    def should_preempt(self, current: Process, ready: Sequence[Process]) -> bool:
        return bool(ready)


class VirtualTimePolicy(SchedulingPolicy):
    """Always run the process with the smallest virtual clock.

    Gives time-space diagrams in which concurrent progress appears
    interleaved in virtual time, closest to the paper's figures.
    """

    name = "virtual_time"

    def pick(self, ready: Sequence[Process]) -> Process:
        return min(ready, key=lambda p: (p.clock.now, p.rank))

    def ready_key(self, proc: Process) -> float:
        # Clocks only advance while RUNNING, so the key is stable for
        # the whole time a process sits in the ready set.
        return proc.clock.now

    def should_preempt(self, current: Process, ready: Sequence[Process]) -> bool:
        return any(p.clock.now < current.clock.now for p in ready)


class RandomPolicy(SchedulingPolicy):
    """Seeded random interleaving -- used by the race detector to explore
    alternative wildcard matchings (Section 4.4 message racing)."""

    name = "random"

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self._rng = random.Random(seed)

    def pick(self, ready: Sequence[Process]) -> Process:
        ordered = sorted(ready, key=lambda p: p.rank)
        return ordered[self._rng.randrange(len(ordered))]

    def should_preempt(self, current: Process, ready: Sequence[Process]) -> bool:
        return bool(ready) and self._rng.random() < 0.5


_POLICIES: dict[str, Callable[..., SchedulingPolicy]] = {
    "run_to_block": RunToBlockPolicy,
    "round_robin": RoundRobinPolicy,
    "virtual_time": VirtualTimePolicy,
    "random": RandomPolicy,
}


def make_policy(spec: "str | SchedulingPolicy", seed: int = 0) -> SchedulingPolicy:
    """Instantiate a policy from a name (or pass an instance through)."""
    if isinstance(spec, SchedulingPolicy):
        return spec
    try:
        factory = _POLICIES[spec]
    except KeyError:
        raise ValueError(
            f"unknown scheduling policy {spec!r}; "
            f"choose from {sorted(_POLICIES)}"
        ) from None
    if factory is RandomPolicy:
        return factory(seed)
    return factory()


def __getattr__(name: str):
    # Historical alias: the pre-backend Scheduler class was the threaded
    # engine; keep the name importable for downstream code.
    if name == "Scheduler":
        from .backends.threaded import ThreadedBackend

        return ThreadedBackend
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
