"""Deterministic cooperative scheduler.

At most one simulated process executes at any instant; the scheduler
(running in the controller thread -- the thread that called
``Runtime.run``) grants an execution *token* to one READY process, waits
for it to yield (block, stop, finish, or volunteer preemption), and picks
the next.  All interleaving decisions flow through a pluggable
:class:`SchedulingPolicy`, so a given (program, policy, seed) triple
always produces the same execution -- the determinism that underpins the
paper's marker-threshold replay (Section 4.1: "This information is
sufficient for p2d2 to perform a replay").

The scheduler also owns *progress accounting*: when its ready set is
empty it classifies the situation as debugger stop, program completion,
or deadlock (the Figure 5 scenario), in that priority order.
"""

from __future__ import annotations

import enum
import random
import threading
from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

from .errors import DeadlockError
from .process import ProcState, Process, WaitInfo


class RunOutcome(enum.Enum):
    """Why a ``Scheduler.run_until_idle`` call returned."""

    FINISHED = "finished"  # every process exited normally
    STOPPED = "stopped"  # >= 1 process parked by the debugger
    DEADLOCK = "deadlock"  # live processes remain, all blocked
    ERROR = "error"  # >= 1 process raised; none ready/stopped
    LIMIT = "limit"  # grant budget exhausted (runaway guard)


@dataclass
class RunReport:
    """Outcome of one scheduling episode plus the evidence behind it."""

    outcome: RunOutcome
    stopped: list[Process] = field(default_factory=list)
    blocked: list[Process] = field(default_factory=list)
    errored: list[Process] = field(default_factory=list)
    waiting: list[WaitInfo] = field(default_factory=list)
    grants: int = 0

    def raise_on_error(self) -> "RunReport":
        """Re-raise the first user exception / deadlock, else return self."""
        if self.outcome is RunOutcome.ERROR and self.errored:
            exc = self.errored[0].exception
            assert exc is not None
            raise exc
        if self.outcome is RunOutcome.DEADLOCK:
            raise DeadlockError(self.waiting)
        return self


# ----------------------------------------------------------------------
# scheduling policies
# ----------------------------------------------------------------------
class SchedulingPolicy:
    """Strategy hooks: which READY process runs next, and whether the
    current process should voluntarily yield at an instrumentation point.

    Policies must be deterministic functions of their inputs (plus an
    explicit seed) so the whole simulation replays bit-identically.
    """

    name = "abstract"

    def pick(self, ready: Sequence[Process]) -> Process:
        raise NotImplementedError

    def should_preempt(self, current: Process, ready: Sequence[Process]) -> bool:
        """Called at marker points; ``ready`` excludes ``current``."""
        return False


class RunToBlockPolicy(SchedulingPolicy):
    """Run each process until it blocks/stops; pick the lowest rank next.

    The simplest deterministic policy and the default: context switches
    happen only at blocking communication, which matches how the paper's
    single-threaded processes interleave on distinct CPUs as far as
    message matching is concerned.
    """

    name = "run_to_block"

    def pick(self, ready: Sequence[Process]) -> Process:
        return min(ready, key=lambda p: p.rank)


class RoundRobinPolicy(SchedulingPolicy):
    """Yield at every instrumentation point, cycling through ranks."""

    name = "round_robin"

    def __init__(self) -> None:
        self._last_rank = -1

    def pick(self, ready: Sequence[Process]) -> Process:
        after = [p for p in ready if p.rank > self._last_rank]
        chosen = min(after or ready, key=lambda p: p.rank)
        self._last_rank = chosen.rank
        return chosen

    def should_preempt(self, current: Process, ready: Sequence[Process]) -> bool:
        return bool(ready)


class VirtualTimePolicy(SchedulingPolicy):
    """Always run the process with the smallest virtual clock.

    Gives time-space diagrams in which concurrent progress appears
    interleaved in virtual time, closest to the paper's figures.
    """

    name = "virtual_time"

    def pick(self, ready: Sequence[Process]) -> Process:
        return min(ready, key=lambda p: (p.clock.now, p.rank))

    def should_preempt(self, current: Process, ready: Sequence[Process]) -> bool:
        return any(p.clock.now < current.clock.now for p in ready)


class RandomPolicy(SchedulingPolicy):
    """Seeded random interleaving -- used by the race detector to explore
    alternative wildcard matchings (Section 4.4 message racing)."""

    name = "random"

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self._rng = random.Random(seed)

    def pick(self, ready: Sequence[Process]) -> Process:
        ordered = sorted(ready, key=lambda p: p.rank)
        return ordered[self._rng.randrange(len(ordered))]

    def should_preempt(self, current: Process, ready: Sequence[Process]) -> bool:
        return bool(ready) and self._rng.random() < 0.5


_POLICIES: dict[str, Callable[..., SchedulingPolicy]] = {
    "run_to_block": RunToBlockPolicy,
    "round_robin": RoundRobinPolicy,
    "virtual_time": VirtualTimePolicy,
    "random": RandomPolicy,
}


def make_policy(spec: "str | SchedulingPolicy", seed: int = 0) -> SchedulingPolicy:
    """Instantiate a policy from a name (or pass an instance through)."""
    if isinstance(spec, SchedulingPolicy):
        return spec
    try:
        factory = _POLICIES[spec]
    except KeyError:
        raise ValueError(
            f"unknown scheduling policy {spec!r}; "
            f"choose from {sorted(_POLICIES)}"
        ) from None
    if factory is RandomPolicy:
        return factory(seed)
    return factory()


# ----------------------------------------------------------------------
# the scheduler proper
# ----------------------------------------------------------------------
class Scheduler:
    """Token-passing coordinator for the process threads.

    Thread model: the *controller* thread calls :meth:`run_until_idle`;
    each process's *worker* thread alternates between holding the token
    (executing user code) and waiting in :meth:`await_grant`.  A single
    condition variable serializes every handoff.
    """

    def __init__(
        self,
        policy: "str | SchedulingPolicy" = "run_to_block",
        seed: int = 0,
        max_grants: Optional[int] = None,
    ) -> None:
        self.policy = make_policy(policy, seed)
        self.procs: list[Process] = []
        self.max_grants = max_grants
        self.total_grants = 0
        self._cv = threading.Condition()
        self._current: Optional[Process] = None
        #: observers notified after every grant (runtime statistics)
        self.grant_hooks: list[Callable[[Process], None]] = []

    # ------------------------------------------------------------------
    # setup
    # ------------------------------------------------------------------
    def register(self, proc: Process) -> None:
        """Add a process; must happen before it is started."""
        self.procs.append(proc)

    # ------------------------------------------------------------------
    # controller-thread side
    # ------------------------------------------------------------------
    def run_until_idle(self) -> RunReport:
        """Grant the token until no process is READY, then classify.

        Returns a :class:`RunReport`.  STOPPED takes priority over
        DEADLOCK: processes blocked on messages that a *stopped* peer
        would send are not deadlocked, merely waiting for the debugger.
        """
        grants = 0
        while True:
            ready = [p for p in self.procs if p.state is ProcState.READY]
            if not ready:
                return self._classify(grants)
            if self.max_grants is not None and self.total_grants >= self.max_grants:
                return RunReport(outcome=RunOutcome.LIMIT, grants=grants)
            proc = self.policy.pick(ready)
            self._grant(proc)
            grants += 1
            self.total_grants += 1
            for hook in self.grant_hooks:
                hook(proc)

    def _classify(self, grants: int) -> RunReport:
        stopped = [p for p in self.procs if p.state is ProcState.STOPPED]
        blocked = [p for p in self.procs if p.state is ProcState.BLOCKED]
        errored = [p for p in self.procs if p.state is ProcState.ERRORED]
        report = RunReport(
            outcome=RunOutcome.FINISHED,
            stopped=stopped,
            blocked=blocked,
            errored=errored,
            waiting=[p.wait_info for p in blocked if p.wait_info is not None],
            grants=grants,
        )
        # Priority: a debugger stop owns the situation; then a user error
        # (processes blocked on an errored peer are a consequence, not a
        # deadlock); a true deadlock only when everyone left is blocked.
        if stopped:
            report.outcome = RunOutcome.STOPPED
        elif errored:
            report.outcome = RunOutcome.ERROR
        elif blocked:
            report.outcome = RunOutcome.DEADLOCK
        return report

    def _grant(self, proc: Process) -> None:
        """Hand the token to ``proc`` and wait until it is released."""
        with self._cv:
            proc.state = ProcState.RUNNING
            self._current = proc
            self._cv.notify_all()
            while self._current is not None:
                self._cv.wait()

    def resume_stopped(self, procs: Optional[Sequence[Process]] = None) -> None:
        """Flip STOPPED processes back to READY (debugger continue)."""
        with self._cv:
            for proc in procs if procs is not None else self.procs:
                if proc.state is ProcState.STOPPED:
                    proc.state = ProcState.READY

    def shutdown(self) -> None:
        """Terminate all live processes (used on teardown / abandon).

        Each live process is marked for kill and granted once; its next
        scheduling point raises :class:`ProcessKilled`, unwinding the
        user stack.
        """
        for proc in self.procs:
            if proc.live:
                proc.request_kill()
        # Granting order doesn't matter for teardown; use rank order.
        for proc in sorted(self.procs, key=lambda p: p.rank):
            if proc.live:
                with self._cv:
                    if proc.terminated:
                        continue
                    proc.state = ProcState.RUNNING
                    self._current = proc
                    self._cv.notify_all()
                    while self._current is not None:
                        self._cv.wait()
        for proc in self.procs:
            proc.join(timeout=5.0)

    # ------------------------------------------------------------------
    # worker-thread side (token holder)
    # ------------------------------------------------------------------
    def await_grant(self, proc: Process) -> None:
        """Block the worker thread until the token is handed to ``proc``."""
        with self._cv:
            while self._current is not proc:
                self._cv.wait()
        proc.check_killed()

    def _release(self, proc: Process, new_state: ProcState) -> None:
        with self._cv:
            proc.state = new_state
            self._current = None
            self._cv.notify_all()

    def yield_blocked(self, proc: Process, wait: WaitInfo) -> None:
        """Worker: release the token in BLOCKED state; return on re-grant.

        The caller must re-check its wait condition in a loop -- a grant
        does not guarantee the condition holds (spurious wakeups are
        possible when the debugger resumes everything).
        """
        proc.wait_info = wait
        self._release(proc, ProcState.BLOCKED)
        self.await_grant(proc)
        proc.wait_info = None

    def yield_stopped(self, proc: Process) -> None:
        """Worker: park in STOPPED (debugger stop); return on re-grant."""
        self._release(proc, ProcState.STOPPED)
        self.await_grant(proc)

    def yield_ready(self, proc: Process) -> None:
        """Worker: voluntary preemption; return when re-picked."""
        self._release(proc, ProcState.READY)
        self.await_grant(proc)

    def maybe_preempt(self, proc: Process) -> None:
        """Worker: consult the policy at an instrumentation point."""
        others = [
            p for p in self.procs if p is not proc and p.state is ProcState.READY
        ]
        if others and self.policy.should_preempt(proc, others):
            self.yield_ready(proc)

    def unblock(self, proc: Process) -> None:
        """Any token holder: make a BLOCKED process READY again."""
        with self._cv:
            if proc.state is ProcState.BLOCKED:
                proc.state = ProcState.READY

    def proc_finished(
        self, proc: Process, final_state: ProcState, killed: bool = False
    ) -> None:
        """Worker: final release; the thread exits after this returns."""
        del killed  # recorded implicitly: killed procs have no result
        self._release(proc, final_state)
