"""Recording and forcing of nondeterministic communication choices.

The paper (Section 4.2): "the behavior of nondeterministic statements
(such as statements using the MPI_ANY_SOURCE wild card) can be controlled
by p2d2 with the information available in the program trace.  This
ensures that the replay has identical event causality with the original
program execution."

The only nondeterminism the runtime admits is (a) which message a
wildcard receive matches and (b) which request a ``waitany`` returns.
:class:`CommLog` records both during a traced run, keyed by
deterministic per-process indices (the receive's post order; the
waitany's call order).  During replay the same object *forces* the
recorded outcomes, which is the instant-replay-style extension the
paper's Section 6 calls for.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional, Union

from .errors import ReplayDivergenceError
from .message import Envelope


@dataclass
class CommLog:
    """Recorded matching decisions for one execution.

    ``recv_matches[(rank, post_index)]`` is the envelope the receive with
    that post order matched.  ``waitany_choices[(rank, call_index)]`` is
    the request index that completed first.
    """

    recv_matches: dict[tuple[int, int], Envelope] = field(default_factory=dict)
    waitany_choices: dict[tuple[int, int], int] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    def record_recv(self, rank: int, post_index: int, env: Envelope) -> None:
        """Record that receive ``post_index`` on ``rank`` matched ``env``."""
        self.recv_matches[(rank, post_index)] = env

    def record_waitany(self, rank: int, call_index: int, choice: int) -> None:
        self.waitany_choices[(rank, call_index)] = choice

    # ------------------------------------------------------------------
    # forcing (replay side)
    # ------------------------------------------------------------------
    def forced_recv(self, rank: int, post_index: int) -> Optional[Envelope]:
        """The envelope the replay must deliver to this receive, if known.

        Unknown indices return None (the replay ran past the recorded
        history -- legal when the original run deadlocked or stopped).
        """
        return self.recv_matches.get((rank, post_index))

    def forced_waitany(self, rank: int, call_index: int) -> Optional[int]:
        return self.waitany_choices.get((rank, call_index))

    def check_recv_signature(
        self, rank: int, post_index: int, source: int, tag: int
    ) -> None:
        """Fail fast when a replayed receive cannot possibly match its
        recorded envelope (the program diverged from the trace)."""
        env = self.recv_matches.get((rank, post_index))
        if env is None:
            return
        from .datatypes import ANY_SOURCE, ANY_TAG

        src_ok = source in (ANY_SOURCE, env.src)
        tag_ok = tag in (ANY_TAG, env.tag)
        if not (src_ok and tag_ok):
            raise ReplayDivergenceError(
                f"replay divergence at rank {rank} receive #{post_index}: "
                f"posted (source={source}, tag={tag}) cannot match "
                f"recorded envelope {env}"
            )

    # ------------------------------------------------------------------
    # counts & persistence
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.recv_matches) + len(self.waitany_choices)

    def to_jsonable(self) -> dict:
        """Plain-JSON form, stable across Python versions."""
        return {
            "recv_matches": [
                {
                    "rank": rank,
                    "post_index": idx,
                    "src": env.src,
                    "dst": env.dst,
                    "tag": env.tag,
                    "seq": env.seq,
                    "comm": env.comm_id,
                }
                for (rank, idx), env in sorted(self.recv_matches.items())
            ],
            "waitany_choices": [
                {"rank": rank, "call_index": idx, "choice": choice}
                for (rank, idx), choice in sorted(self.waitany_choices.items())
            ],
        }

    @classmethod
    def from_jsonable(cls, data: dict) -> "CommLog":
        log = cls()
        for rec in data.get("recv_matches", ()):
            log.recv_matches[(rec["rank"], rec["post_index"])] = Envelope(
                src=rec["src"], dst=rec["dst"], tag=rec["tag"],
                seq=rec["seq"], comm_id=rec.get("comm", 0),
            )
        for rec in data.get("waitany_choices", ()):
            log.waitany_choices[(rec["rank"], rec["call_index"])] = rec["choice"]
        return log

    def save(self, path: Union[str, Path]) -> None:
        Path(path).write_text(json.dumps(self.to_jsonable(), indent=1))

    @classmethod
    def load(cls, path: Union[str, Path]) -> "CommLog":
        return cls.from_jsonable(json.loads(Path(path).read_text()))
