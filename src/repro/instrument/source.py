"""Source-to-source instrumentation -- the AIMS method (§2.1).

AIMS inserts calls to monitoring routines into Fortran/C sources; the
Python analog is an AST transformation.  :func:`instrument_source`
rewrites a module's source so that selected constructs report to a
monitor object named ``__aims__`` bound at load time:

* ``function`` constructs get ``__aims_tok_N = __aims__.enter(cid)`` at
  the top of the body and ``__aims__.exit(__aims_tok_N)`` in a
  ``finally`` clause;
* ``loop`` constructs (``for``/``while``) are wrapped the same way.

The construct table maps the numeric ``cid`` back to (kind, name, source
location), reproducing AIMS's "record identifies the construct by giving
its program location".  The monitor (:class:`AimsMonitor`) generates an
execution marker per entry (the controlled-replay extension the paper
had to add to AIMS) and writes enter/exit trace records; its
:meth:`AimsMonitor.flush` is the on-demand flush p2d2 needed for
during-execution history.

The transformed source is real Python the user can inspect
(:func:`instrumented_text`) -- including the cost the paper discusses:
"the user must also cope with the existence of the set of transformed
source files".
"""

from __future__ import annotations

import ast
import inspect
import textwrap
import types
from dataclasses import dataclass, field
from typing import Callable, Iterable, Optional

from repro.mp.datatypes import SourceLocation
from repro.mp.runtime import Runtime
from repro.trace.events import EventKind
from repro.trace.recorder import TraceRecorder

#: Instrumentable construct kinds, from coarse to fine -- "an arbitrary
#: level of resolution ranging from function entry/exit to individual
#: assignment statements".
CONSTRUCT_KINDS = ("function", "loop", "call")


@dataclass(frozen=True)
class ConstructInfo:
    """A registered instrumented construct."""

    cid: int
    kind: str
    name: str
    location: SourceLocation


@dataclass
class ConstructTable:
    """cid -> construct metadata for one instrumented source set."""

    constructs: list[ConstructInfo] = field(default_factory=list)

    def register(self, kind: str, name: str, location: SourceLocation) -> int:
        cid = len(self.constructs)
        self.constructs.append(ConstructInfo(cid, kind, name, location))
        return cid

    def __getitem__(self, cid: int) -> ConstructInfo:
        return self.constructs[cid]

    def __len__(self) -> int:
        return len(self.constructs)

    def by_kind(self, kind: str) -> list[ConstructInfo]:
        return [c for c in self.constructs if c.kind == kind]


_ENTRY_KIND = {
    "function": EventKind.FUNC_ENTRY,
    "loop": EventKind.LOOP_ENTRY,
    "call": EventKind.STATEMENT,
}
_EXIT_KIND = {
    "function": EventKind.FUNC_EXIT,
    "loop": EventKind.LOOP_EXIT,
    "call": EventKind.STATEMENT,
}


class AimsMonitor:
    """The monitor object instrumented sources call into.

    Collection can be toggled on and off (Section 3's size-control knob)
    and flushed on demand (Section 2.1's during-execution extension).
    """

    def __init__(
        self,
        runtime: Runtime,
        recorder: Optional[TraceRecorder] = None,
        table: Optional[ConstructTable] = None,
        charge_virtual_cost: bool = True,
    ) -> None:
        self.runtime = runtime
        # NB: "recorder or ..." would misfire -- an empty TraceRecorder
        # has len() == 0 and is falsy.
        self.recorder = recorder if recorder is not None else TraceRecorder(runtime.nprocs)
        self.table = table if table is not None else ConstructTable()
        self.charge_virtual_cost = charge_virtual_cost
        self.enabled = True
        #: monitor invocations (enter calls)
        self.enter_count = 0

    # -- called from instrumented code ---------------------------------
    def enter(self, cid: int) -> tuple[int, int]:
        """Record construct entry; returns the token for ``exit``."""
        info = self.table[cid]
        proc = self.runtime.current_proc()
        self.enter_count += 1
        if self.charge_virtual_cost:
            proc.clock.advance(self.runtime.cost_model.call_overhead)
        proc.current_location = info.location
        marker = proc.bump_marker(info.location)
        if self.enabled:
            t = proc.clock.now
            self.recorder.record(
                proc.rank,
                _ENTRY_KIND[info.kind],
                t,
                t,
                marker,
                location=info.location,
                construct_id=cid,
            )
        return (cid, marker)

    def exit(self, token: tuple[int, int]) -> None:
        """Record construct exit for a token returned by ``enter``."""
        cid, marker = token
        info = self.table[cid]
        proc = self.runtime.current_proc()
        if self.enabled:
            t = proc.clock.now
            self.recorder.record(
                proc.rank,
                _EXIT_KIND[info.kind],
                t,
                t,
                marker,
                location=info.location,
                construct_id=cid,
            )

    def call_event(self, cid: int, value):
        """Record a call-site construct; returns the call's value.

        Instrumented call expressions are rewritten to
        ``__aims__.call_event(cid, <original call>)`` so the record is
        emitted right after the callee returns, with the site's location
        (statement-level resolution, the finest of §2.1's spectrum).
        """
        info = self.table[cid]
        proc = self.runtime.current_proc()
        self.enter_count += 1
        if self.charge_virtual_cost:
            proc.clock.advance(self.runtime.cost_model.call_overhead)
        proc.current_location = info.location
        marker = proc.bump_marker(info.location)
        if self.enabled:
            t = proc.clock.now
            self.recorder.record(
                proc.rank,
                EventKind.STATEMENT,
                t,
                t,
                marker,
                location=info.location,
                construct_id=cid,
            )
        return value

    # -- control ----------------------------------------------------------
    def set_enabled(self, on: bool) -> None:
        self.enabled = on

    def flush(self) -> int:
        """Flush trace data to the attached file on demand."""
        return self.recorder.flush()


class _AimsTransformer(ast.NodeTransformer):
    """Inserts ``__aims__`` enter/exit calls around selected constructs."""

    def __init__(
        self,
        table: ConstructTable,
        filename: str,
        constructs: frozenset[str],
    ) -> None:
        self.table = table
        self.filename = filename
        self.constructs = constructs

    # -- helpers ---------------------------------------------------------
    def _enter_exit(self, cid: int, body: list[ast.stmt]) -> list[ast.stmt]:
        tok = f"__aims_tok_{cid}"
        entry = ast.parse(f"{tok} = __aims__.enter({cid})").body[0]
        exit_call = ast.parse(f"__aims__.exit({tok})").body[0]
        wrapped = ast.Try(body=body, handlers=[], orelse=[], finalbody=[exit_call])
        return [entry, wrapped]

    @staticmethod
    def _split_docstring(body: list[ast.stmt]) -> tuple[list[ast.stmt], list[ast.stmt]]:
        if (
            body
            and isinstance(body[0], ast.Expr)
            and isinstance(body[0].value, ast.Constant)
            and isinstance(body[0].value.value, str)
        ):
            return [body[0]], body[1:]
        return [], body

    # -- functions ---------------------------------------------------------
    def _instrument_functiondef(self, node):
        self.generic_visit(node)
        if "function" not in self.constructs:
            return node
        cid = self.table.register(
            "function",
            node.name,
            SourceLocation(self.filename, node.lineno, node.name),
        )
        doc, rest = self._split_docstring(node.body)
        node.body = doc + self._enter_exit(cid, rest or [ast.Pass()])
        return node

    def visit_FunctionDef(self, node: ast.FunctionDef):
        return self._instrument_functiondef(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef):
        return self._instrument_functiondef(node)

    # -- loops ---------------------------------------------------------------
    def _instrument_loop(self, node, label: str):
        self.generic_visit(node)
        if "loop" not in self.constructs:
            return node
        cid = self.table.register(
            "loop",
            label,
            SourceLocation(self.filename, node.lineno, label),
        )
        return self._enter_exit(cid, [node])

    def visit_For(self, node: ast.For):
        return self._instrument_loop(node, f"for@{node.lineno}")

    def visit_While(self, node: ast.While):
        return self._instrument_loop(node, f"while@{node.lineno}")

    # -- call sites -------------------------------------------------------
    @staticmethod
    def _is_monitor_call(node: ast.Call) -> bool:
        """Never re-instrument the monitor's own calls."""
        func = node.func
        return (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id == "__aims__"
        )

    def visit_Call(self, node: ast.Call):
        self.generic_visit(node)
        if "call" not in self.constructs or self._is_monitor_call(node):
            return node
        name = ast.unparse(node.func)
        cid = self.table.register(
            "call",
            name,
            SourceLocation(self.filename, node.lineno, f"call:{name}"),
        )
        return ast.Call(
            func=ast.Attribute(
                value=ast.Name(id="__aims__", ctx=ast.Load()),
                attr="call_event",
                ctx=ast.Load(),
            ),
            args=[ast.Constant(value=cid), node],
            keywords=[],
        )


def instrument_source(
    source: str,
    filename: str = "<aims>",
    constructs: Iterable[str] = ("function",),
    table: Optional[ConstructTable] = None,
) -> tuple[ast.Module, ConstructTable]:
    """Transform ``source``; returns (instrumented AST, construct table).

    ``constructs`` selects the resolution: any subset of
    :data:`CONSTRUCT_KINDS` ("allows selective insertion of calls to
    performance monitoring routines").
    """
    chosen = frozenset(constructs)
    unknown = chosen - set(CONSTRUCT_KINDS)
    if unknown:
        raise ValueError(
            f"unknown construct kinds {sorted(unknown)}; "
            f"valid: {CONSTRUCT_KINDS}"
        )
    table = table if table is not None else ConstructTable()
    tree = ast.parse(textwrap.dedent(source), filename=filename)
    transformer = _AimsTransformer(table, filename, chosen)
    new_tree = transformer.visit(tree)
    ast.fix_missing_locations(new_tree)
    return new_tree, table


def instrumented_text(
    source: str,
    filename: str = "<aims>",
    constructs: Iterable[str] = ("function",),
) -> str:
    """The transformed source as text -- what the user would see on disk."""
    tree, _ = instrument_source(source, filename, constructs)
    return ast.unparse(tree)


def load_instrumented_module(
    source: str,
    monitor: AimsMonitor,
    module_name: str = "aims_instrumented",
    filename: str = "<aims>",
    constructs: Iterable[str] = ("function",),
    extra_globals: Optional[dict] = None,
) -> types.ModuleType:
    """Compile instrumented ``source`` into a module with ``__aims__`` bound.

    The monitor's construct table is extended in place, so one monitor
    can serve several instrumented modules.
    """
    tree, _ = instrument_source(source, filename, constructs, table=monitor.table)
    code = compile(tree, filename, "exec")
    module = types.ModuleType(module_name)
    module.__dict__["__aims__"] = monitor
    if extra_globals:
        module.__dict__.update(extra_globals)
    exec(code, module.__dict__)
    return module


def instrument_app_function(
    fn: Callable,
    monitor: AimsMonitor,
    constructs: Iterable[str] = ("function",),
) -> Callable:
    """Instrument a single Python function through its source.

    The function is re-parsed, transformed, and re-bound over its
    original globals plus ``__aims__``; closures are not supported (the
    source transform cannot re-create a closure environment).
    """
    if fn.__closure__:
        raise ValueError(
            f"cannot source-instrument closure {fn.__qualname__}; "
            "instrument the enclosing module instead"
        )
    source = textwrap.dedent(inspect.getsource(fn))
    # Drop decorator lines: the transform must see a bare def.
    lines = source.splitlines()
    start = next(i for i, ln in enumerate(lines) if ln.lstrip().startswith("def "))
    source = "\n".join(lines[start:])
    tree, _ = instrument_source(
        source, fn.__code__.co_filename, constructs, table=monitor.table
    )
    code = compile(tree, fn.__code__.co_filename, "exec")
    namespace = dict(fn.__globals__)
    namespace["__aims__"] = monitor
    exec(code, namespace)
    return namespace[fn.__name__]
