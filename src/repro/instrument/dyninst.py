"""Debug-time (Dyninst-style) function patching -- the paper's §6 idea.

    "There is an additional instrumentation strategy which remains to be
    explored.  The Paradyn system, and in particular its Dyninst API,
    would permit debug-time instrumentation of the source code.  If
    traced runs are always initiated by the debugger, this would free
    the user from any instrumentation concerns whatsoever."

:class:`DynPatcher` rewrites *function objects in their module* at debug
time: each selected function is replaced by a wrapper whose prologue
fires the UserMonitor (marker bump + recording) and then calls the
original.  No source transform, no compile-flag change, no profile hook
-- and per-call overhead far below the profile-hook method, because only
the patched functions pay anything (the closest Python analog to
Dyninst's inline trampolines).

Patches are reversible (:meth:`unpatch_all`), matching Paradyn's dynamic
insertion *and removal* of instrumentation.

Caveat (inherent to binary patching too): call sites that captured the
original function object before patching -- ``from mod import fn``
aliases, default arguments, closures -- keep calling the unpatched code.
Module-qualified calls and self-recursion through the module global are
intercepted.
"""

from __future__ import annotations

import functools
import types
from dataclasses import dataclass
from typing import Callable, Optional

from repro.mp.datatypes import SourceLocation
from repro.mp.runtime import Runtime
from repro.trace.events import EventKind
from repro.trace.recorder import TraceRecorder


@dataclass
class PatchRecord:
    """Bookkeeping for one installed patch."""

    module: types.ModuleType
    name: str
    original: Callable
    wrapper: Callable
    calls: int = 0


class DynPatcher:
    """Debug-time instrumentation by module-global function replacement."""

    def __init__(
        self,
        runtime: Runtime,
        recorder: Optional[TraceRecorder] = None,
        charge_virtual_cost: bool = True,
        record_exits: bool = True,
    ) -> None:
        self.runtime = runtime
        self.recorder = recorder
        self.charge_virtual_cost = charge_virtual_cost
        self.record_exits = record_exits
        self._patches: list[PatchRecord] = []
        #: total instrumented entries across all patches
        self.entry_count = 0

    # ------------------------------------------------------------------
    def patch_function(self, module: types.ModuleType, name: str) -> PatchRecord:
        """Replace ``module.name`` with an instrumented wrapper."""
        original = getattr(module, name)
        if not callable(original):
            raise TypeError(f"{module.__name__}.{name} is not callable")
        code = getattr(original, "__code__", None)
        loc = (
            SourceLocation(code.co_filename, code.co_firstlineno, name)
            if code is not None
            else SourceLocation.unknown()
        )
        record = PatchRecord(module=module, name=name, original=original, wrapper=None)  # type: ignore[arg-type]

        @functools.wraps(original)
        def wrapper(*args, **kwargs):
            proc = self.runtime.current_proc()
            record.calls += 1
            self.entry_count += 1
            if self.charge_virtual_cost:
                proc.clock.advance(self.runtime.cost_model.call_overhead)
            proc.current_location = loc
            marker = proc.bump_marker(loc, args[:2])
            if self.recorder is not None:
                t = proc.clock.now
                self.recorder.record(
                    proc.rank, EventKind.FUNC_ENTRY, t, t, marker, location=loc
                )
            try:
                return original(*args, **kwargs)
            finally:
                if self.recorder is not None and self.record_exits:
                    t = proc.clock.now
                    self.recorder.record(
                        proc.rank, EventKind.FUNC_EXIT, t, t, marker, location=loc
                    )

        record.wrapper = wrapper
        setattr(module, name, wrapper)
        self._patches.append(record)
        return record

    def patch_module(
        self, module: types.ModuleType, only: Optional[set[str]] = None
    ) -> list[PatchRecord]:
        """Patch every plain function defined in ``module`` (or a subset)."""
        out = []
        for name in sorted(vars(module)):
            obj = vars(module)[name]
            if not isinstance(obj, types.FunctionType):
                continue
            if obj.__module__ != module.__name__:
                continue
            if only is not None and name not in only:
                continue
            out.append(self.patch_function(module, name))
        return out

    # ------------------------------------------------------------------
    def unpatch_all(self) -> int:
        """Restore every patched function; returns how many were removed.

        Only restores patches whose slot still holds our wrapper (a
        second patcher layered on top is left intact).
        """
        restored = 0
        for rec in reversed(self._patches):
            if getattr(rec.module, rec.name, None) is rec.wrapper:
                setattr(rec.module, rec.name, rec.original)
                restored += 1
        self._patches.clear()
        return restored

    @property
    def patch_count(self) -> int:
        return len(self._patches)

    def __enter__(self) -> "DynPatcher":
        return self

    def __exit__(self, *exc: object) -> None:
        self.unpatch_all()
