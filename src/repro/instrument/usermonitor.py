"""The ``UserMonitor`` of the paper's Section 2.2.

    "In its current implementation, the function increments a single
    global counter, records the address it was called from together with
    the first two arguments passed to it, and tests to see if the global
    counter has reached a threshold value which can be set by the
    debugger."

The counter and threshold test live on the substrate
(:meth:`repro.mp.process.Process.bump_marker` / ``StopState``) because
the runtime must be able to park a process there; this class adds the
*recording* half -- a bounded per-process history of (marker, call site,
first two arguments) entries -- plus the debugger-facing threshold API.

Every marker generation in the runtime flows through the installed hook,
whichever instrumentation layer produced it (function entries from
uinst/AIMS, communication constructs from the wrapper library), so the
history is a complete ledger of instrumentation points.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Mapping, Optional

from repro.mp.datatypes import SourceLocation
from repro.mp.process import Process
from repro.mp.runtime import Runtime
from repro.trace.markers import MarkerVector


@dataclass(frozen=True)
class MonitorEntry:
    """One recorded instrumentation point."""

    marker: int
    location: SourceLocation
    #: reprs of the first two arguments at the call site ("records ...
    #: the first two arguments passed to it"), empty for non-call points
    args: tuple[str, ...]


class UserMonitor:
    """Per-runtime monitor: marker history + threshold control.

    Parameters
    ----------
    runtime:
        The runtime to attach to (hooks are installed immediately; the
        runtime must already be launched or launch afterwards -- hooks
        attach per-process, so attach after ``launch``).
    history_limit:
        Max entries retained per process (ring buffer).
    """

    def __init__(self, runtime: Runtime, history_limit: int = 4096) -> None:
        if not runtime.procs:
            raise RuntimeError(
                "attach UserMonitor after Runtime.launch() so per-process "
                "hooks can be installed"
            )
        self.runtime = runtime
        self.history_limit = history_limit
        self._history: dict[int, deque[MonitorEntry]] = {
            proc.rank: deque(maxlen=history_limit) for proc in runtime.procs
        }
        #: live observers of the marker stream (rank, entry) -- the
        #: monitor's leg of the streaming trace pipeline
        self._observers: list[Callable[[int, MonitorEntry], None]] = []
        #: total hook invocations (the Table 1 "number of calls" column)
        self.total_calls = 0
        for proc in runtime.procs:
            proc.marker_hooks.append(self._hook)

    # ------------------------------------------------------------------
    def _hook(self, proc: Process, location: SourceLocation, args: tuple) -> None:
        self.total_calls += 1
        arg_reprs = tuple(repr(a)[:80] for a in args[:2])
        entry = MonitorEntry(
            marker=proc.marker, location=location, args=arg_reprs
        )
        self._history[proc.rank].append(entry)
        for observer in self._observers:
            observer(proc.rank, entry)

    # ------------------------------------------------------------------
    # live marker stream (streaming-pipeline surface)
    # ------------------------------------------------------------------
    def subscribe(
        self, fn: Callable[[int, MonitorEntry], None]
    ) -> Callable[[int, MonitorEntry], None]:
        """Publish every future monitor entry to ``fn(rank, entry)``.

        This is the monitor-side analog of attaching a sink to the trace
        bus: watchdogs and liveness analyses observe instrumentation
        points as they fire instead of polling :meth:`history`.
        """
        self._observers.append(fn)
        return fn

    def unsubscribe(self, fn: Callable[[int, MonitorEntry], None]) -> None:
        self._observers.remove(fn)

    def detach(self) -> None:
        """Remove the hooks (stop recording; counters keep advancing)."""
        for proc in self.runtime.procs:
            try:
                proc.marker_hooks.remove(self._hook)
            except ValueError:
                pass

    # ------------------------------------------------------------------
    # history access
    # ------------------------------------------------------------------
    def history(self, rank: int) -> tuple[MonitorEntry, ...]:
        return tuple(self._history[rank])

    def last_entry(self, rank: int) -> Optional[MonitorEntry]:
        hist = self._history[rank]
        return hist[-1] if hist else None

    def entry_at_marker(self, rank: int, marker: int) -> Optional[MonitorEntry]:
        for entry in reversed(self._history[rank]):
            if entry.marker == marker:
                return entry
            if entry.marker < marker:
                break
        return None

    # ------------------------------------------------------------------
    # threshold control ("a threshold value which can be set by the
    # debugger")
    # ------------------------------------------------------------------
    def set_threshold(self, rank: int, marker: Optional[int]) -> None:
        self.runtime.set_threshold(rank, marker)

    def set_thresholds(self, vector: "MarkerVector | Mapping[int, int]") -> None:
        items = vector.as_dict() if isinstance(vector, MarkerVector) else dict(vector)
        self.runtime.set_thresholds(items)

    def clear_thresholds(self) -> None:
        for proc in self.runtime.procs:
            proc.set_threshold(None)

    def marker_vector(self) -> MarkerVector:
        """Current counters of every process as a MarkerVector."""
        return MarkerVector(self.runtime.markers())
