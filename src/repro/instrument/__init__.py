"""``repro.instrument`` -- the paper's three trace-acquisition methods.

* :mod:`~repro.instrument.source` -- AIMS-style source-to-source
  transformation (Section 2.1): arbitrary construct resolution, visible
  transformed sources, on-demand flush.
* :mod:`~repro.instrument.uinst` -- compiler-inserted function-entry
  instrumentation (Section 2.2): automatic per-function UserMonitor
  calls via the per-thread profile hook, or a manual decorator.
* :mod:`~repro.instrument.wrappers` -- instrumented wrappers over the
  message-passing library through the PMPI interface (Section 2.3):
  automatic communication history, highly portable.

:class:`UserMonitor` is the shared monitor core: counter history plus
the debugger-settable thresholds that drive controlled replay.
"""

from .dyninst import DynPatcher, PatchRecord
from .overhead import OverheadRow, format_table, measure_overhead, timed_run
from .source import (
    CONSTRUCT_KINDS,
    AimsMonitor,
    ConstructInfo,
    ConstructTable,
    instrument_app_function,
    instrument_source,
    instrumented_text,
    load_instrumented_module,
)
from .uinst import Uinst, instrument_function
from .usermonitor import MonitorEntry, UserMonitor
from .wrappers import DEFAULT_OPS, WrapperLibrary, lifecycle_wrapper

__all__ = [
    "AimsMonitor",
    "CONSTRUCT_KINDS",
    "ConstructInfo",
    "ConstructTable",
    "DEFAULT_OPS",
    "DynPatcher",
    "PatchRecord",
    "MonitorEntry",
    "OverheadRow",
    "Uinst",
    "UserMonitor",
    "WrapperLibrary",
    "format_table",
    "instrument_app_function",
    "instrument_function",
    "instrument_source",
    "instrumented_text",
    "lifecycle_wrapper",
    "load_instrumented_module",
    "measure_overhead",
    "timed_run",
]
