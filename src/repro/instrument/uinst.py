"""``uinst`` -- compiler-inserted function-entry instrumentation (§2.2).

The paper rewrites assembler so every user function's prologue calls
``UserMonitor`` (via ``gcc -p``'s ``mcount`` slot and the ``uinst``
rewriter).  Python's equivalent interposition point for "a call at the
end of the prologue of every user function" is the per-thread profile
hook: :class:`Uinst` installs one in each simulated process thread and
fires the monitor for every entry to a *registered* user function
(filtering mirrors uinst only rewriting the user's object files, not the
runtime's).

Two usage modes, matching the paper's spectrum of user effort:

* **automatic** -- register modules / functions / a filename predicate,
  pass :meth:`target_wrapper` to ``Runtime.launch``; zero source changes
  (the "-g should do this" ideal of Section 6);
* **manual** -- decorate chosen functions with
  :func:`instrument_function`; no profile hook, minimal overhead,
  explicit control.

On every instrumented entry the monitor records the call site and the
first two arguments (via ``UserMonitor``'s hook), increments the
execution-marker counter, tests the debugger threshold, and (optionally)
emits ``FUNC_ENTRY``/``FUNC_EXIT`` trace records for the dynamic call
graph.
"""

from __future__ import annotations

import functools
import inspect
import sys
import types
from typing import Callable, Iterable, Optional

from repro.mp.comm import Comm
from repro.mp.datatypes import SourceLocation
from repro.mp.process import Process
from repro.mp.runtime import Runtime, Target
from repro.trace.events import EventKind
from repro.trace.recorder import TraceRecorder


def _functions_of_module(module: types.ModuleType) -> Iterable[types.FunctionType]:
    """All plain functions and methods defined in ``module`` itself."""
    mod_file = getattr(module, "__file__", None)
    for _, obj in inspect.getmembers(module):
        if isinstance(obj, types.FunctionType) and obj.__code__.co_filename == mod_file:
            yield obj
        elif inspect.isclass(obj) and obj.__module__ == module.__name__:
            for _, meth in inspect.getmembers(obj, inspect.isfunction):
                if meth.__code__.co_filename == mod_file:
                    yield meth


class Uinst:
    """Automatic function-entry instrumentation for simulated programs.

    Parameters
    ----------
    runtime:
        The runtime whose processes will carry the profile hook.
    recorder:
        Optional trace destination for FUNC_ENTRY / FUNC_EXIT records.
    charge_virtual_cost:
        Charge the cost model's ``call_overhead`` per instrumented entry,
        so instrumented runs are visibly dilated in virtual time just as
        the paper's Table 1 shows them dilated in wall time.
    record_exits:
        Also emit FUNC_EXIT records (needed by the dynamic call graph;
        off for minimal traces).
    """

    def __init__(
        self,
        runtime: Runtime,
        recorder: Optional[TraceRecorder] = None,
        charge_virtual_cost: bool = True,
        record_exits: bool = True,
    ) -> None:
        self.runtime = runtime
        self.recorder = recorder
        self.charge_virtual_cost = charge_virtual_cost
        self.record_exits = record_exits
        self._codes: set[types.CodeType] = set()
        #: entries fired (Table 1 "number of calls")
        self.entry_count = 0

    # ------------------------------------------------------------------
    # registration ("which object files did uinst rewrite")
    # ------------------------------------------------------------------
    def register_function(self, fn: Callable) -> None:
        """Instrument one function (by its code object)."""
        code = getattr(fn, "__code__", None)
        if code is None:
            raise TypeError(f"{fn!r} has no code object to instrument")
        self._codes.add(code)

    def register_module(self, module: types.ModuleType) -> None:
        """Instrument every function defined in ``module``."""
        for fn in _functions_of_module(module):
            self._codes.add(fn.__code__)

    def register_codes(self, codes: Iterable[types.CodeType]) -> None:
        self._codes.update(codes)

    @property
    def instrumented_count(self) -> int:
        return len(self._codes)

    # ------------------------------------------------------------------
    # the per-thread profile hook
    # ------------------------------------------------------------------
    def _make_profile(self, proc: Process):
        codes = self._codes
        recorder = self.recorder
        cost = self.runtime.cost_model

        # Pairing stack for FUNC_EXIT records: (code, marker, t_entry).
        stack: list[tuple[types.CodeType, int, float]] = []

        def profile(frame, event: str, arg):
            code = frame.f_code
            if code not in codes:
                return
            if event == "call":
                loc = SourceLocation(
                    filename=code.co_filename,
                    lineno=frame.f_lineno,
                    function=code.co_name,
                )
                nargs = min(2, code.co_argcount)
                args = tuple(
                    frame.f_locals.get(code.co_varnames[i]) for i in range(nargs)
                )
                self.entry_count += 1
                if self.charge_virtual_cost:
                    proc.clock.advance(cost.call_overhead)
                proc.current_location = loc
                marker = proc.bump_marker(loc, args)
                t = proc.clock.now
                if recorder is not None:
                    recorder.record(
                        proc.rank, EventKind.FUNC_ENTRY, t, t, marker,
                        location=loc,
                    )
                stack.append((code, marker, t))
            elif event == "return":
                if stack and stack[-1][0] is code:
                    _, marker, _ = stack.pop()
                    if recorder is not None and self.record_exits:
                        t = proc.clock.now
                        loc = SourceLocation(
                            filename=code.co_filename,
                            lineno=code.co_firstlineno,
                            function=code.co_name,
                        )
                        recorder.record(
                            proc.rank, EventKind.FUNC_EXIT, t, t, marker,
                            location=loc,
                        )

        return profile

    # ------------------------------------------------------------------
    def target_wrapper(self):
        """A launch-time wrapper installing the profile hook per thread.

        Usage::

            uinst = Uinst(rt, recorder)
            uinst.register_module(my_app)
            rt.launch(prog, target_wrappers=[uinst.target_wrapper()])
        """

        def wrap(target: Target, rank: int) -> Target:
            def wrapped(comm: Comm):
                proc = comm.proc
                sys.setprofile(self._make_profile(proc))
                try:
                    return target(comm)
                finally:
                    sys.setprofile(None)

            return wrapped

        return wrap


def instrument_function(
    runtime: Runtime,
    recorder: Optional[TraceRecorder] = None,
    charge_virtual_cost: bool = True,
):
    """Manual-mode decorator: explicit UserMonitor call in the prologue.

    The decorated function fires the monitor exactly like a uinst entry
    but without any profile hook -- the "instrumentation can be done
    manually" option of Section 2.1, at near-zero overhead for
    uninstrumented code.
    """

    def decorate(fn: Callable) -> Callable:
        code = fn.__code__
        loc = SourceLocation(code.co_filename, code.co_firstlineno, fn.__name__)

        @functools.wraps(fn)
        def wrapped(*args, **kwargs):
            proc = runtime.current_proc()
            if charge_virtual_cost:
                proc.clock.advance(runtime.cost_model.call_overhead)
            proc.current_location = loc
            marker = proc.bump_marker(loc, args[:2])
            if recorder is not None:
                t = proc.clock.now
                recorder.record(
                    proc.rank, EventKind.FUNC_ENTRY, t, t, marker, location=loc
                )
            try:
                return fn(*args, **kwargs)
            finally:
                if recorder is not None:
                    t = proc.clock.now
                    recorder.record(
                        proc.rank, EventKind.FUNC_EXIT, t, t, marker, location=loc
                    )

        return wrapped

    return decorate
