"""Instrumentation-overhead measurement (Table 1 support).

The paper's Table 1 reports wall-clock times of the same program with and
without UserMonitor instrumentation: negligible overhead for a
coarse-grained program (Strassen matrix multiply, 136 calls) and a small
integer multiple for a call-dominated one (recursive Fibonacci, ~10^7
calls).  This module provides the harness that produces those rows for
arbitrary simulated programs.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Optional

from repro.mp.runtime import ProgramSpec, Runtime

from .dyninst import DynPatcher
from .uinst import Uinst


@dataclass
class OverheadRow:
    """One Table-1-style row."""

    label: str
    param: str
    n_calls: int
    time_uninstrumented: float
    time_instrumented: float

    @property
    def ratio(self) -> float:
        if self.time_uninstrumented == 0:
            return float("inf")
        return self.time_instrumented / self.time_uninstrumented

    @property
    def overhead_per_call_us(self) -> float:
        """Instrumentation cost per monitor call, in microseconds."""
        if self.n_calls == 0:
            return 0.0
        return 1e6 * (self.time_instrumented - self.time_uninstrumented) / self.n_calls

    def as_tuple(self) -> tuple:
        return (
            self.label,
            self.param,
            self.n_calls,
            round(self.time_uninstrumented, 4),
            round(self.time_instrumented, 4),
            round(self.ratio, 3),
        )


def timed_run(
    program: ProgramSpec,
    nprocs: int,
    *,
    instrument_modules: Optional[list] = None,
    instrument_functions: Optional[list[Callable]] = None,
    repeats: int = 1,
    method: str = "uinst",
) -> tuple[float, int]:
    """Run ``program`` and return (best wall seconds, monitor calls).

    With neither ``instrument_modules`` nor ``instrument_functions``, the
    run is uninstrumented (0 monitor calls).  ``method`` picks the
    instrumentation mechanism: ``"uinst"`` (the §2.2 profile hook) or
    ``"patch"`` (the §6 Dyninst-style function patching, whose per-call
    cost is much lower because unselected calls pay nothing).
    Best-of-``repeats`` timing follows the timeit discipline: the
    minimum is the least noisy estimator of the true cost.
    """
    if method not in ("uinst", "patch"):
        raise ValueError(f"unknown instrumentation method {method!r}")
    best = float("inf")
    calls = 0
    for _ in range(repeats):
        rt = Runtime(nprocs)
        wrappers = []
        uinst = None
        patcher = None
        if instrument_modules or instrument_functions:
            if method == "uinst":
                uinst = Uinst(rt, recorder=None, charge_virtual_cost=False)
                for module in instrument_modules or ():
                    uinst.register_module(module)
                for fn in instrument_functions or ():
                    uinst.register_function(fn)
                wrappers.append(uinst.target_wrapper())
            else:
                patcher = DynPatcher(rt, recorder=None, charge_virtual_cost=False)
                for module in instrument_modules or ():
                    patcher.patch_module(module)
                import sys

                for fn in instrument_functions or ():
                    patcher.patch_function(sys.modules[fn.__module__], fn.__name__)
        try:
            t0 = time.perf_counter()
            rt.run(program, target_wrappers=wrappers)
            elapsed = time.perf_counter() - t0
        finally:
            if patcher is not None:
                calls = patcher.entry_count
                patcher.unpatch_all()
        rt.shutdown()
        best = min(best, elapsed)
        if uinst is not None:
            calls = uinst.entry_count
    return best, calls


def measure_overhead(
    label: str,
    param: str,
    program: ProgramSpec,
    nprocs: int,
    *,
    instrument_modules: Optional[list] = None,
    instrument_functions: Optional[list[Callable]] = None,
    repeats: int = 1,
    method: str = "uinst",
) -> OverheadRow:
    """Produce one Table-1 row: run uninstrumented, then instrumented."""
    t_plain, _ = timed_run(program, nprocs, repeats=repeats)
    t_instr, calls = timed_run(
        program,
        nprocs,
        instrument_modules=instrument_modules,
        instrument_functions=instrument_functions,
        repeats=repeats,
        method=method,
    )
    return OverheadRow(
        label=label,
        param=param,
        n_calls=calls,
        time_uninstrumented=t_plain,
        time_instrumented=t_instr,
    )


def format_table(rows: list[OverheadRow]) -> str:
    """Render rows in the layout of the paper's Table 1."""
    headers = ("workload", "input", "calls", "t_uninstr(s)", "t_instr(s)", "ratio")
    cells = [headers] + [tuple(str(v) for v in r.as_tuple()) for r in rows]
    widths = [max(len(row[i]) for row in cells) for i in range(len(headers))]
    lines = []
    for row in cells:
        lines.append("  ".join(str(v).rjust(w) for v, w in zip(row, widths)))
    return "\n".join(lines)
