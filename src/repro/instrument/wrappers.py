"""Instrumented wrappers on message-passing library functions (§2.3).

    "Using this technique we supply an instrumented MPI library that acts
    as a front-end to the PMPI_ functions.  For example, we supply an
    MPI_Send that generates history information and then calls PMPI_Send.
    When the user links with the debugging version of the MPI library,
    the history collection is automatic."

The wrapper library publishes through the recorder's
:class:`~repro.trace.sinks.TraceBus`: every record a wrapper emits is
delivered once to all attached sinks (in-memory history, trace file,
live analyses), so "the history collection is automatic" extends to any
number of streaming consumers.

:class:`WrapperLibrary` is that debugging library: installing it on a
runtime's PMPI layer makes every communication call

1. generate the next execution marker (and evaluate stop conditions --
   this is where stopline thresholds park a process, *before* the
   construct executes);
2. run the real (``pmpi_``) implementation;
3. append a trace record with the construct's endpoints, tag, payload
   size, sequence number, and virtual start/end times.

Receive-completing operations (``wait``/``test``/``waitany`` on a
receive request) are normalized to ``RECV`` records so the downstream
matching analysis sees one uniform receive kind.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.mp.comm import Comm, OpDetail
from repro.mp.locutil import caller_location
from repro.mp.pmpi import INTERPOSABLE_OPS
from repro.mp.runtime import Runtime, Target
from repro.trace.events import OP_TO_KIND, EventKind
from repro.trace.recorder import TraceRecorder

#: Ops whose records are worth keeping by default.  ``waitall`` is pure
#: plumbing around per-request waits and is recorded only in verbose mode.
DEFAULT_OPS: tuple[str, ...] = tuple(
    op for op in INTERPOSABLE_OPS if op not in ("waitall",)
)


class WrapperLibrary:
    """The instrumented communication library.

    Parameters
    ----------
    runtime:
        Target runtime (wrappers are installed on its PMPI layer).
    recorder:
        Trace destination; created with ``runtime.nprocs`` if omitted.
    ops:
        Which operations to wrap (default: everything but ``waitall``).
    bump_markers:
        Generate an execution marker per wrapped call (on by default;
        turning it off yields a record-only library for pure monitoring).
    """

    def __init__(
        self,
        runtime: Runtime,
        recorder: Optional[TraceRecorder] = None,
        ops: Optional[Iterable[str]] = None,
        bump_markers: bool = True,
    ) -> None:
        self.runtime = runtime
        # NB: an empty TraceRecorder is falsy (len 0); test identity.
        self.recorder = recorder if recorder is not None else TraceRecorder(runtime.nprocs)
        self.ops = tuple(ops) if ops is not None else DEFAULT_OPS
        self.bump_markers = bump_markers
        self._installed: list[tuple[str, object]] = []
        self._install()

    @property
    def bus(self):
        """The event bus this library publishes records through --
        attach sinks here to observe the wrapped calls live."""
        return self.recorder.bus

    # ------------------------------------------------------------------
    def _install(self) -> None:
        for op in self.ops:
            wrapper = self._make_wrapper(op)
            self.runtime.pmpi_layer.install(op, wrapper)
            self._installed.append((op, wrapper))

    def uninstall(self) -> None:
        """Unlink the debugging library."""
        for op, wrapper in self._installed:
            self.runtime.pmpi_layer.uninstall(op, wrapper)
        self._installed.clear()

    # ------------------------------------------------------------------
    def _make_wrapper(self, op: str):
        base_kind = OP_TO_KIND.get(op)

        def wrapper(next_call, comm: Comm, *args, **kwargs):
            proc = comm.proc
            loc = caller_location()
            if self.bump_markers:
                # Marker first: a threshold hit parks the process HERE,
                # before the construct runs -- "the user can have the
                # execution stop before the problem occurs" (§4.1).
                proc.current_location = loc
                marker = proc.bump_marker(loc)
            else:
                marker = proc.marker
            result = next_call(comm, *args, **kwargs)
            detail = comm.last_op
            if detail is not None:
                self._record(comm, op, base_kind, marker, detail, args)
            return result

        return wrapper

    def _record(
        self,
        comm: Comm,
        op: str,
        base_kind: Optional[EventKind],
        marker: int,
        detail: OpDetail,
        args: tuple = (),
    ) -> None:
        kind = base_kind or EventKind.COMPUTE
        extra = dict(detail.extra)
        if op in ("recv", "irecv", "probe", "iprobe"):
            # Preserve the *posted* pattern (possibly wildcards) next to
            # the resolved endpoints -- the race detector needs to know a
            # receive could have matched something else.
            from repro.mp.datatypes import ANY_SOURCE, ANY_TAG

            extra["posted_src"] = args[0] if len(args) >= 1 else ANY_SOURCE
            extra["posted_tag"] = args[1] if len(args) >= 2 else ANY_TAG
        # Normalize receive completions arriving via wait/test/waitany:
        # a completed receive is a RECV record wherever it completed.
        if op in ("wait", "test", "waitany") and detail.dst == comm.rank and detail.seq >= 0:
            extra["via"] = op
            kind = EventKind.RECV
        elif op == "test" and not extra.get("flag", True):
            return  # unsuccessful polls are noise, not history
        elif op == "iprobe" and not extra.get("flag", True):
            return
        self.recorder.record(
            comm.rank,
            kind,
            detail.t0,
            detail.t1,
            marker,
            location=detail.location,
            src=detail.src,
            dst=detail.dst,
            tag=detail.tag,
            size=detail.size,
            seq=detail.seq,
            peer_location=detail.peer_location,
            peer_marker=detail.peer_marker,
            peer_time=detail.peer_send_time,
            extra=extra,
        )


def lifecycle_wrapper(recorder: TraceRecorder):
    """A launch-time target wrapper adding PROC_START / PROC_EXIT records.

    Usage: ``runtime.launch(prog, target_wrappers=[lifecycle_wrapper(rec)])``.
    """

    def wrap(target: Target, rank: int) -> Target:
        def wrapped(comm: Comm):
            proc = comm.proc
            recorder.record(
                rank,
                EventKind.PROC_START,
                proc.clock.now,
                proc.clock.now,
                proc.marker,
            )
            try:
                return target(comm)
            finally:
                recorder.record(
                    rank,
                    EventKind.PROC_EXIT,
                    proc.clock.now,
                    proc.clock.now,
                    proc.marker,
                )

        return wrapped

    return wrap
