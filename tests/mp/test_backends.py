"""Backend registry, factory resolution, and capability gating."""

from __future__ import annotations

import pytest

from repro.apps import ring_program
from repro.mp import (
    BACKEND_ENV_VAR,
    CooperativeBackend,
    MPError,
    MprocBackend,
    Runtime,
    Scheduler,
    SimtimeBackend,
    ThreadedBackend,
    available_backends,
    create_runtime,
    default_backend,
    make_backend,
    run_program,
)


class TestRegistry:
    def test_builtins_registered(self):
        assert {"threaded", "simtime", "mproc"} <= set(available_backends())

    def test_unknown_name_lists_choices(self):
        with pytest.raises(MPError, match="unknown execution backend 'nope'"):
            make_backend("nope")
        with pytest.raises(MPError, match="threaded"):
            make_backend("nope")

    @pytest.mark.parametrize(
        "alias,cls",
        [
            ("thread", ThreadedBackend),
            ("threads", ThreadedBackend),
            ("sim", SimtimeBackend),
            ("simulated", SimtimeBackend),
            ("mp", MprocBackend),
            ("multiprocessing", MprocBackend),
        ],
    )
    def test_aliases(self, alias, cls):
        assert isinstance(make_backend(alias), cls)

    def test_instance_passthrough(self):
        be = SimtimeBackend()
        assert make_backend(be) is be

    def test_env_default(self, monkeypatch):
        monkeypatch.delenv(BACKEND_ENV_VAR, raising=False)
        assert default_backend() == "threaded"
        monkeypatch.setenv(BACKEND_ENV_VAR, "simtime")
        assert default_backend() == "simtime"
        rt = Runtime(2)
        assert isinstance(rt.backend, SimtimeBackend)

    def test_scheduler_alias_is_threaded_backend(self):
        # Historical name: the pre-backend Scheduler was the threaded engine.
        assert Scheduler is ThreadedBackend
        assert issubclass(Scheduler, CooperativeBackend)


class TestRuntimeIntegration:
    @pytest.mark.parametrize("backend", ["threaded", "simtime"])
    def test_run_program_backend_kwarg(self, backend):
        rt = run_program(ring_program(rounds=1), nprocs=3, backend=backend)
        assert rt.procs[0].result == 1.0 * sum(range(3))
        assert rt.backend.name == backend

    def test_create_runtime(self):
        rt = create_runtime("simtime", 2)
        try:
            assert isinstance(rt.backend, SimtimeBackend)
            assert rt.backend.runtime is rt
        finally:
            rt.shutdown()

    def test_unknown_backend_at_runtime_construction(self):
        with pytest.raises(MPError, match="unknown execution backend"):
            Runtime(2, backend="bogus")

    def test_backend_rebind_rejected(self):
        rt = create_runtime("simtime", 2)
        try:
            with pytest.raises(MPError, match="already bound"):
                Runtime(2, backend=rt.backend)
        finally:
            rt.shutdown()

    def test_scheduler_property_is_backend(self):
        rt = Runtime(2, backend="simtime")
        try:
            assert rt.scheduler is rt.backend
        finally:
            rt.shutdown()


class TestCapabilityGating:
    def test_mproc_rejects_debugger_surface(self):
        rt = Runtime(2, backend="mproc")
        try:
            with pytest.raises(MPError, match="does not support the debugger"):
                rt.set_thresholds({0: 1})
        finally:
            rt.shutdown()

    def test_mproc_rejects_target_wrappers(self):
        rt = Runtime(2, backend="mproc")
        try:
            with pytest.raises(MPError, match="target_wrappers"):
                rt.launch(ring_program(), target_wrappers=[lambda t, r: t])
        finally:
            rt.shutdown()

    def test_mproc_rejects_stop_on_entry(self):
        rt = Runtime(2, backend="mproc")
        try:
            with pytest.raises(MPError, match="debugger"):
                rt.launch(ring_program(), stop_on_entry=True)
        finally:
            rt.shutdown()

    def test_cooperative_backends_support_debugger(self):
        for name in ("threaded", "simtime"):
            be = make_backend(name)
            assert be.supports_debugger and be.supports_wrappers
            assert be.deterministic
        assert not MprocBackend().deterministic
