"""Scheduling policies, determinism, and debugger-level process control."""

from __future__ import annotations

import pytest

from repro import mp


def trace_of_order(policy, seed=0):
    """Run a 3-rank program and return the grant order of ranks."""
    order: list[int] = []

    def prog(comm):
        for _ in range(3):
            comm.compute(1.0)

    rt = mp.Runtime(3, policy=policy, seed=seed)
    rt.scheduler.grant_hooks.append(lambda p: order.append(p.rank))
    rt.run(prog)
    rt.shutdown()
    return order


class TestPolicies:
    def test_policy_names(self):
        for name in ("run_to_block", "round_robin", "virtual_time", "random"):
            assert mp.make_policy(name).name == name

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError, match="unknown scheduling policy"):
            mp.make_policy("fair-share")

    def test_policy_instance_passthrough(self):
        pol = mp.RoundRobinPolicy()
        assert mp.make_policy(pol) is pol

    def test_run_to_block_runs_ranks_in_order(self):
        order = trace_of_order("run_to_block")
        # Without preemption each rank runs exactly once, lowest first.
        assert order == [0, 1, 2]

    def test_deterministic_repeat(self):
        for policy in ("run_to_block", "round_robin", "virtual_time"):
            assert trace_of_order(policy) == trace_of_order(policy)

    def test_random_policy_seeded(self):
        a = trace_of_order("random", seed=7)
        b = trace_of_order("random", seed=7)
        assert a == b

    def test_random_policy_seed_changes_schedule(self):
        runs = {tuple(trace_of_order("random", seed=s)) for s in range(8)}
        assert len(runs) > 1  # at least two distinct interleavings

    def test_results_identical_across_policies(self):
        """Different interleavings, same deterministic program result."""

        def prog(comm):
            right = (comm.rank + 1) % comm.size
            left = (comm.rank - 1) % comm.size
            total = comm.rank
            for _ in range(comm.size - 1):
                total += comm.sendrecv(total, dest=right, sendtag=1,
                                       source=left, recvtag=1)
            return total

        outcomes = set()
        for policy in ("run_to_block", "round_robin", "virtual_time"):
            rt = mp.run_program(prog, 4, policy=policy)
            outcomes.add(tuple(rt.results()))
        assert len(outcomes) == 1


class TestMarkersAndStopControl:
    @staticmethod
    def _marked_prog(comm):
        # Markers are produced by instrumentation; here we bump manually
        # to exercise the substrate-level threshold machinery.
        for _ in range(10):
            comm.proc.bump_marker()
            comm.compute(1.0)

    def test_threshold_stops_process(self):
        rt = mp.Runtime(2)
        rt.set_threshold = rt.set_threshold  # no-op alias, readability
        rt.launch(self._marked_prog)
        rt.set_threshold(0, 4)
        report = rt.run_until_idle()
        assert report.outcome is mp.RunOutcome.STOPPED
        assert rt.procs[0].marker == 4
        assert rt.procs[0].stop.reason is mp.StopReason.THRESHOLD
        assert rt.procs[1].state is mp.ProcState.EXITED
        rt.set_threshold(0, None)
        final = rt.resume()
        assert final.outcome is mp.RunOutcome.FINISHED
        assert rt.procs[0].marker == 10

    def test_step_advances_one_marker(self):
        rt = mp.Runtime(1)
        rt.launch(self._marked_prog)
        rt.set_threshold(0, 2)
        rt.run_until_idle()
        assert rt.procs[0].marker == 2
        rt.set_threshold(0, None)
        report = rt.step(0)
        assert report.outcome is mp.RunOutcome.STOPPED
        assert rt.procs[0].marker == 3
        assert rt.procs[0].stop.reason is mp.StopReason.STEP
        rt.resume()
        rt.shutdown()

    def test_interrupt_all(self):
        rt = mp.Runtime(3)
        rt.launch(self._marked_prog)
        rt.interrupt_all()
        report = rt.run_until_idle()
        assert report.outcome is mp.RunOutcome.STOPPED
        assert all(p.state is mp.ProcState.STOPPED for p in rt.procs)
        rt.clear_interrupts()
        assert rt.resume().outcome is mp.RunOutcome.FINISHED

    def test_stop_markers_recorded(self):
        rt = mp.Runtime(1)
        rt.launch(self._marked_prog)
        rt.set_threshold(0, 3)
        rt.run_until_idle()
        rt.set_threshold(0, 7)
        rt.resume()
        assert rt.procs[0].stop_markers == [3, 7]
        rt.set_threshold(0, None)
        rt.resume()
        rt.shutdown()

    def test_stop_on_entry(self):
        rt = mp.Runtime(2)
        rt.launch(self._marked_prog, stop_on_entry=True)
        report = rt.run_until_idle()
        assert report.outcome is mp.RunOutcome.STOPPED
        assert all(p.marker == 0 for p in rt.procs)
        assert rt.resume().outcome is mp.RunOutcome.FINISHED

    def test_blocked_vs_stopped_is_not_deadlock(self):
        """A process blocked on a STOPPED peer is waiting, not deadlocked."""

        def prog(comm):
            if comm.rank == 0:
                for _ in range(5):
                    comm.proc.bump_marker()
                comm.send("late", dest=1)
            else:
                comm.recv(source=0)

        rt = mp.Runtime(2)
        rt.launch(prog)
        rt.set_threshold(0, 2)
        report = rt.run_until_idle()
        assert report.outcome is mp.RunOutcome.STOPPED
        assert rt.procs[1].state is mp.ProcState.BLOCKED
        rt.set_threshold(0, None)
        assert rt.resume().outcome is mp.RunOutcome.FINISHED


class TestShutdownAndGuards:
    def test_shutdown_unwinds_blocked_processes(self):
        def prog(comm):
            comm.recv(source=0, tag=42)  # blocks forever

        rt = mp.Runtime(2)
        report = rt.run(prog, raise_errors=False)
        assert report.outcome is mp.RunOutcome.DEADLOCK
        rt.shutdown()
        assert all(p.terminated for p in rt.procs)

    def test_shutdown_idempotent(self):
        rt = mp.Runtime(1)
        rt.run(lambda comm: None)
        rt.shutdown()
        rt.shutdown()

    def test_context_manager_cleans_up(self):
        with mp.Runtime(2) as rt:
            rt.launch(lambda comm: comm.recv(source=1 - comm.rank))
            rt.run_until_idle()
        assert all(p.terminated for p in rt.procs)

    def test_grant_limit_guard(self):
        """Two mutually-yielding spinners exhaust the grant budget.

        (The guard counts token grants; it can only fire when processes
        yield, which round_robin forces at every marker.)
        """

        def prog(comm):
            while True:
                comm.proc.bump_marker()
                comm.compute(0.1)

        rt = mp.Runtime(2, policy="round_robin", max_grants=50)
        rt.launch(prog)
        report = rt.run_until_idle()
        assert report.outcome is mp.RunOutcome.LIMIT
        assert rt.scheduler.total_grants >= 50
        rt.shutdown()

    def test_nprocs_validation(self):
        with pytest.raises(ValueError):
            mp.Runtime(0)

    def test_program_sequence_length_checked(self):
        rt = mp.Runtime(3)
        with pytest.raises(ValueError, match="entries"):
            rt.launch([lambda c: None])

    def test_program_mapping_fills_idle_ranks(self):
        rt = mp.Runtime(3)
        rt.run({1: lambda comm: "only-me"})
        assert rt.results() == [None, "only-me", None]

    def test_double_launch_rejected(self):
        rt = mp.Runtime(1)
        rt.launch(lambda comm: None)
        with pytest.raises(RuntimeError, match="already launched"):
            rt.launch(lambda comm: None)
        rt.run_until_idle()
        rt.shutdown()
