"""Sub-communicators via ``Comm.split`` (MPI_Comm_split semantics)."""

from __future__ import annotations


from repro import mp
from repro.instrument import WrapperLibrary
from repro.trace import TraceRecorder


class TestSplitBasics:
    def test_even_odd_split(self):
        def prog(comm):
            sub = comm.split(color=comm.rank % 2)
            assert sub is not None
            return (sub.rank, sub.size, sub.comm_id)

        rt = mp.run_program(prog, 6)
        ranks = rt.results()
        evens = [ranks[r] for r in (0, 2, 4)]
        odds = [ranks[r] for r in (1, 3, 5)]
        assert [e[0] for e in evens] == [0, 1, 2]
        assert [o[0] for o in odds] == [0, 1, 2]
        assert all(e[1] == 3 for e in evens + odds)
        # The two groups live in distinct matching contexts.
        assert evens[0][2] != odds[0][2]
        assert all(e[2] == evens[0][2] for e in evens)

    def test_undefined_color_returns_none(self):
        def prog(comm):
            sub = comm.split(color=None if comm.rank == 2 else 0)
            return None if sub is None else sub.size

        rt = mp.run_program(prog, 4)
        assert rt.results() == [3, 3, None, 3]

    def test_key_orders_ranks(self):
        def prog(comm):
            # Reverse ordering: higher old rank -> lower key.
            sub = comm.split(color=0, key=-comm.rank)
            return sub.rank

        rt = mp.run_program(prog, 4)
        assert rt.results() == [3, 2, 1, 0]

    def test_world_rank_preserved(self):
        def prog(comm):
            sub = comm.split(color=comm.rank // 2)
            return (comm.rank, sub.world_rank)

        rt = mp.run_program(prog, 4)
        assert all(world == rank for rank, world in rt.results())


class TestSubcommTraffic:
    def test_p2p_in_subcomm_uses_group_ranks(self):
        def prog(comm):
            sub = comm.split(color=comm.rank % 2)
            if sub.rank == 0:
                sub.send(f"group-{comm.rank % 2}", dest=1, tag=5)
                return None
            if sub.rank == 1:
                st = mp.Status()
                got = sub.recv(source=0, tag=5, status=st)
                return (got, st.source)
            return None

        rt = mp.run_program(prog, 4)
        # World ranks 2 and 3 are sub-rank 1 of their groups.
        assert rt.results()[2] == ("group-0", 0)
        assert rt.results()[3] == ("group-1", 0)

    def test_same_tag_does_not_cross_communicators(self):
        """Identical (src, dst, tag) traffic on two comms never mixes."""

        def prog(comm):
            sub = comm.split(color=0)  # same membership, new context
            if comm.rank == 0:
                comm.send("world", dest=1, tag=9)
                sub.send("sub", dest=1, tag=9)
                return None
            # Receive from the subcomm FIRST: must get the subcomm
            # message even though the world message arrived earlier.
            got_sub = sub.recv(source=0, tag=9)
            got_world = comm.recv(source=0, tag=9)
            return (got_sub, got_world)

        rt = mp.run_program(prog, 2)
        assert rt.results()[1] == ("sub", "world")

    def test_collectives_within_subgroups(self):
        def prog(comm):
            sub = comm.split(color=comm.rank % 2)
            total = sub.allreduce(comm.rank)
            sub.barrier()
            return total

        rt = mp.run_program(prog, 6)
        assert rt.results() == [6, 9, 6, 9, 6, 9]  # 0+2+4 and 1+3+5

    def test_wildcards_within_subcomm_only(self):
        def prog(comm):
            sub = comm.split(color=comm.rank % 2)
            if sub.rank == 0:
                got = [sub.recv(source=mp.ANY_SOURCE, tag=1) for _ in range(sub.size - 1)]
                return sorted(got)
            sub.send(comm.rank, dest=0, tag=1)
            return None

        rt = mp.run_program(prog, 6)
        assert rt.results()[0] == [2, 4]
        assert rt.results()[1] == [3, 5]

    def test_nested_split(self):
        def prog(comm):
            half = comm.split(color=comm.rank // 4)  # two groups of 4
            quarter = half.split(color=half.rank // 2)  # pairs
            return (half.size, quarter.size, quarter.rank)

        rt = mp.run_program(prog, 8)
        assert all(h == 4 and q == 2 and r in (0, 1) for h, q, r in rt.results())

    def test_subcomm_replay(self):
        """Wildcard matching inside a subcomm replays deterministically."""

        def prog(comm):
            sub = comm.split(color=0)
            if sub.rank == 0:
                return [sub.recv(source=mp.ANY_SOURCE, tag=2) for _ in range(3)]
            comm.compute(float((comm.rank * 7) % 3))
            sub.send(comm.rank, dest=0, tag=2)
            return None

        rt1 = mp.Runtime(4, policy="random", seed=5)
        rt1.run(prog)
        rt2 = mp.Runtime(4, policy="random", seed=77, replay_log=rt1.comm_log)
        rt2.run(prog)
        assert rt1.results()[0] == rt2.results()[0]

    def test_traced_subcomm_traffic_has_world_ranks(self):
        """Trace records carry world endpoints so the time-space diagram
        stays rank-global even for subcomm traffic."""

        def prog(comm):
            sub = comm.split(color=comm.rank % 2)
            if sub.rank == 0:
                sub.send("x", dest=1, tag=3)
            elif sub.rank == 1:
                sub.recv(source=0, tag=3)

        rt = mp.Runtime(4)
        recorder = TraceRecorder(4)
        WrapperLibrary(rt, recorder)
        rt.run(prog)
        rt.shutdown()
        tr = recorder.snapshot()
        user_sends = [r for r in tr if r.is_send and r.tag == 3]
        assert {(s.src, s.dst) for s in user_sends} == {(0, 2), (1, 3)}

    def test_deadlock_across_subcomms_detected(self):
        def prog(comm):
            sub = comm.split(color=0)
            sub.recv(source=(sub.rank + 1) % sub.size, tag=1)

        rt = mp.Runtime(3)
        report = rt.run(prog, raise_errors=False)
        assert report.outcome is mp.RunOutcome.DEADLOCK
        # WaitInfo peers are world ranks: the cycle is visible globally.
        peers = {w.rank: w.peer for w in report.waiting}
        assert peers == {0: 1, 1: 2, 2: 0}
        rt.shutdown()
