"""Collective operations built on point-to-point messaging."""

from __future__ import annotations

import operator

import numpy as np
import pytest

from repro import mp


class TestBarrier:
    @pytest.mark.parametrize("nprocs", [1, 2, 5, 8])
    def test_barrier_completes(self, nprocs):
        def prog(comm):
            comm.barrier()
            return comm.rank

        rt = mp.run_program(prog, nprocs)
        assert rt.results() == list(range(nprocs))

    def test_barrier_synchronizes_virtual_time(self):
        """After a barrier, nobody's clock is behind the slowest arrival."""
        after = {}

        def prog(comm):
            comm.compute(100.0 if comm.rank == 2 else 1.0)
            comm.barrier()
            after[comm.rank] = comm.proc.clock.now

        mp.run_program(prog, 4)
        # Every rank's first post-barrier instant is >= the slowest
        # pre-barrier clock (rank 2's 100.0).
        assert all(t >= 100.0 for t in after.values())


class TestBcastScatterGather:
    def test_bcast_from_nonzero_root(self):
        def prog(comm):
            data = {"v": 7} if comm.rank == 2 else None
            return comm.bcast(data, root=2)

        rt = mp.run_program(prog, 4)
        assert rt.results() == [{"v": 7}] * 4

    def test_scatter_round_trip(self):
        def prog(comm):
            objs = [f"piece{r}" for r in range(comm.size)] if comm.rank == 0 else None
            return comm.scatter(objs, root=0)

        rt = mp.run_program(prog, 4)
        assert rt.results() == [f"piece{r}" for r in range(4)]

    def test_scatter_wrong_length_raises(self):
        def prog(comm):
            comm.scatter(["only-one"], root=0)

        with pytest.raises(ValueError, match="scatter"):
            mp.run_program(prog, 3)

    def test_gather_rank_order(self):
        def prog(comm):
            return comm.gather(comm.rank * 10, root=1)

        rt = mp.run_program(prog, 4)
        assert rt.results()[1] == [0, 10, 20, 30]
        assert rt.results()[0] is None

    def test_allgather(self):
        def prog(comm):
            return comm.allgather(chr(ord("a") + comm.rank))

        rt = mp.run_program(prog, 3)
        assert rt.results() == [["a", "b", "c"]] * 3


class TestReductions:
    def test_reduce_sum_default(self):
        def prog(comm):
            return comm.reduce(comm.rank + 1, root=0)

        rt = mp.run_program(prog, 4)
        assert rt.results()[0] == 10

    def test_reduce_noncommutative_op_rank_order(self):
        def prog(comm):
            return comm.reduce(str(comm.rank), op=operator.add, root=0)

        rt = mp.run_program(prog, 5)
        assert rt.results()[0] == "01234"

    def test_allreduce_max(self):
        def prog(comm):
            return comm.allreduce((comm.rank * 37) % 11, op=max)

        rt = mp.run_program(prog, 6)
        expected = max((r * 37) % 11 for r in range(6))
        assert rt.results() == [expected] * 6

    def test_allreduce_numpy_arrays(self):
        def prog(comm):
            return comm.allreduce(np.full(3, comm.rank, dtype=np.int64))

        rt = mp.run_program(prog, 4)
        for out in rt.results():
            np.testing.assert_array_equal(out, np.full(3, 6))

    def test_scan_prefix_sums(self):
        def prog(comm):
            return comm.scan(comm.rank + 1)

        rt = mp.run_program(prog, 5)
        assert rt.results() == [1, 3, 6, 10, 15]


class TestAlltoall:
    def test_alltoall_transpose(self):
        def prog(comm):
            objs = [(comm.rank, j) for j in range(comm.size)]
            return comm.alltoall(objs)

        rt = mp.run_program(prog, 4)
        for r, out in enumerate(rt.results()):
            assert out == [(j, r) for j in range(4)]

    def test_alltoall_wrong_length(self):
        def prog(comm):
            comm.alltoall([1])

        with pytest.raises(ValueError, match="alltoall"):
            mp.run_program(prog, 3)


class TestCollectivesGenerateMessages:
    def test_bcast_message_count(self):
        """A linear bcast on p ranks is p-1 messages."""

        def prog(comm):
            comm.bcast("x", root=0)

        rt = mp.Runtime(6)
        rt.run(prog)
        assert rt.messages_sent == 5

    def test_collective_tags_reserved(self):
        """User tags at the reserved boundary are rejected."""

        def prog(comm):
            comm.send(1, dest=0, tag=mp.TAG_UB + 1)

        with pytest.raises(mp.InvalidTagError):
            mp.run_program(prog, 1)

    def test_user_traffic_does_not_cross_match_collectives(self):
        """A pending user-tag message never satisfies barrier plumbing."""

        def prog(comm):
            if comm.rank == 0:
                comm.send("user-data", dest=1, tag=5)
                comm.barrier()
                return None
            comm.barrier()
            return comm.recv(source=0, tag=5)

        rt = mp.run_program(prog, 2)
        assert rt.results()[1] == "user-data"
