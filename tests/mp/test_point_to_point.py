"""Point-to-point semantics of the simulated runtime."""

from __future__ import annotations

import numpy as np
import pytest

from repro import mp


def run(program, nprocs, **kw):
    return mp.run_program(program, nprocs, **kw)


class TestBasicSendRecv:
    def test_two_rank_roundtrip(self):
        results = {}

        def prog(comm):
            if comm.rank == 0:
                comm.send({"x": 41}, dest=1, tag=7)
                return comm.recv(source=1, tag=8)
            payload = comm.recv(source=0, tag=7)
            comm.send(payload["x"] + 1, dest=0, tag=8)
            return payload

        rt = run(prog, 2)
        results = rt.results()
        assert results[0] == 42
        assert results[1] == {"x": 41}

    def test_send_copies_arrays(self):
        """Mutating the send buffer after send must not alter the message."""

        def prog(comm):
            if comm.rank == 0:
                a = np.arange(4)
                comm.send(a, dest=1)
                a[:] = -1  # sender reuses the buffer
                return None
            got = comm.recv(source=0)
            return got.tolist()

        rt = run(prog, 2)
        assert rt.results()[1] == [0, 1, 2, 3]

    def test_self_send(self):
        """A buffered send to self followed by a recv works (no deadlock)."""

        def prog(comm):
            comm.send("me", dest=comm.rank, tag=3)
            return comm.recv(source=comm.rank, tag=3)

        rt = run(prog, 1)
        assert rt.results() == ["me"]

    def test_status_filled(self):
        def prog(comm):
            if comm.rank == 0:
                comm.send(np.zeros(10), dest=1, tag=5)
                return None
            st = mp.Status()
            comm.recv(source=mp.ANY_SOURCE, tag=mp.ANY_TAG, status=st)
            return (st.source, st.tag, st.count)

        rt = run(prog, 2)
        assert rt.results()[1] == (0, 5, 10)

    def test_proc_null_send_recv(self):
        def prog(comm):
            comm.send("into the void", dest=mp.PROC_NULL)
            return comm.recv(source=mp.PROC_NULL)

        rt = run(prog, 1)
        assert rt.results() == [None]

    def test_invalid_rank_raises(self):
        def prog(comm):
            comm.send(1, dest=99)

        with pytest.raises(mp.InvalidRankError):
            run(prog, 2)

    def test_invalid_tag_raises(self):
        def prog(comm):
            comm.send(1, dest=0, tag=-5)

        with pytest.raises(mp.InvalidTagError):
            run(prog, 1)

    def test_user_exception_propagates(self):
        def prog(comm):
            if comm.rank == 1:
                raise ValueError("boom at rank 1")

        with pytest.raises(ValueError, match="boom at rank 1"):
            run(prog, 2)


class TestNonOvertaking:
    def test_same_tag_fifo(self):
        """Messages with equal (src, dst, tag) arrive in send order."""

        def prog(comm):
            if comm.rank == 0:
                for i in range(20):
                    comm.send(i, dest=1, tag=4)
                return None
            return [comm.recv(source=0, tag=4) for _ in range(20)]

        rt = run(prog, 2)
        assert rt.results()[1] == list(range(20))

    def test_tag_selective_receive_out_of_order(self):
        """Receives may pick later-tagged messages first; FIFO holds per tag."""

        def prog(comm):
            if comm.rank == 0:
                comm.send("a0", dest=1, tag=1)
                comm.send("b0", dest=1, tag=2)
                comm.send("a1", dest=1, tag=1)
                return None
            first_b = comm.recv(source=0, tag=2)
            then_a = [comm.recv(source=0, tag=1) for _ in range(2)]
            return [first_b] + then_a

        rt = run(prog, 2)
        assert rt.results()[1] == ["b0", "a0", "a1"]

    def test_wildcard_takes_earliest_arrival(self):
        def prog(comm):
            if comm.rank == 0:
                comm.send("first", dest=2, tag=9)
            elif comm.rank == 1:
                # rank 1 waits for a go-ahead so its message arrives second
                comm.recv(source=2, tag=0)
                comm.send("second", dest=2, tag=9)
            else:
                got1 = comm.recv(source=0, tag=9)
                comm.send(None, dest=1, tag=0)
                got2 = comm.recv(source=mp.ANY_SOURCE, tag=9)
                return [got1, got2]

        rt = run(prog, 3)
        assert rt.results()[2] == ["first", "second"]

    def test_seq_numbers_unique_per_triple(self):
        def prog(comm):
            if comm.rank == 0:
                for _ in range(3):
                    comm.send(0, dest=1, tag=1)
                for _ in range(2):
                    comm.send(0, dest=1, tag=2)
            else:
                for _ in range(5):
                    comm.recv(source=0)

        rt = mp.Runtime(2)
        rt.run(prog)
        envs = list(rt.comm_log.recv_matches.values())
        tag1 = sorted(e.seq for e in envs if e.tag == 1)
        tag2 = sorted(e.seq for e in envs if e.tag == 2)
        assert tag1 == [0, 1, 2]
        assert tag2 == [0, 1]


class TestSynchronousAndReadyModes:
    def test_ssend_completes_on_match(self):
        order = []

        def prog(comm):
            if comm.rank == 0:
                comm.ssend("sync", dest=1)
                order.append("send-done")
            else:
                comm.compute(50.0)
                order.append("pre-recv")
                got = comm.recv(source=0)
                order.append("recv-done")
                return got

        rt = run(prog, 2)
        assert rt.results()[1] == "sync"
        assert order.index("pre-recv") < order.index("send-done")

    def test_ssend_rendezvous_deadlock(self):
        """Head-to-head synchronous sends deadlock (classic MPI pitfall)."""

        def prog(comm):
            other = 1 - comm.rank
            comm.ssend("x", dest=other)
            comm.recv(source=other)

        with pytest.raises(mp.DeadlockError) as exc_info:
            run(prog, 2)
        kinds = {w.kind for w in exc_info.value.waiting}
        assert kinds == {mp.WaitKind.SSEND}

    def test_rsend_without_posted_recv_raises(self):
        def prog(comm):
            if comm.rank == 0:
                comm.rsend("eager", dest=1)

        with pytest.raises(mp.MPIError, match="ready-mode"):
            run(prog, 2)

    def test_rsend_with_posted_irecv_ok(self):
        def prog(comm):
            if comm.rank == 1:
                req = comm.irecv(source=0, tag=1)
                comm.send(None, dest=0, tag=0)  # signal: receive is posted
                return comm.wait(req)
            comm.recv(source=1, tag=0)
            comm.rsend("ready", dest=1, tag=1)
            return None

        rt = run(prog, 2)
        assert rt.results()[1] == "ready"


class TestDeadlockDetection:
    def test_mutual_recv_deadlock(self):
        def prog(comm):
            other = 1 - comm.rank
            comm.recv(source=other)  # nobody ever sends

        rt = mp.Runtime(2)
        report = rt.run(prog, raise_errors=False)
        assert report.outcome is mp.RunOutcome.DEADLOCK
        peers = {(w.rank, w.peer) for w in report.waiting}
        assert peers == {(0, 1), (1, 0)}
        rt.shutdown()

    def test_partial_progress_then_deadlock(self):
        """Ranks 0..2 finish a ring; rank 3 waits forever."""

        def prog(comm):
            if comm.rank < 3:
                comm.send(comm.rank, dest=(comm.rank + 1) % 3)
                comm.recv(source=(comm.rank - 1) % 3)
            else:
                comm.recv(source=0, tag=77)

        rt = mp.Runtime(4)
        report = rt.run(prog, raise_errors=False)
        assert report.outcome is mp.RunOutcome.DEADLOCK
        assert [w.rank for w in report.waiting] == [3]
        rt.shutdown()


class TestVirtualTime:
    def test_recv_not_before_send(self):
        """Trace causality: receive completion >= send time + latency."""
        seen = {}

        def prog(comm):
            if comm.rank == 0:
                comm.compute(100.0)
                comm.send("late", dest=1)
                seen["send_t"] = comm.last_op.t1
            else:
                comm.recv(source=0)
                seen["recv_t"] = comm.last_op.t1

        run(prog, 2)
        assert seen["recv_t"] >= seen["send_t"] + mp.CostModel().latency

    def test_compute_advances_clock(self):
        def prog(comm):
            comm.compute(12.5)
            return comm.last_op.t1 - comm.last_op.t0

        rt = run(prog, 1)
        assert rt.results()[0] == pytest.approx(12.5)

    def test_negative_compute_rejected(self):
        def prog(comm):
            comm.compute(-1.0)

        with pytest.raises(ValueError, match="duration"):
            run(prog, 1)

    def test_cost_model_latency_respected(self):
        cm = mp.CostModel(latency=123.0, byte_cost=0.0)
        got = {}

        def prog(comm):
            if comm.rank == 0:
                comm.send("x", dest=1)
                got["sent_at"] = comm.last_op.t1
            else:
                comm.recv(source=0)
                got["recv_at"] = comm.last_op.t1

        mp.run_program(prog, 2, cost_model=cm)
        assert got["recv_at"] >= got["sent_at"] + 123.0


class TestSendRecvCombined:
    def test_ring_shift(self):
        def prog(comm):
            right = (comm.rank + 1) % comm.size
            left = (comm.rank - 1) % comm.size
            return comm.sendrecv(comm.rank, dest=right, sendtag=1,
                                 source=left, recvtag=1)

        rt = run(prog, 5)
        assert rt.results() == [4, 0, 1, 2, 3]
