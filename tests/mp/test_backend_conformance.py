"""Shared backend conformance suite.

One contract, every backend: the cooperative backends (``threaded``,
``simtime``) must produce **record-for-record identical traces** for
the same (program, policy, seed) -- the determinism the paper's replay
machinery rests on -- and the multiprocessing backend, which cannot
promise a schedule, must still produce an equivalent matched
communication structure and identical numerics on wildcard-free
programs.  Everything here is parametrized over
:data:`repro.apps.CONFORMANCE_PROGRAMS`, so a new app or a new backend
is automatically held to the same bar.
"""

from __future__ import annotations

import pytest

from repro.apps import CONFORMANCE_PROGRAMS, WILDCARD_PROGRAMS, ring_program
from repro.debugger.replay import ReplaySpec, build_execution
from repro.mp import DeadlockError, ProcState, Runtime, RunOutcome, run_program

COOPERATIVE = ["threaded", "simtime"]
SEEDS = [0, 1, 2]
NPROCS = 8


def run_traced(app: str, backend: str, seed: int, nprocs: int = NPROCS):
    """Run one conformance program fully instrumented; return the
    comparable artifacts: trace records, comm log, results, markers,
    final clocks."""
    spec = ReplaySpec(
        program=CONFORMANCE_PROGRAMS[app](nprocs, seed),
        nprocs=nprocs,
        policy="random",  # adversarial: preempts at every marker point
        seed=seed,
        backend=backend,
    )
    execution = build_execution(spec)
    rt = execution.runtime
    try:
        report = rt.run_until_idle()
        assert report.outcome is RunOutcome.FINISHED, (app, backend, report)
        return {
            "records": [r.to_jsonable() for r in execution.recorder.snapshot()],
            "comm_log": rt.comm_log.to_jsonable(),
            "results": [repr(p.result) for p in rt.procs],
            "markers": [p.marker for p in rt.procs],
            "clocks": [p.clock.now for p in rt.procs],
        }
    finally:
        rt.shutdown()


class TestTraceIdentity:
    """threaded == simtime, bit for bit, app x seed."""

    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("app", sorted(CONFORMANCE_PROGRAMS))
    def test_cooperative_backends_trace_identical(self, app, seed):
        base = run_traced(app, "threaded", seed)
        other = run_traced(app, "simtime", seed)
        assert other["results"] == base["results"]
        assert other["markers"] == base["markers"]
        assert other["clocks"] == base["clocks"]
        assert other["comm_log"] == base["comm_log"]
        assert len(other["records"]) == len(base["records"])
        for i, (a, b) in enumerate(zip(base["records"], other["records"])):
            assert a == b, f"{app} seed={seed}: trace diverges at record {i}"


def comm_structure(rt: Runtime):
    """Backend-independent view of who-matched-whom: the multiset of
    (src, dst, tag, seq) pairings, per receiving rank in post order."""
    out = {}
    for (rank, post), env in sorted(rt.comm_log.recv_matches.items()):
        out.setdefault(rank, []).append((env.src, env.dst, env.tag, env.seq))
    return out


class TestMprocEquivalence:
    """mproc cannot promise a schedule, but wildcard-free programs must
    produce the same numerics and matched-communication structure."""

    @pytest.mark.parametrize(
        "app", sorted(set(CONFORMANCE_PROGRAMS) - WILDCARD_PROGRAMS)
    )
    def test_results_and_structure_match_threaded(self, app):
        rt_t = run_program(CONFORMANCE_PROGRAMS[app](NPROCS, 0), nprocs=NPROCS)
        rt_m = run_program(
            CONFORMANCE_PROGRAMS[app](NPROCS, 0), nprocs=NPROCS, backend="mproc"
        )
        assert [repr(r) for r in rt_m.results()] == [
            repr(r) for r in rt_t.results()
        ]
        assert comm_structure(rt_m) == comm_structure(rt_t)
        assert all(p.state is ProcState.EXITED for p in rt_m.procs)

    def test_wildcard_program_still_completes(self):
        rt = run_program(
            CONFORMANCE_PROGRAMS["master_worker"](NPROCS, 0),
            nprocs=NPROCS,
            backend="mproc",
        )
        results = rt.results()[0]
        assert sorted(results) == sorted(i * i for i in range(2 * NPROCS))


def recv_ring(comm):
    # Everyone receives first: a textbook cycle, deadlocks immediately.
    left = (comm.rank - 1) % comm.size
    got = comm.recv(source=left, tag=7)
    comm.send(got, dest=(comm.rank + 1) % comm.size, tag=7)


class TestDeadlockClassification:
    @pytest.mark.parametrize("backend", COOPERATIVE + ["mproc"])
    def test_recv_cycle_detected(self, backend):
        rt = Runtime(3, backend=backend)
        report = rt.run(recv_ring, raise_errors=False)
        try:
            assert report.outcome is RunOutcome.DEADLOCK
            blocked = {p.rank for p in rt.procs if p.state is ProcState.BLOCKED}
            assert blocked == {0, 1, 2}
            waits = {p.rank: p.wait_info for p in rt.procs}
            assert all(w is not None for w in waits.values())
        finally:
            rt.shutdown()

    @pytest.mark.parametrize("backend", COOPERATIVE)
    def test_deadlock_error_raised(self, backend):
        with pytest.raises(DeadlockError):
            run_program(recv_ring, nprocs=3, backend=backend)


class TestDebuggerSurfaceOnSimtime:
    """The paper's control machinery, unchanged, on the new backend."""

    @staticmethod
    def _stepper(n):
        def prog(comm):
            for _ in range(n):
                comm.compute(1.0)
            return comm.rank

        return prog

    def test_marker_thresholds_stop_exactly(self):
        # Markers advance at instrumentation points, so build the
        # execution with the wrapper library installed (as the debug
        # session does) -- on the simtime backend.
        spec = ReplaySpec(
            program=self._stepper(12), nprocs=2, backend="simtime"
        )
        execution = build_execution(spec)
        rt = execution.runtime
        try:
            rt.set_thresholds({0: 4, 1: 7})
            report = rt.run_until_idle()
            assert report.outcome is RunOutcome.STOPPED
            assert rt.procs[0].marker == 4
            assert rt.procs[1].marker == 7
            rt.set_threshold(0, None)
            rt.set_threshold(1, None)
            report = rt.resume()
            assert report.outcome is RunOutcome.FINISHED
            assert rt.results() == [0, 1]
        finally:
            rt.shutdown()

    def test_replay_log_forces_wildcard_matching(self):
        prog = CONFORMANCE_PROGRAMS["master_worker"](4, 0)
        rt1 = run_program(prog, nprocs=4, backend="simtime", policy="random", seed=5)
        original = rt1.results()[0]
        rt2 = run_program(
            prog,
            nprocs=4,
            backend="simtime",
            policy="random",
            seed=99,  # different schedule; the log must still win
            replay_log=rt1.comm_log,
        )
        assert rt2.results()[0] == original

    def test_session_undo_on_simtime(self):
        from repro.debugger.session import DebugSession

        session = DebugSession(self._stepper(20), 2, backend="simtime")
        try:
            assert session.runtime.backend.name == "simtime"
            session.set_threshold(0, 5)
            session.set_threshold(1, 5)
            session.run()
            first = session.markers()
            session.set_threshold(0, 10)
            session.set_threshold(1, 10)
            session.cont()
            assert session.markers().as_dict() == {0: 10, 1: 10}
            summary = session.undo()
            assert summary.outcome is RunOutcome.STOPPED
            assert session.markers() == first
        finally:
            session.shutdown()

    def test_stop_on_entry_and_step(self):
        rt = Runtime(2, backend="simtime")
        try:
            rt.launch(self._stepper(3), stop_on_entry=True)
            report = rt.run_until_idle()
            assert report.outcome is RunOutcome.STOPPED
            assert all(p.state is ProcState.STOPPED for p in rt.procs)
            report = rt.resume()
            assert report.outcome is RunOutcome.FINISHED
        finally:
            rt.shutdown()


class TestScale:
    def test_1024_rank_ring_on_simtime(self):
        rt = run_program(
            ring_program(rounds=1), nprocs=1024, backend="simtime"
        )
        assert rt.results()[0] == float(sum(range(1024)))

    def test_256_rank_ring_trace_identity(self):
        # A cheaper cross-backend check at real scale (run_to_block so
        # the threaded side stays fast enough for the test suite).
        results = {}
        for backend in COOPERATIVE:
            rt = run_program(ring_program(rounds=1), nprocs=256, backend=backend)
            results[backend] = (
                [repr(r) for r in rt.results()],
                rt.comm_log.to_jsonable(),
                [p.marker for p in rt.procs],
            )
        assert results["threaded"] == results["simtime"]
