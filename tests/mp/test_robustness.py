"""Robustness and edge cases across the substrate."""

from __future__ import annotations

import pytest

from repro import mp
from tests.conftest import traced_run


class TestPolicyPreemption:
    def test_virtual_time_interleaves_unequal_work(self):
        """Under virtual_time, a cheap process overtakes an expensive one
        at yield points."""
        order: list[tuple[int, float]] = []

        def prog(comm):
            for _ in range(4):
                comm.compute(10.0 if comm.rank == 0 else 1.0)
                order.append((comm.rank, comm.proc.clock.now))

        rt = mp.Runtime(2, policy="virtual_time")
        recorder_less_run = rt.run(prog)
        rt.shutdown()
        del recorder_less_run
        # Rank 1 (cheap) finishes all its work before rank 0's last step.
        r1_last = max(t for r, t in order if r == 1)
        r0_last = max(t for r, t in order if r == 0)
        assert r1_last < r0_last

    def test_round_robin_alternates(self):
        grants: list[int] = []

        def prog(comm):
            for _ in range(3):
                comm.compute(1.0)

        rt = mp.Runtime(2, policy="round_robin")
        rt.scheduler.grant_hooks.append(lambda p: grants.append(p.rank))
        rt.run(prog)
        rt.shutdown()
        # With preemption at every compute, ranks strictly alternate.
        switches = sum(1 for a, b in zip(grants, grants[1:]) if a != b)
        assert switches >= len(grants) - 2

    def test_random_policy_preempts_sometimes(self):
        def prog(comm):
            for _ in range(10):
                comm.compute(1.0)

        grants: list[int] = []
        rt = mp.Runtime(2, policy="random", seed=1)
        rt.scheduler.grant_hooks.append(lambda p: grants.append(p.rank))
        rt.run(prog)
        rt.shutdown()
        assert len(set(grants)) == 2


class TestErrorPaths:
    def test_exception_in_collective_propagates(self):
        def prog(comm):
            if comm.rank == 1:
                raise RuntimeError("mid-collective crash")
            comm.barrier()

        with pytest.raises(RuntimeError, match="mid-collective"):
            mp.run_program(prog, 3)

    def test_exception_during_split(self):
        def prog(comm):
            if comm.rank == 0:
                raise ValueError("pre-split crash")
            comm.split(color=0)

        rt = mp.Runtime(2)
        report = rt.run(prog, raise_errors=False)
        assert report.outcome is mp.RunOutcome.ERROR
        rt.shutdown()

    def test_traceback_preserved(self):
        def prog(comm):
            raise KeyError("inspect me")

        rt = mp.Runtime(1)
        rt.run(prog, raise_errors=False)
        assert "inspect me" in rt.procs[0].traceback_text
        assert rt.first_exception() is rt.procs[0].exception
        rt.shutdown()

    def test_shutdown_during_barrier(self):
        """Processes parked inside a collective unwind cleanly."""

        def prog(comm):
            if comm.rank == 0:
                comm.recv(source=1, tag=99)  # never satisfied
            else:
                comm.barrier()  # blocks: rank 0 never joins

        rt = mp.Runtime(3)
        report = rt.run(prog, raise_errors=False)
        assert report.outcome is mp.RunOutcome.DEADLOCK
        rt.shutdown()
        assert all(p.terminated for p in rt.procs)

    def test_current_proc_outside_worker_rejected(self):
        rt = mp.Runtime(1)
        rt.launch(lambda comm: None)
        with pytest.raises(RuntimeError, match="not a .*simulated process"):
            rt.current_proc()
        rt.run_until_idle()
        rt.shutdown()


class TestMixedTraffic:
    def test_interleaved_wildcard_and_directed(self):
        """Directed receives never steal messages a wildcard should get
        first by arrival order, and vice versa."""

        def prog(comm):
            if comm.rank == 0:
                got_any = comm.recv(source=mp.ANY_SOURCE, tag=1)
                got_two = comm.recv(source=2, tag=1)
                return (got_any, got_two)
            comm.compute(float(comm.rank))
            comm.send(f"w{comm.rank}", dest=0, tag=1)
            return None

        rt = mp.run_program(prog, 3)
        got_any, got_two = rt.results()[0]
        assert got_two == "w2"
        assert got_any in ("w1", "w2")

    def test_probe_then_directed_recv(self):
        def prog(comm):
            if comm.rank == 0:
                st = mp.Status()
                comm.probe(source=mp.ANY_SOURCE, tag=5, status=st)
                # Receive from exactly the probed source.
                return comm.recv(source=st.source, tag=5)
            comm.send(f"from-{comm.rank}", dest=0, tag=5)
            return None

        rt = mp.run_program(prog, 3)
        assert rt.results()[0].startswith("from-")

    def test_many_small_messages_fifo_stress(self):
        N = 200

        def prog(comm):
            if comm.rank == 0:
                for i in range(N):
                    comm.send(i, dest=1, tag=i % 3)
                return None
            out = {0: [], 1: [], 2: []}
            for _ in range(N):
                st = mp.Status()
                val = comm.recv(source=0, tag=mp.ANY_TAG, status=st)
                out[st.tag].append(val)
            return out

        rt = mp.run_program(prog, 2)
        buckets = rt.results()[1]
        for tag, values in buckets.items():
            assert values == sorted(values)  # per-tag FIFO preserved
            assert all(v % 3 == tag for v in values)


class TestVizEdgeCases:
    def test_empty_trace_renders(self):
        from repro.trace import Trace
        from repro.viz import build_diagram, render_ascii, render_svg

        tr = Trace([], 3)
        dia = build_diagram(tr)
        assert render_ascii(dia, columns=20)
        assert render_svg(dia).startswith("<svg")

    def test_single_event_trace(self):
        from repro.viz import build_diagram, render_ascii

        def prog(comm):
            comm.compute(5.0)

        _, tr = traced_run(prog, 1)
        text = render_ascii(build_diagram(tr), columns=30)
        assert "=" in text  # the compute bar

    def test_message_hit_tolerance(self):
        from repro.viz import build_diagram

        def prog(comm):
            if comm.rank == 0:
                comm.send("x", dest=1)
            else:
                comm.recv(source=0)

        _, tr = traced_run(prog, 2)
        dia = build_diagram(tr)
        msg = dia.messages[0]
        before = msg.t_sent - 0.5
        assert dia.hit_test_message(before) is None
        assert dia.hit_test_message(before, tolerance=1.0) is msg
